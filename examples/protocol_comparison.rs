//! Exploring beyond the paper with the public API: the same workload under
//! write-invalidate vs write-update coherence, with and without a victim
//! buffer — the two "what ifs" the paper's §4.3/§5 point at.
//!
//! ```text
//! cargo run --release --example protocol_comparison
//! ```

use charlie::cache::CacheGeometry;
use charlie::prefetch::{apply, Strategy};
use charlie::sim::{simulate, Protocol, SimConfig};
use charlie::workloads::{generate, Workload, WorkloadConfig};

fn main() {
    let wcfg = WorkloadConfig { refs_per_proc: 40_000, ..WorkloadConfig::default() };
    let workload = Workload::Pverify;
    let raw = generate(workload, &wcfg);
    let pref = apply(Strategy::Pref, &raw, CacheGeometry::paper_default());

    println!("{workload} on the 8-cycle bus — four machines, same trace:\n");
    println!(
        "{:<34} {:>10} {:>9} {:>10} {:>9}",
        "machine", "cycles", "CPU MR", "inval MR", "bus util"
    );

    let base = SimConfig::paper(wcfg.procs, 8);
    let machines = [
        ("write-invalidate (the paper)", base),
        ("  + 4-entry victim buffer", SimConfig { victim_entries: 4, ..base }),
        ("write-update (Firefly-style)", SimConfig { protocol: Protocol::WriteUpdate, ..base }),
        (
            "  + 4-entry victim buffer",
            SimConfig { protocol: Protocol::WriteUpdate, victim_entries: 4, ..base },
        ),
    ];
    for (label, cfg) in machines {
        let r = simulate(&cfg, &pref).expect("simulation succeeds");
        println!(
            "{label:<34} {:>10} {:>8.2}% {:>9.2}% {:>9.2}",
            r.cycles,
            100.0 * r.cpu_miss_rate(),
            100.0 * r.invalidation_miss_rate(),
            r.bus_utilization(),
        );
    }

    println!(
        "\nWrite-update removes every invalidation miss by construction (the\n\
         paper's identified limit), trading them for word-broadcast traffic;\n\
         the victim buffer mops up the conflict misses prefetching induces."
    );
}
