//! Quickstart: simulate one workload with and without prefetching and print
//! the paper's headline metrics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use charlie::{Experiment, Lab, RunConfig, Strategy, Workload};

fn main() {
    // Smaller than the experiment default so the example runs in seconds.
    let mut lab = Lab::new(RunConfig { refs_per_proc: 40_000, ..RunConfig::default() });

    let workload = Workload::Mp3d;
    let latency = 8; // cycles of contended data transfer, out of 100 total

    println!("workload: {workload} — {}", workload.description());
    println!("machine:  8 procs, 32 KB direct-mapped caches, {latency}-cycle data bus\n");

    let np = lab.run(Experiment::paper(workload, Strategy::NoPrefetch, latency)).clone();
    println!("no prefetching:");
    println!("{}\n", np.report);

    let pf = lab.run(Experiment::paper(workload, Strategy::Pref, latency)).clone();
    println!("PREF (oracle prefetching, 100-cycle distance):");
    println!("{}\n", pf.report);

    let rel = pf.report.cycles as f64 / np.report.cycles as f64;
    println!(
        "relative execution time: {rel:.3} ({}){}",
        if rel < 1.0 { "speedup" } else { "slowdown" },
        if pf.report.bus_utilization() > 0.9 { " — bus saturated" } else { "" }
    );
    println!(
        "CPU miss rate {:.2}% → {:.2}%, but total (bus) miss rate {:.2}% → {:.2}%",
        100.0 * np.report.cpu_miss_rate(),
        100.0 * pf.report.cpu_miss_rate(),
        100.0 * np.report.total_miss_rate(),
        100.0 * pf.report.total_miss_rate(),
    );
}
