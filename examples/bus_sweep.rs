//! Figure-2-style sweep: how the benefit of each prefetching strategy
//! changes as the data bus gets slower, for one workload.
//!
//! ```text
//! cargo run --release --example bus_sweep [Topopt|Pverify|LocusRoute|Mp3d|Water]
//! ```

use charlie::bus::BusConfig;
use charlie::{Experiment, Lab, RunConfig, Strategy, Workload};

fn parse_workload(name: &str) -> Option<Workload> {
    Workload::ALL.into_iter().find(|w| w.name().eq_ignore_ascii_case(name))
}

fn main() {
    let workload = std::env::args()
        .nth(1)
        .map(|a| parse_workload(&a).unwrap_or_else(|| panic!("unknown workload {a:?}")))
        .unwrap_or(Workload::Pverify);

    let mut lab = Lab::new(RunConfig { refs_per_proc: 40_000, ..RunConfig::default() });

    println!("{workload}: execution time relative to NP (lower is better)\n");
    print!("{:>10}", "latency");
    for s in Strategy::PREFETCHING {
        print!("{:>8}", s.name());
    }
    println!("{:>10}", "bus(NP)");

    for lat in BusConfig::PAPER_SWEEP {
        print!("{lat:>10}");
        for s in Strategy::PREFETCHING {
            let rel = lab.relative_time(Experiment::paper(workload, s, lat));
            print!("{rel:>8.3}");
        }
        let np_util =
            lab.run(Experiment::paper(workload, Strategy::NoPrefetch, lat)).report.bus_utilization();
        println!("{np_util:>10.2}");
    }

    println!(
        "\nThe paper's shape: gains on fast buses shrink — and flip to losses — as the\n\
         contended transfer latency grows and the bus saturates (§4.2)."
    );
}
