//! Building a workload by hand with the public trace API: a producer/
//! consumer pipeline over a shared buffer, run through the whole prefetching
//! pipeline.
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```

use charlie::cache::CacheGeometry;
use charlie::prefetch::{apply, Strategy};
use charlie::sim::{simulate, SimConfig};
use charlie::trace::{Addr, TraceBuilder};

fn main() {
    const PROCS: usize = 4;
    const ROUNDS: u32 = 200;
    const BUF_LINES: u64 = 64;
    const BUF_BASE: u64 = 0x8000_0000;

    // Each round: the producer (P0) fills the buffer under a lock, a barrier
    // opens the read phase, every consumer scans the buffer, and a second
    // barrier closes the round (strict phase separation).
    let mut b = TraceBuilder::new(PROCS);
    for round in 0..ROUNDS {
        {
            let mut p0 = b.proc(0);
            p0.lock(0);
            for line in 0..BUF_LINES {
                p0.work(4).write(Addr::new(BUF_BASE + line * 32 + u64::from(round % 8) * 4));
            }
            p0.unlock(0);
        }
        for p in 1..PROCS {
            b.proc(p).work(40);
        }
        for p in 0..PROCS {
            b.proc(p).barrier(2 * round);
        }
        for p in 1..PROCS {
            let mut c = b.proc(p);
            for line in 0..BUF_LINES {
                c.work(2).read(Addr::new(BUF_BASE + line * 32 + u64::from(round % 8) * 4));
            }
        }
        {
            // keep the producer busy while consumers read
            let mut p0 = b.proc(0);
            p0.work(6 * BUF_LINES as u32);
        }
        for p in 0..PROCS {
            b.proc(p).barrier(2 * round + 1);
        }
    }
    let trace = b.build();
    trace.validate().expect("well-formed custom trace");

    println!("producer/consumer: {} demand accesses total\n", trace.total_accesses());
    println!(
        "{:<6} {:>10} {:>9} {:>10} {:>9} {:>10}",
        "strat", "cycles", "CPU MR", "inval MR", "bus util", "prefetches"
    );

    let geometry = CacheGeometry::paper_default();
    let cfg = SimConfig { num_procs: PROCS, ..SimConfig::default() };
    let mut np_cycles = None;
    for strategy in Strategy::ALL {
        let prepared = apply(strategy, &trace, geometry);
        let report = simulate(&cfg, &prepared).expect("simulation succeeds");
        np_cycles.get_or_insert(report.cycles);
        println!(
            "{:<6} {:>10} {:>8.2}% {:>9.2}% {:>9.2} {:>10}",
            strategy.name(),
            report.cycles,
            100.0 * report.cpu_miss_rate(),
            100.0 * report.invalidation_miss_rate(),
            report.bus_utilization(),
            prepared.total_prefetches(),
        );
    }
    println!(
        "\nThe consumers' misses are invalidation misses (the producer rewrote the\n\
         buffer), which the uniprocessor oracle cannot predict — only PWS covers them."
    );
}
