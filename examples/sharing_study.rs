//! The paper's §4.4 in miniature: invalidation misses are the limit to
//! prefetching; restructuring shared data (padding falsely-shared words onto
//! their own lines) removes most of them and lets plain PREF approach PWS.
//!
//! ```text
//! cargo run --release --example sharing_study
//! ```

use charlie::{Experiment, Lab, Layout, RunConfig, Strategy, Workload};

fn main() {
    let mut lab = Lab::new(RunConfig { refs_per_proc: 40_000, ..RunConfig::default() });
    let latency = 8;

    for workload in [Workload::Topopt, Workload::Pverify] {
        println!("== {workload} ==");
        println!(
            "{:<14} {:>9} {:>9} {:>9} {:>9} {:>10}",
            "variant", "CPU MR", "inval MR", "FS MR", "bus util", "rel. time"
        );
        for (label, layout, strategy) in [
            ("original NP", Layout::Interleaved, Strategy::NoPrefetch),
            ("original PREF", Layout::Interleaved, Strategy::Pref),
            ("original PWS", Layout::Interleaved, Strategy::Pws),
            ("restruct NP", Layout::Padded, Strategy::NoPrefetch),
            ("restruct PREF", Layout::Padded, Strategy::Pref),
            ("restruct PWS", Layout::Padded, Strategy::Pws),
        ] {
            let exp = Experiment { workload, strategy, transfer_cycles: latency, layout };
            let rel = lab.relative_time(exp);
            let r = &lab.run(exp).report;
            println!(
                "{label:<14} {:>8.2}% {:>8.2}% {:>8.2}% {:>9.2} {rel:>10.3}",
                100.0 * r.cpu_miss_rate(),
                100.0 * r.invalidation_miss_rate(),
                100.0 * r.false_sharing_miss_rate(),
                r.bus_utilization(),
            );
        }
        println!("(relative time is vs. the same layout's NP baseline)\n");
    }
}
