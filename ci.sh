#!/usr/bin/env bash
# Tier-1 gate: build, full test suite, then an end-to-end check that the
# parallel experiment engine is observably equivalent to serial execution
# (byte-identical CLI output on a tiny grid at --jobs 1 vs --jobs 8).
set -euo pipefail
cd "$(dirname "$0")"

echo "== build =="
cargo build --release

echo "== tests =="
cargo test -q

echo "== serial-vs-parallel equivalence (tiny grid) =="
CLI=(cargo run -q --release -p charlie-cli --)
serial=$("${CLI[@]}" sweep --workload mp3d --refs 2000 --procs 2 --json --jobs 1)
parallel=$("${CLI[@]}" sweep --workload mp3d --refs 2000 --procs 2 --json --jobs 8)
if [[ "$serial" != "$parallel" ]]; then
    echo "FAIL: sweep output differs between --jobs 1 and --jobs 8" >&2
    diff <(echo "$serial") <(echo "$parallel") >&2 || true
    exit 1
fi
echo "sweep output byte-identical at --jobs 1 and --jobs 8"

echo "== OK =="
