#!/usr/bin/env bash
# Tier-1 gate: build, full test suite, then an end-to-end check that the
# parallel experiment engine is observably equivalent to serial execution
# (byte-identical CLI output on a tiny grid at --jobs 1 vs --jobs 8).
set -euo pipefail
cd "$(dirname "$0")"

echo "== build =="
cargo build --release

echo "== tests =="
cargo test -q

echo "== serial-vs-parallel equivalence (tiny grid) =="
CLI=(cargo run -q --release -p charlie-cli --)
serial=$("${CLI[@]}" sweep --workload mp3d --refs 2000 --procs 2 --json --jobs 1)
parallel=$("${CLI[@]}" sweep --workload mp3d --refs 2000 --procs 2 --json --jobs 8)
if [[ "$serial" != "$parallel" ]]; then
    echo "FAIL: sweep output differs between --jobs 1 and --jobs 8" >&2
    diff <(echo "$serial") <(echo "$parallel") >&2 || true
    exit 1
fi
echo "sweep output byte-identical at --jobs 1 and --jobs 8"

echo "== coherence invariant checker (release, --check) =="
# Debug builds check unconditionally; this proves the opt-in release path.
"${CLI[@]}" run --workload pverify --strategy pws --refs 4000 --procs 4 --check >/dev/null
"${CLI[@]}" sweep --workload topopt --refs 2000 --procs 2 --json --check >/dev/null
echo "release runs pass with invariant checking enabled"

echo "== hardware-prefetcher property suite (release) =="
# The debug run is part of `cargo test -q` above (where the invariant
# checker is unconditional); the release run proves the --check opt-in
# path the property tests rely on.
cargo test -q --release -p charlie --test hw_prefetch_props

echo "== benches compile =="
cargo bench --no-run -q

echo "== quick-bench smoke vs checked-in baseline =="
# Fails if events/sec drops more than 20% below BENCH_charlie.json's
# quick_baseline run. Catches large regressions; the full grid slice
# (charlie bench, no --quick) is the authoritative number. On top of the
# CLI's built-in 20% gate, CI holds the disabled hardware-prefetcher hooks
# to a tighter bar: >=90% of the checked-in baseline.
bench_out=$("${CLI[@]}" bench --quick --label ci_smoke \
    --out "$(mktemp -t charlie-ci-bench.XXXXXX)" --baseline BENCH_charlie.json)
echo "$bench_out"
pct=$(grep -o '[0-9]*% of baseline' <<<"$bench_out" | grep -o '^[0-9]*')
if [[ -z "$pct" || "$pct" -lt 90 ]]; then
    echo "FAIL: quick bench at ${pct:-?}% of baseline (>=90% required: the" >&2
    echo "      disabled hardware-prefetch hooks must cost nothing)" >&2
    exit 1
fi
echo "quick bench at ${pct}% of baseline (>=90% required)"

echo "== checkpoint kill-and-resume (SIGTERM mid-sweep) =="
journal=$(mktemp -t charlie-ci-journal.XXXXXX)
rm -f "$journal"
fresh=$("${CLI[@]}" sweep --workload water --refs 20000 --procs 4 --json --jobs 2)
"${CLI[@]}" sweep --workload water --refs 20000 --procs 4 --json --jobs 2 \
    --resume "$journal" >/dev/null 2>&1 &
victim=$!
sleep 1
kill -TERM "$victim" 2>/dev/null || true   # may already have finished
wait "$victim" 2>/dev/null || true
resumed=$("${CLI[@]}" sweep --workload water --refs 20000 --procs 4 --json --jobs 2 \
    --resume "$journal")
if [[ "$fresh" != "$resumed" ]]; then
    echo "FAIL: resumed sweep output differs from an uninterrupted run" >&2
    diff <(echo "$fresh") <(echo "$resumed") >&2 || true
    exit 1
fi
rm -f "$journal"
echo "resumed sweep output byte-identical to an uninterrupted run"

echo "== observability: profile smoke + sampling-off identity =="
# 1. Sampling must be invisible: run --json output byte-identical with the
#    sampler armed (the hooks are always compiled in).
plain=$("${CLI[@]}" run --workload mp3d --refs 4000 --procs 2 --json)
sampled=$("${CLI[@]}" run --workload mp3d --refs 4000 --procs 2 --json --sample-interval 1000)
if [[ "$plain" != "$sampled" ]]; then
    echo "FAIL: run --json output changed with --sample-interval" >&2
    diff <(echo "$plain") <(echo "$sampled") >&2 || true
    exit 1
fi
echo "run --json byte-identical with sampling on"
# 1b. Like sampling, a degree-0 hardware prefetcher must be invisible: the
#     hooks are always compiled in, but the disabled path is the zero-cost
#     path.
hw_off=$("${CLI[@]}" run --workload mp3d --refs 4000 --procs 2 --json --hw-prefetch stride:0)
if [[ "$plain" != "$hw_off" ]]; then
    echo "FAIL: run --json output changed with --hw-prefetch stride:0" >&2
    diff <(echo "$plain") <(echo "$hw_off") >&2 || true
    exit 1
fi
echo "run --json byte-identical with a degree-0 hardware prefetcher"
# 2. profile --json: the timeline must tile the run — summed per-window
#    bus_busy equals the final report's busy_cycles.
profile_json=$("${CLI[@]}" profile mp3d --strategy pws --refs 4000 --procs 2 \
    --sample-interval 1000 --json)
total=$(grep -o '"busy_cycles":[0-9]*' <<<"$profile_json" | head -1 | cut -d: -f2)
summed=$(grep -o '"bus_busy":[0-9]*' <<<"$profile_json" | cut -d: -f2 | awk '{s += $1} END {print s}')
if [[ "$total" != "$summed" ]]; then
    echo "FAIL: profile timeline bus_busy sum $summed != report busy_cycles $total" >&2
    exit 1
fi
echo "profile timeline tiles the run (bus_busy sum == busy_cycles == $total)"
# 3. JSONL trace: every line is a {"t":...} object in an allowed category.
events=$(mktemp -t charlie-ci-events.XXXXXX)
"${CLI[@]}" run --workload water --refs 2000 --procs 2 \
    --trace-out "$events" --trace-cats bus,prefetch >/dev/null
if [[ ! -s "$events" ]]; then
    echo "FAIL: --trace-out wrote no events" >&2
    exit 1
fi
if grep -vq '^{"t":[0-9]*,"cat":"\(bus\|prefetch\)","ev":"[a-z_]*",' "$events"; then
    echo "FAIL: malformed or mis-categorized JSONL trace line:" >&2
    grep -v '^{"t":[0-9]*,"cat":"\(bus\|prefetch\)","ev":"[a-z_]*",' "$events" | head -3 >&2
    exit 1
fi
echo "JSONL trace schema valid ($(wc -l <"$events") events)"
rm -f "$events"

echo "== full-grid differential: degree-0 hardware prefetcher =="
# The authoritative statement of the zero-cost disabled path: regenerating
# the entire paper grid with an online prefetcher configured at degree 0
# must reproduce experiments_output.txt byte-for-byte.
grid=$(mktemp -t charlie-ci-grid.XXXXXX)
CHARLIE_HW_PREFETCH=stride:0 cargo run -q --release -p charlie-bench \
    --bin all_experiments >"$grid" 2>/dev/null
if ! cmp -s experiments_output.txt "$grid"; then
    echo "FAIL: full grid with a degree-0 hardware prefetcher differs from" >&2
    echo "      experiments_output.txt" >&2
    diff experiments_output.txt "$grid" | head -20 >&2 || true
    exit 1
fi
rm -f "$grid"
echo "full grid byte-identical to experiments_output.txt with hw prefetch at degree 0"

echo "== chaos drill: crash-point matrix + live fault plans =="
# Truncates the checkpoint journal at interior offsets and line boundaries,
# arms every FaultKind against a live sweep, and crashes a bench snapshot
# mid-write; every recovery path must render byte-identical output
# (DESIGN.md §14). Loud stderr warnings here are the recovery paths firing.
"${CLI[@]}" chaos --workload water --refs 1200 --procs 2 --jobs 4 --points 6
echo "chaos drill passed (byte-identical under every injected fault)"

echo "== OK =="
