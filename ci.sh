#!/usr/bin/env bash
# Tier-1 gate: build, full test suite, then an end-to-end check that the
# parallel experiment engine is observably equivalent to serial execution
# (byte-identical CLI output on a tiny grid at --jobs 1 vs --jobs 8).
set -euo pipefail
cd "$(dirname "$0")"

echo "== build =="
cargo build --release

echo "== tests =="
cargo test -q

echo "== serial-vs-parallel equivalence (tiny grid) =="
CLI=(cargo run -q --release -p charlie-cli --)
serial=$("${CLI[@]}" sweep --workload mp3d --refs 2000 --procs 2 --json --jobs 1)
parallel=$("${CLI[@]}" sweep --workload mp3d --refs 2000 --procs 2 --json --jobs 8)
if [[ "$serial" != "$parallel" ]]; then
    echo "FAIL: sweep output differs between --jobs 1 and --jobs 8" >&2
    diff <(echo "$serial") <(echo "$parallel") >&2 || true
    exit 1
fi
echo "sweep output byte-identical at --jobs 1 and --jobs 8"

echo "== coherence invariant checker (release, --check) =="
# Debug builds check unconditionally; this proves the opt-in release path.
"${CLI[@]}" run --workload pverify --strategy pws --refs 4000 --procs 4 --check >/dev/null
"${CLI[@]}" sweep --workload topopt --refs 2000 --procs 2 --json --check >/dev/null
echo "release runs pass with invariant checking enabled"

echo "== coherence protocols: four-way exhibit + per-protocol checkers =="
# DESIGN.md §18: the protocols exhibit must render every protocol for every
# workload (5 workloads x 4 protocols in the traffic table), the update
# protocols must eliminate invalidation misses by construction, and each
# protocol's release-mode invariant checker must stay green.
protocols_out=$("${CLI[@]}" experiments protocols --jobs 8)
for proto in illinois firefly dragon moesi; do
    rows=$(grep -c "^[A-Za-z0-9]*  *$proto " <<<"$protocols_out") || true
    if [[ "$rows" -ne 5 ]]; then
        echo "FAIL: protocols exhibit has $rows traffic rows for $proto (expected 5)" >&2
        echo "$protocols_out" >&2
        exit 1
    fi
done
if grep -E "^[A-Za-z0-9]*  *(firefly|dragon) " <<<"$protocols_out" \
    | awk '{ if ($3 != 0) exit 1 }'; then
    echo "update protocols show zero invalidation misses in the exhibit"
else
    echo "FAIL: an update-protocol row reports invalidation misses:" >&2
    grep -E "^[A-Za-z0-9]*  *(firefly|dragon) " <<<"$protocols_out" >&2
    exit 1
fi
for proto in dragon moesi; do
    "${CLI[@]}" run --workload mp3d --strategy pref --refs 4000 --procs 4 \
        --protocol "$proto" --check >/dev/null
done
echo "protocols exhibit renders 4x5 and dragon/moesi pass --check in release"

echo "== hardware-prefetcher property suite (release) =="
# The debug run is part of `cargo test -q` above (where the invariant
# checker is unconditional); the release run proves the --check opt-in
# path the property tests rely on.
cargo test -q --release -p charlie --test hw_prefetch_props

echo "== benches compile =="
cargo bench --no-run -q

echo "== quick-bench smoke vs checked-in baseline =="
# Fails if events/sec drops more than 20% below BENCH_charlie.json's
# quick_baseline run. Catches large regressions; the full grid slice
# (charlie bench, no --quick) is the authoritative number. On top of the
# CLI's built-in 20% gate, CI holds the disabled hardware-prefetcher hooks
# to a tighter bar: >=90% of the checked-in baseline.
# Throughput is scheduler-noisy (±15% run-to-run on a shared host), so
# the gate is best-of-3: a genuine regression fails all three attempts,
# a noisy dip does not.
pct=0
for attempt in 1 2 3; do
    bench_out=$("${CLI[@]}" bench --quick --label ci_smoke \
        --out "$(mktemp -t charlie-ci-bench.XXXXXX)" \
        --baseline BENCH_charlie.json) || true
    echo "$bench_out"
    run_pct=$(grep -o '[0-9]*% of baseline' <<<"$bench_out" | grep -o '^[0-9]*') || true
    [[ -n "$run_pct" && "$run_pct" -gt "$pct" ]] && pct=$run_pct
    [[ "$pct" -ge 90 ]] && break
    echo "attempt $attempt at ${run_pct:-?}% of baseline; retrying"
done
if [[ "$pct" -lt 90 ]]; then
    echo "FAIL: quick bench at ${pct}% of baseline after 3 attempts (>=90%" >&2
    echo "      required: the disabled hardware-prefetch hooks must cost nothing)" >&2
    exit 1
fi
echo "quick bench at ${pct}% of baseline (>=90% required, best of 3)"

echo "== checkpoint kill-and-resume (SIGTERM mid-sweep) =="
journal=$(mktemp -t charlie-ci-journal.XXXXXX)
rm -f "$journal"
fresh=$("${CLI[@]}" sweep --workload water --refs 20000 --procs 4 --json --jobs 2)
"${CLI[@]}" sweep --workload water --refs 20000 --procs 4 --json --jobs 2 \
    --resume "$journal" >/dev/null 2>&1 &
victim=$!
sleep 1
kill -TERM "$victim" 2>/dev/null || true   # may already have finished
wait "$victim" 2>/dev/null || true
resumed=$("${CLI[@]}" sweep --workload water --refs 20000 --procs 4 --json --jobs 2 \
    --resume "$journal")
if [[ "$fresh" != "$resumed" ]]; then
    echo "FAIL: resumed sweep output differs from an uninterrupted run" >&2
    diff <(echo "$fresh") <(echo "$resumed") >&2 || true
    exit 1
fi
rm -f "$journal"
echo "resumed sweep output byte-identical to an uninterrupted run"

echo "== observability: profile smoke + sampling-off identity =="
# 1. Sampling must be invisible: run --json output byte-identical with the
#    sampler armed (the hooks are always compiled in).
plain=$("${CLI[@]}" run --workload mp3d --refs 4000 --procs 2 --json)
sampled=$("${CLI[@]}" run --workload mp3d --refs 4000 --procs 2 --json --sample-interval 1000)
if [[ "$plain" != "$sampled" ]]; then
    echo "FAIL: run --json output changed with --sample-interval" >&2
    diff <(echo "$plain") <(echo "$sampled") >&2 || true
    exit 1
fi
echo "run --json byte-identical with sampling on"
# 1b. Like sampling, a degree-0 hardware prefetcher must be invisible: the
#     hooks are always compiled in, but the disabled path is the zero-cost
#     path.
hw_off=$("${CLI[@]}" run --workload mp3d --refs 4000 --procs 2 --json --hw-prefetch stride:0)
if [[ "$plain" != "$hw_off" ]]; then
    echo "FAIL: run --json output changed with --hw-prefetch stride:0" >&2
    diff <(echo "$plain") <(echo "$hw_off") >&2 || true
    exit 1
fi
echo "run --json byte-identical with a degree-0 hardware prefetcher"
# 2. profile --json: the timeline must tile the run — summed per-window
#    bus_busy equals the final report's busy_cycles.
profile_json=$("${CLI[@]}" profile mp3d --strategy pws --refs 4000 --procs 2 \
    --sample-interval 1000 --json)
total=$(grep -o '"busy_cycles":[0-9]*' <<<"$profile_json" | head -1 | cut -d: -f2)
summed=$(grep -o '"bus_busy":[0-9]*' <<<"$profile_json" | cut -d: -f2 | awk '{s += $1} END {print s}')
if [[ "$total" != "$summed" ]]; then
    echo "FAIL: profile timeline bus_busy sum $summed != report busy_cycles $total" >&2
    exit 1
fi
echo "profile timeline tiles the run (bus_busy sum == busy_cycles == $total)"
# 3. JSONL trace: every line is a {"t":...} object in an allowed category.
events=$(mktemp -t charlie-ci-events.XXXXXX)
"${CLI[@]}" run --workload water --refs 2000 --procs 2 \
    --trace-out "$events" --trace-cats bus,prefetch >/dev/null
if [[ ! -s "$events" ]]; then
    echo "FAIL: --trace-out wrote no events" >&2
    exit 1
fi
if grep -vq '^{"t":[0-9]*,"cat":"\(bus\|prefetch\)","ev":"[a-z_]*",' "$events"; then
    echo "FAIL: malformed or mis-categorized JSONL trace line:" >&2
    grep -v '^{"t":[0-9]*,"cat":"\(bus\|prefetch\)","ev":"[a-z_]*",' "$events" | head -3 >&2
    exit 1
fi
echo "JSONL trace schema valid ($(wc -l <"$events") events)"
rm -f "$events"

echo "== full-grid differential: degree-0 hardware prefetcher =="
# The authoritative statement of the zero-cost disabled path: regenerating
# the entire paper grid with an online prefetcher configured at degree 0
# must reproduce experiments_output.txt byte-for-byte.
grid=$(mktemp -t charlie-ci-grid.XXXXXX)
CHARLIE_HW_PREFETCH=stride:0 cargo run -q --release -p charlie-bench \
    --bin all_experiments >"$grid" 2>/dev/null
if ! cmp -s experiments_output.txt "$grid"; then
    echo "FAIL: full grid with a degree-0 hardware prefetcher differs from" >&2
    echo "      experiments_output.txt" >&2
    diff experiments_output.txt "$grid" | head -20 >&2 || true
    exit 1
fi
rm -f "$grid"
echo "full grid byte-identical to experiments_output.txt with hw prefetch at degree 0"

echo "== sampled simulation: calibration gate + exact-path identity =="
# Two-sided gate on the sampled-simulation subsystem (DESIGN.md §17).
# First: the measured estimation error on the quick calibration grid must
# stay inside a CI tolerance. 160k refs/proc is ~5x smaller than the scale
# the defaults are tuned for, so the gate is 10% — loose enough for the
# extra sampling variance at this size, tight enough to catch estimator
# regressions (the period-32 phase-aliasing bug measured 75% here).
"${CLI[@]}" calibrate --grid quick --refs 160000 --jobs 8 --tolerance 10
# Second: with the sampling code in the tree but --sample-mode absent, the
# exact path must still reproduce the golden grid byte-for-byte.
grid=$(mktemp -t charlie-ci-sampled.XXXXXX)
cargo run -q --release -p charlie-bench --bin all_experiments >"$grid" 2>/dev/null
if ! cmp -s experiments_output.txt "$grid"; then
    echo "FAIL: exact path (sampling off) no longer reproduces" >&2
    echo "      experiments_output.txt" >&2
    diff experiments_output.txt "$grid" | head -20 >&2 || true
    exit 1
fi
rm -f "$grid"
echo "calibration inside 10% and exact path byte-identical with sampling off"

echo "== chaos drill: crash-point matrix + live fault plans =="
# Truncates the checkpoint journal at interior offsets and line boundaries,
# arms every FaultKind against a live sweep, and crashes a bench snapshot
# mid-write; every recovery path must render byte-identical output
# (DESIGN.md §14). Loud stderr warnings here are the recovery paths firing.
"${CLI[@]}" chaos --workload water --refs 1200 --procs 2 --jobs 4 --points 6
echo "chaos drill passed (byte-identical under every injected fault)"

echo "== serve: SIGKILL-and-resume, memo cache, shed, chaos journal =="
# The always-on daemon (DESIGN.md §16): a SIGKILL'd campaign resumes
# exactly-once per cell from its journal, a repeated sweep is served
# entirely from the memo cache, a saturated queue sheds with a retry hint,
# and an injected journal fault degrades durability without corrupting
# resumed output.
BIN=target/release/charlie
serve_state=$(mktemp -d -t charlie-ci-serve.XXXXXX)
serve_log="$serve_state/daemon.log"
serve_pid=""
serve_addr=""
start_daemon() {  # start_daemon <state-dir> [extra serve flags...]
    local dir=$1
    shift
    "$BIN" serve --addr 127.0.0.1:0 --state-dir "$dir" "$@" \
        >"$serve_log" 2>"$serve_log.err" &
    serve_pid=$!
    serve_addr=""
    for _ in $(seq 1 200); do
        serve_addr=$(sed -n 's/^listening on //p' "$serve_log" | head -1)
        [[ -n "$serve_addr" ]] && return 0
        sleep 0.1
    done
    echo "FAIL: serve daemon did not start" >&2
    cat "$serve_log.err" >&2 || true
    exit 1
}
stat_field() {  # stat_field <name> <stats-json>
    grep -o "\"$1\":[0-9]*" <<<"$2" | head -1 | cut -d: -f2
}

# 1. SIGKILL mid-campaign, restart, resubmit: byte-identical to the
#    checked-in full grid, with journaled cells restored not re-simulated.
start_daemon "$serve_state"
"$BIN" submit --addr "$serve_addr" --grid paper >"$serve_state/first.out" 2>/dev/null &
submitter=$!
for _ in $(seq 1 3000); do
    lines=$(cat "$serve_state"/*.ckpt 2>/dev/null | wc -l) || true
    [[ "$lines" -ge 4 ]] && break
    sleep 0.1
done
kill -KILL "$serve_pid" 2>/dev/null
if wait "$submitter" 2>/dev/null; then
    echo "FAIL: submit reported success although its daemon was SIGKILLed" >&2
    exit 1
fi
start_daemon "$serve_state"
"$BIN" submit --addr "$serve_addr" --grid paper >"$serve_state/resumed.out" \
    2>"$serve_state/resumed.err"
if ! cmp -s experiments_output.txt "$serve_state/resumed.out"; then
    echo "FAIL: resumed daemon campaign differs from experiments_output.txt" >&2
    diff experiments_output.txt "$serve_state/resumed.out" | head -20 >&2 || true
    exit 1
fi
stats=$("$BIN" serve --stats --addr "$serve_addr")
if [[ "$(stat_field restored "$stats")" -lt 3 ]]; then
    echo "FAIL: restart restored $(stat_field restored "$stats") cells (expected >=3): $stats" >&2
    exit 1
fi
echo "SIGKILL'd campaign resumed byte-identical ($(stat_field restored "$stats") cells restored)"

# 2. Same sweep again: 100% memo-cache hits, zero re-simulated cells.
executed_before=$(stat_field executed "$stats")
misses_before=$(stat_field misses "$stats")
hits_before=$(stat_field hits "$stats")
"$BIN" submit --addr "$serve_addr" --grid paper >"$serve_state/cached.out" 2>/dev/null
if ! cmp -s experiments_output.txt "$serve_state/cached.out"; then
    echo "FAIL: cached daemon campaign differs from experiments_output.txt" >&2
    exit 1
fi
stats=$("$BIN" serve --stats --addr "$serve_addr")
if [[ "$(stat_field executed "$stats")" -ne "$executed_before" \
   || "$(stat_field misses "$stats")" -ne "$misses_before" \
   || "$(stat_field hits "$stats")" -le "$hits_before" ]]; then
    echo "FAIL: repeated sweep was not served from the memo cache: $stats" >&2
    exit 1
fi
echo "repeated sweep served 100% from cache (0 cells re-simulated)"
"$BIN" serve --shutdown --addr "$serve_addr" >/dev/null
wait "$serve_pid"

# 3. Admission control: a full queue sheds with a structured retry hint.
shed_state=$(mktemp -d -t charlie-ci-shed.XXXXXX)
start_daemon "$shed_state" --queue 1 --jobs 1
"$BIN" submit --addr "$serve_addr" --grid paper >/dev/null 2>&1 &
occupant=$!
for _ in $(seq 1 100); do
    "$BIN" serve --stats --addr "$serve_addr" | grep -q '"active":1' && break
    sleep 0.1
done
if "$BIN" submit --addr "$serve_addr" --workload water \
    >"$serve_state/shed.out" 2>&1; then
    echo "FAIL: submit to a saturated single-slot daemon did not shed" >&2
    exit 1
fi
if ! grep -qi "saturated" "$serve_state/shed.out"; then
    echo "FAIL: shed reply lacks the saturation hint:" >&2
    cat "$serve_state/shed.out" >&2
    exit 1
fi
kill -KILL "$serve_pid" 2>/dev/null
wait "$occupant" 2>/dev/null || true
echo "saturated daemon sheds with a retry hint"

# 4. Chaos: a torn write in the daemon's journal mid-campaign must not
#    corrupt results — the live campaign completes, and after a SIGKILL
#    the CRC framing rejects the torn tail and the resumed campaign is
#    still byte-identical.
chaos_state=$(mktemp -d -t charlie-ci-servechaos.XXXXXX)
serve_ref=$("$BIN" sweep --workload water --refs 20000 --procs 4 --json)
export CHARLIE_CHAOS=journal:torn@400
start_daemon "$chaos_state"
unset CHARLIE_CHAOS
"$BIN" submit --addr "$serve_addr" --workload water --refs 20000 --procs 4 --json \
    >"$serve_state/chaos1.out" 2>/dev/null
if [[ "$serve_ref" != "$(cat "$serve_state/chaos1.out")" ]]; then
    echo "FAIL: daemon output diverged under an injected torn journal write" >&2
    diff <(echo "$serve_ref") "$serve_state/chaos1.out" >&2 || true
    exit 1
fi
kill -KILL "$serve_pid" 2>/dev/null
start_daemon "$chaos_state"
"$BIN" submit --addr "$serve_addr" --workload water --refs 20000 --procs 4 --json \
    >"$serve_state/chaos2.out" 2>/dev/null
if [[ "$serve_ref" != "$(cat "$serve_state/chaos2.out")" ]]; then
    echo "FAIL: resume from a torn daemon journal diverged" >&2
    diff <(echo "$serve_ref") "$serve_state/chaos2.out" >&2 || true
    exit 1
fi
"$BIN" serve --shutdown --addr "$serve_addr" >/dev/null
wait "$serve_pid"
rm -rf "$serve_state" "$shed_state" "$chaos_state"
echo "daemon survives torn journal writes with byte-identical resumed output"

echo "== fleet kill-matrix: 3 workers, SIGKILL mid-campaign, lease chaos =="
# The lease-sharded fleet (DESIGN.md §19): a 3-worker paper-grid campaign
# with one worker SIGKILL'd mid-run must still complete byte-identical to
# the checked-in full grid, with the victim's stranded cells reclaimed by
# the survivors under a higher generation. The same fleet must also
# survive a torn lease-record write injected at the appender.
fleet_state=$(mktemp -d -t charlie-ci-fleet.XXXXXX)
"$BIN" submit --grid paper --workers 3 --state-dir "$fleet_state" \
    --lease-ms 1500 >"$fleet_state/fleet.out" 2>"$fleet_state/fleet.err" &
fleet_sub=$!
# Pick a victim only once its health file shows an unpublished claim in
# flight — SIGKILL then is guaranteed to strand a live lease.
victim=""
for _ in $(seq 1 1200); do
    for hf in "$fleet_state"/workers/*.json; do
        [[ -e "$hf" ]] || continue
        claimed=$(grep -o '"claimed":[0-9]*' "$hf" | cut -d: -f2) || true
        completed=$(grep -o '"completed":[0-9]*' "$hf" | cut -d: -f2) || true
        if [[ -n "$claimed" && "$claimed" -gt "${completed:-0}" ]]; then
            victim=$(grep -o '"pid":[0-9]*' "$hf" | cut -d: -f2) || true
            break 2
        fi
    done
    sleep 0.1
done
if [[ -z "$victim" ]]; then
    echo "FAIL: no fleet worker ever reported an in-flight claim" >&2
    cat "$fleet_state/fleet.err" >&2 || true
    exit 1
fi
kill -KILL "$victim" 2>/dev/null || true
if ! wait "$fleet_sub"; then
    echo "FAIL: fleet campaign failed after one worker was SIGKILLed:" >&2
    cat "$fleet_state/fleet.err" >&2
    exit 1
fi
if ! cmp -s experiments_output.txt "$fleet_state/fleet.out"; then
    echo "FAIL: fleet campaign with a SIGKILL'd worker differs from" >&2
    echo "      experiments_output.txt" >&2
    diff experiments_output.txt "$fleet_state/fleet.out" | head -20 >&2 || true
    exit 1
fi
fleet_stats=$("$BIN" serve --stats --state-dir "$fleet_state")
reclaimed=$(grep -o '"reclaimed":[0-9]*' <<<"$fleet_stats" \
    | cut -d: -f2 | awk '{s += $1} END {print s}')
if [[ "${reclaimed:-0}" -lt 1 ]]; then
    echo "FAIL: survivors reclaimed no cells after the SIGKILL: $fleet_stats" >&2
    exit 1
fi
echo "3-worker fleet survived a SIGKILL byte-identical ($reclaimed cells reclaimed)"

# Torn lease-record write mid-campaign: the next appender seals the torn
# tail, CRC framing rejects the fragment, the failed worker dies and its
# cells are reclaimed — output still byte-identical.
chaos_fleet=$(mktemp -d -t charlie-ci-fleetchaos.XXXXXX)
if ! CHARLIE_CHAOS=lease:torn@900 "$BIN" submit --grid paper --workers 3 \
    --state-dir "$chaos_fleet" --lease-ms 1500 >"$chaos_fleet/fleet.out" \
    2>"$chaos_fleet/fleet.err"; then
    echo "FAIL: fleet campaign failed under torn lease-write chaos:" >&2
    cat "$chaos_fleet/fleet.err" >&2
    exit 1
fi
if ! cmp -s experiments_output.txt "$chaos_fleet/fleet.out"; then
    echo "FAIL: fleet campaign under lease chaos differs from" >&2
    echo "      experiments_output.txt" >&2
    diff experiments_output.txt "$chaos_fleet/fleet.out" | head -20 >&2 || true
    exit 1
fi
rm -rf "$fleet_state" "$chaos_fleet"
echo "fleet output byte-identical under torn lease-record injection"

echo "== OK =="
