#!/usr/bin/env bash
# Tier-1 gate: build, full test suite, then an end-to-end check that the
# parallel experiment engine is observably equivalent to serial execution
# (byte-identical CLI output on a tiny grid at --jobs 1 vs --jobs 8).
set -euo pipefail
cd "$(dirname "$0")"

echo "== build =="
cargo build --release

echo "== tests =="
cargo test -q

echo "== serial-vs-parallel equivalence (tiny grid) =="
CLI=(cargo run -q --release -p charlie-cli --)
serial=$("${CLI[@]}" sweep --workload mp3d --refs 2000 --procs 2 --json --jobs 1)
parallel=$("${CLI[@]}" sweep --workload mp3d --refs 2000 --procs 2 --json --jobs 8)
if [[ "$serial" != "$parallel" ]]; then
    echo "FAIL: sweep output differs between --jobs 1 and --jobs 8" >&2
    diff <(echo "$serial") <(echo "$parallel") >&2 || true
    exit 1
fi
echo "sweep output byte-identical at --jobs 1 and --jobs 8"

echo "== coherence invariant checker (release, --check) =="
# Debug builds check unconditionally; this proves the opt-in release path.
"${CLI[@]}" run --workload pverify --strategy pws --refs 4000 --procs 4 --check >/dev/null
"${CLI[@]}" sweep --workload topopt --refs 2000 --procs 2 --json --check >/dev/null
echo "release runs pass with invariant checking enabled"

echo "== benches compile =="
cargo bench --no-run -q

echo "== quick-bench smoke vs checked-in baseline =="
# Fails if events/sec drops more than 20% below BENCH_charlie.json's
# quick_baseline run. Catches large regressions; the full grid slice
# (charlie bench, no --quick) is the authoritative number.
"${CLI[@]}" bench --quick --label ci_smoke --out "$(mktemp -t charlie-ci-bench.XXXXXX)" \
    --baseline BENCH_charlie.json

echo "== checkpoint kill-and-resume (SIGTERM mid-sweep) =="
journal=$(mktemp -t charlie-ci-journal.XXXXXX)
rm -f "$journal"
fresh=$("${CLI[@]}" sweep --workload water --refs 20000 --procs 4 --json --jobs 2)
"${CLI[@]}" sweep --workload water --refs 20000 --procs 4 --json --jobs 2 \
    --resume "$journal" >/dev/null 2>&1 &
victim=$!
sleep 1
kill -TERM "$victim" 2>/dev/null || true   # may already have finished
wait "$victim" 2>/dev/null || true
resumed=$("${CLI[@]}" sweep --workload water --refs 20000 --procs 4 --json --jobs 2 \
    --resume "$journal")
if [[ "$fresh" != "$resumed" ]]; then
    echo "FAIL: resumed sweep output differs from an uninterrupted run" >&2
    diff <(echo "$fresh") <(echo "$resumed") >&2 || true
    exit 1
fi
rm -f "$journal"
echo "resumed sweep output byte-identical to an uninterrupted run"

echo "== OK =="
