//! Integration tests for the post-paper extensions: victim buffers, the
//! write-update protocol, warm-up windows, trace serialization and EXCL-RMW,
//! each exercised on the full workload pipeline.

use charlie::cache::CacheGeometry;
use charlie::prefetch::{apply, Strategy};
use charlie::sim::{simulate, Protocol, SimConfig};
use charlie::trace::io::{read_trace, write_trace};
use charlie::workloads::{generate, Workload, WorkloadConfig};

fn wcfg(refs: usize) -> WorkloadConfig {
    WorkloadConfig { procs: 4, refs_per_proc: refs, seed: 99, ..WorkloadConfig::default() }
}

#[test]
fn generated_workloads_round_trip_through_the_text_format() {
    for w in [Workload::Topopt, Workload::Water] {
        let trace = generate(w, &wcfg(2_000));
        let mut buf = Vec::new();
        write_trace(&trace, &mut buf).expect("write succeeds");
        let back = read_trace(buf.as_slice()).expect("read succeeds");
        assert_eq!(back, trace, "{w}: byte-exact round trip");
        // And the deserialized trace still simulates identically.
        let cfg = SimConfig { num_procs: 4, ..SimConfig::default() };
        assert_eq!(simulate(&cfg, &back).unwrap(), simulate(&cfg, &trace).unwrap());
    }
}

#[test]
fn write_update_removes_all_invalidation_misses_on_every_workload() {
    for w in Workload::EXTENDED {
        let trace = generate(w, &wcfg(3_000));
        let wi = SimConfig::paper(4, 8);
        let r_wi = simulate(&wi, &trace).unwrap();
        // Both update-based protocols (Firefly's block-update and Dragon's
        // Sm-owner scheme) share the property: no copy is ever invalidated,
        // so coherence misses vanish entirely.
        for proto in [Protocol::WriteUpdate, Protocol::Dragon] {
            let wu = SimConfig { protocol: proto, ..wi };
            let r_wu = simulate(&wu, &trace).unwrap();
            assert_eq!(r_wu.miss.invalidation(), 0, "{w} {proto:?}");
            assert_eq!(r_wu.false_sharing_misses, 0, "{w} {proto:?}");
            // The work still happens: every traced access retires. (Exact
            // equality with Illinois is too strong on lock-bearing
            // workloads: lock hand-off spin reads are timing-dependent,
            // and protocol choice shifts timing.)
            assert!(r_wu.demand_accesses() >= trace.total_accesses() as u64, "{w} {proto:?}");
            assert!(
                r_wu.demand_accesses().abs_diff(r_wi.demand_accesses()) <= 4,
                "{w} {proto:?}: only spin-retry jitter may differ ({} vs {})",
                r_wu.demand_accesses(),
                r_wi.demand_accesses()
            );
        }
    }
}

/// Word broadcasts are address-slot transactions, not block transfers: on a
/// pure shared-store workload the bus-occupancy identity must account every
/// busy cycle as either a data transfer or an invalidation-slot broadcast.
#[test]
fn update_broadcasts_occupy_the_invalidation_slot_not_a_transfer() {
    use charlie::trace::{Addr, TraceBuilder};
    let procs = 4;
    let mut b = TraceBuilder::new(procs);
    for p in 0..procs {
        let mut pb = b.proc(p);
        // Warm every shared line into all caches, rendezvous, then store.
        for line in 0..8u64 {
            pb.read(Addr::new(0x9000 + line * 32));
        }
        pb.barrier(0);
        for pass in 0..6u64 {
            for line in 0..8u64 {
                pb.write(Addr::new(0x9000 + line * 32 + (pass % 8) * 4));
            }
        }
    }
    let trace = b.build();
    for proto in [Protocol::WriteUpdate, Protocol::Dragon] {
        let cfg = SimConfig {
            num_procs: procs,
            protocol: proto,
            check_invariants: true,
            ..SimConfig::default()
        };
        let r = simulate(&cfg, &trace).unwrap();
        assert!(r.bus.updates > 0, "{proto:?}: shared stores must broadcast");
        assert_eq!(r.bus.upgrades, 0, "{proto:?}: update protocols never invalidate");
        let transfers = r.bus.reads + r.bus.read_exclusives + r.bus.writebacks;
        let slots = r.bus.upgrades + r.bus.updates;
        assert_eq!(
            r.bus.busy_cycles,
            transfers * cfg.bus.transfer_cycles + slots * cfg.bus.invalidate_cycles,
            "{proto:?}: every busy cycle is a transfer or an address slot"
        );
    }
}

#[test]
fn victim_buffer_never_hurts_topopt() {
    let trace = generate(Workload::Topopt, &wcfg(6_000));
    let base = SimConfig::paper(4, 8);
    let with_victim = SimConfig { victim_entries: 4, ..base };
    let r0 = simulate(&base, &trace).unwrap();
    let r4 = simulate(&with_victim, &trace).unwrap();
    assert!(r4.victim_hits > 0, "conflict workload must hit the victim buffer");
    assert!(
        r4.cycles <= r0.cycles,
        "victim buffer must not slow Topopt ({} vs {})",
        r4.cycles,
        r0.cycles
    );
    assert!(r4.cpu_miss_rate() < r0.cpu_miss_rate());
}

#[test]
fn warmup_window_reduces_measured_cold_misses() {
    let trace = generate(Workload::Water, &wcfg(6_000));
    let base = SimConfig::paper(4, 8);
    let warm = SimConfig { warmup_accesses: 8_000, ..base };
    let r_cold = simulate(&base, &trace).unwrap();
    let r_warm = simulate(&warm, &trace).unwrap();
    assert_eq!(r_cold.cycles, r_warm.cycles, "execution is unaffected");
    assert!(
        r_warm.cpu_miss_rate() < r_cold.cpu_miss_rate(),
        "steady-state rate must drop below the cold-start rate ({:.4} vs {:.4})",
        r_warm.cpu_miss_rate(),
        r_cold.cpu_miss_rate()
    );
    assert!(r_warm.measured_from > 0);
}

#[test]
fn excl_rmw_saves_upgrades_without_costing_misses() {
    let trace = generate(Workload::Mp3d, &wcfg(6_000));
    let geometry = CacheGeometry::paper_default();
    let cfg = SimConfig::paper(4, 8);
    let excl = simulate(&cfg, &apply(Strategy::Excl, &trace, geometry)).unwrap();
    let rmw = simulate(&cfg, &apply(Strategy::ExclRmw, &trace, geometry)).unwrap();
    assert!(
        rmw.bus.upgrades < excl.bus.upgrades,
        "RMW detection must save upgrade transactions ({} vs {})",
        rmw.bus.upgrades,
        excl.bus.upgrades
    );
    assert!(
        rmw.adjusted_cpu_miss_rate() <= 1.05 * excl.adjusted_cpu_miss_rate(),
        "at no real miss cost"
    );
}

#[test]
fn fill_latency_tracks_bus_speed() {
    let trace = generate(Workload::Mp3d, &wcfg(4_000));
    let fast = simulate(&SimConfig::paper(4, 4), &trace).unwrap();
    let slow = simulate(&SimConfig::paper(4, 32), &trace).unwrap();
    assert!(fast.fill_latency.count() > 0);
    assert!(
        slow.fill_latency.mean() > fast.fill_latency.mean(),
        "slower transfers must raise the mean fill latency ({:.1} vs {:.1})",
        slow.fill_latency.mean(),
        fast.fill_latency.mean()
    );
    assert!(fast.fill_latency.min().unwrap() >= 100, "nothing beats the unloaded latency");
}

#[test]
fn prefetch_demand_priority_changes_arbitration_not_correctness() {
    let trace = generate(Workload::Pverify, &wcfg(4_000));
    let geometry = CacheGeometry::paper_default();
    let prepared = apply(Strategy::Pws, &trace, geometry);
    let base = SimConfig::paper(4, 16);
    let flat = SimConfig { prefetch_demand_priority: true, ..base };
    let r_base = simulate(&base, &prepared).unwrap();
    let r_flat = simulate(&flat, &prepared).unwrap();
    // Same work retires either way; only timing differs. Demand accesses
    // include lock-retry reads synthesized by the sync model, and spin
    // counts shift with bus timing, so the totals may drift by a handful
    // of accesses — but not more.
    let (a, b) = (r_base.demand_accesses(), r_flat.demand_accesses());
    assert!(a.abs_diff(b) * 1000 <= a, "demand accesses drifted: {a} vs {b}");
    assert_eq!(r_base.prefetch.executed, r_flat.prefetch.executed);
    assert!(r_flat.bus.prefetch_grants == 0, "flat arbitration has no prefetch class");
    assert!(r_base.bus.prefetch_grants > 0);
}
