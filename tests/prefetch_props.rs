//! Property tests over the prefetch-insertion pipeline.

use charlie::cache::CacheGeometry;
use charlie::prefetch::{apply, Strategy};
use charlie::trace::{Addr, Trace, TraceBuilder, TraceEvent};
use proptest::prelude::*;
use proptest::strategy::Strategy as _;

fn arb_raw_trace() -> impl proptest::strategy::Strategy<Value = Trace> {
    let per_proc = proptest::collection::vec(
        // (work, write, line, word, sync-point)
        (1u32..50, any::<bool>(), 0u64..512, 0u64..8, any::<bool>()),
        5..80,
    );
    proptest::collection::vec(per_proc, 2..=2).prop_map(|streams| {
        let mut b = TraceBuilder::new(streams.len());
        for (p, stream) in streams.iter().enumerate() {
            let mut pb = b.proc(p);
            let mut next_lock_free = true;
            for &(work, write, line, word, sync) in stream {
                pb.work(work);
                if sync {
                    if next_lock_free {
                        pb.lock(3);
                    } else {
                        pb.unlock(3);
                    }
                    next_lock_free = !next_lock_free;
                }
                let addr = Addr::new(0x4000 + line * 32 + word * 4);
                if write {
                    pb.write(addr);
                } else {
                    pb.read(addr);
                }
            }
            if !next_lock_free {
                pb.unlock(3);
            }
        }
        b.build()
    })
}

fn demand_sequence(t: &Trace, p: usize) -> Vec<(u64, bool)> {
    t.proc(p).accesses().map(|a| (a.addr.raw(), a.kind.is_write())).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Inserting prefetches never reorders, adds or drops demand accesses.
    #[test]
    fn demand_stream_preserved(trace in arb_raw_trace(),
                               strategy in prop_oneof![
                                   Just(Strategy::Pref), Just(Strategy::Excl),
                                   Just(Strategy::Lpd), Just(Strategy::Pws)])
    {
        let out = apply(strategy, &trace, CacheGeometry::paper_default());
        for p in 0..trace.num_procs() {
            prop_assert_eq!(demand_sequence(&trace, p), demand_sequence(&out, p));
        }
        prop_assert!(out.validate().is_ok());
    }

    /// Every prefetch targets a line some later demand access touches — the
    /// oracle "never prefetches data that is not used".
    #[test]
    fn prefetches_are_always_used_later(trace in arb_raw_trace()) {
        let out = apply(Strategy::Pref, &trace, CacheGeometry::paper_default());
        for p in 0..out.num_procs() {
            let ev = out.proc(p).events();
            for (i, e) in ev.iter().enumerate() {
                if let TraceEvent::Prefetch { addr, .. } = e {
                    let line = addr.line(32);
                    let used = ev[i + 1..].iter().any(|later| {
                        later.as_access().is_some_and(|a| a.addr.line(32) == line)
                    });
                    prop_assert!(used, "P{p}: prefetch of {addr} never used");
                }
            }
        }
    }

    /// The number of prefetches PREF inserts equals the stream's
    /// uniprocessor miss count (the oracle is exact).
    #[test]
    fn pref_count_equals_filter_misses(trace in arb_raw_trace()) {
        let geometry = CacheGeometry::paper_default();
        let out = apply(Strategy::Pref, &trace, geometry);
        for p in 0..trace.num_procs() {
            let mut filter = charlie::cache::FilterCache::new(geometry);
            let misses = trace
                .proc(p)
                .accesses()
                .filter(|a| !filter.access(a.addr))
                .count();
            prop_assert_eq!(out.proc(p).num_prefetches(), misses);
        }
    }

    /// EXCL only flips prefetch modes; counts and placement stay identical.
    #[test]
    fn excl_differs_from_pref_only_in_mode(trace in arb_raw_trace()) {
        let geometry = CacheGeometry::paper_default();
        let pref = apply(Strategy::Pref, &trace, geometry);
        let excl = apply(Strategy::Excl, &trace, geometry);
        for p in 0..trace.num_procs() {
            let a = pref.proc(p).events();
            let b = excl.proc(p).events();
            prop_assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b) {
                match (x, y) {
                    (
                        TraceEvent::Prefetch { addr: ax, .. },
                        TraceEvent::Prefetch { addr: ay, .. },
                    ) => prop_assert_eq!(ax, ay),
                    _ => prop_assert_eq!(x, y),
                }
            }
        }
    }

    /// PWS is a superset of PREF on every processor.
    #[test]
    fn pws_superset_of_pref(trace in arb_raw_trace()) {
        let geometry = CacheGeometry::paper_default();
        let pref = apply(Strategy::Pref, &trace, geometry);
        let pws = apply(Strategy::Pws, &trace, geometry);
        for p in 0..trace.num_procs() {
            prop_assert!(pws.proc(p).num_prefetches() >= pref.proc(p).num_prefetches());
        }
    }

    /// No prefetch is hoisted across a synchronization event.
    #[test]
    fn prefetches_respect_sync_boundaries(trace in arb_raw_trace()) {
        let out = apply(Strategy::Lpd, &trace, CacheGeometry::paper_default());
        for p in 0..out.num_procs() {
            let ev = out.proc(p).events();
            // For every prefetch, the matching demand access (first later
            // access to the line) must be reachable without an intervening
            // sync *after* which the access sits... i.e. no sync strictly
            // between prefetch and its target access's original position
            // earlier than the prefetch insertion point. Equivalent check:
            // between the prefetch and the first later same-line access,
            // there is no sync event.
            for (i, e) in ev.iter().enumerate() {
                if let TraceEvent::Prefetch { addr, .. } = e {
                    let line = addr.line(32);
                    for later in &ev[i + 1..] {
                        if later.as_access().is_some_and(|a| a.addr.line(32) == line) {
                            break;
                        }
                        prop_assert!(
                            !later.is_sync(),
                            "P{p}: sync between prefetch of {addr} and its use"
                        );
                    }
                }
            }
        }
    }
}
