//! Whole-pipeline determinism: identical configurations must reproduce
//! bit-identical reports (the experiments are regenerable by construction).

use charlie::{Experiment, Lab, RunConfig, Strategy, Workload};

#[test]
fn identical_labs_produce_identical_reports() {
    let cfg = RunConfig { procs: 4, refs_per_proc: 2_500, seed: 42, ..RunConfig::default() };
    let exp = Experiment::paper(Workload::Pverify, Strategy::Pws, 16);
    let a = Lab::new(cfg).run(exp).clone();
    let b = Lab::new(cfg).run(exp).clone();
    assert_eq!(a, b);
}

#[test]
fn seed_changes_results() {
    let exp = Experiment::paper(Workload::Topopt, Strategy::NoPrefetch, 8);
    let a = Lab::new(RunConfig { procs: 4, refs_per_proc: 2_500, seed: 1, ..RunConfig::default() }).run(exp).clone();
    let b = Lab::new(RunConfig { procs: 4, refs_per_proc: 2_500, seed: 2, ..RunConfig::default() }).run(exp).clone();
    assert_ne!(a.report, b.report);
}

#[test]
fn trace_size_scales_cycles_roughly_linearly() {
    let exp = Experiment::paper(Workload::Water, Strategy::NoPrefetch, 8);
    let small = Lab::new(RunConfig { procs: 4, refs_per_proc: 8_000, seed: 5, ..RunConfig::default() }).run(exp).clone();
    let large = Lab::new(RunConfig { procs: 4, refs_per_proc: 32_000, seed: 5, ..RunConfig::default() }).run(exp).clone();
    let ratio = large.report.cycles as f64 / small.report.cycles as f64;
    // Cold-start misses make small traces disproportionately slow (the whole
    // footprint misses once), so the band is generous; it still catches
    // quadratic blow-ups in the simulator.
    assert!(
        (2.0..6.5).contains(&ratio),
        "4x the references should be ~4x the cycles, got {ratio:.2}"
    );
}

#[test]
fn miss_rates_stable_across_trace_sizes() {
    // The reported rates must be properties of the workload, not the trace
    // length (otherwise shrinking the paper's 2M references would be unsound).
    let exp = Experiment::paper(Workload::Mp3d, Strategy::NoPrefetch, 8);
    let small = Lab::new(RunConfig { procs: 4, refs_per_proc: 32_000, seed: 5, ..RunConfig::default() }).run(exp).clone();
    let large = Lab::new(RunConfig { procs: 4, refs_per_proc: 64_000, seed: 5, ..RunConfig::default() }).run(exp).clone();
    let (a, b) = (small.report.cpu_miss_rate(), large.report.cpu_miss_rate());
    assert!(
        (a - b).abs() < 0.25 * a.max(b),
        "CPU miss rate should stabilize: {a:.4} vs {b:.4}"
    );
}
