//! Workload-generator characterization across seeds: the qualitative
//! profiles that make each synthetic application "be" its paper counterpart
//! must hold for any seed, not just the calibration seed.

use charlie::trace::TraceStats;
use charlie::workloads::{generate, Layout, Workload, WorkloadConfig};

fn cfg(seed: u64) -> WorkloadConfig {
    WorkloadConfig { procs: 8, refs_per_proc: 5_000, seed, ..WorkloadConfig::default() }
}

#[test]
fn structural_invariants_hold_for_any_seed() {
    for seed in [1u64, 7, 42, 0xDEAD, 12345] {
        for w in Workload::ALL {
            let trace = generate(w, &cfg(seed));
            assert!(trace.validate().is_ok(), "{w} seed {seed}");
            let stats = TraceStats::gather(&trace, 32);
            assert!(
                stats.footprint_bytes() > 32 * 1024,
                "{w} seed {seed}: data set must exceed the cache"
            );
            assert!(
                stats.write_shared_lines > 0,
                "{w} seed {seed}: every workload shares something"
            );
            for (p, s) in trace.iter() {
                assert!(s.num_accesses() >= 5_000, "{w} seed {seed} {p}");
            }
        }
    }
}

#[test]
fn sharing_intensity_ordering_is_seed_independent() {
    for seed in [3u64, 99, 2026] {
        let shared_fraction = |w: Workload| {
            TraceStats::gather(&generate(w, &cfg(seed)), 32).write_shared_fraction()
        };
        let water = shared_fraction(Workload::Water);
        let pverify = shared_fraction(Workload::Pverify);
        let topopt = shared_fraction(Workload::Topopt);
        assert!(
            pverify > water,
            "seed {seed}: Pverify ({pverify:.3}) must share more than Water ({water:.3})"
        );
        assert!(
            topopt > water,
            "seed {seed}: Topopt ({topopt:.3}) must share more than Water ({water:.3})"
        );
    }
}

#[test]
fn miss_rate_ordering_is_seed_independent() {
    // Exclude the cold-start transient (every workload's whole footprint
    // misses once) with the warm-up window, so the steady-state profiles
    // are what gets compared.
    use charlie::sim::{simulate, SimConfig};
    for seed in [11u64, 77] {
        let mr = |w: Workload| {
            let wcfg = WorkloadConfig {
                procs: 4,
                refs_per_proc: 16_000,
                seed,
                ..WorkloadConfig::default()
            };
            let sim_cfg = SimConfig {
                warmup_accesses: 24_000,
                ..SimConfig::paper(4, 8)
            };
            simulate(&sim_cfg, &generate(w, &wcfg)).unwrap().cpu_miss_rate()
        };
        let water = mr(Workload::Water);
        let mp3d = mr(Workload::Mp3d);
        let pverify = mr(Workload::Pverify);
        assert!(
            mp3d > 2.0 * water,
            "seed {seed}: Mp3d ({mp3d:.4}) must miss far more than Water ({water:.4})"
        );
        assert!(
            pverify > 1.5 * water,
            "seed {seed}: Pverify ({pverify:.4}) well above Water ({water:.4})"
        );
    }
}

#[test]
fn padded_layout_shrinks_write_sharing_for_every_workload() {
    for w in Workload::ALL {
        let inter = TraceStats::gather(&generate(w, &cfg(5)), 32);
        let padded = TraceStats::gather(
            &generate(w, &WorkloadConfig { layout: Layout::Padded, ..cfg(5) }),
            32,
        );
        assert!(
            padded.write_shared_lines <= inter.write_shared_lines,
            "{w}: padding must not create write sharing ({} vs {})",
            padded.write_shared_lines,
            inter.write_shared_lines
        );
    }
}

#[test]
fn different_procs_counts_generate_consistent_traces() {
    for procs in [1usize, 2, 5, 16] {
        let wcfg = WorkloadConfig { procs, refs_per_proc: 1_500, seed: 9, ..WorkloadConfig::default() };
        let t = generate(Workload::Pverify, &wcfg);
        assert_eq!(t.num_procs(), procs);
        assert!(t.validate().is_ok(), "procs={procs}");
    }
}
