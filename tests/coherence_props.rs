//! Property tests over the simulator: random multiprocessor access patterns
//! must never violate machine invariants, and runs must be deterministic.

use charlie::sim::{simulate, Protocol, SimConfig, SimReport};
use charlie::trace::{Addr, Trace, TraceBuilder};
use proptest::prelude::*;

/// A compact random program: per processor, a list of (slot, write, line,
/// word) accesses over a small shared address pool, with barriers at fixed
/// slots so interleavings genuinely overlap.
fn arb_trace(procs: usize) -> impl proptest::strategy::Strategy<Value = Trace> {
    let per_proc = proptest::collection::vec(
        (0u8..40, any::<bool>(), 0u64..24, 0u64..8),
        10..60,
    );
    proptest::collection::vec(per_proc, procs..=procs).prop_map(move |streams| {
        let mut b = TraceBuilder::new(streams.len());
        for (p, stream) in streams.iter().enumerate() {
            let mut pb = b.proc(p);
            let mut barrier = 0;
            for &(slot, write, line, word) in stream {
                // A third of the slots emit a little work first.
                if slot % 3 == 0 {
                    pb.work(u32::from(slot) + 1);
                }
                let addr = Addr::new(0x1000 + line * 32 + word * 4);
                if write {
                    pb.write(addr);
                } else {
                    pb.read(addr);
                }
            }
            // One common barrier at the end keeps programs overlapping.
            pb.barrier(barrier);
            barrier += 1;
            let _ = barrier;
        }
        b.build()
    })
}

fn check_invariants(r: &SimReport, label: &str) {
    assert!(r.bus.busy_cycles <= r.cycles, "{label}: bus busy > cycles");
    assert!(r.false_sharing_misses <= r.miss.invalidation(), "{label}");
    assert!(r.miss.cpu_misses() <= r.demand_accesses(), "{label}");
    assert_eq!(
        r.bus.reads + r.bus.read_exclusives,
        r.miss.adjusted_cpu_misses() + r.prefetch.fills + r.demand_refills,
        "{label}: fill transactions must equal fill-causing misses"
    );
    for (i, p) in r.per_proc.iter().enumerate() {
        assert!(p.finish_time <= r.cycles, "{label} P{i}");
        assert!(p.busy_cycles + p.stall_cycles <= p.finish_time + 1, "{label} P{i}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_programs_preserve_invariants(trace in arb_trace(3)) {
        let cfg = SimConfig { num_procs: 3, ..SimConfig::default() };
        let r = simulate(&cfg, &trace).expect("valid trace simulates");
        check_invariants(&r, "random");
        // Every access retires exactly once (plus sync-generated accesses).
        let trace_accesses: u64 = trace.total_accesses() as u64;
        prop_assert!(r.demand_accesses() >= trace_accesses);
    }

    #[test]
    fn simulation_is_deterministic(trace in arb_trace(4)) {
        let cfg = SimConfig { num_procs: 4, ..SimConfig::default() };
        let a = simulate(&cfg, &trace).unwrap();
        let b = simulate(&cfg, &trace).unwrap();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn faster_bus_never_slows_execution(trace in arb_trace(3)) {
        let fast = SimConfig::paper(3, 4);
        let slow = SimConfig::paper(3, 32);
        let rf = simulate(&fast, &trace).unwrap();
        let rs = simulate(&slow, &trace).unwrap();
        // Same trace, same interleaving constraints: a strictly slower
        // contended resource cannot shorten the critical path.
        prop_assert!(rf.cycles <= rs.cycles,
            "fast {} > slow {}", rf.cycles, rs.cycles);
    }

    /// Coherence protocols change *when* the bus is used, never *what* the
    /// program computes: on random contended interleavings every protocol
    /// must retire the same demand accesses, keep the per-protocol state
    /// invariants green, and stay deterministic.
    #[test]
    fn protocols_agree_on_functional_behavior(trace in arb_trace(3)) {
        let base = SimConfig {
            num_procs: 3,
            check_invariants: true,
            ..SimConfig::default()
        };
        let reference = simulate(&base, &trace).expect("illinois simulates");
        for proto in Protocol::ALL {
            let cfg = SimConfig { protocol: proto, ..base };
            let r = simulate(&cfg, &trace).expect("every protocol simulates");
            prop_assert_eq!(r.reads, reference.reads, "{:?}", proto);
            prop_assert_eq!(r.writes, reference.writes, "{:?}", proto);
            prop_assert_eq!(
                r.demand_accesses(), reference.demand_accesses(), "{:?}", proto
            );
            check_invariants(&r, proto.key_name());
            // Update-based protocols never invalidate a remote copy, so a
            // line loaded once can never miss again for coherence reasons.
            if proto.is_update_based() {
                prop_assert_eq!(r.miss.invalidation(), 0, "{:?}", proto);
                prop_assert_eq!(r.false_sharing_misses, 0, "{:?}", proto);
            }
            prop_assert_eq!(&r, &simulate(&cfg, &trace).unwrap(), "{:?}", proto);
        }
    }

    #[test]
    fn single_proc_never_sees_invalidations(ops in proptest::collection::vec(
        (any::<bool>(), 0u64..64, 0u64..8), 1..200))
    {
        let mut b = TraceBuilder::new(1);
        {
            let mut p = b.proc(0);
            for &(write, line, word) in &ops {
                let addr = Addr::new(0x2000 + line * 32 + word * 4);
                if write { p.write(addr); } else { p.read(addr); }
            }
        }
        let cfg = SimConfig { num_procs: 1, ..SimConfig::default() };
        let r = simulate(&cfg, &b.build()).unwrap();
        prop_assert_eq!(r.miss.invalidation(), 0);
        prop_assert_eq!(r.false_sharing_misses, 0);
        prop_assert_eq!(r.upgrades, 0, "Illinois: no other caches, no upgrades");
        check_invariants(&r, "uni");
    }
}
