//! Property tests for the measurement window and the observability layer.
//!
//! The warm-up window bug this PR fixes (bus busy cycles granted before
//! `measured_from` leaking into the measured window, and the final grant's
//! overhang past the last retire) was invisible to every fixed-input test:
//! under saturation with uniform transfer occupancy the two errors cancel
//! exactly. Random workload configurations are what caught it, so they are
//! what guards it.

use charlie::prefetch::{apply, Strategy};
use charlie::sim::{simulate, simulate_observed, Observability, SimConfig, SimReport};
use charlie::workloads::{generate, Layout, Workload, WorkloadConfig};
use charlie::CacheGeometry;
use proptest::prelude::*;
use proptest::strategy::Strategy as _;

/// A random grid cell: workload, strategy, machine shape and warm-up split.
#[derive(Clone, Debug)]
struct Cell {
    workload: Workload,
    strategy: Strategy,
    layout: Layout,
    procs: usize,
    refs_per_proc: usize,
    seed: u64,
    transfer: u64,
    /// Fraction (in eighths) of the total accesses excluded as warm-up.
    warmup_eighths: u64,
}

fn arb_cell() -> impl proptest::strategy::Strategy<Value = Cell> {
    (
        (0usize..Workload::ALL.len(), 0usize..Strategy::ALL.len(), any::<bool>()),
        (1usize..=4, 150usize..500, 0u64..0x1_0000_0000),
        (4u64..=32, 0u64..=6),
    )
        .prop_map(
            |((w, s, padded), (procs, refs_per_proc, seed), (transfer, warmup_eighths))| Cell {
                workload: Workload::ALL[w],
                strategy: Strategy::ALL[s],
                layout: if padded { Layout::Padded } else { Layout::Interleaved },
                procs,
                refs_per_proc,
                seed,
                transfer,
                warmup_eighths,
            },
        )
}

fn run_cell(cell: &Cell, warmed: bool) -> (SimConfig, charlie::trace::Trace) {
    let raw = generate(
        cell.workload,
        &WorkloadConfig {
            procs: cell.procs,
            refs_per_proc: cell.refs_per_proc,
            seed: cell.seed,
            layout: cell.layout,
        },
    );
    let prepared = apply(cell.strategy, &raw, CacheGeometry::paper_default());
    let total = prepared.total_accesses() as u64;
    let warmup_accesses = if warmed { total * cell.warmup_eighths / 8 } else { 0 };
    let cfg = SimConfig {
        warmup_accesses,
        ..SimConfig::paper(cell.procs, cell.transfer)
    };
    (cfg, prepared)
}

/// Every rate a report exposes must be a probability, windowed or not.
fn assert_rates_in_unit_interval(r: &SimReport, label: &str) {
    let rates = [
        ("total_miss_rate", r.total_miss_rate()),
        ("cpu_miss_rate", r.cpu_miss_rate()),
        ("adjusted_cpu_miss_rate", r.adjusted_cpu_miss_rate()),
        ("invalidation_miss_rate", r.invalidation_miss_rate()),
        ("false_sharing_miss_rate", r.false_sharing_miss_rate()),
        ("non_sharing_miss_rate", r.non_sharing_miss_rate()),
        ("bus_utilization", r.bus_utilization()),
        ("processor_utilization", r.avg_processor_utilization()),
    ];
    for (name, rate) in rates {
        assert!(
            (0.0..=1.0).contains(&rate),
            "{label}: {name} = {rate} outside [0, 1]"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Unwarmed runs see every bus transaction, so fill traffic must
    /// balance exactly: each Read/ReadExclusive on the bus is a CPU miss
    /// that reached the bus, a prefetch fill, or a demand refill.
    #[test]
    fn bus_traffic_identity_holds_without_warmup(cell in arb_cell()) {
        let (cfg, prepared) = run_cell(&cell, false);
        let r = simulate(&cfg, &prepared).expect("valid trace");
        prop_assert_eq!(
            r.bus.reads + r.bus.read_exclusives,
            r.miss.adjusted_cpu_misses() + r.prefetch.fills + r.demand_refills,
            "fill transactions must equal fill-causing misses ({:?})", cell
        );
        assert_rates_in_unit_interval(&r, "unwarmed");
    }

    /// The headline regression: with an arbitrary warm-up split, the
    /// measured window's bus busy cycles must never exceed its length.
    /// (Pre-fix this failed at up to 107% utilization.)
    #[test]
    fn warmed_window_rates_stay_probabilities(cell in arb_cell()) {
        let (cfg, prepared) = run_cell(&cell, true);
        let r = simulate(&cfg, &prepared).expect("valid trace");
        prop_assert!(
            r.bus_utilization() <= 1.0,
            "bus utilization {} > 1.0 with warmup {} ({:?})",
            r.bus_utilization(), cfg.warmup_accesses, cell
        );
        if r.demand_accesses() > 0 {
            assert_rates_in_unit_interval(&r, "warmed");
        }
    }

    /// Sampling is read-only: the report is identical with the sampler on,
    /// and the timeline's windows tile the measured run exactly — their
    /// busy cycles and accesses sum to the final counters.
    #[test]
    fn sampling_is_invisible_and_tiles_the_run(cell in arb_cell()) {
        let (cfg, prepared) = run_cell(&cell, true);
        let plain = simulate(&cfg, &prepared).expect("valid trace");
        let (sampled, timeline) =
            simulate_observed(&cfg, &prepared, Observability::sampled(256))
                .expect("valid trace");
        prop_assert_eq!(&plain, &sampled, "sampling must not perturb the run");
        let timeline = timeline.expect("sampling was enabled");
        prop_assert_eq!(timeline.total_bus_busy(), plain.bus.busy_cycles);
        prop_assert_eq!(timeline.total_accesses(), plain.demand_accesses());
        for w in &timeline.windows {
            prop_assert!(w.start < w.end, "degenerate window {:?}", w);
            // Grant-time accounting books a transfer wholly in the window
            // that granted it, so a window can exceed its span by at most
            // one in-flight occupancy (the serial bus admits no second).
            prop_assert!(
                w.bus_busy_cycles <= (w.end - w.start) + cell.transfer,
                "window busier than its span plus one transfer: {:?} ({:?})", w, cell
            );
        }
    }
}
