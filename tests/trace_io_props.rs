//! Property tests for trace serialization: arbitrary traces round-trip
//! byte-exactly, and the parser never panics on arbitrary input.

use charlie::trace::io::{read_trace, write_trace};
use charlie::trace::{Trace, TraceBuilder};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Ev {
    Work(u32),
    Read(u64),
    Write(u64),
    Prefetch(u64, bool),
    Lock(u32),
    Unlock(u32),
    Barrier,
}

fn arb_trace() -> impl proptest::strategy::Strategy<Value = Trace> {
    let ev = prop_oneof![
        (1u32..1000).prop_map(Ev::Work),
        (0u64..1 << 40).prop_map(Ev::Read),
        (0u64..1 << 40).prop_map(Ev::Write),
        ((0u64..1 << 40), any::<bool>()).prop_map(|(a, e)| Ev::Prefetch(a, e)),
        (0u32..8).prop_map(Ev::Lock),
        (0u32..8).prop_map(Ev::Unlock),
        Just(Ev::Barrier),
    ];
    let per_proc = proptest::collection::vec(ev, 0..60);
    proptest::collection::vec(per_proc, 1..5).prop_map(|streams| {
        let mut b = TraceBuilder::new(streams.len());
        for (p, evs) in streams.iter().enumerate() {
            let mut pb = b.proc(p);
            let mut barrier = 0u32;
            for ev in evs {
                match *ev {
                    Ev::Work(n) => {
                        pb.work(n);
                    }
                    Ev::Read(a) => {
                        pb.read(charlie::trace::Addr::new(a));
                    }
                    Ev::Write(a) => {
                        pb.write(charlie::trace::Addr::new(a));
                    }
                    Ev::Prefetch(a, false) => {
                        pb.prefetch(charlie::trace::Addr::new(a));
                    }
                    Ev::Prefetch(a, true) => {
                        pb.prefetch_exclusive(charlie::trace::Addr::new(a));
                    }
                    Ev::Lock(l) => {
                        pb.lock(l);
                    }
                    Ev::Unlock(l) => {
                        pb.unlock(l);
                    }
                    Ev::Barrier => {
                        pb.barrier(barrier);
                        barrier += 1;
                    }
                }
            }
        }
        b.build()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// write → read is the identity on every trace (validity not required:
    /// serialization is structural).
    #[test]
    fn round_trip_is_identity(trace in arb_trace()) {
        let mut buf = Vec::new();
        write_trace(&trace, &mut buf).expect("write succeeds");
        let back = read_trace(buf.as_slice()).expect("parse our own output");
        prop_assert_eq!(back, trace);
    }

    /// The parser returns errors — never panics — on arbitrary text.
    #[test]
    fn parser_never_panics(garbage in "\\PC*") {
        let _ = read_trace(garbage.as_bytes());
    }

    /// …including near-miss inputs that start like real traces.
    #[test]
    fn parser_survives_near_misses(lines in proptest::collection::vec("[a-zA-Z0-9 #x]{0,30}", 0..30)) {
        let text = format!("charlie-trace v1\nprocs 2\n{}", lines.join("\n"));
        let _ = read_trace(text.as_bytes());
    }

    /// Corruption properties over *real* serialized traces: whatever damage
    /// a faulty disk inflicts, the parser errors or parses — it never
    /// panics, and it never silently returns a trace with more events than
    /// the original (no phantom reads out of garbage).
    #[test]
    fn bit_flip_never_panics(trace in arb_trace(), at in 0usize..1_000_000, bit in 0u8..8) {
        let mut buf = Vec::new();
        write_trace(&trace, &mut buf).expect("write succeeds");
        if !buf.is_empty() {
            let i = at % buf.len();
            buf[i] ^= 1 << bit;
            if let Ok(parsed) = read_trace(buf.as_slice()) {
                // A surviving parse may differ (the flip can hit an address
                // digit) but must stay structurally sane.
                prop_assert!(parsed.num_procs() <= 64);
            }
        }
    }

    /// Mid-record truncation (a partial write / torn tail at any byte) is
    /// reported as an error or parses as a shorter trace — never a panic,
    /// never events the prefix does not contain.
    #[test]
    fn truncation_never_panics(trace in arb_trace(), at in 0usize..1_000_000) {
        let mut buf = Vec::new();
        write_trace(&trace, &mut buf).expect("write succeeds");
        let cut = at % (buf.len() + 1);
        if let Ok(parsed) = read_trace(&buf[..cut]) {
            prop_assert!(
                parsed.total_accesses() <= trace.total_accesses(),
                "a prefix cannot contain more accesses than the whole"
            );
        }
    }

    /// A garbage suffix appended to a valid trace (the flush-then-crash
    /// graft) must surface as a parse error pointing past the valid bytes,
    /// or parse only if the suffix happens to be valid event syntax — never
    /// panic, never corrupt the prefix events.
    #[test]
    fn garbage_suffix_never_panics(trace in arb_trace(), suffix in proptest::collection::vec(0u8..=255, 1..64)) {
        let mut buf = Vec::new();
        write_trace(&trace, &mut buf).expect("write succeeds");
        let clean_accesses = trace.total_accesses();
        buf.extend_from_slice(&suffix);
        match read_trace(buf.as_slice()) {
            Ok(parsed) => prop_assert!(parsed.total_accesses() >= clean_accesses),
            Err(e) => {
                // Diagnostics must carry position context for I/O-free
                // parse failures (Io covers invalid UTF-8 from read_line).
                let text = e.to_string();
                prop_assert!(
                    text.contains("byte offset") || text.contains("i/o error"),
                    "undiagnosed error: {}", text
                );
            }
        }
    }
}
