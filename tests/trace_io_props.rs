//! Property tests for trace serialization: arbitrary traces round-trip
//! byte-exactly, and the parser never panics on arbitrary input.

use charlie::trace::io::{read_trace, write_trace};
use charlie::trace::{Trace, TraceBuilder};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Ev {
    Work(u32),
    Read(u64),
    Write(u64),
    Prefetch(u64, bool),
    Lock(u32),
    Unlock(u32),
    Barrier,
}

fn arb_trace() -> impl proptest::strategy::Strategy<Value = Trace> {
    let ev = prop_oneof![
        (1u32..1000).prop_map(Ev::Work),
        (0u64..1 << 40).prop_map(Ev::Read),
        (0u64..1 << 40).prop_map(Ev::Write),
        ((0u64..1 << 40), any::<bool>()).prop_map(|(a, e)| Ev::Prefetch(a, e)),
        (0u32..8).prop_map(Ev::Lock),
        (0u32..8).prop_map(Ev::Unlock),
        Just(Ev::Barrier),
    ];
    let per_proc = proptest::collection::vec(ev, 0..60);
    proptest::collection::vec(per_proc, 1..5).prop_map(|streams| {
        let mut b = TraceBuilder::new(streams.len());
        for (p, evs) in streams.iter().enumerate() {
            let mut pb = b.proc(p);
            let mut barrier = 0u32;
            for ev in evs {
                match *ev {
                    Ev::Work(n) => {
                        pb.work(n);
                    }
                    Ev::Read(a) => {
                        pb.read(charlie::trace::Addr::new(a));
                    }
                    Ev::Write(a) => {
                        pb.write(charlie::trace::Addr::new(a));
                    }
                    Ev::Prefetch(a, false) => {
                        pb.prefetch(charlie::trace::Addr::new(a));
                    }
                    Ev::Prefetch(a, true) => {
                        pb.prefetch_exclusive(charlie::trace::Addr::new(a));
                    }
                    Ev::Lock(l) => {
                        pb.lock(l);
                    }
                    Ev::Unlock(l) => {
                        pb.unlock(l);
                    }
                    Ev::Barrier => {
                        pb.barrier(barrier);
                        barrier += 1;
                    }
                }
            }
        }
        b.build()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// write → read is the identity on every trace (validity not required:
    /// serialization is structural).
    #[test]
    fn round_trip_is_identity(trace in arb_trace()) {
        let mut buf = Vec::new();
        write_trace(&trace, &mut buf).expect("write succeeds");
        let back = read_trace(buf.as_slice()).expect("parse our own output");
        prop_assert_eq!(back, trace);
    }

    /// The parser returns errors — never panics — on arbitrary text.
    #[test]
    fn parser_never_panics(garbage in "\\PC*") {
        let _ = read_trace(garbage.as_bytes());
    }

    /// …including near-miss inputs that start like real traces.
    #[test]
    fn parser_survives_near_misses(lines in proptest::collection::vec("[a-zA-Z0-9 #x]{0,20}", 0..30)) {
        let text = format!("charlie-trace v1\nprocs 2\n{}", lines.join("\n"));
        let _ = read_trace(text.as_bytes());
    }
}
