//! Property and contract tests for the on-line hardware prefetchers
//! (`charlie::prefetch::hw`) as driven by the full machine.
//!
//! The three families (stride RPT, SMS footprints, Markov correlation) run
//! *inside* the simulator — issuing real bus transactions into the prefetch
//! buffers — so their guarantees are stated against whole-machine runs:
//!
//! * every issued prefetch is classified exactly once
//!   (`useful + late + useless == issued`),
//! * the coherence invariant checker stays silent under random
//!   multiprocessor interleavings,
//! * the stride prefetcher covers a pure-stride stream,
//! * the Markov prefetcher beats the stride prefetcher on pointer chasing
//!   (the one workload where strides carry no information).

use charlie::sim::{simulate, HwPrefetchConfig, HwPrefetcherKind, SimConfig};
use charlie::trace::{Addr, Trace, TraceBuilder};
use charlie::workloads::{generate, Workload, WorkloadConfig};
use proptest::prelude::*;

fn checked_cfg(procs: usize, hw: HwPrefetchConfig) -> SimConfig {
    let mut cfg = SimConfig::paper(procs, 8);
    cfg.check_invariants = true; // run sim::check even in release builds
    cfg.hw_prefetch = hw;
    cfg
}

/// A random 3-processor trace mixing private streams with a contended
/// shared region (reads and writes), so hardware prefetches get invalidated
/// and evicted, not just consumed. Work amounts vary per access, which
/// varies the bus interleaving across cases.
fn arb_contended_trace() -> impl proptest::strategy::Strategy<Value = Trace> {
    let per_proc = proptest::collection::vec(
        // (work, write, shared, line, word)
        (1u32..60, any::<bool>(), any::<bool>(), 0u64..96, 0u64..8),
        20..120,
    );
    proptest::collection::vec(per_proc, 3..=3).prop_map(|streams| {
        let mut b = TraceBuilder::new(streams.len());
        for (p, stream) in streams.iter().enumerate() {
            let mut pb = b.proc(p);
            for &(work, write, shared, line, word) in stream {
                pb.work(work);
                let base = if shared { 0x8000 } else { 0x40_0000 + (p as u64) * 0x10_0000 };
                let addr = Addr::new(base + line * 32 + word * 4);
                if write {
                    pb.write(addr);
                } else {
                    pb.read(addr);
                }
            }
            // A closing barrier forces every processor to drain, exercising
            // the end-of-run settlement of still-queued hardware prefetches.
            pb.barrier(0);
        }
        b.build()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every hardware prefetcher keeps the classification partition
    /// (`useful + late + useless == issued`) and never trips the coherence
    /// invariant checker, across random contended interleavings.
    #[test]
    fn classification_partitions_and_no_violations(trace in arb_contended_trace()) {
        for kind in HwPrefetcherKind::ONLINE {
            let hw = HwPrefetchConfig { kind, degree: 2, distance: 4 };
            let r = simulate(&checked_cfg(3, hw), &trace)
                .expect("checked run must be violation-free");
            let h = r.hw_prefetch;
            prop_assert_eq!(
                h.useful + h.late + h.useless,
                h.issued,
                "{:?}: every issued prefetch classified exactly once: {:?}",
                kind,
                h
            );
            // Deterministic: the same trace re-simulates identically.
            prop_assert_eq!(&r, &simulate(&checked_cfg(3, hw), &trace).unwrap());
        }
    }

    /// A disabled prefetcher — kind Off or any kind at degree 0 — is
    /// bit-identical to the default machine on random traces (the unit-level
    /// statement of the full-grid differential guarantee in `ci.sh`).
    #[test]
    fn degree_zero_is_bit_identical_to_off(trace in arb_contended_trace()) {
        let plain = simulate(&checked_cfg(3, HwPrefetchConfig::OFF), &trace).unwrap();
        prop_assert!(plain.hw_prefetch.is_empty());
        for kind in HwPrefetcherKind::ONLINE {
            let hw = HwPrefetchConfig { kind, degree: 0, distance: 4 };
            let r = simulate(&checked_cfg(3, hw), &trace).unwrap();
            prop_assert_eq!(&plain, &r, "{:?} at degree 0 must be the zero-cost path", kind);
        }
    }
}

/// On a pure-stride stream the RPT locks on almost immediately: at least
/// 90% of the would-be demand misses are covered by a hardware prefetch
/// (useful or late), and the adjusted miss count collapses.
#[test]
fn stride_covers_pure_stride_stream() {
    let mut b = TraceBuilder::new(1);
    {
        let mut p = b.proc(0);
        for i in 0..400u64 {
            p.work(20).read(Addr::new(0x10_0000 + i * 32));
        }
    }
    let t = b.build();

    let plain = simulate(&checked_cfg(1, HwPrefetchConfig::OFF), &t).unwrap();
    assert_eq!(plain.miss.cpu_misses(), 400, "every line is cold without prefetching");

    let r = simulate(&checked_cfg(1, HwPrefetchConfig::stride(2, 4)), &t).unwrap();
    let h = r.hw_prefetch;
    let coverage = h.covered() as f64 / plain.miss.cpu_misses() as f64;
    assert!(
        coverage >= 0.90,
        "stride must cover >=90% of a pure-stride miss stream, got {:.1}% ({h:?})",
        100.0 * coverage
    );
    assert_eq!(h.useful + h.late + h.useless, h.issued);
    assert!(
        r.miss.adjusted_cpu_misses() <= plain.miss.cpu_misses() / 10,
        "coverage must collapse the adjusted miss count: {} vs {}",
        r.miss.adjusted_cpu_misses(),
        plain.miss.cpu_misses()
    );
}

/// On the pointer-chase workload the stride prefetcher is nearly blind
/// (shuffled node order defeats stride prediction) while the Markov
/// correlation predictor learns the chase in one pass and replays it:
/// more useful prefetches, fewer residual demand misses, a shorter run.
#[test]
fn markov_beats_stride_on_pointer_chase() {
    let wcfg = WorkloadConfig { procs: 4, refs_per_proc: 16_000, seed: 42, ..Default::default() };
    let trace = generate(Workload::PointerChase, &wcfg);

    let stride =
        simulate(&checked_cfg(4, HwPrefetchConfig::stride(2, 4)), &trace).unwrap();
    let markov = simulate(&checked_cfg(4, HwPrefetchConfig::markov(2)), &trace).unwrap();

    let (hs, hm) = (stride.hw_prefetch, markov.hw_prefetch);
    assert!(hm.issued > 0, "markov must fire on a repeated chase: {hm:?}");
    assert!(
        hm.useful > 10 * hs.useful.max(1),
        "markov must find an order of magnitude more useful prefetches \
         (markov {hm:?} vs stride {hs:?})"
    );
    assert!(
        markov.miss.adjusted_cpu_misses() < stride.miss.adjusted_cpu_misses(),
        "markov must leave fewer residual misses ({} vs {})",
        markov.miss.adjusted_cpu_misses(),
        stride.miss.adjusted_cpu_misses()
    );
    assert!(
        markov.cycles < stride.cycles,
        "markov must finish the chase sooner ({} vs {})",
        markov.cycles,
        stride.cycles
    );
}
