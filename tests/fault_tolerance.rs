//! End-to-end fault-tolerance properties of the batch engine:
//!
//! * a batch containing a panicking cell and a livelocked (watchdog-tripped)
//!   cell still completes every healthy cell, and the healthy results are
//!   bit-identical to an undisturbed lab's;
//! * both failures are reported with a retry diagnosis, and failed cells
//!   are not memoized;
//! * an interrupted checkpointed batch resumes to a byte-identical final
//!   state, including across a simulated kill mid-journal-write.

use charlie::checkpoint::Journal;
use charlie::sim::SimError;
use charlie::{
    Experiment, Lab, RetryOutcome, RunConfig, RunError, Strategy, Workload,
};
use std::path::PathBuf;

fn small_cfg() -> RunConfig {
    RunConfig { procs: 2, refs_per_proc: 1_500, seed: 13, ..RunConfig::default() }
}

/// A 6-cell grid covering several workloads/strategies.
fn grid() -> Vec<Experiment> {
    vec![
        Experiment::paper(Workload::Water, Strategy::NoPrefetch, 8),
        Experiment::paper(Workload::Water, Strategy::Pref, 8),
        Experiment::paper(Workload::Mp3d, Strategy::NoPrefetch, 16),
        Experiment::paper(Workload::Mp3d, Strategy::Pws, 16),
        Experiment::paper(Workload::Topopt, Strategy::Excl, 8),
        Experiment::paper(Workload::Pverify, Strategy::Lpd, 4),
    ]
}

fn temp_journal(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("charlie-ft-{}-{name}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

/// A genuine livelock signature: run the victim cell's own trace under a
/// starvation-small event budget, producing the same `BudgetExceeded` a
/// wedged simulation would.
fn livelock_error(cfg: &RunConfig, exp: Experiment) -> RunError {
    use charlie::workloads::{generate, WorkloadConfig};
    let wcfg = WorkloadConfig {
        procs: cfg.procs,
        refs_per_proc: cfg.refs_per_proc,
        seed: cfg.seed,
        layout: exp.layout,
    };
    let raw = generate(exp.workload, &wcfg);
    let prepared = charlie::prefetch::apply(exp.strategy, &raw, cfg.geometry);
    let sim_cfg = charlie::SimConfig {
        geometry: cfg.geometry,
        max_events: 64, // far below any honest run
        ..charlie::SimConfig::paper(cfg.procs, exp.transfer_cycles)
    };
    match charlie::sim::simulate(&sim_cfg, &prepared) {
        Err(e @ SimError::BudgetExceeded { .. }) => RunError::Sim(e),
        other => panic!("expected a budget trip, got {other:?}"),
    }
}

/// The tentpole acceptance scenario: one panicking cell, one livelocked
/// cell, four healthy ones. The batch completes the healthy cells
/// bit-identically to a clean lab and reports both failures with
/// deterministic retry diagnoses.
#[test]
fn batch_with_panic_and_livelock_finishes_healthy_cells() {
    let exps = grid();
    let panic_cell = exps[1];
    let livelock_cell = exps[3];
    let cfg = small_cfg();
    let wedge = livelock_error(&cfg, livelock_cell);

    let mut lab = Lab::new(cfg);
    let wedge_for_injector = wedge.clone();
    lab.set_fault_injector(move |exp| {
        if exp == panic_cell {
            panic!("injected panic in {exp}");
        }
        (exp == livelock_cell).then(|| wedge_for_injector.clone())
    });

    // Worker panics print through the default hook; keep test output clean.
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let report = lab.run_batch(&exps, 3);
    std::panic::set_hook(hook);

    assert_eq!(report.requested, 6);
    assert_eq!(report.executed, 4, "every healthy cell completes");
    assert_eq!(report.failures.len(), 2);
    assert!(!report.is_complete());

    // Both failures carry their cell, error and a deterministic diagnosis.
    let failed: Vec<Experiment> = report.failures.iter().map(|f| f.experiment).collect();
    assert!(failed.contains(&panic_cell));
    assert!(failed.contains(&livelock_cell));
    for failure in &report.failures {
        assert_eq!(
            failure.retry,
            RetryOutcome::Reproduced,
            "injected failures are deterministic: {failure}"
        );
        if failure.experiment == panic_cell {
            assert!(matches!(&failure.error, RunError::Panic(m) if m.contains("injected panic")));
        } else {
            assert!(matches!(
                failure.error,
                RunError::Sim(SimError::BudgetExceeded { .. })
            ));
        }
    }

    // The summary names both cells; a CLI caller prints this and exits
    // nonzero — the batch itself returned normally.
    let summary = report.failure_summary().expect("failures summarize");
    assert!(summary.contains("2 of 6 attempted cells failed"), "{summary}");

    // Healthy results are bit-identical to an undisturbed lab's.
    let mut clean = Lab::new(small_cfg());
    for &exp in &exps {
        if exp == panic_cell || exp == livelock_cell {
            assert!(lab.meta(exp).is_none(), "failed cell {exp} must not be memoized");
        } else {
            assert_eq!(lab.run(exp), clean.run(exp), "healthy cell {exp} diverged");
        }
    }
}

/// Resume equivalence: a batch interrupted after N cells and resumed from
/// its journal produces byte-identical summaries to a single uninterrupted
/// run, and restored cells are not re-simulated.
#[test]
fn interrupted_batch_resumes_byte_identically() {
    let exps = grid();
    let path = temp_journal("resume");

    // The uninterrupted reference.
    let mut fresh = Lab::new(small_cfg());
    fresh.run_batch(&exps, 2);

    // "Interrupted" run: journal only the first three cells, as if the
    // process died after them.
    {
        let (mut journal, restored) = Journal::open(&path).unwrap();
        assert!(restored.is_empty());
        let mut partial = Lab::new(small_cfg());
        partial.run_batch_checkpointed(&exps[..3], 2, &mut journal);
    }

    // Resume: restore the journal, then run the full grid checkpointed.
    let (mut journal, restored) = Journal::open(&path).unwrap();
    assert_eq!(restored.len(), 3, "three cells survived the interruption");
    let mut resumed = Lab::new(small_cfg());
    for summary in restored {
        resumed.restore(summary);
    }
    let report = resumed.run_batch_checkpointed(&exps, 2, &mut journal);
    assert!(report.is_complete());
    assert_eq!(report.memo_hits, 3, "restored cells are not re-simulated");
    assert_eq!(report.executed, 3, "only the missing cells run");
    assert_eq!(resumed.stats().restored, 3);

    // Every summary matches the uninterrupted run exactly (all-integer
    // reports: the journal round-trip is lossless).
    for &exp in &exps {
        assert_eq!(resumed.run(exp), fresh.run(exp), "{exp} diverged after resume");
    }

    // The journal now holds all six cells; reopening restores all of them.
    let (_j, all) = Journal::open(&path).unwrap();
    assert_eq!(all.len(), 6);
    let _ = std::fs::remove_file(&path);
}

/// A kill mid-write leaves a trailing partial line; reopening drops it
/// silently and that cell simply re-runs.
#[test]
fn torn_final_journal_line_is_tolerated_and_rerun() {
    let exps = &grid()[..2];
    let path = temp_journal("torn");
    {
        let (mut journal, _) = Journal::open(&path).unwrap();
        let mut lab = Lab::new(small_cfg());
        lab.run_batch_checkpointed(exps, 1, &mut journal);
    }
    // Simulate SIGKILL mid-append: truncate the last line's tail.
    let content = std::fs::read_to_string(&path).unwrap();
    let keep = content[..content.len() - 1].rfind('\n').unwrap();
    std::fs::write(&path, &content[..keep + 30]).unwrap(); // torn, no '\n'

    let (mut journal, restored) = Journal::open(&path).unwrap();
    assert_eq!(restored.len(), 1, "only the intact line restores");
    let mut lab = Lab::new(small_cfg());
    for summary in restored {
        lab.restore(summary);
    }
    let report = lab.run_batch_checkpointed(exps, 1, &mut journal);
    assert!(report.is_complete());
    assert_eq!(report.executed, 1, "the torn cell re-ran");

    // After the re-run the journal is whole again.
    let (_j, all) = Journal::open(&path).unwrap();
    assert_eq!(all.len(), 2);
    let _ = std::fs::remove_file(&path);
}

/// Failed cells are never journaled: a resume after failures re-attempts
/// exactly the failed cells.
#[test]
fn failures_are_not_journaled() {
    let exps = grid();
    let bad = exps[4];
    let path = temp_journal("nofail");
    {
        let (mut journal, _) = Journal::open(&path).unwrap();
        let mut lab = Lab::new(small_cfg());
        lab.set_fault_injector(move |exp| {
            (exp == bad).then(|| RunError::Trace("injected".into()))
        });
        let report = lab.run_batch_checkpointed(&exps, 2, &mut journal);
        assert_eq!(report.failures.len(), 1);
        assert_eq!(report.executed, 5);
    }
    let (mut journal, restored) = Journal::open(&path).unwrap();
    assert_eq!(restored.len(), 5, "the failed cell is absent from the journal");
    // With the injector gone the resume completes the remaining cell only.
    let mut lab = Lab::new(small_cfg());
    for summary in restored {
        lab.restore(summary);
    }
    let report = lab.run_batch_checkpointed(&exps, 2, &mut journal);
    assert!(report.is_complete());
    assert_eq!(report.executed, 1);
    let (_j, all) = Journal::open(&path).unwrap();
    assert_eq!(all.len(), 6);
    let _ = std::fs::remove_file(&path);
}

/// `try_run` surfaces the same watchdog error a batch records, so callers
/// that bypass batches get identical diagnostics.
#[test]
fn try_run_reports_injected_watchdog_error() {
    let cfg = small_cfg();
    let exp = Experiment::paper(Workload::Water, Strategy::NoPrefetch, 8);
    let wedge = livelock_error(&cfg, exp);
    let mut lab = Lab::new(cfg);
    let injected = wedge.clone();
    lab.set_fault_injector(move |_| Some(injected.clone()));
    let err = lab.try_run(exp).unwrap_err();
    assert_eq!(err, wedge);
    assert!(err.to_string().contains("event budget exceeded"), "{err}");
    lab.clear_fault_injector();
    assert!(lab.try_run(exp).is_ok());
}
