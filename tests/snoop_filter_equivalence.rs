//! Equivalence harness for the sharer-tracking snoop filter.
//!
//! The filter (see `charlie::sim::SharerTable`) is a pure strength
//! reduction: instead of probing all `num_procs` caches on every bus grant,
//! the engine probes only the caches its sharer table says can hold the
//! line. Skipped probes are provably no-ops, so every observable output
//! must be bit-identical with the filter on or off. These tests check that
//! contract end to end: raw `SimReport`s across machine sizes, workloads,
//! strategies and both coherence protocols, and the rendered experiment
//! exhibits via the `CHARLIE_NO_SNOOP_FILTER` kill switch.
//!
//! `SimReport` derives `PartialEq` over every counter, histogram and
//! per-processor record, so `==` really is a full bitwise comparison.

use charlie::prefetch::apply;
use charlie::sim::{simulate, Protocol, SimConfig, SimReport};
use charlie::workloads::generate;
use charlie::{CacheGeometry, Lab, Layout, RunConfig, Strategy, Workload, WorkloadConfig};

/// Simulates one workload on a `procs`-processor machine with the snoop
/// filter forced on or off via `SimConfig`.
fn report(
    w: Workload,
    procs: usize,
    strategy: Strategy,
    protocol: Protocol,
    filter: bool,
) -> SimReport {
    let wcfg = WorkloadConfig {
        procs,
        refs_per_proc: 1_200,
        seed: 0xBEEF,
        layout: Layout::Interleaved,
    };
    let raw = generate(w, &wcfg);
    let prepared = apply(strategy, &raw, CacheGeometry::paper_default());
    let cfg = SimConfig { snoop_filter: filter, protocol, ..SimConfig::paper(procs, 8) };
    simulate(&cfg, &prepared).expect("simulation succeeds")
}

/// Every workload at 4, 8 and 16 processors: the filtered run must be
/// bit-identical to the brute-force broadcast scan. (Debug builds keep
/// invariant checking on, so each of these runs also cross-checks the
/// sharer mask against brute-force occupancy before every snoop.)
#[test]
fn filtered_reports_are_bit_identical_across_machine_sizes() {
    for w in Workload::ALL {
        for procs in [4usize, 8, 16] {
            let filtered = report(w, procs, Strategy::Pref, Protocol::WriteInvalidate, true);
            let broadcast = report(w, procs, Strategy::Pref, Protocol::WriteInvalidate, false);
            assert_eq!(filtered, broadcast, "{w} at {procs} procs diverged");
        }
    }
}

/// The filter has protocol-specific fast paths (write-invalidate upgrades,
/// write-update broadcasts, exclusive prefetches); exercise each.
#[test]
fn filtered_reports_are_bit_identical_across_strategies_and_protocols() {
    for strategy in [Strategy::Excl, Strategy::Lpd, Strategy::Pws] {
        for protocol in [Protocol::WriteInvalidate, Protocol::WriteUpdate] {
            let filtered = report(Workload::Mp3d, 8, strategy, protocol, true);
            let broadcast = report(Workload::Mp3d, 8, strategy, protocol, false);
            assert_eq!(filtered, broadcast, "{strategy}/{protocol} diverged");
        }
    }
}

fn exhibit_slice() -> String {
    let mut lab = Lab::new(RunConfig {
        procs: 4,
        refs_per_proc: 2_000,
        seed: 0xC0FFEE,
        ..RunConfig::default()
    });
    let mut out = String::new();
    out.push_str(&charlie::experiments::figure1(&mut lab).to_string());
    out.push_str(&charlie::experiments::table2(&mut lab).to_string());
    out
}

/// One slice of the experiments output, rendered to text with the filter on
/// and again with the `CHARLIE_NO_SNOOP_FILTER` kill switch: byte-identical.
/// This pins the user-facing regeneration path, not just raw reports.
#[test]
fn exhibit_output_is_byte_identical_under_kill_switch() {
    let filtered = exhibit_slice();
    std::env::set_var("CHARLIE_NO_SNOOP_FILTER", "1");
    let broadcast = exhibit_slice();
    std::env::remove_var("CHARLIE_NO_SNOOP_FILTER");
    assert_eq!(filtered, broadcast, "exhibit text diverged under kill switch");
}
