//! End-to-end integration: every workload through every strategy through the
//! simulator, with cross-crate consistency checks on the reports.

use charlie::{Experiment, Lab, RunConfig, Strategy, Workload};

fn lab() -> Lab {
    Lab::new(RunConfig { procs: 4, refs_per_proc: 10_000, seed: 11, ..RunConfig::default() })
}

#[test]
fn full_grid_runs_and_reports_are_consistent() {
    let mut lab = lab();
    for w in Workload::ALL {
        for s in Strategy::ALL {
            let summary = lab.run(Experiment::paper(w, s, 8)).clone();
            let r = &summary.report;
            let label = format!("{w}/{s}");

            // Demand accesses: at least the trace's references (sync accesses
            // are synthesized on top).
            assert!(
                r.demand_accesses() >= 10_000 * 4,
                "{label}: {} accesses",
                r.demand_accesses()
            );

            // Structural sanity.
            assert!(r.cycles > 0, "{label}");
            assert!(r.bus.busy_cycles <= r.cycles, "{label}: bus busier than time");
            assert!(r.false_sharing_misses <= r.miss.invalidation(), "{label}");
            assert!(r.miss.cpu_misses() <= r.demand_accesses(), "{label}");
            for (i, p) in r.per_proc.iter().enumerate() {
                assert!(
                    p.busy_cycles + p.stall_cycles <= p.finish_time + 1,
                    "{label} P{i}: busy {} + stall {} > finish {}",
                    p.busy_cycles,
                    p.stall_cycles,
                    p.finish_time
                );
                assert!(p.finish_time <= r.cycles, "{label} P{i}");
            }

            // Prefetch bookkeeping adds up.
            let pf = &r.prefetch;
            assert_eq!(
                pf.executed,
                pf.hits + pf.duplicates + pf.fills,
                "{label}: prefetch outcomes partition executions"
            );
            assert_eq!(pf.executed, summary.prefetches_inserted, "{label}");
            if s == Strategy::NoPrefetch {
                assert_eq!(pf.executed, 0, "{label}");
            }

            // Bus ops: every adjusted CPU miss and every prefetch fill is a
            // fill transaction.
            assert_eq!(
                r.bus.reads + r.bus.read_exclusives,
                r.miss.adjusted_cpu_misses() + pf.fills + r.demand_refills,
                "{label}: fills match misses"
            );
            // Upgrades on the bus = upgrade attempts (completed + aborted).
            assert_eq!(r.bus.upgrades, r.upgrades, "{label}");
        }
    }
}

#[test]
fn prefetching_strategies_reduce_cpu_miss_rate_on_private_heavy_load() {
    let mut lab = lab();
    let np = lab.run(Experiment::paper(Workload::Mp3d, Strategy::NoPrefetch, 8)).clone();
    let pref = lab.run(Experiment::paper(Workload::Mp3d, Strategy::Pref, 8)).clone();
    assert!(
        pref.report.cpu_miss_rate() < np.report.cpu_miss_rate(),
        "PREF must cut Mp3d's CPU miss rate ({:.4} vs {:.4})",
        pref.report.cpu_miss_rate(),
        np.report.cpu_miss_rate()
    );
}

#[test]
fn prefetching_raises_total_miss_rate_and_bus_demand() {
    let mut lab = lab();
    for w in [Workload::Mp3d, Workload::Pverify, Workload::Topopt] {
        let np = lab.run(Experiment::paper(w, Strategy::NoPrefetch, 8)).clone();
        let pws = lab.run(Experiment::paper(w, Strategy::Pws, 8)).clone();
        assert!(
            pws.report.total_miss_rate() >= 0.98 * np.report.total_miss_rate(),
            "{w}: total miss rate must not fall with prefetching ({:.4} vs {:.4})",
            pws.report.total_miss_rate(),
            np.report.total_miss_rate()
        );
        assert!(
            pws.report.bus.busy_cycles as f64 / pws.report.cycles as f64
                >= 0.95 * (np.report.bus.busy_cycles as f64 / np.report.cycles as f64),
            "{w}: bus demand must not collapse with prefetching"
        );
    }
}

#[test]
fn pws_inserts_more_prefetches_than_pref() {
    let mut lab = lab();
    for w in [Workload::Pverify, Workload::Topopt] {
        let pref = lab.run(Experiment::paper(w, Strategy::Pref, 8)).prefetches_inserted;
        let pws = lab.run(Experiment::paper(w, Strategy::Pws, 8)).prefetches_inserted;
        assert!(pws > pref, "{w}: PWS overhead ({pws}) must exceed PREF ({pref})");
    }
}

#[test]
fn lpd_cuts_prefetch_in_progress_misses() {
    let mut lab = lab();
    let pref = lab.run(Experiment::paper(Workload::Mp3d, Strategy::Pref, 8)).clone();
    let lpd = lab.run(Experiment::paper(Workload::Mp3d, Strategy::Lpd, 8)).clone();
    assert!(
        lpd.report.miss.prefetch_in_progress <= pref.report.miss.prefetch_in_progress,
        "longer distance must not increase in-progress misses ({} vs {})",
        lpd.report.miss.prefetch_in_progress,
        pref.report.miss.prefetch_in_progress
    );
}

#[test]
fn excl_reduces_invalidating_bus_ops() {
    let mut lab = lab();
    // On a write-heavy shared workload, exclusive prefetching saves upgrades.
    let pref = lab.run(Experiment::paper(Workload::Topopt, Strategy::Pref, 8)).clone();
    let excl = lab.run(Experiment::paper(Workload::Topopt, Strategy::Excl, 8)).clone();
    assert!(
        excl.report.bus.upgrades <= pref.report.bus.upgrades,
        "EXCL must not need more upgrades than PREF ({} vs {})",
        excl.report.bus.upgrades,
        pref.report.bus.upgrades
    );
}

#[test]
fn restructured_layout_cuts_false_sharing() {
    let mut lab = lab();
    for w in [Workload::Topopt, Workload::Pverify] {
        let orig = lab.run(Experiment::paper(w, Strategy::NoPrefetch, 8)).clone();
        let restr = lab.run(Experiment::paper(w, Strategy::NoPrefetch, 8).restructured()).clone();
        assert!(
            restr.report.false_sharing_miss_rate() < 0.5 * orig.report.false_sharing_miss_rate(),
            "{w}: restructuring must slash false sharing ({:.4} vs {:.4})",
            restr.report.false_sharing_miss_rate(),
            orig.report.false_sharing_miss_rate()
        );
    }
}

#[test]
fn all_latencies_run_for_one_workload() {
    let mut lab = lab();
    let mut last_cycles = 0;
    for lat in [4, 8, 16, 24, 32] {
        let r = lab.run(Experiment::paper(Workload::Mp3d, Strategy::NoPrefetch, lat)).clone();
        assert!(
            r.report.cycles >= last_cycles,
            "slower buses must not speed Mp3d up ({} < {last_cycles} at {lat})",
            r.report.cycles
        );
        last_cycles = r.report.cycles;
    }
}
