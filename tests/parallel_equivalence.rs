//! Deterministic-equivalence harness for the parallel experiment engine.
//!
//! The engine's contract (see `charlie::parallel` and `Lab::run_batch`) is
//! that parallel execution is an *implementation detail*: every report a
//! batch produces must be bit-identical to what the serial `Lab::run` path
//! produces, for every worker count, input order and batch splitting.
//! `SimReport` derives `PartialEq` over every counter, histogram and
//! per-processor record, so `==` here really is a full bitwise comparison
//! of the simulation's observable output.

use charlie::{Experiment, Lab, RunConfig, RunSummary, Strategy, Workload};

/// Small but non-trivial grid: every workload, mixed strategies, two bus
/// latencies, one restructured cell.
fn sample_grid() -> Vec<Experiment> {
    let mut grid = Vec::new();
    for w in Workload::ALL {
        for s in [Strategy::NoPrefetch, Strategy::Pref, Strategy::Pws] {
            for lat in [8u64, 32] {
                grid.push(Experiment::paper(w, s, lat));
            }
        }
    }
    grid.push(Experiment::paper(Workload::Topopt, Strategy::Pref, 8).restructured());
    grid
}

fn tiny_cfg() -> RunConfig {
    RunConfig { procs: 2, refs_per_proc: 600, seed: 0xFEED, ..RunConfig::default() }
}

/// Serial ground truth: one `Lab::run` per cell.
fn serial_runs(grid: &[Experiment]) -> Vec<RunSummary> {
    let mut lab = Lab::new(tiny_cfg());
    grid.iter().map(|&exp| lab.run(exp).clone()).collect()
}

#[test]
fn batch_reports_are_bit_identical_to_serial_for_every_worker_count() {
    let grid = sample_grid();
    let baseline = serial_runs(&grid);
    for jobs in [1usize, 2, 8] {
        let mut lab = Lab::new(tiny_cfg());
        let batch = lab.run_batch(&grid, jobs);
        assert_eq!(batch.executed, grid.len(), "jobs={jobs}");
        for (exp, expected) in grid.iter().zip(&baseline) {
            let got = lab.run(*exp);
            assert_eq!(got, expected, "jobs={jobs}, cell {exp}");
        }
    }
}

#[test]
fn input_order_does_not_affect_results() {
    let grid = sample_grid();
    let baseline = serial_runs(&grid);
    // Deterministically scramble the submission order.
    let mut shuffled: Vec<Experiment> = grid.clone();
    shuffled.reverse();
    shuffled.rotate_left(grid.len() / 3);
    let mut lab = Lab::new(tiny_cfg());
    lab.run_batch(&shuffled, 4);
    for (exp, expected) in grid.iter().zip(&baseline) {
        assert_eq!(lab.run(*exp), expected, "cell {exp}");
    }
}

#[test]
fn batch_splitting_does_not_affect_results() {
    let grid = sample_grid();
    let baseline = serial_runs(&grid);
    // Submit the same grid as several smaller batches against one lab.
    let mut lab = Lab::new(tiny_cfg());
    for chunk in grid.chunks(5) {
        lab.run_batch(chunk, 3);
    }
    for (exp, expected) in grid.iter().zip(&baseline) {
        assert_eq!(lab.run(*exp), expected, "cell {exp}");
    }
}

#[test]
fn mixed_serial_and_batch_execution_share_one_memo() {
    let grid = sample_grid();
    let mut lab = Lab::new(tiny_cfg());
    // Seed a few cells through the serial path first…
    let first = lab.run(grid[0]).clone();
    lab.run(grid[3]);
    let stats_before = lab.stats();
    // …then batch the whole grid: the pre-run cells must be memo hits.
    let batch = lab.run_batch(&grid, 4);
    assert_eq!(batch.memo_hits, 2);
    assert_eq!(batch.executed, grid.len() - 2);
    assert_eq!(lab.stats().memo_misses, stats_before.memo_misses + (grid.len() - 2) as u64);
    // The serially-run cell is untouched by the batch merge.
    assert_eq!(lab.run(grid[0]), &first);
    assert!(!lab.meta(grid[0]).unwrap().via_batch);
    assert!(lab.meta(grid[5]).unwrap().via_batch);
}

#[test]
fn oversubscribed_worker_count_is_harmless() {
    // More workers than cells (and an absurd request clamped by MAX_JOBS)
    // must not change anything.
    let grid = &sample_grid()[..4];
    let baseline = serial_runs(grid);
    let mut lab = Lab::new(tiny_cfg());
    let batch = lab.run_batch(grid, usize::MAX);
    assert!(batch.jobs <= grid.len());
    for (exp, expected) in grid.iter().zip(&baseline) {
        assert_eq!(lab.run(*exp), expected, "cell {exp}");
    }
}

#[test]
fn batch_timing_metadata_is_recorded() {
    let grid = &sample_grid()[..6];
    let mut lab = Lab::new(tiny_cfg());
    let batch = lab.run_batch(grid, 2);
    assert_eq!(batch.requested, 6);
    assert!(batch.wall_nanos > 0);
    assert!(batch.sim_nanos > 0);
    for &exp in grid {
        let meta = lab.meta(exp).expect("meta recorded for every batch run");
        assert!(meta.wall_nanos > 0);
        assert!(meta.worker < 2);
        assert!(meta.via_batch);
    }
}
