//! Durability properties of the chaos-injection layer, exercised through
//! the `charlie` CLI (the same surface `ci.sh` drives).
//!
//! The `charlie chaos` subcommand arms process-global fault plans, so every
//! test here serializes on one mutex: a concurrently running sweep would
//! otherwise absorb another test's injected faults.

use charlie_cli::run_cli;
use std::path::PathBuf;
use std::sync::Mutex;

static GLOBAL: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    // A panicked test poisons the lock; the shared state (disarmed plans,
    // per-test scratch dirs) is still fine for the next test.
    GLOBAL.lock().unwrap_or_else(|e| e.into_inner())
}

fn run(tokens: &[&str]) -> (i32, String) {
    let mut out = Vec::new();
    let code = run_cli(tokens.iter().map(|s| s.to_string()).collect(), &mut out);
    (code, String::from_utf8(out).unwrap())
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("charlie-chaos-props-{}-{name}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The full matrix: crash points over truncated journals, live fault plans
/// of every kind, and atomic snapshot writes — all byte-identical to the
/// uninterrupted reference. This is the acceptance test of the chaos layer;
/// `charlie chaos` exits nonzero (and keeps its scratch dir) on any
/// divergence.
#[test]
fn chaos_matrix_is_byte_identical() {
    let _guard = lock();
    let dir = scratch("matrix");
    let dir_s = dir.to_str().unwrap();
    let (code, text) = run(&[
        "chaos", "--workload", "water", "--refs", "700", "--procs", "2", "--jobs", "2",
        "--points", "4", "--dir", dir_s,
    ]);
    assert_eq!(code, 0, "{text}");
    assert!(text.contains("crash-point matrix:"), "{text}");
    assert!(text.contains("live fault plans:"), "{text}");
    assert!(text.contains("chaos: OK"), "{text}");
    assert!(!dir.exists(), "scratch dir is removed after a clean pass");
}

#[test]
fn chaos_rejects_zero_points() {
    let _guard = lock();
    let (code, text) = run(&["chaos", "--points", "0"]);
    assert_eq!(code, 2);
    assert!(text.contains("--points"), "{text}");
}

/// Satellite guarantee: a journal written by one campaign shape refuses to
/// resume another instead of silently mixing grids.
#[test]
fn sweep_resume_refuses_config_mismatch() {
    let _guard = lock();
    let dir = scratch("mismatch");
    let ckpt = dir.join("sweep.ckpt");
    let ckpt_s = ckpt.to_str().unwrap();
    let (code, text) = run(&[
        "sweep", "--workload", "water", "--refs", "700", "--procs", "2", "--json", "--jobs",
        "2", "--resume", ckpt_s,
    ]);
    assert_eq!(code, 0, "{text}");

    // Same journal, different refs: refuse, don't resume.
    let (code, text) = run(&[
        "sweep", "--workload", "water", "--refs", "701", "--procs", "2", "--json", "--jobs",
        "2", "--resume", ckpt_s,
    ]);
    assert_eq!(code, 2, "a mismatched campaign must not resume: {text}");
    assert!(text.contains("refusing to resume"), "{text}");
    assert!(text.contains("r700") && text.contains("r701"), "both keys named: {text}");

    // Different workload: also refused.
    let (code, text) = run(&[
        "sweep", "--workload", "mp3d", "--refs", "700", "--procs", "2", "--json", "--jobs",
        "2", "--resume", ckpt_s,
    ]);
    assert_eq!(code, 2, "{text}");
    assert!(text.contains("refusing to resume"), "{text}");

    // The matching shape still resumes cleanly after the refusals.
    let (code, _) = run(&[
        "sweep", "--workload", "water", "--refs", "700", "--procs", "2", "--json", "--jobs",
        "2", "--resume", ckpt_s,
    ]);
    assert_eq!(code, 0);
    std::fs::remove_dir_all(&dir).ok();
}

/// An exported trace is written atomically: a crash fault mid-write leaves
/// the previous file intact and no temp droppings.
#[test]
fn export_trace_is_atomic_under_crash() {
    let _guard = lock();
    let dir = scratch("export");
    let path = dir.join("w.trace");
    let path_s = path.to_str().unwrap();
    let (code, _) = run(&[
        "export-trace", "--workload", "water", "--refs", "400", "--procs", "2", "--out", path_s,
    ]);
    assert_eq!(code, 0);
    let original = std::fs::read(&path).unwrap();

    let mut plan = charlie::chaos::FaultPlan::new();
    plan.push("trace", charlie::chaos::FaultKind::Crash, 128);
    charlie::chaos::arm(plan);
    let (code, text) = run(&[
        "export-trace", "--workload", "water", "--refs", "500", "--procs", "2", "--out", path_s,
    ]);
    charlie::chaos::disarm();
    assert_eq!(code, 2, "crashed export must report failure: {text}");
    assert_eq!(
        std::fs::read(&path).unwrap(),
        original,
        "failed export must leave the previous trace untouched"
    );
    let strays: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.contains(".tmp."))
        .collect();
    assert!(strays.is_empty(), "temp droppings: {strays:?}");
    std::fs::remove_dir_all(&dir).ok();
}

/// `--trace-out` JSONL event traces flow through the faultable writer, and
/// the emitter is deliberately best-effort: faults on the trace sink bound
/// the damage to the trace file — the run itself completes with output
/// byte-identical to an untraced one.
#[test]
fn trace_out_faults_do_not_perturb_the_run() {
    let _guard = lock();
    let dir = scratch("traceout");
    let path = dir.join("events.jsonl");
    let path_s = path.to_str().unwrap();
    let base = ["run", "--workload", "mp3d", "--refs", "800", "--procs", "2", "--json"];
    let (code, reference) = run(&base);
    assert_eq!(code, 0, "{reference}");

    let mut plan = charlie::chaos::FaultPlan::new();
    plan.push("trace", charlie::chaos::FaultKind::Enospc, 256);
    charlie::chaos::arm(plan);
    let mut traced_args = base.to_vec();
    traced_args.extend(["--trace-out", path_s]);
    let (code, traced) = run(&traced_args);
    charlie::chaos::disarm();
    assert_eq!(code, 0, "a faulted trace sink must not abort the run: {traced}");
    assert_eq!(traced, reference, "trace-sink faults must not leak into run output");
    std::fs::remove_dir_all(&dir).ok();
}
