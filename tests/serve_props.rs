//! Robustness properties of the `charlie serve` daemon, exercised over
//! real sockets: crash-and-restart byte-identity, duplicate coalescing,
//! hostile-bytes resilience, deadline degradation, and admission shedding.
//!
//! The kill/restart test drives the installed binary as a subprocess
//! (SIGKILL has to hit a real process); everything else runs in-process
//! servers on port 0, so the tests parallelize without port collisions.

use charlie_cli::run_cli;
use charlie_serve::{client, ServeConfig, Server};
use proptest::prelude::*;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

use charlie::prefetch::Strategy;
use charlie::workloads::Workload;
use charlie::Experiment;

fn scratch(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("charlie-serve-props-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run(tokens: &[&str]) -> (i32, String) {
    let mut out = Vec::new();
    let code = run_cli(tokens.iter().map(|s| s.to_string()).collect(), &mut out);
    (code, String::from_utf8(out).unwrap())
}

/// Spawns the real daemon binary and reads back its resolved address.
fn spawn_daemon(state_dir: &Path, extra: &[&str]) -> (Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_charlie"))
        .args(["serve", "--addr", "127.0.0.1:0", "--jobs", "2", "--state-dir"])
        .arg(state_dir)
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawning daemon");
    let stdout = child.stdout.take().unwrap();
    let mut line = String::new();
    BufReader::new(stdout).read_line(&mut line).unwrap();
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected daemon banner: {line:?}"))
        .to_owned();
    (child, addr)
}

/// An in-process server plus the thread running its accept loop.
fn start_server(cfg: ServeConfig) -> (Arc<Server>, String, std::thread::JoinHandle<()>) {
    let server = Arc::new(Server::bind(cfg).unwrap());
    let addr = server.local_addr().unwrap().to_string();
    let runner = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || server.run().unwrap())
    };
    (server, addr, runner)
}

fn server_config(state_dir: PathBuf) -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".into(),
        queue: 8,
        deadline_ms: 0,
        cell_budget: 4096,
        jobs: 2,
        state_dir,
    }
}

fn stats_num(stats_json: &str, section: &str, field: &str) -> u64 {
    let v = charlie::wire::parse(stats_json).unwrap();
    v.field(section).unwrap().field(field).unwrap().num().unwrap()
}

/// SIGKILL mid-campaign, restart on the same state dir, resubmit: the
/// resumed campaign's stdout is byte-identical to an uninterrupted run,
/// with the already-journaled cells restored instead of re-simulated.
#[test]
fn sigkill_and_restart_is_byte_identical() {
    let reference_state = scratch("kill-reference");
    let (mut ref_daemon, ref_addr) = spawn_daemon(&reference_state, &[]);
    let submit_tokens = |addr: &str| {
        vec![
            "submit".to_owned(),
            "--addr".to_owned(),
            addr.to_owned(),
            "--workload".to_owned(),
            "water".to_owned(),
            "--refs".to_owned(),
            "4000".to_owned(),
            "--procs".to_owned(),
            "2".to_owned(),
        ]
    };
    let run_owned = |tokens: Vec<String>| {
        let mut out = Vec::new();
        let code = run_cli(tokens, &mut out);
        (code, String::from_utf8(out).unwrap())
    };
    let (code, reference) = run_owned(submit_tokens(&ref_addr));
    assert_eq!(code, 0, "uninterrupted reference submit failed: {reference}");
    let _ = ref_daemon.kill();
    let _ = ref_daemon.wait();

    // Fresh state dir; kill the daemon once its journal holds >= 2 cells.
    let victim_state = scratch("kill-victim");
    let (mut victim, victim_addr) = spawn_daemon(&victim_state, &[]);
    let background = {
        let tokens = submit_tokens(&victim_addr);
        std::thread::spawn(move || run_owned(tokens))
    };
    let journaled_enough = |dir: &Path| -> bool {
        std::fs::read_dir(dir).ok().into_iter().flatten().flatten().any(|entry| {
            entry.path().extension().is_some_and(|e| e == "ckpt")
                && std::fs::read_to_string(entry.path())
                    .map_or(false, |s| s.lines().count() >= 3)
        })
    };
    let deadline = Instant::now() + Duration::from_secs(120);
    while !journaled_enough(&victim_state) {
        assert!(Instant::now() < deadline, "daemon never journaled a cell");
        std::thread::sleep(Duration::from_millis(20));
    }
    victim.kill().expect("SIGKILL");
    let _ = victim.wait();
    let (code, partial) = background.join().unwrap();
    assert_ne!(code, 0, "a killed campaign must not report success: {partial}");

    // Restart on the same state dir: the resumed campaign must replay the
    // journaled cells and produce reference-identical bytes.
    let (mut resumed_daemon, resumed_addr) = spawn_daemon(&victim_state, &[]);
    let (code, resumed) = run_owned(submit_tokens(&resumed_addr));
    assert_eq!(code, 0, "resumed submit failed: {resumed}");
    assert_eq!(resumed, reference, "resumed campaign diverged from uninterrupted run");

    let stats = client::stats(&resumed_addr).unwrap();
    assert!(
        stats_num(&stats, "cells", "restored") >= 2,
        "restart must restore journaled cells: {stats}"
    );
    let _ = client::shutdown(&resumed_addr);
    let _ = resumed_daemon.wait();
}

/// Concurrent identical submissions coalesce: each distinct cell simulates
/// exactly once, and both campaigns stream identical summaries.
#[test]
fn concurrent_duplicate_submits_coalesce() {
    let (_server, addr, runner) = start_server(server_config(scratch("coalesce")));
    let cells = vec![
        Experiment::paper(Workload::Water, Strategy::NoPrefetch, 8),
        Experiment::paper(Workload::Water, Strategy::Pref, 8),
    ];
    let request = client::SubmitRequest {
        grid: client::Grid::Cells(cells.clone()),
        procs: Some(2),
        refs: Some(6000),
        seed: None,
        deadline_ms: None,
        hw_prefetch: None,
        protocol: None,
        sampling: None,
    };
    let submit = |req: client::SubmitRequest, addr: String| {
        std::thread::spawn(move || client::submit(&addr, &req).unwrap())
    };
    let a = submit(request.clone(), addr.clone());
    let b = submit(request.clone(), addr.clone());
    let (fa, fb) = (a.join().unwrap(), b.join().unwrap());

    let summaries = |frames: &[client::Frame]| -> Vec<String> {
        frames
            .iter()
            .filter_map(|f| match f {
                client::Frame::Cell(sum) => Some(charlie::checkpoint::encode_summary(sum)),
                _ => None,
            })
            .collect()
    };
    assert_eq!(summaries(&fa), summaries(&fb), "duplicate campaigns must agree");
    assert_eq!(summaries(&fa).len(), cells.len());

    let stats = client::stats(&addr).unwrap();
    assert_eq!(
        stats_num(&stats, "cache", "misses"),
        cells.len() as u64,
        "each distinct cell simulates exactly once: {stats}"
    );
    assert_eq!(
        stats_num(&stats, "cache", "hits") + stats_num(&stats, "cache", "coalesced"),
        cells.len() as u64,
        "the duplicate campaign is served from cache/in-flight claims: {stats}"
    );
    assert_eq!(stats_num(&stats, "cells", "executed"), cells.len() as u64, "{stats}");

    client::shutdown(&addr).unwrap();
    runner.join().unwrap();
}

/// A deadline-bound campaign degrades with `WallClockExceeded` progress
/// counters; a second deadline-free client on the same grid is unaffected
/// (the interrupted cells finished into the shared cache).
#[test]
fn deadline_exceeded_reports_progress_and_spares_others() {
    let mut cfg = server_config(scratch("deadline"));
    cfg.jobs = 1; // serialize cells so a short deadline reliably fires
    let (_server, addr, runner) = start_server(cfg);
    let cells = vec![
        Experiment::paper(Workload::Water, Strategy::NoPrefetch, 8),
        Experiment::paper(Workload::Water, Strategy::Pref, 8),
        Experiment::paper(Workload::Water, Strategy::Pws, 8),
    ];
    let impatient = client::SubmitRequest {
        grid: client::Grid::Cells(cells.clone()),
        procs: Some(2),
        refs: Some(20_000),
        seed: None,
        deadline_ms: Some(1),
        hw_prefetch: None,
        protocol: None,
        sampling: None,
    };
    let frames = client::submit(&addr, &impatient).unwrap();
    let exceeded = frames
        .iter()
        .find_map(|f| match f {
            client::Frame::DeadlineExceeded { limit_ms, completed, remaining } => {
                Some((*limit_ms, *completed, *remaining))
            }
            _ => None,
        })
        .expect("a 1ms deadline over fresh cells must fire");
    let (limit_ms, completed, remaining) = exceeded;
    assert_eq!(limit_ms, 1);
    assert!(remaining > 0, "progress counters must report unfinished cells");
    assert_eq!(completed as usize + remaining as usize, cells.len());

    // Same grid, no deadline: completes fully — the impatient client's
    // abandoned cells landed in the cache rather than poisoning it.
    let patient = client::SubmitRequest { deadline_ms: None, ..impatient };
    let frames = client::submit(&addr, &patient).unwrap();
    match frames.last().expect("frames") {
        client::Frame::Done { completed, failed, .. } => {
            assert_eq!(*completed as usize, cells.len());
            assert_eq!(*failed, 0);
        }
        other => panic!("patient client must complete, got {other:?}"),
    }
    let stats = client::stats(&addr).unwrap();
    assert_eq!(stats_num(&stats, "campaigns", "deadline_exceeded"), 1, "{stats}");
    assert_eq!(stats_num(&stats, "cells", "executed"), cells.len() as u64, "{stats}");

    client::shutdown(&addr).unwrap();
    runner.join().unwrap();
}

/// A saturated daemon sheds with a structured retryable reply instead of
/// queueing unboundedly, and recovers once the queue drains.
#[test]
fn saturated_daemon_sheds_with_retry_hint() {
    let mut cfg = server_config(scratch("shed"));
    cfg.queue = 1;
    cfg.jobs = 1;
    let (_server, addr, runner) = start_server(cfg);
    let slow = client::SubmitRequest {
        grid: client::Grid::Cells(vec![
            Experiment::paper(Workload::Water, Strategy::NoPrefetch, 8),
            Experiment::paper(Workload::Water, Strategy::Pref, 8),
        ]),
        procs: Some(2),
        refs: Some(30_000),
        seed: None,
        deadline_ms: None,
        hw_prefetch: None,
        protocol: None,
        sampling: None,
    };
    let occupant = {
        let (slow, addr) = (slow.clone(), addr.clone());
        std::thread::spawn(move || client::submit(&addr, &slow).unwrap())
    };
    // Wait until the occupant holds the only queue slot.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let stats = client::stats(&addr).unwrap();
        if stats_num(&stats, "queue", "active") >= 1 {
            break;
        }
        assert!(Instant::now() < deadline, "occupant never admitted");
        std::thread::sleep(Duration::from_millis(10));
    }
    let shed = client::submit(&addr, &slow).unwrap();
    match shed.first().expect("a reply frame") {
        client::Frame::Saturated { retry_after_ms } => {
            // The hint is jittered per client (seeded from the peer address)
            // to spread retry storms: base 1000ms scaled into [0.75, 1.25).
            assert!(
                (750..1250).contains(retry_after_ms),
                "retry hint must be jittered around the base: {retry_after_ms}"
            );
        }
        other => panic!("expected saturated shed, got {other:?}"),
    }
    let frames = occupant.join().unwrap();
    assert!(frames.iter().any(|f| matches!(f, client::Frame::Done { .. })));
    let stats = client::stats(&addr).unwrap();
    assert_eq!(stats_num(&stats, "admission", "shed"), 1, "{stats}");

    client::shutdown(&addr).unwrap();
    runner.join().unwrap();
}

/// The HTTP shim speaks enough HTTP/1.1 for curl: stats over GET, campaign
/// submission over POST, 404 elsewhere.
#[test]
fn http_shim_answers_stats_and_404() {
    let (_server, addr, runner) = start_server(server_config(scratch("http")));
    let http = |request: &str| -> String {
        let mut stream = TcpStream::connect(&addr).unwrap();
        stream.write_all(request.as_bytes()).unwrap();
        let mut reply = String::new();
        stream.read_to_string(&mut reply).unwrap();
        reply
    };
    let stats = http("GET /stats HTTP/1.1\r\nHost: x\r\n\r\n");
    assert!(stats.starts_with("HTTP/1.1 200 OK"), "{stats}");
    assert!(stats.contains("\"admission\""), "{stats}");

    let missing = http("GET /nope HTTP/1.1\r\nHost: x\r\n\r\n");
    assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");

    let body = "{\"cmd\":\"submit\",\"cells\":[{\"workload\":\"Water\",\"strategy\":\"NP\",\
                \"transfer\":8,\"layout\":\"interleaved\"}],\"procs\":2,\"refs\":600}";
    let submitted = http(&format!(
        "POST /submit HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    ));
    assert!(submitted.starts_with("HTTP/1.1 200 OK"), "{submitted}");
    assert!(submitted.contains("\"done\":true"), "{submitted}");

    client::shutdown(&addr).unwrap();
    runner.join().unwrap();
}

/// Writes one hostile payload line and reads back whatever single-line
/// reply (if any) the daemon produces.
fn poke(addr: &str, payload: &[u8]) -> String {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let _ = stream.write_all(payload);
    let _ = stream.write_all(b"\n");
    let mut reply = String::new();
    let _ = BufReader::new(stream).read_line(&mut reply);
    reply
}

/// One shared always-on server for the hostile-bytes probes; the runner
/// thread is deliberately leaked (the test process exit reaps it).
fn garbage_server_addr() -> &'static str {
    static ADDR: std::sync::OnceLock<String> = std::sync::OnceLock::new();
    ADDR.get_or_init(|| {
        let server = Arc::new(Server::bind(server_config(scratch("garbage-shared"))).unwrap());
        let addr = server.local_addr().unwrap().to_string();
        std::thread::spawn(move || {
            let _ = server.run();
        });
        addr
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random binary garbage never panics the daemon: after every probe it
    /// still answers a liveness ping.
    #[test]
    fn random_garbage_never_panics_the_daemon(bytes in collection::vec(0u8..=255u8, 0..256)) {
        let addr = garbage_server_addr();
        let _ = poke(addr, &bytes);
        let pong = client::ping(addr).unwrap();
        prop_assert!(pong.contains("pong"), "daemon unresponsive after garbage: {pong}");
    }

    /// Deeply nested request bodies never panic (or abort!) the daemon:
    /// the parser's depth cap answers `bad_request` long before the
    /// recursion could overflow the connection thread's stack — a stack
    /// overflow is not catchable and would kill every in-flight campaign.
    #[test]
    fn deep_nesting_never_panics_the_daemon(
        depth in 1usize..30_000,
        obj in any::<bool>(),
    ) {
        let addr = garbage_server_addr();
        let mut payload = Vec::new();
        for _ in 0..depth {
            payload.extend_from_slice(if obj { b"{\"k\":" } else { b"[" });
        }
        payload.push(b'0');
        for _ in 0..depth {
            payload.push(if obj { b'}' } else { b']' });
        }
        let reply = poke(addr, &payload);
        if depth > 64 {
            prop_assert!(reply.contains("bad_request"), "expected bad_request: {reply}");
        }
        let pong = client::ping(addr).unwrap();
        prop_assert!(pong.contains("pong"), "daemon unresponsive after deep nesting: {pong}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random worker-kill schedules never break exactly-once publication.
    /// Each killed worker dies — heartbeats and all — immediately after a
    /// claim lands (the adversarial boundary), stranding a durable lease
    /// that only a generation-fenced reclaim can recover. A rescuer then
    /// finishes the grid. The merged journal must hold exactly one summary
    /// per cell, monotone generations per cell, and summaries byte-equal
    /// to a serial reference run of the same cells.
    #[test]
    fn worker_kill_schedules_preserve_exactly_once(
        kills in collection::vec(1u64..=3, 0..=2),
    ) {
        use charlie::checkpoint::{encode_summary, scan_shared};
        use charlie_serve::worker::{self, WorkerConfig};
        static CASE: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
        let case = CASE.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir = scratch(&format!("kill-schedule-{case}"));

        let cells = vec![
            Experiment::paper(Workload::Water, Strategy::NoPrefetch, 8),
            Experiment::paper(Workload::Water, Strategy::Pref, 8),
            Experiment::paper(Workload::Water, Strategy::Lpd, 8),
            Experiment::paper(Workload::Water, Strategy::Pws, 8),
        ];
        let request = client::SubmitRequest {
            grid: client::Grid::Cells(cells.clone()),
            procs: Some(2),
            refs: Some(500),
            seed: None,
            deadline_ms: None,
            hw_prefetch: None,
            protocol: None,
            sampling: None,
        };
        let m = worker::write_manifest(&dir, &request.encode()).unwrap();

        let base = |id: &str| {
            let mut cfg = WorkerConfig::new(&dir);
            cfg.id = id.to_owned();
            cfg.lease_ms = 50;
            cfg.poll_ms = 5;
            cfg.exit_when_idle = true;
            cfg
        };
        // The doomed workers run first, each dying mid-claim and leaving
        // an unexpired lease the next worker must wait out.
        for (i, claims) in kills.iter().enumerate() {
            let mut cfg = base(&format!("k{i}"));
            cfg.die_after_claims = Some(*claims);
            worker::run_worker(&cfg).unwrap();
        }
        let report = worker::run_worker(&base("rescue")).unwrap();
        prop_assert!(!report.drained);

        let scan = scan_shared(&m.journal, Some(&m.key)).unwrap();
        prop_assert_eq!(scan.duplicate_summaries, 0, "every cell publishes exactly once");
        prop_assert_eq!(scan.corrupt_lines, 0);
        let mut last_gen = std::collections::HashMap::new();
        for lease in &scan.leases {
            let floor = last_gen.entry(lease.cell).or_insert(0u64);
            prop_assert!(
                lease.gen >= *floor,
                "generations regress for cell {}: {} after {}", lease.cell, lease.gen, *floor
            );
            *floor = lease.gen;
        }
        // The first doomed worker always dies holding a fresh grid's lease,
        // so any nonempty schedule forces at least one reclaim somewhere.
        if !kills.is_empty() {
            prop_assert!(
                scan.leases.iter().any(|l| l.gen >= 2),
                "a stranded lease must be reclaimed under a higher generation"
            );
        }

        let collected = worker::collect(&m).unwrap();
        for (exp, got) in cells.iter().zip(&collected) {
            let got = got.as_ref().expect("every cell published");
            let reference = charlie::execute_cell(&m.cell_cfg, *exp).unwrap();
            prop_assert_eq!(encode_summary(got), encode_summary(&reference));
        }
        worker::finalize(&m).unwrap();
        let compacted = worker::collect(&m).unwrap();
        prop_assert!(
            compacted.iter().all(|s| s.is_some()),
            "compaction must preserve every summary"
        );
    }
}

/// Malformed, oversized, or wrong-shape requests never panic the daemon:
/// every probe gets (at most) an error frame, and the daemon stays fully
/// serviceable afterwards.
#[test]
fn malformed_requests_never_panic_the_daemon() {
    let (_server, addr, runner) = start_server(server_config(scratch("garbage")));

    // Directed probes for every validation edge.
    let reply = poke(&addr, &vec![b'x'; charlie_serve::MAX_REQUEST_BYTES + 64]);
    assert!(reply.contains("oversized"), "cap must answer oversized: {reply}");
    for bad in [
        &b""[..],
        b"not json at all",
        b"42",
        b"{\"nocmd\":1}",
        b"{\"cmd\":\"frobnicate\"}",
        b"{\"cmd\":\"submit\"}",
        b"{\"cmd\":\"submit\",\"grid\":\"bogus\"}",
        b"{\"cmd\":\"submit\",\"cells\":[{\"workload\":\"Nope\",\"strategy\":\"NP\",\
          \"transfer\":8,\"layout\":\"interleaved\"}]}",
        b"{\"cmd\":\"submit\",\"grid\":\"paper\",\"procs\":0}",
        b"\xff\xfe\x00\x01\x02",
        b"GET \r\n",
        b"POST /submit HTTP/1.1",
    ] {
        let _ = poke(&addr, bad);
    }

    // Still alive, still serving real work.
    let pong = client::ping(&addr).unwrap();
    assert!(pong.contains("pong"), "{pong}");
    let request = client::SubmitRequest {
        grid: client::Grid::Cells(vec![Experiment::paper(
            Workload::Water,
            Strategy::NoPrefetch,
            8,
        )]),
        procs: Some(2),
        refs: Some(600),
        seed: None,
        deadline_ms: None,
        hw_prefetch: None,
        protocol: None,
        sampling: None,
    };
    let frames = client::submit(&addr, &request).unwrap();
    assert!(frames.iter().any(|f| matches!(f, client::Frame::Done { .. })));

    client::shutdown(&addr).unwrap();
    runner.join().unwrap();
}

/// Satellite 6 regression: filesystem failures in the durability commands
/// carry the path and the operation, never a bare `os error`.
#[test]
fn io_errors_are_contextual() {
    let dir = scratch("io-context");
    let blocker = dir.join("not-a-dir");
    std::fs::write(&blocker, b"file, not dir").unwrap();

    // chaos --dir pointing *through* a file cannot create its scratch dir.
    let inner = blocker.join("scratch");
    let (code, text) = run(&["chaos", "--dir", inner.to_str().unwrap(), "--points", "1"]);
    assert_eq!(code, 2);
    assert!(
        text.contains("creating scratch dir") && text.contains("not-a-dir"),
        "chaos must name the dir and the operation: {text}"
    );

    // bench --out through a file: atomic writer reports path + operation.
    let out_path = blocker.join("bench.json");
    let (code, text) =
        run(&["bench", "--quick", "--refs", "300", "--procs", "2", "--out", out_path.to_str().unwrap()]);
    assert_eq!(code, 2);
    assert!(
        text.contains("writing") && text.contains("bench.json"),
        "bench --out must name the path and the operation: {text}"
    );

    // bench --baseline against a missing file: read context.
    let missing = dir.join("no-such-baseline.json");
    let (code, text) = run(&[
        "bench", "--quick", "--refs", "300", "--procs", "2", "--baseline",
        missing.to_str().unwrap(),
    ]);
    assert_eq!(code, 2);
    assert!(
        text.contains("reading") && text.contains("no-such-baseline.json"),
        "bench --baseline must name the path and the operation: {text}"
    );
}
