//! Property tests for the sampled-simulation subsystem (DESIGN.md §17).
//!
//! Three contracts, stated against the public `charlie` API:
//!
//! * **Confidence-interval containment** — on small randomized cells where
//!   the sampling schedule keeps dense detailed coverage, the 99% CI the
//!   SMARTS estimator reports must contain the exact execution time and
//!   bus-busy cycle counts. (Sparse schedules on heavy-phase workloads can
//!   legitimately miss at the 1% level; dense coverage plus the estimator's
//!   4% bias floor makes containment a hard property here.)
//! * **Sampling-off identity** — a `RunConfig` with `sampling: None` must
//!   produce a checkpoint-encoded `RunSummary` that is byte-identical
//!   whether or not sampled runs of the same cell happened elsewhere, and
//!   sampled summaries must round-trip the checkpoint codec exactly.
//! * **Scheduling-independence** — `calibrate` (and the k-means clustering
//!   inside SimPoint mode) must return bit-identical results at `--jobs`
//!   1, 2 and 8.

use charlie::checkpoint::{decode_summary, encode_summary};
use charlie::Strategy as Prefetch;
use charlie::{calibrate, Experiment, Lab, RunConfig, SamplingConfig, SamplingMode, Workload};
use proptest::prelude::*;

fn arb_workload() -> impl Strategy<Value = Workload> {
    prop_oneof![
        Just(Workload::Mp3d),
        Just(Workload::Pverify),
        Just(Workload::Water),
        Just(Workload::Topopt),
    ]
}

fn arb_strategy() -> impl Strategy<Value = Prefetch> {
    prop_oneof![Just(Prefetch::NoPrefetch), Just(Prefetch::Pref), Just(Prefetch::Pws)]
}

/// A small run configuration: a few dozen 1024-access windows, so exact
/// and sampled runs both finish in milliseconds.
fn small_run_cfg(refs: usize, procs: usize, seed: u64) -> RunConfig {
    RunConfig { refs_per_proc: refs, procs, seed, ..RunConfig::default() }
}

/// A dense SMARTS schedule: small window, short period, a real cold
/// stratum. Detailed coverage stays high enough that the estimator's CI
/// must contain the exact value, not just usually contain it.
fn dense_smarts(period: u64, cold: u64) -> SamplingConfig {
    SamplingConfig {
        window_accesses: 1024,
        period,
        warmup: 1,
        cold,
        ..SamplingConfig::smarts()
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// The reported 99% CI contains the exact execution time and bus-busy
    /// cycles on densely-sampled small cells.
    #[test]
    fn ci_contains_exact_on_dense_schedules(
        workload in arb_workload(),
        strategy in arb_strategy(),
        transfer in prop_oneof![Just(4u64), Just(8u64), Just(32u64)],
        refs in 6_000usize..14_000,
        procs in 2usize..=4,
        seed in 0u64..4,
        period in 3u64..=6,
        cold in 4u64..=8,
    ) {
        let cfg = small_run_cfg(refs, procs, seed);
        let grid = [Experiment::paper(workload, strategy, transfer)];
        let cal = calibrate(&cfg, &dense_smarts(period, cold), &grid, 1).unwrap();
        let cell = &cal.cells[0];
        prop_assert!(
            cell.ci_contains_cycles(),
            "cycles CI missed: exact {} est {} ci {}",
            cell.exact_cycles,
            cell.sampled.est_cycles,
            cell.sampled.ci_cycles,
        );
        prop_assert!(
            cell.ci_contains_bus(),
            "bus CI missed: exact {} est {} ci {}",
            cell.exact_bus_busy,
            cell.sampled.est_bus_busy,
            cell.sampled.ci_bus_busy,
        );
    }

    /// `sampling: None` output is byte-identical no matter what sampled
    /// runs happen around it, and sampled summaries round-trip the
    /// checkpoint codec.
    #[test]
    fn sampling_off_is_byte_identical(
        workload in arb_workload(),
        strategy in arb_strategy(),
        transfer in prop_oneof![Just(4u64), Just(16u64)],
        refs in 3_000usize..8_000,
        seed in 0u64..4,
        mode in prop_oneof![Just(SamplingMode::Smarts), Just(SamplingMode::Simpoint)],
    ) {
        let exp = Experiment::paper(workload, strategy, transfer);
        let cfg = small_run_cfg(refs, 4, seed);

        let baseline = encode_summary(Lab::new(cfg.clone()).run(exp));

        // Interleave a sampled run of the same cell, then re-run exact.
        let mut scfg = match mode {
            SamplingMode::Smarts => dense_smarts(4, 4),
            SamplingMode::Simpoint => SamplingConfig {
                window_accesses: 1024,
                max_k: 4,
                ..SamplingConfig::simpoint()
            },
        };
        scfg.mode = mode;
        let sampled_cfg = RunConfig { sampling: Some(scfg), ..cfg.clone() };
        let mut sampled_lab = Lab::new(sampled_cfg);
        let sampled = sampled_lab.run(exp).clone();
        let summary = sampled.sampled.expect("sampled run must carry a SampledSummary");
        prop_assert!(sampled.timeline.is_none(), "sampled runs carry no timeline");
        prop_assert_eq!(sampled.report.cycles, summary.est_cycles);

        let again = encode_summary(Lab::new(cfg.clone()).run(exp));
        prop_assert_eq!(&baseline, &again, "sampling-off output must be byte-identical");
        prop_assert!(!baseline.contains("\"sampled\""), "exact summaries must not grow fields");

        // The sampled summary itself round-trips the checkpoint codec.
        let encoded = encode_summary(&sampled);
        let decoded = decode_summary(&encoded).unwrap();
        prop_assert_eq!(decoded.sampled, Some(summary));
        prop_assert_eq!(encode_summary(&decoded), encoded);
    }

    /// Calibration — including the seeded k-means inside SimPoint mode —
    /// is bit-identical across worker counts.
    #[test]
    fn calibrate_is_jobs_invariant(
        mode in prop_oneof![Just(SamplingMode::Smarts), Just(SamplingMode::Simpoint)],
        refs in 3_000usize..6_000,
        seed in 0u64..4,
    ) {
        let cfg = small_run_cfg(refs, 2, seed);
        let grid = [
            Experiment::paper(Workload::Mp3d, Prefetch::NoPrefetch, 8),
            Experiment::paper(Workload::Water, Prefetch::Pref, 32),
        ];
        let mut scfg = match mode {
            SamplingMode::Smarts => dense_smarts(4, 4),
            SamplingMode::Simpoint => SamplingConfig {
                window_accesses: 512,
                max_k: 4,
                ..SamplingConfig::simpoint()
            },
        };
        scfg.mode = mode;
        let reference = calibrate(&cfg, &scfg, &grid, 1).unwrap();
        for jobs in [2, 8] {
            let other = calibrate(&cfg, &scfg, &grid, jobs).unwrap();
            prop_assert_eq!(reference.cells.len(), other.cells.len());
            for (a, b) in reference.cells.iter().zip(&other.cells) {
                prop_assert_eq!(&a.experiment, &b.experiment);
                prop_assert_eq!(a.exact_cycles, b.exact_cycles);
                prop_assert_eq!(a.exact_bus_busy, b.exact_bus_busy);
                prop_assert_eq!(a.sampled, b.sampled, "jobs {} diverged", jobs);
            }
        }
    }
}
