//! Qualitative reproduction checks: the paper's headline claims must hold in
//! shape (who wins, roughly by how much, where the crossovers are), even at
//! reduced trace sizes. EXPERIMENTS.md records the full-size quantitative
//! comparison.

use charlie::{Experiment, Lab, RunConfig, Strategy, Workload};

fn lab() -> Lab {
    // Large enough that steady-state rates dominate cold-start misses (the
    // paper traced ~2M references per processor).
    Lab::new(RunConfig { procs: 8, refs_per_proc: 120_000, seed: 0xC0FFEE, ..RunConfig::default() })
}

/// §4.2: "Execution time typically fell when bus loads were lighter" — the
/// heavy-sharing workloads gain from prefetching on the fastest bus.
#[test]
fn prefetching_helps_on_the_fast_bus() {
    let mut lab = lab();
    for w in [Workload::Pverify, Workload::Mp3d] {
        let rel = lab.relative_time(Experiment::paper(w, Strategy::Pws, 4));
        assert!(rel < 1.0, "{w}: PWS on the 4-cycle bus must win, got {rel:.3}");
    }
}

/// §4.2: "execution time increased when the bus was saturated" — on the
/// 32-cycle bus, Mp3d (the bus-bound workload) gains nothing from PREF.
#[test]
fn no_pref_win_at_saturation() {
    let mut lab = lab();
    let rel = lab.relative_time(Experiment::paper(Workload::Mp3d, Strategy::Pref, 32));
    assert!(
        rel > 0.95,
        "Mp3d/PREF at 32 cycles must not show a real speedup (bus saturated), got {rel:.3}"
    );
}

/// §4.2: speedups are bounded (max 1.39 in the paper); no strategy produces
/// miraculous wins, and degradations stay moderate (worst ~7%).
#[test]
fn gains_and_losses_are_bounded() {
    let mut lab = lab();
    for w in Workload::ALL {
        for s in [Strategy::Pref, Strategy::Pws] {
            for lat in [4, 16, 32] {
                let rel = lab.relative_time(Experiment::paper(w, s, lat));
                assert!(
                    (0.5..=1.15).contains(&rel),
                    "{w}/{s}@{lat}: rel time {rel:.3} outside the paper's plausible band"
                );
            }
        }
    }
}

/// §4.2: Water has little to gain — "the best any memory-latency hiding
/// technique can do is to bring processor utilization to 1", so its gain is
/// bounded by its already-high NP utilization.
#[test]
fn water_gain_bounded_by_headroom() {
    let mut lab = lab();
    for lat in [4, 32] {
        let util = lab
            .run(Experiment::paper(Workload::Water, Strategy::NoPrefetch, lat))
            .report
            .avg_processor_utilization();
        let rel = lab.relative_time(Experiment::paper(Workload::Water, Strategy::Pref, lat));
        assert!(
            rel >= 0.95 * util,
            "Water/PREF@{lat}: {rel:.3} beats the utilization bound ({util:.2})"
        );
        assert!(rel <= 1.05, "Water/PREF@{lat}: {rel:.3} should not degrade much");
    }
}

/// §4.4 headline: "the limit to effective prefetching … is invalidation
/// misses": under PREF, invalidation misses are the largest CPU-miss
/// component for the sharing-heavy workloads.
#[test]
fn invalidation_misses_dominate_under_pref() {
    let mut lab = lab();
    for w in [Workload::Pverify, Workload::Topopt] {
        let r = lab.run(Experiment::paper(w, Strategy::Pref, 8)).report.clone();
        let m = r.miss;
        assert!(
            m.invalidation() > m.non_sharing(),
            "{w}: inval {} must exceed non-sharing {} under PREF",
            m.invalidation(),
            m.non_sharing()
        );
        assert!(
            m.invalidation() >= m.prefetch_in_progress,
            "{w}: inval misses must be the largest component"
        );
    }
}

/// §4.1/§4.2: PREF covers a large share of CPU misses (37–71% raw, 38–77%
/// adjusted in Figure 1). The raw rate is polluted by prefetch-in-progress
/// misses ("often a large portion of the CPU miss rate"), so the robust
/// check is on the adjusted rate; the sharing-bound workloads sit at the
/// low end because invalidation misses are untouchable.
#[test]
fn pref_covers_a_large_share_of_cpu_misses() {
    let mut lab = lab();
    for w in Workload::ALL {
        let np = lab.run(Experiment::paper(w, Strategy::NoPrefetch, 8)).report.clone();
        let pf = lab.run(Experiment::paper(w, Strategy::Pref, 8)).report.clone();
        let adjusted =
            1.0 - pf.adjusted_cpu_miss_rate() / np.adjusted_cpu_miss_rate();
        assert!(
            adjusted > 0.2,
            "{w}: PREF must cut adjusted CPU misses by >20%, got {:.0}%",
            100.0 * adjusted
        );
        let raw = 1.0 - pf.cpu_miss_rate() / np.cpu_miss_rate();
        assert!(raw > 0.0, "{w}: even the raw CPU miss rate must fall");
    }
}

/// §4.4: PWS beats PREF on CPU misses for the write-sharing workloads
/// ("CPU miss rates for PWS were 11% to 64% lower than PREF").
#[test]
fn pws_beats_pref_on_cpu_misses() {
    let mut lab = lab();
    for w in [Workload::Pverify, Workload::Topopt, Workload::Mp3d] {
        let pref = lab.run(Experiment::paper(w, Strategy::Pref, 4)).report.clone();
        let pws = lab.run(Experiment::paper(w, Strategy::Pws, 4)).report.clone();
        assert!(
            pws.cpu_miss_rate() < pref.cpu_miss_rate(),
            "{w}: PWS CPU MR {:.4} must be below PREF {:.4}",
            pws.cpu_miss_rate(),
            pref.cpu_miss_rate()
        );
    }
}

/// §4.3: LPD trades prefetch-in-progress misses for conflict misses and
/// "does not pay off in performance".
#[test]
fn lpd_does_not_beat_pref() {
    let mut lab = lab();
    for w in [Workload::Mp3d, Workload::Topopt] {
        let pref = lab.run(Experiment::paper(w, Strategy::Pref, 8)).report.clone();
        let lpd = lab.run(Experiment::paper(w, Strategy::Lpd, 8)).report.clone();
        assert!(
            lpd.miss.prefetch_in_progress <= pref.miss.prefetch_in_progress,
            "{w}: LPD must cut in-progress misses"
        );
        let rel_pref = lab.relative_time(Experiment::paper(w, Strategy::Pref, 8));
        let rel_lpd = lab.relative_time(Experiment::paper(w, Strategy::Lpd, 8));
        assert!(
            rel_lpd >= rel_pref - 0.02,
            "{w}: LPD ({rel_lpd:.3}) must not meaningfully beat PREF ({rel_pref:.3})"
        );
    }
}

/// §4.3: EXCL "tracks our base strategy extremely closely".
#[test]
fn excl_tracks_pref_closely() {
    let mut lab = lab();
    for w in Workload::ALL {
        let rel_pref = lab.relative_time(Experiment::paper(w, Strategy::Pref, 8));
        let rel_excl = lab.relative_time(Experiment::paper(w, Strategy::Excl, 8));
        assert!(
            (rel_pref - rel_excl).abs() < 0.05,
            "{w}: EXCL ({rel_excl:.3}) must track PREF ({rel_pref:.3})"
        );
    }
}

/// Table 3: false sharing accounts for over half of invalidation misses for
/// most of the workloads.
#[test]
fn false_sharing_is_over_half_of_invalidations_for_most() {
    let mut lab = lab();
    let mut majority = 0;
    for w in Workload::ALL {
        let r = lab.run(Experiment::paper(w, Strategy::NoPrefetch, 8)).report.clone();
        let inval = r.miss.invalidation();
        if inval > 0 && r.false_sharing_misses * 2 > inval {
            majority += 1;
        }
    }
    assert!(majority >= 3, "false sharing must dominate invalidations for most workloads");
}

/// Table 4: restructuring slashes invalidation misses (×6 for Topopt, ×4
/// for Pverify in the paper — we require at least ×2.5).
#[test]
fn restructuring_slashes_invalidation_misses() {
    let mut lab = lab();
    for w in [Workload::Topopt, Workload::Pverify] {
        let orig = lab.run(Experiment::paper(w, Strategy::NoPrefetch, 8)).report.clone();
        let restr =
            lab.run(Experiment::paper(w, Strategy::NoPrefetch, 8).restructured()).report.clone();
        let factor = orig.invalidation_miss_rate() / restr.invalidation_miss_rate().max(1e-9);
        assert!(
            factor > 2.5,
            "{w}: restructuring must cut invalidation misses by >2.5x, got {factor:.1}x"
        );
    }
}

/// Table 4: restructured Topopt also loses much of its *non-sharing* miss
/// rate (the locality improvement), unlike Pverify.
#[test]
fn restructured_topopt_gains_locality() {
    let mut lab = lab();
    let orig = lab.run(Experiment::paper(Workload::Topopt, Strategy::NoPrefetch, 8)).report.clone();
    let restr = lab
        .run(Experiment::paper(Workload::Topopt, Strategy::NoPrefetch, 8).restructured())
        .report
        .clone();
    assert!(
        restr.non_sharing_miss_rate() < 0.7 * orig.non_sharing_miss_rate(),
        "restructured Topopt non-sharing MR {:.4} must be well below {:.4}",
        restr.non_sharing_miss_rate(),
        orig.non_sharing_miss_rate()
    );
}

/// §4.4: after restructuring, plain PREF approaches PWS ("the performance of
/// the simplest prefetching algorithm approached that of the strategy
/// tailored to write-shared data").
#[test]
fn after_restructuring_pref_approaches_pws() {
    let mut lab = lab();
    for w in [Workload::Topopt, Workload::Pverify] {
        let pref = lab.relative_time(Experiment::paper(w, Strategy::Pref, 4).restructured());
        let pws = lab.relative_time(Experiment::paper(w, Strategy::Pws, 4).restructured());
        assert!(
            (pref - pws).abs() < 0.05,
            "{w} restructured: PREF ({pref:.3}) must approach PWS ({pws:.3})"
        );
    }
}

/// §4.2: NP processor utilizations order the workloads the way the paper
/// reports: Water highest, Mp3d/Pverify lowest.
#[test]
fn processor_utilization_ordering() {
    let mut lab = lab();
    let util = |lab: &mut Lab, w| {
        lab.run(Experiment::paper(w, Strategy::NoPrefetch, 4))
            .report
            .avg_processor_utilization()
    };
    let water = util(&mut lab, Workload::Water);
    let mp3d = util(&mut lab, Workload::Mp3d);
    let pverify = util(&mut lab, Workload::Pverify);
    let topopt = util(&mut lab, Workload::Topopt);
    assert!(water > topopt, "Water ({water:.2}) > Topopt ({topopt:.2})");
    assert!(topopt > mp3d, "Topopt ({topopt:.2}) > Mp3d ({mp3d:.2})");
    assert!(water > pverify, "Water ({water:.2}) > Pverify ({pverify:.2})");
}
