//! Plain-text trace serialization.
//!
//! Traces round-trip through a line-oriented format so users can bring their
//! own address traces (or export, inspect and edit generated ones):
//!
//! ```text
//! # anything after '#' is a comment
//! charlie-trace v1
//! procs 2
//! proc 0
//! w 12            # 12 cycles of CPU work
//! r 0x1000        # read
//! W 0x1004        # write
//! p 0x2000        # shared-mode prefetch
//! P 0x3000        # exclusive-mode prefetch
//! l 3             # acquire lock 3
//! u 3             # release lock 3
//! b 0             # barrier episode 0
//! proc 1
//! b 0
//! ```
//!
//! Addresses accept hex (`0x…`) or decimal. Events belong to the most recent
//! `proc` header; every processor in `procs N` must get a header (even if
//! its stream is empty).

use crate::addr::Addr;
use crate::event::{Access, BarrierId, LockId, TraceEvent};
use crate::stream::{ProcTrace, Trace};
use std::error::Error;
use std::fmt;
use std::io::{BufRead, Write};

/// Magic first line of the format.
const MAGIC: &str = "charlie-trace v1";

/// Error reading a serialized trace.
#[derive(Debug)]
pub enum ReadTraceError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural or syntactic problem at a given 1-based line number.
    Parse {
        /// Line the problem was found on.
        line: usize,
        /// Byte offset of the start of that line within the input — what a
        /// user seeks to in a multi-megabyte trace their editor won't open.
        byte: usize,
        /// What went wrong, phrased as "expected X, found Y" where possible.
        message: String,
    },
}

impl fmt::Display for ReadTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadTraceError::Io(e) => write!(f, "i/o error reading trace: {e}"),
            ReadTraceError::Parse { line, byte, message } => {
                write!(f, "line {line} (byte offset {byte}): {message}")
            }
        }
    }
}

impl Error for ReadTraceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ReadTraceError::Io(e) => Some(e),
            ReadTraceError::Parse { .. } => None,
        }
    }
}

impl From<std::io::Error> for ReadTraceError {
    fn from(e: std::io::Error) -> Self {
        ReadTraceError::Io(e)
    }
}

/// Serializes `trace` to `out` in the v1 text format.
///
/// # Errors
///
/// Propagates I/O errors from `out`.
pub fn write_trace<W: Write>(trace: &Trace, mut out: W) -> std::io::Result<()> {
    writeln!(out, "{MAGIC}")?;
    writeln!(out, "procs {}", trace.num_procs())?;
    for (p, stream) in trace.iter() {
        writeln!(out, "proc {}", p.index())?;
        for ev in stream.events() {
            match ev {
                TraceEvent::Work(n) => writeln!(out, "w {n}")?,
                TraceEvent::Access(a) => {
                    let tag = if a.kind.is_write() { 'W' } else { 'r' };
                    writeln!(out, "{tag} {:#x}", a.addr.raw())?;
                }
                TraceEvent::Prefetch { addr, exclusive } => {
                    let tag = if *exclusive { 'P' } else { 'p' };
                    writeln!(out, "{tag} {:#x}", addr.raw())?;
                }
                TraceEvent::LockAcquire(l) => writeln!(out, "l {}", l.0)?,
                TraceEvent::LockRelease(l) => writeln!(out, "u {}", l.0)?,
                TraceEvent::Barrier(b) => writeln!(out, "b {}", b.0)?,
            }
        }
    }
    Ok(())
}

/// Position of a parsed line: 1-based line number plus the byte offset of
/// the line's first byte within the input.
#[derive(Copy, Clone)]
struct Pos {
    line: usize,
    byte: usize,
}

impl Pos {
    fn err(self, message: String) -> ReadTraceError {
        ReadTraceError::Parse { line: self.line, byte: self.byte, message }
    }
}

/// Reads lines while tracking exact byte offsets (including the newline
/// bytes `BufRead::lines` would discard), so parse errors can point into
/// the raw file.
struct LineReader<R> {
    input: R,
    line: usize,
    byte: usize,
}

impl<R: BufRead> LineReader<R> {
    fn new(input: R) -> Self {
        LineReader { input, line: 0, byte: 0 }
    }

    /// Next non-empty, non-comment line with its position, or `None` at EOF.
    fn next_meaningful(&mut self) -> Result<Option<(Pos, String)>, ReadTraceError> {
        let mut raw = String::new();
        loop {
            let start = self.byte;
            raw.clear();
            let read = self.input.read_line(&mut raw)?;
            if read == 0 {
                return Ok(None);
            }
            self.line += 1;
            self.byte += read;
            let content = raw.split('#').next().unwrap_or("").trim();
            if !content.is_empty() {
                return Ok(Some((Pos { line: self.line, byte: start }, content.to_owned())));
            }
        }
    }

    /// Position just past everything read so far (for EOF errors).
    fn eof_pos(&self) -> Pos {
        Pos { line: self.line, byte: self.byte }
    }
}

fn parse_u64(token: &str, pos: Pos, what: &str) -> Result<u64, ReadTraceError> {
    let parsed = if let Some(hex) = token.strip_prefix("0x").or_else(|| token.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        token.parse()
    };
    parsed.map_err(|_| {
        pos.err(format!("expected {what} (decimal or 0x-hex integer), found {token:?}"))
    })
}

/// Parses a trace from `input` in the v1 text format.
///
/// # Errors
///
/// Returns [`ReadTraceError::Parse`] with a 1-based line number and the
/// byte offset of that line on any malformed line, unknown event tag,
/// out-of-range processor index, or missing header; each message says what
/// record was expected. [`ReadTraceError::Io`] on read failure. The result
/// is *not* lock/barrier-validated — run [`Trace::validate`] before
/// simulating.
pub fn read_trace<R: BufRead>(input: R) -> Result<Trace, ReadTraceError> {
    let mut lines = LineReader::new(input);

    let Some((pos, magic)) = lines.next_meaningful()? else {
        return Err(lines
            .eof_pos()
            .err(format!("empty trace file: expected magic line {MAGIC:?}")));
    };
    if magic != MAGIC {
        return Err(pos.err(format!("expected magic line {MAGIC:?}, found {magic:?}")));
    }

    let Some((pos, procs_line)) = lines.next_meaningful()? else {
        return Err(lines.eof_pos().err("expected `procs N` header, found end of file".into()));
    };
    let num_procs = match procs_line.split_whitespace().collect::<Vec<_>>()[..] {
        ["procs", n] => parse_u64(n, pos, "processor count")? as usize,
        _ => {
            return Err(pos.err(format!("expected `procs N` header, found {procs_line:?}")));
        }
    };
    if num_procs == 0 || num_procs > 64 {
        return Err(pos.err(format!("processor count {num_procs} outside 1..=64")));
    }

    let mut streams: Vec<ProcTrace> = vec![ProcTrace::new(); num_procs];
    let mut current: Option<usize> = None;
    while let Some((pos, content)) = lines.next_meaningful()? {
        let mut parts = content.split_whitespace();
        // `next_meaningful` only yields non-blank content, so a missing
        // first token is unreachable — but a parse error pointing at the
        // line beats a panic if that invariant ever slips.
        let Some(tag) = parts.next() else {
            return Err(pos.err("expected an event tag, found a blank line".into()));
        };
        let arg = parts.next();
        if parts.next().is_some() {
            return Err(pos.err(format!(
                "expected `{tag}` with one argument, found trailing tokens in {content:?}"
            )));
        }
        let arg = |what: &str| -> Result<u64, ReadTraceError> {
            let token = arg
                .ok_or_else(|| pos.err(format!("expected an argument after `{tag}` ({what})")))?;
            parse_u64(token, pos, what)
        };
        if tag == "proc" {
            let p = arg("processor index")? as usize;
            if p >= num_procs {
                return Err(pos.err(format!(
                    "expected processor index in 0..{num_procs}, found {p}"
                )));
            }
            current = Some(p);
            continue;
        }
        let Some(p) = current else {
            return Err(pos.err(format!(
                "expected a `proc P` header before the first event, found `{tag}`"
            )));
        };
        let ev = match tag {
            "w" => TraceEvent::Work(arg("work cycles")? as u32),
            "r" => TraceEvent::Access(Access::read(Addr::new(arg("address")?))),
            "W" => TraceEvent::Access(Access::write(Addr::new(arg("address")?))),
            "p" => TraceEvent::Prefetch { addr: Addr::new(arg("address")?), exclusive: false },
            "P" => TraceEvent::Prefetch { addr: Addr::new(arg("address")?), exclusive: true },
            "l" => TraceEvent::LockAcquire(LockId(arg("lock id")? as u32)),
            "u" => TraceEvent::LockRelease(LockId(arg("lock id")? as u32)),
            "b" => TraceEvent::Barrier(BarrierId(arg("barrier id")? as u32)),
            other => {
                return Err(pos.err(format!(
                    "unknown event tag {other:?}: expected one of \
                     w/r/W/p/P/l/u/b or a `proc P` header"
                )));
            }
        };
        streams[p].push(ev);
    }
    Ok(Trace::from_procs(streams))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TraceBuilder;

    fn sample() -> Trace {
        let mut b = TraceBuilder::new(2);
        b.proc(0)
            .work(12)
            .read(Addr::new(0x1000))
            .write(Addr::new(0x1004))
            .prefetch(Addr::new(0x2000))
            .prefetch_exclusive(Addr::new(0x3000))
            .lock(3)
            .unlock(3)
            .barrier(0);
        b.proc(1).barrier(0);
        b.build()
    }

    fn round_trip(t: &Trace) -> Trace {
        let mut buf = Vec::new();
        write_trace(t, &mut buf).expect("write succeeds");
        read_trace(buf.as_slice()).expect("read succeeds")
    }

    #[test]
    fn round_trips_every_event_kind() {
        let t = sample();
        assert_eq!(round_trip(&t), t);
    }

    #[test]
    fn empty_streams_round_trip() {
        let t = TraceBuilder::new(3).build();
        assert_eq!(round_trip(&t), t);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "\
# leading comment
charlie-trace v1

procs 1
proc 0   # the only processor
r 0x40   # hex address
W 68     # decimal address
";
        let t = read_trace(text.as_bytes()).unwrap();
        assert_eq!(t.proc(0).num_accesses(), 2);
        let accesses: Vec<_> = t.proc(0).accesses().collect();
        assert_eq!(accesses[0].addr, Addr::new(0x40));
        assert_eq!(accesses[1].addr, Addr::new(68));
        assert!(accesses[1].kind.is_write());
    }

    #[test]
    fn rejects_bad_magic() {
        let err = read_trace("dinero v9\nprocs 1\n".as_bytes()).unwrap_err();
        assert!(matches!(err, ReadTraceError::Parse { line: 1, .. }), "{err}");
    }

    #[test]
    fn rejects_unknown_tag_with_line_and_byte() {
        let input = "charlie-trace v1\nprocs 1\nproc 0\nx 5\n";
        let err = read_trace(input.as_bytes()).unwrap_err();
        match err {
            ReadTraceError::Parse { line, byte, message } => {
                assert_eq!(line, 4);
                assert_eq!(byte, input.find("x 5").unwrap());
                assert!(message.contains("unknown event tag"));
                assert!(message.contains("expected one of"), "{message}");
            }
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn byte_offsets_account_for_comments_and_blanks() {
        let input = "# header comment\ncharlie-trace v1\n\nprocs 1\nproc 0\n\n# hm\nr bad\n";
        let err = read_trace(input.as_bytes()).unwrap_err();
        match err {
            ReadTraceError::Parse { line, byte, .. } => {
                assert_eq!(line, 8);
                assert_eq!(byte, input.find("r bad").unwrap());
            }
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn display_includes_byte_offset_and_expectation() {
        let err = read_trace("charlie-trace v1\nprocs 1\nproc 0\nr 0xZZ\n".as_bytes()).unwrap_err();
        let text = err.to_string();
        assert!(text.contains("byte offset 32"), "{text}");
        assert!(text.contains("expected address"), "{text}");
    }

    #[test]
    fn truncated_file_reports_eof_expectation() {
        let err = read_trace("charlie-trace v1\n".as_bytes()).unwrap_err();
        let text = err.to_string();
        assert!(text.contains("expected `procs N` header, found end of file"), "{text}");
    }

    #[test]
    fn rejects_event_before_proc_header() {
        let err = read_trace("charlie-trace v1\nprocs 1\nr 0x40\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("expected a `proc P` header"));
    }

    #[test]
    fn rejects_out_of_range_proc() {
        let err = read_trace("charlie-trace v1\nprocs 2\nproc 2\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("expected processor index in 0..2, found 2"));
    }

    #[test]
    fn rejects_bad_address() {
        let err =
            read_trace("charlie-trace v1\nprocs 1\nproc 0\nr 0xZZ\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("expected address"));
    }

    #[test]
    fn rejects_missing_argument_and_trailing_tokens() {
        let err = read_trace("charlie-trace v1\nprocs 1\nproc 0\nr\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("expected an argument after `r`"));
        let err =
            read_trace("charlie-trace v1\nprocs 1\nproc 0\nr 0x1 extra\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("trailing tokens"));
    }

    #[test]
    fn rejects_zero_procs() {
        let err = read_trace("charlie-trace v1\nprocs 0\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("outside 1..=64"));
    }

    #[test]
    fn interleaved_proc_sections_append() {
        let text = "charlie-trace v1\nprocs 2\nproc 0\nr 0x0\nproc 1\nr 0x20\nproc 0\nr 0x40\n";
        let t = read_trace(text.as_bytes()).unwrap();
        assert_eq!(t.proc(0).num_accesses(), 2);
        assert_eq!(t.proc(1).num_accesses(), 1);
    }
}
