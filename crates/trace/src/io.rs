//! Plain-text trace serialization.
//!
//! Traces round-trip through a line-oriented format so users can bring their
//! own address traces (or export, inspect and edit generated ones):
//!
//! ```text
//! # anything after '#' is a comment
//! charlie-trace v1
//! procs 2
//! proc 0
//! w 12            # 12 cycles of CPU work
//! r 0x1000        # read
//! W 0x1004        # write
//! p 0x2000        # shared-mode prefetch
//! P 0x3000        # exclusive-mode prefetch
//! l 3             # acquire lock 3
//! u 3             # release lock 3
//! b 0             # barrier episode 0
//! proc 1
//! b 0
//! ```
//!
//! Addresses accept hex (`0x…`) or decimal. Events belong to the most recent
//! `proc` header; every processor in `procs N` must get a header (even if
//! its stream is empty).

use crate::addr::Addr;
use crate::event::{Access, BarrierId, LockId, TraceEvent};
use crate::stream::{ProcTrace, Trace};
use std::error::Error;
use std::fmt;
use std::io::{BufRead, Write};

/// Magic first line of the format.
const MAGIC: &str = "charlie-trace v1";

/// Error reading a serialized trace.
#[derive(Debug)]
pub enum ReadTraceError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural or syntactic problem at a given 1-based line number.
    Parse {
        /// Line the problem was found on.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for ReadTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadTraceError::Io(e) => write!(f, "i/o error reading trace: {e}"),
            ReadTraceError::Parse { line, message } => write!(f, "line {line}: {message}"),
        }
    }
}

impl Error for ReadTraceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ReadTraceError::Io(e) => Some(e),
            ReadTraceError::Parse { .. } => None,
        }
    }
}

impl From<std::io::Error> for ReadTraceError {
    fn from(e: std::io::Error) -> Self {
        ReadTraceError::Io(e)
    }
}

/// Serializes `trace` to `out` in the v1 text format.
///
/// # Errors
///
/// Propagates I/O errors from `out`.
pub fn write_trace<W: Write>(trace: &Trace, mut out: W) -> std::io::Result<()> {
    writeln!(out, "{MAGIC}")?;
    writeln!(out, "procs {}", trace.num_procs())?;
    for (p, stream) in trace.iter() {
        writeln!(out, "proc {}", p.index())?;
        for ev in stream.events() {
            match ev {
                TraceEvent::Work(n) => writeln!(out, "w {n}")?,
                TraceEvent::Access(a) => {
                    let tag = if a.kind.is_write() { 'W' } else { 'r' };
                    writeln!(out, "{tag} {:#x}", a.addr.raw())?;
                }
                TraceEvent::Prefetch { addr, exclusive } => {
                    let tag = if *exclusive { 'P' } else { 'p' };
                    writeln!(out, "{tag} {:#x}", addr.raw())?;
                }
                TraceEvent::LockAcquire(l) => writeln!(out, "l {}", l.0)?,
                TraceEvent::LockRelease(l) => writeln!(out, "u {}", l.0)?,
                TraceEvent::Barrier(b) => writeln!(out, "b {}", b.0)?,
            }
        }
    }
    Ok(())
}

fn parse_u64(token: &str, line: usize, what: &str) -> Result<u64, ReadTraceError> {
    let parsed = if let Some(hex) = token.strip_prefix("0x").or_else(|| token.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        token.parse()
    };
    parsed.map_err(|_| ReadTraceError::Parse {
        line,
        message: format!("invalid {what}: {token:?}"),
    })
}

/// Parses a trace from `input` in the v1 text format.
///
/// # Errors
///
/// Returns [`ReadTraceError::Parse`] with a line number on any malformed
/// line, unknown event tag, out-of-range processor index, or missing
/// header; [`ReadTraceError::Io`] on read failure. The result is *not*
/// lock/barrier-validated — run [`Trace::validate`] before simulating.
pub fn read_trace<R: BufRead>(input: R) -> Result<Trace, ReadTraceError> {
    let mut lines = input.lines().enumerate();

    let next_meaningful = |lines: &mut dyn Iterator<Item = (usize, std::io::Result<String>)>|
     -> Result<Option<(usize, String)>, ReadTraceError> {
        for (idx, line) in lines {
            let line = line?;
            let content = line.split('#').next().unwrap_or("").trim().to_owned();
            if !content.is_empty() {
                return Ok(Some((idx + 1, content)));
            }
        }
        Ok(None)
    };

    let Some((line_no, magic)) = next_meaningful(&mut lines)? else {
        return Err(ReadTraceError::Parse { line: 0, message: "empty trace file".into() });
    };
    if magic != MAGIC {
        return Err(ReadTraceError::Parse {
            line: line_no,
            message: format!("expected {MAGIC:?}, found {magic:?}"),
        });
    }

    let Some((line_no, procs_line)) = next_meaningful(&mut lines)? else {
        return Err(ReadTraceError::Parse { line: line_no, message: "missing `procs N`".into() });
    };
    let num_procs = match procs_line.split_whitespace().collect::<Vec<_>>()[..] {
        ["procs", n] => parse_u64(n, line_no, "processor count")? as usize,
        _ => {
            return Err(ReadTraceError::Parse {
                line: line_no,
                message: format!("expected `procs N`, found {procs_line:?}"),
            })
        }
    };
    if num_procs == 0 || num_procs > 64 {
        return Err(ReadTraceError::Parse {
            line: line_no,
            message: format!("processor count {num_procs} outside 1..=64"),
        });
    }

    let mut streams: Vec<ProcTrace> = vec![ProcTrace::new(); num_procs];
    let mut current: Option<usize> = None;
    while let Some((line_no, content)) = next_meaningful(&mut lines)? {
        let mut parts = content.split_whitespace();
        let tag = parts.next().expect("non-empty line has a first token");
        let arg = parts.next();
        if parts.next().is_some() {
            return Err(ReadTraceError::Parse {
                line: line_no,
                message: format!("trailing tokens in {content:?}"),
            });
        }
        let arg = |what: &str| -> Result<u64, ReadTraceError> {
            let token = arg.ok_or_else(|| ReadTraceError::Parse {
                line: line_no,
                message: format!("`{tag}` needs an argument"),
            })?;
            parse_u64(token, line_no, what)
        };
        if tag == "proc" {
            let p = arg("processor index")? as usize;
            if p >= num_procs {
                return Err(ReadTraceError::Parse {
                    line: line_no,
                    message: format!("processor {p} out of range 0..{num_procs}"),
                });
            }
            current = Some(p);
            continue;
        }
        let Some(p) = current else {
            return Err(ReadTraceError::Parse {
                line: line_no,
                message: "event before any `proc` header".into(),
            });
        };
        let ev = match tag {
            "w" => TraceEvent::Work(arg("work cycles")? as u32),
            "r" => TraceEvent::Access(Access::read(Addr::new(arg("address")?))),
            "W" => TraceEvent::Access(Access::write(Addr::new(arg("address")?))),
            "p" => TraceEvent::Prefetch { addr: Addr::new(arg("address")?), exclusive: false },
            "P" => TraceEvent::Prefetch { addr: Addr::new(arg("address")?), exclusive: true },
            "l" => TraceEvent::LockAcquire(LockId(arg("lock id")? as u32)),
            "u" => TraceEvent::LockRelease(LockId(arg("lock id")? as u32)),
            "b" => TraceEvent::Barrier(BarrierId(arg("barrier id")? as u32)),
            other => {
                return Err(ReadTraceError::Parse {
                    line: line_no,
                    message: format!("unknown event tag {other:?}"),
                })
            }
        };
        streams[p].push(ev);
    }
    Ok(Trace::from_procs(streams))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TraceBuilder;

    fn sample() -> Trace {
        let mut b = TraceBuilder::new(2);
        b.proc(0)
            .work(12)
            .read(Addr::new(0x1000))
            .write(Addr::new(0x1004))
            .prefetch(Addr::new(0x2000))
            .prefetch_exclusive(Addr::new(0x3000))
            .lock(3)
            .unlock(3)
            .barrier(0);
        b.proc(1).barrier(0);
        b.build()
    }

    fn round_trip(t: &Trace) -> Trace {
        let mut buf = Vec::new();
        write_trace(t, &mut buf).expect("write succeeds");
        read_trace(buf.as_slice()).expect("read succeeds")
    }

    #[test]
    fn round_trips_every_event_kind() {
        let t = sample();
        assert_eq!(round_trip(&t), t);
    }

    #[test]
    fn empty_streams_round_trip() {
        let t = TraceBuilder::new(3).build();
        assert_eq!(round_trip(&t), t);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "\
# leading comment
charlie-trace v1

procs 1
proc 0   # the only processor
r 0x40   # hex address
W 68     # decimal address
";
        let t = read_trace(text.as_bytes()).unwrap();
        assert_eq!(t.proc(0).num_accesses(), 2);
        let accesses: Vec<_> = t.proc(0).accesses().collect();
        assert_eq!(accesses[0].addr, Addr::new(0x40));
        assert_eq!(accesses[1].addr, Addr::new(68));
        assert!(accesses[1].kind.is_write());
    }

    #[test]
    fn rejects_bad_magic() {
        let err = read_trace("dinero v9\nprocs 1\n".as_bytes()).unwrap_err();
        assert!(matches!(err, ReadTraceError::Parse { line: 1, .. }), "{err}");
    }

    #[test]
    fn rejects_unknown_tag_with_line_number() {
        let err = read_trace("charlie-trace v1\nprocs 1\nproc 0\nx 5\n".as_bytes()).unwrap_err();
        match err {
            ReadTraceError::Parse { line, message } => {
                assert_eq!(line, 4);
                assert!(message.contains("unknown event tag"));
            }
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn rejects_event_before_proc_header() {
        let err = read_trace("charlie-trace v1\nprocs 1\nr 0x40\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("before any `proc`"));
    }

    #[test]
    fn rejects_out_of_range_proc() {
        let err = read_trace("charlie-trace v1\nprocs 2\nproc 2\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn rejects_bad_address() {
        let err =
            read_trace("charlie-trace v1\nprocs 1\nproc 0\nr 0xZZ\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("invalid address"));
    }

    #[test]
    fn rejects_missing_argument_and_trailing_tokens() {
        let err = read_trace("charlie-trace v1\nprocs 1\nproc 0\nr\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("needs an argument"));
        let err =
            read_trace("charlie-trace v1\nprocs 1\nproc 0\nr 0x1 extra\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("trailing tokens"));
    }

    #[test]
    fn rejects_zero_procs() {
        let err = read_trace("charlie-trace v1\nprocs 0\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("outside 1..=64"));
    }

    #[test]
    fn interleaved_proc_sections_append() {
        let text = "charlie-trace v1\nprocs 2\nproc 0\nr 0x0\nproc 1\nr 0x20\nproc 0\nr 0x40\n";
        let t = read_trace(text.as_bytes()).unwrap();
        assert_eq!(t.proc(0).num_accesses(), 2);
        assert_eq!(t.proc(1).num_accesses(), 1);
    }
}
