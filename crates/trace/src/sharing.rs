//! Off-line sharing analysis over a complete trace.
//!
//! The paper's PWS strategy needs to know, before the simulation runs, which
//! cache lines are *write-shared* (accessed by more than one processor and
//! written by at least one of them). [`SharingMap`] computes that
//! classification at a chosen block granularity.

use crate::addr::{LineAddr, ProcMask};
use crate::stream::Trace;
use std::collections::HashMap;

/// Word-level refinement of [`LineClass::WriteShared`]: is the sharing real
/// or an artifact of the line granularity?
///
/// The distinction predicts restructurability: a line whose *words* are each
/// private (only the line is shared) can be fixed by padding — the paper's
/// §4.4 transformation — while true word-level sharing cannot.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum WordClass {
    /// Some word is itself accessed by several processors with a writer:
    /// true sharing; restructuring cannot remove it.
    TrueShared,
    /// Every word is effectively private (or read-only), yet the line is
    /// write-shared: pure false sharing; padding removes all coherence
    /// traffic.
    FalseShared,
}

/// Classification of a cache line's observed sharing behaviour.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum LineClass {
    /// Touched by exactly one processor.
    Private,
    /// Touched by several processors, never written.
    ReadShared,
    /// Touched by several processors and written by at least one.
    WriteShared,
}

#[derive(Copy, Clone, Default)]
struct LineInfo {
    accessors: ProcMask,
    writers: ProcMask,
}

/// Per-line sharing classification computed from a full trace.
///
/// # Example
///
/// ```
/// use charlie_trace::{Addr, LineClass, SharingMap, TraceBuilder};
///
/// let mut b = TraceBuilder::new(2);
/// b.proc(0).read(Addr::new(0x100)).write(Addr::new(0x200));
/// b.proc(1).read(Addr::new(0x100)).write(Addr::new(0x204));
/// let map = SharingMap::analyze(&b.build(), 32);
/// assert_eq!(map.classify(Addr::new(0x100).line(32)), LineClass::ReadShared);
/// assert_eq!(map.classify(Addr::new(0x200).line(32)), LineClass::WriteShared);
/// ```
#[derive(Clone, Default)]
pub struct SharingMap {
    block_bytes: u64,
    lines: HashMap<LineAddr, LineInfo>,
}

impl SharingMap {
    /// Scans the whole trace and records, per line, which processors access
    /// and which write it. Prefetch events are ignored: sharing is a property
    /// of the demand reference stream.
    ///
    /// # Panics
    ///
    /// Panics if `block_bytes` is not a power of two.
    pub fn analyze(trace: &Trace, block_bytes: u64) -> Self {
        assert!(block_bytes.is_power_of_two(), "block size must be a power of two");
        let mut lines: HashMap<LineAddr, LineInfo> = HashMap::new();
        for (p, stream) in trace.iter() {
            for access in stream.accesses() {
                let info = lines.entry(access.addr.line(block_bytes)).or_default();
                info.accessors.insert(p);
                if access.kind.is_write() {
                    info.writers.insert(p);
                }
            }
        }
        SharingMap { block_bytes, lines }
    }

    /// The block size the analysis ran at, in bytes.
    pub fn block_bytes(&self) -> u64 {
        self.block_bytes
    }

    /// Classifies a line. Lines never touched in the trace count as
    /// [`LineClass::Private`].
    pub fn classify(&self, line: LineAddr) -> LineClass {
        match self.lines.get(&line) {
            None => LineClass::Private,
            Some(info) => {
                if info.accessors.count() <= 1 {
                    LineClass::Private
                } else if info.writers.is_empty() {
                    LineClass::ReadShared
                } else {
                    LineClass::WriteShared
                }
            }
        }
    }

    /// Convenience: `true` when [`SharingMap::classify`] is
    /// [`LineClass::WriteShared`].
    pub fn is_write_shared(&self, line: LineAddr) -> bool {
        self.classify(line) == LineClass::WriteShared
    }

    /// Number of distinct lines touched in the trace.
    pub fn num_lines(&self) -> usize {
        self.lines.len()
    }

    /// Counts lines in each class: `(private, read_shared, write_shared)`.
    pub fn class_counts(&self) -> (usize, usize, usize) {
        let mut counts = (0usize, 0usize, 0usize);
        for (&line, _) in self.lines.iter() {
            match self.classify(line) {
                LineClass::Private => counts.0 += 1,
                LineClass::ReadShared => counts.1 += 1,
                LineClass::WriteShared => counts.2 += 1,
            }
        }
        counts
    }
}

#[derive(Clone, Default)]
struct WordInfo {
    accessors: ProcMask,
    writers: ProcMask,
}

/// Word-granularity sharing analysis: refines every write-shared line into
/// [`WordClass::TrueShared`] or [`WordClass::FalseShared`].
///
/// # Example
///
/// ```
/// use charlie_trace::{Addr, TraceBuilder, WordClass, WordSharingMap};
///
/// let mut b = TraceBuilder::new(2);
/// b.proc(0).write(Addr::new(0x100)); // word 0
/// b.proc(1).read(Addr::new(0x11c)); // word 7, same line
/// let map = WordSharingMap::analyze(&b.build(), 32);
/// assert_eq!(
///     map.classify_write_shared(Addr::new(0x100).line(32)),
///     Some(WordClass::FalseShared)
/// );
/// ```
#[derive(Clone)]
pub struct WordSharingMap {
    block_bytes: u64,
    lines: HashMap<LineAddr, Vec<WordInfo>>,
    line_map: SharingMap,
}

impl WordSharingMap {
    /// Scans the whole trace at word granularity.
    ///
    /// # Panics
    ///
    /// Panics if `block_bytes` is not a power of two.
    pub fn analyze(trace: &Trace, block_bytes: u64) -> Self {
        assert!(block_bytes.is_power_of_two(), "block size must be a power of two");
        let words_per_line = (block_bytes / 4) as usize;
        let mut lines: HashMap<LineAddr, Vec<WordInfo>> = HashMap::new();
        for (p, stream) in trace.iter() {
            for access in stream.accesses() {
                let line = access.addr.line(block_bytes);
                let word = access.addr.word_in_line(block_bytes) as usize;
                let words =
                    lines.entry(line).or_insert_with(|| vec![WordInfo::default(); words_per_line]);
                words[word].accessors.insert(p);
                if access.kind.is_write() {
                    words[word].writers.insert(p);
                }
            }
        }
        WordSharingMap { block_bytes, lines, line_map: SharingMap::analyze(trace, block_bytes) }
    }

    /// The block size the analysis ran at.
    pub fn block_bytes(&self) -> u64 {
        self.block_bytes
    }

    /// For a write-shared line, whether the sharing is true (some word is
    /// multi-processor with a writer) or false (only the line is shared).
    /// Returns `None` for lines that are not write-shared.
    pub fn classify_write_shared(&self, line: LineAddr) -> Option<WordClass> {
        if self.line_map.classify(line) != LineClass::WriteShared {
            return None;
        }
        let words = self.lines.get(&line)?;
        let true_shared = words.iter().any(|w| w.accessors.count() > 1 && !w.writers.is_empty());
        Some(if true_shared { WordClass::TrueShared } else { WordClass::FalseShared })
    }

    /// `(false_shared, true_shared)` counts over the write-shared lines.
    pub fn word_class_counts(&self) -> (usize, usize) {
        let mut fs = 0;
        let mut ts = 0;
        for &line in self.lines.keys() {
            match self.classify_write_shared(line) {
                Some(WordClass::FalseShared) => fs += 1,
                Some(WordClass::TrueShared) => ts += 1,
                None => {}
            }
        }
        (fs, ts)
    }

    /// Fraction of write-shared lines whose sharing is purely false — an
    /// off-line predictor of how much the §4.4 restructuring can help.
    pub fn false_sharing_potential(&self) -> f64 {
        let (fs, ts) = self.word_class_counts();
        if fs + ts == 0 {
            0.0
        } else {
            fs as f64 / (fs + ts) as f64
        }
    }
}

impl std::fmt::Debug for WordSharingMap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (fs, ts) = self.word_class_counts();
        f.debug_struct("WordSharingMap")
            .field("block_bytes", &self.block_bytes)
            .field("false_shared_lines", &fs)
            .field("true_shared_lines", &ts)
            .finish()
    }
}

impl std::fmt::Debug for SharingMap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (p, r, w) = self.class_counts();
        f.debug_struct("SharingMap")
            .field("block_bytes", &self.block_bytes)
            .field("private", &p)
            .field("read_shared", &r)
            .field("write_shared", &w)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Addr;
    use crate::builder::TraceBuilder;

    #[test]
    fn classify_untouched_is_private() {
        let map = SharingMap::analyze(&Trace::new(2), 32);
        assert_eq!(map.classify(Addr::new(0x100).line(32)), LineClass::Private);
        assert_eq!(map.num_lines(), 0);
    }

    #[test]
    fn single_writer_single_proc_is_private() {
        let mut b = TraceBuilder::new(2);
        b.proc(0).write(Addr::new(0x100)).read(Addr::new(0x104));
        let map = SharingMap::analyze(&b.build(), 32);
        assert_eq!(map.classify(Addr::new(0x100).line(32)), LineClass::Private);
    }

    #[test]
    fn false_sharing_words_still_write_shared_line() {
        // Two processors touching *different words* of one line is exactly
        // the false-sharing pattern; at line granularity it is write-shared.
        let mut b = TraceBuilder::new(2);
        b.proc(0).write(Addr::new(0x100));
        b.proc(1).read(Addr::new(0x11c));
        let map = SharingMap::analyze(&b.build(), 32);
        assert_eq!(map.classify(Addr::new(0x100).line(32)), LineClass::WriteShared);
        assert!(map.is_write_shared(Addr::new(0x11c).line(32)));
    }

    #[test]
    fn read_only_sharing() {
        let mut b = TraceBuilder::new(3);
        for p in 0..3 {
            b.proc(p).read(Addr::new(0x400));
        }
        let map = SharingMap::analyze(&b.build(), 32);
        assert_eq!(map.classify(Addr::new(0x400).line(32)), LineClass::ReadShared);
    }

    #[test]
    fn block_size_changes_classification() {
        // Accesses 64 bytes apart share a 128-byte line but not a 32-byte one.
        let mut b = TraceBuilder::new(2);
        b.proc(0).write(Addr::new(0x100));
        b.proc(1).read(Addr::new(0x140));
        let m32 = SharingMap::analyze(&b.build(), 32);
        assert_eq!(m32.classify(Addr::new(0x100).line(32)), LineClass::Private);
        let mut b = TraceBuilder::new(2);
        b.proc(0).write(Addr::new(0x100));
        b.proc(1).read(Addr::new(0x140));
        let m128 = SharingMap::analyze(&b.build(), 128);
        assert_eq!(m128.classify(Addr::new(0x100).line(128)), LineClass::WriteShared);
    }

    #[test]
    fn word_map_detects_pure_false_sharing() {
        let mut b = TraceBuilder::new(2);
        b.proc(0).write(Addr::new(0x100)); // word 0
        b.proc(1).write(Addr::new(0x104)); // word 1
        let m = WordSharingMap::analyze(&b.build(), 32);
        assert_eq!(
            m.classify_write_shared(Addr::new(0x100).line(32)),
            Some(WordClass::FalseShared)
        );
        assert_eq!(m.word_class_counts(), (1, 0));
        assert_eq!(m.false_sharing_potential(), 1.0);
    }

    #[test]
    fn word_map_detects_true_sharing() {
        let mut b = TraceBuilder::new(2);
        b.proc(0).write(Addr::new(0x100));
        b.proc(1).read(Addr::new(0x100)); // same word
        let m = WordSharingMap::analyze(&b.build(), 32);
        assert_eq!(
            m.classify_write_shared(Addr::new(0x100).line(32)),
            Some(WordClass::TrueShared)
        );
        assert_eq!(m.false_sharing_potential(), 0.0);
    }

    #[test]
    fn word_map_mixed_line_counts_as_true_sharing() {
        // One truly-shared word plus one falsely-shared word: padding alone
        // cannot fix the line, so it classifies as true sharing.
        let mut b = TraceBuilder::new(2);
        b.proc(0).write(Addr::new(0x100)).write(Addr::new(0x104));
        b.proc(1).read(Addr::new(0x100)).read(Addr::new(0x108));
        let m = WordSharingMap::analyze(&b.build(), 32);
        assert_eq!(
            m.classify_write_shared(Addr::new(0x100).line(32)),
            Some(WordClass::TrueShared)
        );
    }

    #[test]
    fn word_map_ignores_non_write_shared_lines() {
        let mut b = TraceBuilder::new(2);
        b.proc(0).read(Addr::new(0x100));
        b.proc(1).read(Addr::new(0x104)); // read-shared line
        b.proc(0).write(Addr::new(0x200)); // private line
        let m = WordSharingMap::analyze(&b.build(), 32);
        assert_eq!(m.classify_write_shared(Addr::new(0x100).line(32)), None);
        assert_eq!(m.classify_write_shared(Addr::new(0x200).line(32)), None);
        assert_eq!(m.word_class_counts(), (0, 0));
        assert_eq!(m.false_sharing_potential(), 0.0);
    }

    #[test]
    fn class_counts_sum_to_num_lines() {
        let mut b = TraceBuilder::new(2);
        b.proc(0).write(Addr::new(0x0)).read(Addr::new(0x40)).read(Addr::new(0x80));
        b.proc(1).read(Addr::new(0x40)).write(Addr::new(0x80));
        let map = SharingMap::analyze(&b.build(), 32);
        let (p, r, w) = map.class_counts();
        assert_eq!(p + r + w, map.num_lines());
        assert_eq!((p, r, w), (1, 1, 1));
    }
}
