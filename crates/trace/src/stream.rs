//! Per-processor event streams and the multiprocessor [`Trace`] bundle.

use crate::addr::ProcId;
use crate::event::{Access, TraceEvent};
use std::collections::HashSet;
use std::error::Error;
use std::fmt;

/// The event stream of a single processor.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct ProcTrace {
    events: Vec<TraceEvent>,
}

impl ProcTrace {
    /// Creates an empty stream.
    pub fn new() -> Self {
        ProcTrace::default()
    }

    /// Creates a stream from a pre-built event vector.
    pub fn from_events(events: Vec<TraceEvent>) -> Self {
        ProcTrace { events }
    }

    /// Appends an event.
    pub fn push(&mut self, ev: TraceEvent) {
        self.events.push(ev);
    }

    /// Number of events in the stream.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if the stream has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The events as a slice.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Iterates over the demand accesses in stream order.
    pub fn accesses(&self) -> impl Iterator<Item = Access> + '_ {
        self.events.iter().filter_map(TraceEvent::as_access)
    }

    /// Number of demand accesses.
    pub fn num_accesses(&self) -> usize {
        self.accesses().count()
    }

    /// Number of prefetch events.
    pub fn num_prefetches(&self) -> usize {
        self.events.iter().filter(|e| matches!(e, TraceEvent::Prefetch { .. })).count()
    }

    /// Total estimated CPU cycles of the stream, assuming all accesses hit.
    /// See [`TraceEvent::estimated_cycles`].
    pub fn estimated_cycles(&self) -> u64 {
        self.events.iter().map(TraceEvent::estimated_cycles).sum()
    }
}

impl FromIterator<TraceEvent> for ProcTrace {
    fn from_iter<I: IntoIterator<Item = TraceEvent>>(iter: I) -> Self {
        ProcTrace { events: iter.into_iter().collect() }
    }
}

impl Extend<TraceEvent> for ProcTrace {
    fn extend<I: IntoIterator<Item = TraceEvent>>(&mut self, iter: I) {
        self.events.extend(iter);
    }
}

/// A complete multiprocessor trace: one [`ProcTrace`] per processor.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Trace {
    procs: Vec<ProcTrace>,
}

impl Trace {
    /// Creates a trace with `num_procs` empty streams.
    pub fn new(num_procs: usize) -> Self {
        Trace { procs: vec![ProcTrace::new(); num_procs] }
    }

    /// Creates a trace from per-processor streams.
    pub fn from_procs(procs: Vec<ProcTrace>) -> Self {
        Trace { procs }
    }

    /// Number of processors.
    pub fn num_procs(&self) -> usize {
        self.procs.len()
    }

    /// The stream of processor `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn proc(&self, p: usize) -> &ProcTrace {
        &self.procs[p]
    }

    /// Mutable access to the stream of processor `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn proc_mut(&mut self, p: usize) -> &mut ProcTrace {
        &mut self.procs[p]
    }

    /// Iterates over `(ProcId, &ProcTrace)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ProcId, &ProcTrace)> {
        self.procs.iter().enumerate().map(|(i, t)| (ProcId(i as u8), t))
    }

    /// Total demand accesses across all processors.
    pub fn total_accesses(&self) -> usize {
        self.procs.iter().map(ProcTrace::num_accesses).sum()
    }

    /// Total prefetch events across all processors.
    pub fn total_prefetches(&self) -> usize {
        self.procs.iter().map(ProcTrace::num_prefetches).sum()
    }

    /// Checks structural well-formedness of the synchronization events.
    ///
    /// # Errors
    ///
    /// Returns an error if any processor releases a lock it does not hold,
    /// finishes while still holding a lock, or if barrier episodes are not
    /// numbered `0, 1, 2, ...` consistently on every processor (including
    /// every processor executing the same number of barriers).
    pub fn validate(&self) -> Result<(), ValidateTraceError> {
        let mut barrier_counts = Vec::with_capacity(self.procs.len());
        for (p, t) in self.iter() {
            let mut held: HashSet<u32> = HashSet::new();
            let mut next_barrier = 0u32;
            for ev in t.events() {
                match ev {
                    TraceEvent::LockAcquire(l) if !held.insert(l.0) => {
                        return Err(ValidateTraceError::RecursiveAcquire { proc: p, lock: l.0 });
                    }
                    TraceEvent::LockAcquire(_) => {}
                    TraceEvent::LockRelease(l) if !held.remove(&l.0) => {
                        return Err(ValidateTraceError::ReleaseUnheld { proc: p, lock: l.0 });
                    }
                    TraceEvent::LockRelease(_) => {}
                    TraceEvent::Barrier(b) => {
                        if b.0 != next_barrier {
                            return Err(ValidateTraceError::BarrierOrder {
                                proc: p,
                                expected: next_barrier,
                                found: b.0,
                            });
                        }
                        next_barrier += 1;
                    }
                    _ => {}
                }
            }
            if let Some(&lock) = held.iter().next() {
                return Err(ValidateTraceError::HeldAtEnd { proc: p, lock });
            }
            barrier_counts.push(next_barrier);
        }
        if let Some(&first) = barrier_counts.first() {
            if let Some(p) = barrier_counts.iter().position(|&c| c != first) {
                return Err(ValidateTraceError::BarrierCountMismatch {
                    proc: ProcId(p as u8),
                    count: barrier_counts[p],
                    expected: first,
                });
            }
        }
        Ok(())
    }
}

/// Error returned by [`Trace::validate`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ValidateTraceError {
    /// A processor acquired a lock it already holds.
    RecursiveAcquire {
        /// Offending processor.
        proc: ProcId,
        /// Lock id.
        lock: u32,
    },
    /// A processor released a lock it does not hold.
    ReleaseUnheld {
        /// Offending processor.
        proc: ProcId,
        /// Lock id.
        lock: u32,
    },
    /// A processor still holds a lock at the end of its stream.
    HeldAtEnd {
        /// Offending processor.
        proc: ProcId,
        /// Lock id.
        lock: u32,
    },
    /// Barrier ids did not appear in order `0, 1, 2, ...` on a processor.
    BarrierOrder {
        /// Offending processor.
        proc: ProcId,
        /// Barrier id expected next.
        expected: u32,
        /// Barrier id found.
        found: u32,
    },
    /// Processors execute different numbers of barriers.
    BarrierCountMismatch {
        /// Offending processor.
        proc: ProcId,
        /// Its barrier count.
        count: u32,
        /// Barrier count of processor 0.
        expected: u32,
    },
}

impl fmt::Display for ValidateTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateTraceError::RecursiveAcquire { proc, lock } => {
                write!(f, "{proc} acquires lock {lock} recursively")
            }
            ValidateTraceError::ReleaseUnheld { proc, lock } => {
                write!(f, "{proc} releases lock {lock} it does not hold")
            }
            ValidateTraceError::HeldAtEnd { proc, lock } => {
                write!(f, "{proc} still holds lock {lock} at end of trace")
            }
            ValidateTraceError::BarrierOrder { proc, expected, found } => {
                write!(f, "{proc} reaches barrier {found}, expected {expected}")
            }
            ValidateTraceError::BarrierCountMismatch { proc, count, expected } => {
                write!(f, "{proc} executes {count} barriers, expected {expected}")
            }
        }
    }
}

impl Error for ValidateTraceError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Addr;
    use crate::event::{BarrierId, LockId};

    fn acc(a: u64) -> TraceEvent {
        TraceEvent::Access(Access::read(Addr::new(a)))
    }

    #[test]
    fn proc_trace_counts() {
        let t = ProcTrace::from_events(vec![
            TraceEvent::Work(5),
            acc(0x100),
            TraceEvent::Prefetch { addr: Addr::new(0x200), exclusive: false },
            acc(0x200),
        ]);
        assert_eq!(t.len(), 4);
        assert_eq!(t.num_accesses(), 2);
        assert_eq!(t.num_prefetches(), 1);
        assert_eq!(t.estimated_cycles(), 5 + 2 + 1 + 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn trace_totals() {
        let mut tr = Trace::new(2);
        tr.proc_mut(0).push(acc(0));
        tr.proc_mut(1).push(acc(4));
        tr.proc_mut(1).push(TraceEvent::Prefetch { addr: Addr::new(8), exclusive: true });
        assert_eq!(tr.num_procs(), 2);
        assert_eq!(tr.total_accesses(), 2);
        assert_eq!(tr.total_prefetches(), 1);
    }

    #[test]
    fn validate_ok() {
        let mut tr = Trace::new(2);
        for p in 0..2 {
            let t = tr.proc_mut(p);
            t.push(TraceEvent::LockAcquire(LockId(1)));
            t.push(acc(0x10));
            t.push(TraceEvent::LockRelease(LockId(1)));
            t.push(TraceEvent::Barrier(BarrierId(0)));
            t.push(TraceEvent::Barrier(BarrierId(1)));
        }
        assert_eq!(tr.validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_release_unheld() {
        let mut tr = Trace::new(1);
        tr.proc_mut(0).push(TraceEvent::LockRelease(LockId(7)));
        assert_eq!(
            tr.validate(),
            Err(ValidateTraceError::ReleaseUnheld { proc: ProcId(0), lock: 7 })
        );
    }

    #[test]
    fn validate_rejects_recursive_acquire() {
        let mut tr = Trace::new(1);
        tr.proc_mut(0).push(TraceEvent::LockAcquire(LockId(7)));
        tr.proc_mut(0).push(TraceEvent::LockAcquire(LockId(7)));
        assert_eq!(
            tr.validate(),
            Err(ValidateTraceError::RecursiveAcquire { proc: ProcId(0), lock: 7 })
        );
    }

    #[test]
    fn validate_rejects_held_at_end() {
        let mut tr = Trace::new(1);
        tr.proc_mut(0).push(TraceEvent::LockAcquire(LockId(3)));
        assert_eq!(tr.validate(), Err(ValidateTraceError::HeldAtEnd { proc: ProcId(0), lock: 3 }));
    }

    #[test]
    fn validate_rejects_barrier_disorder() {
        let mut tr = Trace::new(1);
        tr.proc_mut(0).push(TraceEvent::Barrier(BarrierId(1)));
        assert!(matches!(tr.validate(), Err(ValidateTraceError::BarrierOrder { .. })));
    }

    #[test]
    fn validate_rejects_barrier_count_mismatch() {
        let mut tr = Trace::new(2);
        tr.proc_mut(0).push(TraceEvent::Barrier(BarrierId(0)));
        assert!(matches!(tr.validate(), Err(ValidateTraceError::BarrierCountMismatch { .. })));
    }

    #[test]
    fn from_iterator_and_extend() {
        let mut t: ProcTrace = vec![acc(0)].into_iter().collect();
        t.extend(vec![acc(4)]);
        assert_eq!(t.num_accesses(), 2);
    }
}
