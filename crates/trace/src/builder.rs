//! Fluent builders for constructing traces by hand (tests, examples, custom
//! workloads).

use crate::addr::Addr;
use crate::event::{Access, BarrierId, LockId, TraceEvent};
use crate::stream::{ProcTrace, Trace};

/// Builder for a multiprocessor [`Trace`].
///
/// Barriers are numbered automatically per processor: each call to
/// [`ProcTraceBuilder::barrier`] takes the episode id explicitly so the caller
/// can keep processors aligned.
///
/// # Example
///
/// ```
/// use charlie_trace::{Addr, TraceBuilder};
///
/// let mut b = TraceBuilder::new(2);
/// for p in 0..2 {
///     b.proc(p).work(8).read(Addr::new(0x1000 + p as u64 * 64)).barrier(0);
/// }
/// let trace = b.build();
/// assert!(trace.validate().is_ok());
/// ```
#[derive(Clone, Debug)]
pub struct TraceBuilder {
    procs: Vec<ProcTrace>,
}

impl TraceBuilder {
    /// Creates a builder for `num_procs` processors.
    pub fn new(num_procs: usize) -> Self {
        TraceBuilder { procs: vec![ProcTrace::new(); num_procs] }
    }

    /// Returns the builder for processor `p`'s stream.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn proc(&mut self, p: usize) -> ProcTraceBuilder<'_> {
        ProcTraceBuilder { stream: &mut self.procs[p] }
    }

    /// Finishes and returns the trace.
    pub fn build(self) -> Trace {
        Trace::from_procs(self.procs)
    }
}

/// Fluent builder for one processor's stream; obtained from
/// [`TraceBuilder::proc`].
#[derive(Debug)]
pub struct ProcTraceBuilder<'a> {
    stream: &'a mut ProcTrace,
}

impl ProcTraceBuilder<'_> {
    /// Appends `cycles` of pure CPU work.
    pub fn work(&mut self, cycles: u32) -> &mut Self {
        self.stream.push(TraceEvent::Work(cycles));
        self
    }

    /// Appends a read of `addr`.
    pub fn read(&mut self, addr: Addr) -> &mut Self {
        self.stream.push(TraceEvent::Access(Access::read(addr)));
        self
    }

    /// Appends a write of `addr`.
    pub fn write(&mut self, addr: Addr) -> &mut Self {
        self.stream.push(TraceEvent::Access(Access::write(addr)));
        self
    }

    /// Appends an arbitrary access.
    pub fn access(&mut self, access: Access) -> &mut Self {
        self.stream.push(TraceEvent::Access(access));
        self
    }

    /// Appends a shared-mode prefetch of `addr`'s line.
    pub fn prefetch(&mut self, addr: Addr) -> &mut Self {
        self.stream.push(TraceEvent::Prefetch { addr, exclusive: false });
        self
    }

    /// Appends an exclusive-mode prefetch of `addr`'s line.
    pub fn prefetch_exclusive(&mut self, addr: Addr) -> &mut Self {
        self.stream.push(TraceEvent::Prefetch { addr, exclusive: true });
        self
    }

    /// Appends a lock acquire.
    pub fn lock(&mut self, id: u32) -> &mut Self {
        self.stream.push(TraceEvent::LockAcquire(LockId(id)));
        self
    }

    /// Appends a lock release.
    pub fn unlock(&mut self, id: u32) -> &mut Self {
        self.stream.push(TraceEvent::LockRelease(LockId(id)));
        self
    }

    /// Appends a barrier arrival for episode `id`.
    pub fn barrier(&mut self, id: u32) -> &mut Self {
        self.stream.push(TraceEvent::Barrier(BarrierId(id)));
        self
    }

    /// Appends a raw event.
    pub fn event(&mut self, ev: TraceEvent) -> &mut Self {
        self.stream.push(ev);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_expected_events() {
        let mut b = TraceBuilder::new(1);
        b.proc(0)
            .work(3)
            .read(Addr::new(0x10))
            .write(Addr::new(0x14))
            .prefetch(Addr::new(0x40))
            .prefetch_exclusive(Addr::new(0x60))
            .lock(2)
            .unlock(2)
            .barrier(0);
        let t = b.build();
        let ev = t.proc(0).events();
        assert_eq!(ev.len(), 8);
        assert_eq!(ev[0], TraceEvent::Work(3));
        assert_eq!(ev[3], TraceEvent::Prefetch { addr: Addr::new(0x40), exclusive: false });
        assert_eq!(ev[4], TraceEvent::Prefetch { addr: Addr::new(0x60), exclusive: true });
        assert_eq!(ev[5], TraceEvent::LockAcquire(LockId(2)));
        assert_eq!(ev[7], TraceEvent::Barrier(BarrierId(0)));
        assert!(t.validate().is_ok());
    }

    #[test]
    fn builder_multi_proc() {
        let mut b = TraceBuilder::new(3);
        for p in 0..3 {
            b.proc(p).read(Addr::new(p as u64 * 0x100));
        }
        let t = b.build();
        assert_eq!(t.num_procs(), 3);
        assert_eq!(t.total_accesses(), 3);
    }
}
