//! Address-trace infrastructure for the `charlie` multiprocessor simulator.
//!
//! This crate defines the representation that every other crate in the
//! workspace consumes: per-processor streams of [`TraceEvent`]s (memory
//! accesses, software prefetches, pure-CPU work, and lock/barrier
//! synchronization), bundled into a multiprocessor [`Trace`].
//!
//! The design follows the methodology of Tullsen & Eggers, *"Limitations of
//! Cache Prefetching on a Bus-Based Multiprocessor"* (ISCA 1993): traces are
//! generated per processor, an off-line prefetching pass may insert
//! [`TraceEvent::Prefetch`] events, and a detailed simulator then replays the
//! streams while enforcing a legal interleaving of the synchronization events.
//!
//! # Example
//!
//! ```
//! use charlie_trace::{Addr, TraceBuilder};
//!
//! let mut b = TraceBuilder::new(2);
//! b.proc(0).work(10).read(Addr::new(0x1000)).write(Addr::new(0x1004)).barrier(0);
//! b.proc(1).work(4).read(Addr::new(0x2000)).barrier(0);
//! let trace = b.build();
//! assert_eq!(trace.num_procs(), 2);
//! assert_eq!(trace.proc(0).num_accesses(), 2);
//! ```

mod addr;
mod builder;
mod event;
pub mod io;
mod sharing;
mod stats;
mod stream;

pub use addr::{Addr, LineAddr, ProcId, ProcMask};
pub use builder::{ProcTraceBuilder, TraceBuilder};
pub use event::{Access, AccessKind, BarrierId, LockId, TraceEvent};
pub use sharing::{LineClass, SharingMap, WordClass, WordSharingMap};
pub use stats::{ProcTraceStats, TraceStats};
pub use stream::{ProcTrace, Trace, ValidateTraceError};
