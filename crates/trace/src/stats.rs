//! Summary statistics over traces, used for workload reporting (the paper's
//! Table 1) and generator calibration.

use crate::event::TraceEvent;
use crate::sharing::SharingMap;
use crate::stream::{ProcTrace, Trace};
use std::fmt;

/// Per-processor stream statistics.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ProcTraceStats {
    /// Demand reads.
    pub reads: u64,
    /// Demand writes.
    pub writes: u64,
    /// Prefetch events.
    pub prefetches: u64,
    /// Pure-CPU work cycles.
    pub work_cycles: u64,
    /// Lock acquires.
    pub lock_acquires: u64,
    /// Barrier arrivals.
    pub barriers: u64,
}

impl ProcTraceStats {
    /// Gathers statistics for one stream.
    pub fn gather(stream: &ProcTrace) -> Self {
        let mut s = ProcTraceStats::default();
        for ev in stream.events() {
            match ev {
                TraceEvent::Work(n) => s.work_cycles += u64::from(*n),
                TraceEvent::Access(a) => {
                    if a.kind.is_write() {
                        s.writes += 1;
                    } else {
                        s.reads += 1;
                    }
                }
                TraceEvent::Prefetch { .. } => s.prefetches += 1,
                TraceEvent::LockAcquire(_) => s.lock_acquires += 1,
                TraceEvent::LockRelease(_) => {}
                TraceEvent::Barrier(_) => s.barriers += 1,
            }
        }
        s
    }

    /// Total demand accesses.
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Fraction of demand accesses that write, in `[0, 1]`; 0 for an empty
    /// stream.
    pub fn write_fraction(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.writes as f64 / self.accesses() as f64
        }
    }
}

/// Whole-trace statistics: aggregate counters plus a line-granular sharing
/// profile at a chosen block size.
#[derive(Clone, Debug)]
pub struct TraceStats {
    /// Per-processor breakdown.
    pub per_proc: Vec<ProcTraceStats>,
    /// Distinct lines touched.
    pub lines_touched: usize,
    /// Lines touched by one processor only.
    pub private_lines: usize,
    /// Lines read by several processors, never written.
    pub read_shared_lines: usize,
    /// Lines touched by several processors, written by at least one.
    pub write_shared_lines: usize,
    /// Block size the sharing profile was computed at.
    pub block_bytes: u64,
}

impl TraceStats {
    /// Gathers statistics at block granularity `block_bytes`.
    ///
    /// # Panics
    ///
    /// Panics if `block_bytes` is not a power of two.
    pub fn gather(trace: &Trace, block_bytes: u64) -> Self {
        let per_proc = (0..trace.num_procs())
            .map(|p| ProcTraceStats::gather(trace.proc(p)))
            .collect::<Vec<_>>();
        let map = SharingMap::analyze(trace, block_bytes);
        let (private_lines, read_shared_lines, write_shared_lines) = map.class_counts();
        TraceStats {
            per_proc,
            lines_touched: map.num_lines(),
            private_lines,
            read_shared_lines,
            write_shared_lines,
            block_bytes,
        }
    }

    /// Total demand accesses over all processors.
    pub fn total_accesses(&self) -> u64 {
        self.per_proc.iter().map(ProcTraceStats::accesses).sum()
    }

    /// Total writes over all processors.
    pub fn total_writes(&self) -> u64 {
        self.per_proc.iter().map(|p| p.writes).sum()
    }

    /// Data-set size estimate: bytes spanned by touched lines.
    pub fn footprint_bytes(&self) -> u64 {
        self.lines_touched as u64 * self.block_bytes
    }

    /// Fraction of touched lines that are write-shared.
    pub fn write_shared_fraction(&self) -> f64 {
        if self.lines_touched == 0 {
            0.0
        } else {
            self.write_shared_lines as f64 / self.lines_touched as f64
        }
    }

    /// Returns the sharing class counts as `(private, read_shared,
    /// write_shared)`.
    pub fn class_counts(&self) -> (usize, usize, usize) {
        (self.private_lines, self.read_shared_lines, self.write_shared_lines)
    }
}

impl fmt::Display for TraceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} procs, {} accesses ({:.1}% writes), footprint {} KB",
            self.per_proc.len(),
            self.total_accesses(),
            100.0 * self.total_writes() as f64 / self.total_accesses().max(1) as f64,
            self.footprint_bytes() / 1024,
        )?;
        write!(
            f,
            "lines: {} private / {} read-shared / {} write-shared (of {})",
            self.private_lines, self.read_shared_lines, self.write_shared_lines, self.lines_touched
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Addr;
    use crate::builder::TraceBuilder;

    #[test]
    fn proc_stats_counts_every_event_kind() {
        let mut b = TraceBuilder::new(1);
        b.proc(0)
            .work(10)
            .read(Addr::new(0))
            .write(Addr::new(4))
            .write(Addr::new(8))
            .prefetch(Addr::new(0x40))
            .lock(0)
            .unlock(0)
            .barrier(0);
        let s = ProcTraceStats::gather(b.build().proc(0));
        assert_eq!(s.reads, 1);
        assert_eq!(s.writes, 2);
        assert_eq!(s.prefetches, 1);
        assert_eq!(s.work_cycles, 10);
        assert_eq!(s.lock_acquires, 1);
        assert_eq!(s.barriers, 1);
        assert_eq!(s.accesses(), 3);
        assert!((s.write_fraction() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stream_write_fraction_is_zero() {
        assert_eq!(ProcTraceStats::default().write_fraction(), 0.0);
    }

    #[test]
    fn trace_stats_sharing_profile() {
        let mut b = TraceBuilder::new(2);
        b.proc(0).write(Addr::new(0x000)).read(Addr::new(0x100));
        b.proc(1).read(Addr::new(0x100)).write(Addr::new(0x104));
        let stats = TraceStats::gather(&b.build(), 32);
        assert_eq!(stats.lines_touched, 2);
        assert_eq!(stats.private_lines, 1);
        assert_eq!(stats.write_shared_lines, 1);
        assert_eq!(stats.footprint_bytes(), 64);
        assert!((stats.write_shared_fraction() - 0.5).abs() < 1e-12);
        assert_eq!(stats.total_accesses(), 4);
        assert_eq!(stats.total_writes(), 2);
        // Display renders without panicking and mentions the line counts.
        let text = stats.to_string();
        assert!(text.contains("write-shared"));
    }
}
