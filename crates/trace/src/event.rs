//! Trace events: the alphabet each per-processor stream is written in.

use crate::addr::Addr;
use std::fmt;

/// Whether a memory access reads or writes.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum AccessKind {
    /// A data load.
    Read,
    /// A data store.
    Write,
}

impl AccessKind {
    /// Returns `true` for [`AccessKind::Write`].
    pub const fn is_write(self) -> bool {
        matches!(self, AccessKind::Write)
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Read => f.write_str("read"),
            AccessKind::Write => f.write_str("write"),
        }
    }
}

/// A demand data access: an address plus read/write direction.
///
/// This is a passive value type; fields are public by design.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct Access {
    /// Byte address accessed.
    pub addr: Addr,
    /// Read or write.
    pub kind: AccessKind,
}

impl Access {
    /// Creates a read access.
    pub const fn read(addr: Addr) -> Self {
        Access { addr, kind: AccessKind::Read }
    }

    /// Creates a write access.
    pub const fn write(addr: Addr) -> Self {
        Access { addr, kind: AccessKind::Write }
    }
}

/// Identifier of a lock object. Locks are modeled at trace level; the
/// simulator maps each lock to a dedicated cache line so that lock handoff
/// produces realistic coherence traffic.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct LockId(pub u32);

/// Identifier of a barrier episode. All processors participate in every
/// barrier; episodes on each processor must appear in increasing `BarrierId`
/// order starting from 0 so the simulator can match them up.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct BarrierId(pub u32);

/// One event in a processor's trace.
///
/// The CPU cost model follows the paper: one cycle per instruction, plus one
/// cycle per data access when it hits in the cache. [`TraceEvent::Work`]
/// represents a run of non-memory instructions; every other event costs at
/// least its single dispatch cycle.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum TraceEvent {
    /// `n` cycles of pure CPU work (non-memory instructions).
    Work(u32),
    /// A demand data access.
    Access(Access),
    /// A software cache prefetch of the line containing `addr`.
    ///
    /// `exclusive` selects the exclusive-mode prefetch of the paper's EXCL
    /// strategy: the line is fetched with read-exclusive semantics,
    /// invalidating other cached copies.
    Prefetch {
        /// Address whose line is prefetched.
        addr: Addr,
        /// Fetch in exclusive (read-for-ownership) mode.
        exclusive: bool,
    },
    /// Acquire a lock; the simulator blocks until the lock is free.
    LockAcquire(LockId),
    /// Release a previously acquired lock.
    LockRelease(LockId),
    /// Barrier arrival; the simulator blocks until all processors arrive.
    Barrier(BarrierId),
}

impl TraceEvent {
    /// Estimated CPU cost of the event in cycles, assuming every access hits.
    ///
    /// This is the cost model the off-line prefetch scheduler uses to measure
    /// *prefetch distance* (the paper's "estimated number of CPU cycles
    /// between the prefetch and the actual access"). Synchronization events
    /// are charged their single dispatch cycle; waiting time is unknowable
    /// off-line.
    pub fn estimated_cycles(&self) -> u64 {
        match self {
            TraceEvent::Work(n) => u64::from(*n),
            // one instruction + one cache-hit data cycle
            TraceEvent::Access(_) => 2,
            TraceEvent::Prefetch { .. } => 1,
            TraceEvent::LockAcquire(_) | TraceEvent::LockRelease(_) | TraceEvent::Barrier(_) => 1,
        }
    }

    /// Returns the contained access if this is an [`TraceEvent::Access`].
    pub fn as_access(&self) -> Option<Access> {
        match self {
            TraceEvent::Access(a) => Some(*a),
            _ => None,
        }
    }

    /// Returns `true` if the event is a synchronization operation (lock or
    /// barrier). Prefetch hoisting never crosses these.
    pub fn is_sync(&self) -> bool {
        matches!(
            self,
            TraceEvent::LockAcquire(_) | TraceEvent::LockRelease(_) | TraceEvent::Barrier(_)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimated_cycles_model() {
        assert_eq!(TraceEvent::Work(17).estimated_cycles(), 17);
        assert_eq!(TraceEvent::Access(Access::read(Addr::new(0))).estimated_cycles(), 2);
        assert_eq!(
            TraceEvent::Prefetch { addr: Addr::new(0), exclusive: false }.estimated_cycles(),
            1
        );
        assert_eq!(TraceEvent::Barrier(BarrierId(0)).estimated_cycles(), 1);
        assert_eq!(TraceEvent::LockAcquire(LockId(3)).estimated_cycles(), 1);
    }

    #[test]
    fn access_constructors() {
        let r = Access::read(Addr::new(8));
        assert_eq!(r.kind, AccessKind::Read);
        assert!(!r.kind.is_write());
        let w = Access::write(Addr::new(8));
        assert!(w.kind.is_write());
    }

    #[test]
    fn sync_classification() {
        assert!(TraceEvent::Barrier(BarrierId(0)).is_sync());
        assert!(TraceEvent::LockAcquire(LockId(0)).is_sync());
        assert!(TraceEvent::LockRelease(LockId(0)).is_sync());
        assert!(!TraceEvent::Work(1).is_sync());
        assert!(!TraceEvent::Access(Access::read(Addr::new(0))).is_sync());
    }

    #[test]
    fn as_access_extracts() {
        let ev = TraceEvent::Access(Access::write(Addr::new(4)));
        assert_eq!(ev.as_access(), Some(Access::write(Addr::new(4))));
        assert_eq!(TraceEvent::Work(1).as_access(), None);
    }
}
