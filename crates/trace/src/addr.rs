//! Basic address and processor-identifier newtypes.

use std::fmt;

/// A byte address in the simulated physical address space.
///
/// Addresses are plain 64-bit byte addresses; cache-geometry-dependent
/// decompositions (set index, tag, word-in-line) live in `charlie-cache`.
/// The block-granular view needed for sharing analysis is [`LineAddr`].
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Addr(u64);

impl Addr {
    /// Creates an address from a raw byte value.
    pub const fn new(raw: u64) -> Self {
        Addr(raw)
    }

    /// Returns the raw byte address.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the address of the cache line containing `self`, for a given
    /// block size in bytes.
    ///
    /// # Panics
    ///
    /// Panics if `block_bytes` is not a power of two.
    pub fn line(self, block_bytes: u64) -> LineAddr {
        assert!(block_bytes.is_power_of_two(), "block size must be a power of two");
        LineAddr(self.0 >> block_bytes.trailing_zeros())
    }

    /// Returns the index of the 4-byte word within a line of `block_bytes`.
    ///
    /// # Panics
    ///
    /// Panics if `block_bytes` is not a power of two.
    pub fn word_in_line(self, block_bytes: u64) -> u32 {
        assert!(block_bytes.is_power_of_two(), "block size must be a power of two");
        ((self.0 & (block_bytes - 1)) / 4) as u32
    }

    /// Returns the address offset by `bytes`.
    pub const fn offset(self, bytes: u64) -> Addr {
        Addr(self.0 + bytes)
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Addr({:#x})", self.0)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl From<u64> for Addr {
    fn from(raw: u64) -> Self {
        Addr(raw)
    }
}

/// A block-granular (cache-line-granular) address: the byte address shifted
/// right by the block size.
///
/// A `LineAddr` is only meaningful relative to the block size it was derived
/// with; mixing line addresses computed with different block sizes is a logic
/// error (the types cannot catch it, so the simulator derives all line
/// addresses through one cache geometry).
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct LineAddr(u64);

impl LineAddr {
    /// Creates a line address from the raw shifted value.
    pub const fn from_raw(raw: u64) -> Self {
        LineAddr(raw)
    }

    /// Returns the raw shifted value.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the byte address of the first byte of this line, for a given
    /// block size in bytes.
    ///
    /// # Panics
    ///
    /// Panics if `block_bytes` is not a power of two.
    pub fn base(self, block_bytes: u64) -> Addr {
        assert!(block_bytes.is_power_of_two(), "block size must be a power of two");
        Addr(self.0 << block_bytes.trailing_zeros())
    }
}

impl fmt::Debug for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LineAddr({:#x})", self.0)
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// Identifier of a simulated processor (0-based, dense).
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Default)]
pub struct ProcId(pub u8);

impl ProcId {
    /// Returns the processor index as a `usize`, for indexing per-processor
    /// tables.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// A set of processors, used by the sharing analysis (up to 64 processors).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Default)]
pub struct ProcMask(u64);

impl ProcMask {
    /// The empty set.
    pub const EMPTY: ProcMask = ProcMask(0);

    /// Adds a processor to the set.
    ///
    /// # Panics
    ///
    /// Panics if `proc.0 >= 64`.
    pub fn insert(&mut self, proc: ProcId) {
        assert!(proc.0 < 64, "ProcMask supports at most 64 processors");
        self.0 |= 1 << proc.0;
    }

    /// Returns `true` if the set contains `proc`.
    pub fn contains(self, proc: ProcId) -> bool {
        proc.0 < 64 && self.0 & (1 << proc.0) != 0
    }

    /// Returns the number of processors in the set.
    pub fn count(self) -> u32 {
        self.0.count_ones()
    }

    /// Returns `true` if the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Debug for ProcMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ProcMask({:#b})", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_addr_strips_offset() {
        let a = Addr::new(0x1234);
        assert_eq!(a.line(32), Addr::new(0x1220).line(32));
        assert_ne!(a.line(32), Addr::new(0x1240).line(32));
    }

    #[test]
    fn line_base_round_trips() {
        let a = Addr::new(0x1fe7);
        let line = a.line(32);
        assert_eq!(line.base(32).raw(), 0x1fe0);
        assert_eq!(line.base(32).line(32), line);
    }

    #[test]
    fn word_in_line_is_word_granular() {
        assert_eq!(Addr::new(0x100).word_in_line(32), 0);
        assert_eq!(Addr::new(0x104).word_in_line(32), 1);
        assert_eq!(Addr::new(0x107).word_in_line(32), 1);
        assert_eq!(Addr::new(0x11c).word_in_line(32), 7);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_block_panics() {
        let _ = Addr::new(0).line(48);
    }

    #[test]
    fn proc_mask_insert_contains_count() {
        let mut m = ProcMask::EMPTY;
        assert!(m.is_empty());
        m.insert(ProcId(0));
        m.insert(ProcId(5));
        m.insert(ProcId(5));
        assert!(m.contains(ProcId(0)));
        assert!(m.contains(ProcId(5)));
        assert!(!m.contains(ProcId(1)));
        assert_eq!(m.count(), 2);
        assert!(!m.is_empty());
    }

    #[test]
    fn addr_display_is_hex() {
        assert_eq!(Addr::new(0xff).to_string(), "0xff");
        assert_eq!(format!("{:?}", Addr::new(0xff)), "Addr(0xff)");
    }

    #[test]
    fn addr_offset_adds() {
        assert_eq!(Addr::new(0x10).offset(0x8), Addr::new(0x18));
    }
}
