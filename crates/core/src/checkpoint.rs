//! Checkpoint journal: JSON-lines persistence of completed runs.
//!
//! A [`Journal`] is an append-only file with one completed [`RunSummary`]
//! per line. [`Lab::run_batch_checkpointed`](crate::Lab::run_batch_checkpointed)
//! appends (and flushes) each cell the moment it finishes, so a batch
//! killed mid-flight loses at most the cells still in progress; reopening
//! the journal returns everything completed so far, and
//! [`Lab::restore`](crate::Lab::restore) replays it into the memo.
//!
//! Two properties make resume *exact* rather than approximate:
//!
//! * every field of a [`SimReport`] is an integer (latency distributions
//!   expose raw counters via `to_raw`/`from_raw`), so the round-trip through
//!   text is lossless — a resumed campaign renders byte-identical output;
//! * damage is classified, not guessed at. Every line carries a CRC32
//!   frame (`crc32-hex SP json NL`) and the first line is a header naming
//!   the journal version and the campaign config key, so [`Journal::open`]
//!   can tell *torn* (a final line without a newline — a process killed
//!   mid-write; dropped and truncated) from *corrupt* (a complete line
//!   whose checksum fails — bit rot or a torn write grafted inside a line;
//!   dropped with a warning and compacted away via temp-file + rename).
//!   Either way the damaged cell simply re-runs. What never recovers
//!   silently: a version or config-key mismatch (refused — resuming a
//!   foreign journal would replay the wrong cells), and a CRC-valid line
//!   that fails to decode (that is a writer bug, not wire damage).
//!
//! Durability policy: `append` writes and flushes each line, so a process
//! crash immediately after loses nothing; against *machine* crashes (power
//! loss before kernel writeback) an opt-in sync mode
//! ([`JournalOptions::sync`] or `CHARLIE_JOURNAL_SYNC=1`) fsyncs after
//! every append. All journal bytes pass through
//! [`chaos::ChaosWriter`](crate::chaos::ChaosWriter), which is how
//! `tests/chaos_props.rs` and `charlie chaos` prove these recovery paths
//! at every injected fault offset.
//!
//! The format is hand-rolled (no serde in the dependency tree): a tiny
//! recursive-descent JSON reader over a byte cursor, ~150 lines, checked by
//! round-trip tests here and end-to-end in `tests/fault_tolerance.rs`.

use crate::chaos::{self, ChaosWriter};
use crate::lab::RunSummary;
use crate::wire::{self, push_str_field, Json};
use charlie_bus::BusStats;
use charlie_sim::{
    HwPrefetchStats, LatencyStats, MissBreakdown, PrefetchStats, ProcStats, SimReport, Timeline,
    WindowSample,
};
use std::fmt::Write as _;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

/// Journal format version; bumped on any encoding change so a stale journal
/// fails loudly instead of resuming garbage. Version 2 added the per-line
/// CRC32 frame and the header line.
const VERSION: u64 = 2;

/// One complete JSON line through the shared [`wire`] reader.
fn parse_line(line: &str) -> Result<Json, String> {
    wire::parse(line)
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn encode_report(report: &SimReport) -> String {
    let mut s = String::with_capacity(1024);
    let m = &report.miss;
    let (count, total, min, max, buckets) = report.fill_latency.to_raw();
    let p = &report.prefetch;
    let b = &report.bus;
    let _ = write!(
        s,
        "{{\"cycles\":{},\"measured_from\":{},\"reads\":{},\"writes\":{},\
         \"miss\":{{\"nsnp\":{},\"nsp\":{},\"invnp\":{},\"invp\":{},\"pip\":{}}},\
         \"false_sharing_misses\":{},\"upgrades\":{},\"upgrades_aborted\":{},\
         \"demand_refills\":{},\"victim_hits\":{},\
         \"fill_latency\":{{\"count\":{},\"total\":{},\"min\":{},\"max\":{},\
         \"buckets\":[{},{},{},{},{},{},{}]}},\
         \"prefetch\":{{\"executed\":{},\"hits\":{},\"duplicates\":{},\"fills\":{},\
         \"wasted_evicted\":{},\"wasted_invalidated\":{},\"buffer_stalls\":{}}},\
         \"bus\":{{\"busy_cycles\":{},\"reads\":{},\"read_exclusives\":{},\"upgrades\":{},",
        report.cycles,
        report.measured_from,
        report.reads,
        report.writes,
        m.non_sharing_not_prefetched,
        m.non_sharing_prefetched,
        m.invalidation_not_prefetched,
        m.invalidation_prefetched,
        m.prefetch_in_progress,
        report.false_sharing_misses,
        report.upgrades,
        report.upgrades_aborted,
        report.demand_refills,
        report.victim_hits,
        count,
        total,
        min,
        max,
        buckets[0],
        buckets[1],
        buckets[2],
        buckets[3],
        buckets[4],
        buckets[5],
        buckets[6],
        p.executed,
        p.hits,
        p.duplicates,
        p.fills,
        p.wasted_evicted,
        p.wasted_invalidated,
        p.buffer_stalls,
        b.busy_cycles,
        b.reads,
        b.read_exclusives,
        b.upgrades,
    );
    // Omitted when zero (write-update protocols only) so journals from
    // invalidation-protocol campaigns stay byte-identical to older formats.
    if b.updates != 0 {
        let _ = write!(s, "\"updates\":{},", b.updates);
    }
    let _ = write!(
        s,
        "\"writebacks\":{},\"prefetch_grants\":{},\"queueing_cycles\":{}}},\"per_proc\":[",
        b.writebacks, b.prefetch_grants, b.queueing_cycles,
    );
    for (i, proc) in report.per_proc.iter().enumerate() {
        let _ = write!(
            s,
            "{}{{\"busy_cycles\":{},\"stall_cycles\":{},\"finish_time\":{},\
             \"accesses\":{},\"measured_from\":{}}}",
            if i == 0 { "" } else { "," },
            proc.busy_cycles,
            proc.stall_cycles,
            proc.finish_time,
            proc.accesses,
            proc.measured_from,
        );
    }
    s.push(']');
    // Omitted when the on-line hardware prefetcher is off so journals from
    // paper-grid campaigns stay byte-identical to the version-2 format.
    let h = &report.hw_prefetch;
    if !h.is_empty() {
        let _ = write!(
            s,
            ",\"hw_prefetch\":{{\"trained\":{},\"issued\":{},\"useful\":{},\
             \"late\":{},\"useless\":{}}}",
            h.trained, h.issued, h.useful, h.late, h.useless,
        );
    }
    s.push('}');
    s
}

/// Encodes one completed run as the journal's (and the serve protocol's)
/// summary object — unframed JSON; [`frame_line`] adds the CRC for disk.
pub fn encode_summary(summary: &RunSummary) -> String {
    let exp = summary.experiment;
    let mut s = String::with_capacity(1280);
    let _ = write!(s, "{{\"v\":{VERSION},");
    push_str_field(&mut s, "workload", exp.workload.name());
    push_str_field(&mut s, "strategy", exp.strategy.name());
    let _ = write!(s, "\"transfer\":{},", exp.transfer_cycles);
    push_str_field(&mut s, "layout", wire::layout_name(exp.layout));
    let _ = write!(
        s,
        "\"prefetches_inserted\":{},\"report\":{}",
        summary.prefetches_inserted,
        encode_report(&summary.report)
    );
    // Optional field: only sampled campaigns carry timelines, and journals
    // written by unsampled (or older) builds simply omit it.
    if let Some(timeline) = &summary.timeline {
        let _ = write!(s, ",\"timeline\":{}", encode_timeline(timeline));
    }
    // Optional field with the same compatibility contract: only
    // sampled-simulation runs carry an estimate.
    if let Some(sm) = &summary.sampled {
        let _ = write!(
            s,
            ",\"sampled\":{{\"mode\":\"{}\",\"total_windows\":{},\
             \"detailed_windows\":{},\"clusters\":{},\"total_accesses\":{},\
             \"est_cycles\":{},\"ci_cycles\":{},\"est_bus_busy\":{},\
             \"ci_bus_busy\":{},\"events\":{}}}",
            sm.mode,
            sm.total_windows,
            sm.detailed_windows,
            sm.clusters,
            sm.total_accesses,
            sm.est_cycles,
            sm.ci_cycles,
            sm.est_bus_busy,
            sm.ci_bus_busy,
            sm.events
        );
    }
    s.push('}');
    s
}

fn encode_timeline(timeline: &Timeline) -> String {
    let mut s = String::with_capacity(64 + 256 * timeline.windows.len());
    let _ = write!(s, "{{\"interval\":{},\"windows\":[", timeline.interval);
    for (i, w) in timeline.windows.iter().enumerate() {
        let _ = write!(
            s,
            "{}{{\"start\":{},\"end\":{},\"bus_busy\":{},\"bus_ops\":{},\
             \"bus_queueing\":{},\"prefetch_grants\":{},\"proc_busy\":{},\
             \"proc_stall\":{},\"accesses\":{},\"fills\":{},\
             \"fill_buckets\":[{},{},{},{},{},{},{}],\"bus_pending\":{},\
             \"outstanding\":{},\"pf_occupancy\":{}}}",
            if i == 0 { "" } else { "," },
            w.start,
            w.end,
            w.bus_busy_cycles,
            w.bus_ops,
            w.bus_queueing_cycles,
            w.prefetch_grants,
            w.proc_busy_cycles,
            w.proc_stall_cycles,
            w.accesses,
            w.fills,
            w.fill_latency_buckets[0],
            w.fill_latency_buckets[1],
            w.fill_latency_buckets[2],
            w.fill_latency_buckets[3],
            w.fill_latency_buckets[4],
            w.fill_latency_buckets[5],
            w.fill_latency_buckets[6],
            w.bus_pending,
            w.outstanding_txns,
            w.prefetch_buffer,
        );
    }
    s.push_str("]}");
    s
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

fn decode_miss(v: &Json) -> Result<MissBreakdown, String> {
    Ok(MissBreakdown {
        non_sharing_not_prefetched: v.field("nsnp")?.num()?,
        non_sharing_prefetched: v.field("nsp")?.num()?,
        invalidation_not_prefetched: v.field("invnp")?.num()?,
        invalidation_prefetched: v.field("invp")?.num()?,
        prefetch_in_progress: v.field("pip")?.num()?,
    })
}

fn decode_latency(v: &Json) -> Result<LatencyStats, String> {
    let raw = v.field("buckets")?.arr()?;
    if raw.len() != 7 {
        return Err(format!("expected 7 latency buckets, found {}", raw.len()));
    }
    let mut buckets = [0u64; 7];
    for (slot, item) in buckets.iter_mut().zip(raw) {
        *slot = item.num()?;
    }
    Ok(LatencyStats::from_raw(
        v.field("count")?.num()?,
        v.field("total")?.num()?,
        v.field("min")?.num()?,
        v.field("max")?.num()?,
        buckets,
    ))
}

fn decode_report(v: &Json) -> Result<SimReport, String> {
    let p = v.field("prefetch")?;
    let b = v.field("bus")?;
    let hw_prefetch = match v.opt_field("hw_prefetch") {
        Some(h) => HwPrefetchStats {
            trained: h.field("trained")?.num()?,
            issued: h.field("issued")?.num()?,
            useful: h.field("useful")?.num()?,
            late: h.field("late")?.num()?,
            useless: h.field("useless")?.num()?,
        },
        None => HwPrefetchStats::default(),
    };
    let mut per_proc = Vec::new();
    for proc in v.field("per_proc")?.arr()? {
        per_proc.push(ProcStats {
            busy_cycles: proc.field("busy_cycles")?.num()?,
            stall_cycles: proc.field("stall_cycles")?.num()?,
            finish_time: proc.field("finish_time")?.num()?,
            accesses: proc.field("accesses")?.num()?,
            measured_from: proc.field("measured_from")?.num()?,
        });
    }
    Ok(SimReport {
        cycles: v.field("cycles")?.num()?,
        measured_from: v.field("measured_from")?.num()?,
        reads: v.field("reads")?.num()?,
        writes: v.field("writes")?.num()?,
        miss: decode_miss(v.field("miss")?)?,
        false_sharing_misses: v.field("false_sharing_misses")?.num()?,
        upgrades: v.field("upgrades")?.num()?,
        upgrades_aborted: v.field("upgrades_aborted")?.num()?,
        demand_refills: v.field("demand_refills")?.num()?,
        victim_hits: v.field("victim_hits")?.num()?,
        fill_latency: decode_latency(v.field("fill_latency")?)?,
        prefetch: PrefetchStats {
            executed: p.field("executed")?.num()?,
            hits: p.field("hits")?.num()?,
            duplicates: p.field("duplicates")?.num()?,
            fills: p.field("fills")?.num()?,
            wasted_evicted: p.field("wasted_evicted")?.num()?,
            wasted_invalidated: p.field("wasted_invalidated")?.num()?,
            buffer_stalls: p.field("buffer_stalls")?.num()?,
        },
        hw_prefetch,
        bus: BusStats {
            busy_cycles: b.field("busy_cycles")?.num()?,
            reads: b.field("reads")?.num()?,
            read_exclusives: b.field("read_exclusives")?.num()?,
            upgrades: b.field("upgrades")?.num()?,
            // Omitted-when-zero (write-update protocols only), like
            // hw_prefetch: old journals decode with 0.
            updates: match b.opt_field("updates") {
                Some(u) => u.num()?,
                None => 0,
            },
            writebacks: b.field("writebacks")?.num()?,
            prefetch_grants: b.field("prefetch_grants")?.num()?,
            queueing_cycles: b.field("queueing_cycles")?.num()?,
        },
        per_proc,
    })
}

fn check_version(v: &Json) -> Result<(), String> {
    let version = v.field("v")?.num()?;
    if version != VERSION {
        return Err(format!("journal version {version} (this build reads {VERSION})"));
    }
    Ok(())
}

/// Decodes a summary line (unframed JSON text) — the inverse of
/// [`encode_summary`].
pub fn decode_summary(line: &str) -> Result<RunSummary, String> {
    decode_summary_value(&parse_line(line)?)
}

/// Decodes a summary from an already-parsed value — the form the serve
/// client uses after extracting the object from a stream frame.
pub fn decode_summary_value(v: &Json) -> Result<RunSummary, String> {
    check_version(v)?;
    Ok(RunSummary {
        experiment: wire::decode_experiment(v)?,
        report: decode_report(v.field("report")?)?,
        prefetches_inserted: v.field("prefetches_inserted")?.num()?,
        timeline: v.opt_field("timeline").map(decode_timeline).transpose()?,
        sampled: v.opt_field("sampled").map(decode_sampled).transpose()?,
    })
}

fn decode_sampled(v: &Json) -> Result<crate::sampling::SampledSummary, String> {
    let mode_name = v.field("mode")?.str()?;
    let mode = crate::sampling::SamplingMode::parse(mode_name)
        .ok_or_else(|| format!("unknown sampling mode {mode_name:?}"))?;
    Ok(crate::sampling::SampledSummary {
        mode,
        total_windows: v.field("total_windows")?.num()?,
        detailed_windows: v.field("detailed_windows")?.num()?,
        clusters: v.field("clusters")?.num()?,
        total_accesses: v.field("total_accesses")?.num()?,
        est_cycles: v.field("est_cycles")?.num()?,
        ci_cycles: v.field("ci_cycles")?.num()?,
        est_bus_busy: v.field("est_bus_busy")?.num()?,
        ci_bus_busy: v.field("ci_bus_busy")?.num()?,
        events: v.field("events")?.num()?,
    })
}

fn decode_timeline(v: &Json) -> Result<Timeline, String> {
    let mut windows = Vec::new();
    for w in v.field("windows")?.arr()? {
        let raw = w.field("fill_buckets")?.arr()?;
        if raw.len() != 7 {
            return Err(format!("expected 7 fill buckets, found {}", raw.len()));
        }
        let mut fill_latency_buckets = [0u64; 7];
        for (slot, item) in fill_latency_buckets.iter_mut().zip(raw) {
            *slot = item.num()?;
        }
        windows.push(WindowSample {
            start: w.field("start")?.num()?,
            end: w.field("end")?.num()?,
            bus_busy_cycles: w.field("bus_busy")?.num()?,
            bus_ops: w.field("bus_ops")?.num()?,
            bus_queueing_cycles: w.field("bus_queueing")?.num()?,
            prefetch_grants: w.field("prefetch_grants")?.num()?,
            proc_busy_cycles: w.field("proc_busy")?.num()?,
            proc_stall_cycles: w.field("proc_stall")?.num()?,
            accesses: w.field("accesses")?.num()?,
            fills: w.field("fills")?.num()?,
            fill_latency_buckets,
            bus_pending: w.field("bus_pending")?.num()? as usize,
            outstanding_txns: w.field("outstanding")?.num()? as usize,
            prefetch_buffer: w.field("pf_occupancy")?.num()? as usize,
        });
    }
    Ok(Timeline { interval: v.field("interval")?.num()?, windows })
}

/// Encodes a `(key, report)` pair as one journal line — the variant the
/// `config_sweep` binary uses for cells whose knobs live outside
/// [`Experiment`] (geometry and trace-length sweeps). The key is an opaque
/// caller-chosen cell name.
pub fn encode_keyed_report(key: &str, report: &SimReport) -> String {
    let mut s = String::with_capacity(1280);
    let _ = write!(s, "{{\"v\":{VERSION},");
    push_str_field(&mut s, "key", key);
    let _ = write!(s, "\"report\":{}}}", encode_report(report));
    s
}

/// Decodes one [`encode_keyed_report`] line.
pub fn decode_keyed_report(line: &str) -> Result<(String, SimReport), String> {
    let v = parse_line(line)?;
    check_version(&v)?;
    Ok((v.field("key")?.str()?.to_owned(), decode_report(v.field("report")?)?))
}

/// Keyed checkpoint journal for cells whose knobs live outside
/// [`Experiment`](crate::Experiment) (geometry, trace-length, and hardware
/// prefetcher sweeps): `done` maps caller-chosen cell keys to restored
/// reports, and `append` journals new completions. Shares [`Journal`]'s
/// line framing and recovery classification, and — like `Journal` — routes
/// every compaction through [`chaos::write_atomic`] (temp + fsync + rename
/// + parent-directory fsync), so a crash mid-compaction can never lose
/// CRC-valid completed cells.
pub struct KeyedJournal {
    done: std::collections::HashMap<String, SimReport>,
    file: ChaosWriter<File>,
}

impl KeyedJournal {
    /// Opens (or creates) the journal: torn tails and CRC-failed lines are
    /// dropped with a warning and compacted away; a version or config-key
    /// mismatch or an unreadable header refuses to resume.
    pub fn open(path: &Path, config: &str) -> io::Result<KeyedJournal> {
        let refuse = |line: usize, msg: String| invalid_data(path, line, msg);
        let mut content = String::new();
        match File::open(path) {
            Ok(mut f) => {
                f.read_to_string(&mut content)?;
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        // A trailing line without '\n' is a kill mid-write: drop it (that
        // cell re-runs). A complete line failing its CRC is corruption:
        // drop it too, with a distinct warning.
        let complete_len = content.rfind('\n').map_or(0, |i| i + 1);
        let mut damaged = complete_len < content.len();
        let lines: Vec<&str> =
            content[..complete_len].lines().filter(|l| !l.trim().is_empty()).collect();
        let mut done = std::collections::HashMap::new();
        let mut survivors: Vec<&str> = Vec::new();
        if let Some((&first, records)) = lines.split_first() {
            match unframe_line(first)
                .map_err(|e| e.to_string())
                .and_then(decode_journal_header)
            {
                Ok((_version, found)) if found == config => {}
                Ok((_version, found)) => {
                    return Err(refuse(
                        1,
                        format!(
                            "journal was written for config {found:?} but this sweep is \
                             {config:?}; refusing to resume — delete the checkpoint or point \
                             it elsewhere"
                        ),
                    ))
                }
                Err(e) => return Err(refuse(1, format!("bad journal header ({e})"))),
            }
            for (i, &line) in records.iter().enumerate() {
                match unframe_line(line).and_then(decode_keyed_report) {
                    Ok((key, report)) => {
                        done.insert(key, report);
                        survivors.push(line);
                    }
                    Err(e) => {
                        damaged = true;
                        eprintln!(
                            "warning: checkpoint {}:{}: dropping corrupt line ({e}); \
                             that cell re-runs",
                            path.display(),
                            i + 2
                        );
                    }
                }
            }
        }
        // Compact damage away (and stamp the header on a fresh journal)
        // before appending, so the file never grafts onto torn bytes.
        if damaged || lines.is_empty() {
            let mut out = encode_journal_header(config);
            for line in &survivors {
                out.push_str(line);
                out.push('\n');
            }
            chaos::write_atomic(path, out.as_bytes(), "journal")?;
        }
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(KeyedJournal { done, file: ChaosWriter::new(file, "journal") })
    }

    /// Cells restored at open, by key.
    pub fn done(&self) -> &std::collections::HashMap<String, SimReport> {
        &self.done
    }

    /// Appends one completed cell (best-effort, like [`Journal::append`]:
    /// journaling is an optimization over re-running the cell).
    pub fn append(&mut self, key: &str, report: &SimReport) {
        let line = frame_line(&encode_keyed_report(key, report));
        let _ = self.file.write_all(line.as_bytes()).and_then(|()| self.file.flush());
    }
}

// ---------------------------------------------------------------------------
// Line framing (v2): `crc32-hex SP json NL` per line, header line first.
// ---------------------------------------------------------------------------

/// Frames one journal payload as a full line: eight lowercase hex digits of
/// [`chaos::crc32`] over the payload, one space, the payload, a newline.
/// Shared by [`Journal`] and the keyed journal in the `config_sweep` binary.
pub fn frame_line(json: &str) -> String {
    format!("{:08x} {json}\n", chaos::crc32(json.as_bytes()))
}

/// Verifies and strips a line frame, returning the payload. The error says
/// *why* the frame failed (missing, malformed, or checksum mismatch) so
/// recovery diagnostics can quote it.
pub fn unframe_line(line: &str) -> Result<&str, String> {
    let Some((crc_text, json)) = line.split_once(' ') else {
        return Err("missing checksum frame".into());
    };
    if crc_text.len() != 8 || !crc_text.bytes().all(|b| b.is_ascii_hexdigit()) {
        return Err(format!("bad checksum field {crc_text:?}"));
    }
    let stored = u32::from_str_radix(crc_text, 16).expect("validated as 8 hex digits");
    let computed = chaos::crc32(json.as_bytes());
    if stored != computed {
        return Err(format!("checksum mismatch (stored {stored:08x}, computed {computed:08x})"));
    }
    Ok(json)
}

/// Encodes the framed header line: journal version plus the campaign
/// config key the journal was created for.
pub fn encode_journal_header(config: &str) -> String {
    let mut s = String::with_capacity(64);
    let _ = write!(s, "{{\"charlie_journal\":{VERSION},");
    push_str_field(&mut s, "config", config);
    s.pop(); // push_str_field leaves a trailing comma
    s.push('}');
    frame_line(&s)
}

/// Decodes an unframed header payload into `(version, config key)`.
pub fn decode_journal_header(json: &str) -> Result<(u64, String), String> {
    let v = parse_line(json)?;
    let version = v
        .field("charlie_journal")
        .map_err(|_| "first line is not a journal header".to_string())?
        .num()?;
    Ok((version, v.field("config")?.str()?.to_owned()))
}

// ---------------------------------------------------------------------------
// The journal file
// ---------------------------------------------------------------------------

/// What [`Journal::open`] had to recover from. All-zero for a clean journal.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct JournalDiag {
    /// Bytes of a torn final line (no trailing newline — killed mid-write)
    /// that were dropped and compacted away.
    pub torn_tail_bytes: u64,
    /// Complete lines whose CRC frame failed (bit rot, or a torn write
    /// grafted inside a line) — dropped with a warning; those cells re-run.
    pub corrupt_lines: u64,
    /// The header line itself was unreadable: the journal's identity is
    /// unknown, so every record was discarded and the journal restarted.
    pub header_discarded: bool,
}

impl JournalDiag {
    /// `true` when open found any damage at all.
    pub fn any(&self) -> bool {
        self.torn_tail_bytes > 0 || self.corrupt_lines > 0 || self.header_discarded
    }
}

/// Knobs for [`Journal::open_with`].
#[derive(Clone, Debug, Default)]
pub struct JournalOptions {
    /// Expected campaign config key. When set, a journal whose header names
    /// a different key is refused — resuming it would silently replay
    /// foreign cells. New journals record this key in their header.
    pub config: Option<String>,
    /// Sync mode: fsync (`sync_data`) after every append. The default
    /// (flush only) survives process crashes but can lose accepted lines to
    /// a machine crash before kernel writeback; chaos tests and paranoid
    /// campaigns turn this on (also via `CHARLIE_JOURNAL_SYNC=1`).
    pub sync: bool,
}

fn invalid_data(path: &Path, line: usize, msg: impl std::fmt::Display) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("{}:{}: {msg}", path.display(), line))
}

/// Append-only checkpoint journal of completed runs.
///
/// Created by [`Journal::open`]/[`Journal::open_with`], which also return
/// every summary already journaled (the resume set). Write failures degrade
/// gracefully: the journal warns on stderr once and stops persisting — the
/// batch itself keeps running, it just loses crash protection.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    /// `None` when even opening an append handle failed (the journal is
    /// then born broken: resume still works, persistence does not).
    file: Option<ChaosWriter<File>>,
    broken: bool,
    sync: bool,
    diag: JournalDiag,
}

impl Journal {
    /// [`Journal::open_with`] with default options (no config-key check;
    /// sync only if `CHARLIE_JOURNAL_SYNC=1`).
    pub fn open(path: impl AsRef<Path>) -> io::Result<(Journal, Vec<RunSummary>)> {
        Self::open_with(path, JournalOptions::default())
    }

    /// Opens (creating if absent) the journal at `path`, verifies its
    /// header, and parses every intact record already present.
    ///
    /// Recoverable damage — a torn final line, CRC-failed record lines, or
    /// an unreadable header — is dropped with a stderr warning, reported in
    /// [`Journal::diag`], and compacted away on disk (temp file + atomic
    /// rename), so the damaged cells simply re-run.
    ///
    /// # Errors
    ///
    /// I/O errors reading the file, and [`io::ErrorKind::InvalidData`]
    /// (with `path:line`) when resuming would be *wrong* rather than
    /// wasteful: a version mismatch, a config-key mismatch against
    /// [`JournalOptions::config`], or a CRC-valid line that fails to decode
    /// (a writer bug, not wire damage).
    pub fn open_with(
        path: impl AsRef<Path>,
        opts: JournalOptions,
    ) -> io::Result<(Journal, Vec<RunSummary>)> {
        let path = path.as_ref().to_path_buf();
        let sync = opts.sync || env_sync();
        let mut content = String::new();
        let existed = match File::open(&path) {
            Ok(mut f) => {
                f.read_to_string(&mut content)
                    .map_err(|e| io::Error::new(e.kind(), format!("{}: {e}", path.display())))?;
                true
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => false,
            Err(e) => return Err(io::Error::new(e.kind(), format!("{}: {e}", path.display()))),
        };

        let complete_len = content.rfind('\n').map_or(0, |i| i + 1);
        let mut diag = JournalDiag {
            torn_tail_bytes: (content.len() - complete_len) as u64,
            ..JournalDiag::default()
        };
        if diag.torn_tail_bytes > 0 {
            eprintln!(
                "warning: {}: dropping torn final line ({} byte(s), killed mid-write); \
                 that cell re-runs",
                path.display(),
                diag.torn_tail_bytes
            );
        }
        let lines: Vec<&str> =
            content[..complete_len].lines().filter(|l| !l.trim().is_empty()).collect();

        let mut restored: Vec<RunSummary> = Vec::new();
        let mut survivors: Vec<&str> = Vec::new();
        let mut header_config: Option<String> = None;
        if let Some((&first, records)) = lines.split_first() {
            match unframe_line(first) {
                Ok(json) => {
                    let (version, config) =
                        decode_journal_header(json).map_err(|e| invalid_data(&path, 1, e))?;
                    if version != VERSION {
                        return Err(invalid_data(
                            &path,
                            1,
                            format!("journal version {version} (this build reads {VERSION})"),
                        ));
                    }
                    if let Some(expected) = &opts.config {
                        if *expected != config {
                            return Err(invalid_data(
                                &path,
                                1,
                                format!(
                                    "journal was written for config {config:?} but this \
                                     campaign is {expected:?}; refusing to resume — delete \
                                     the journal or point it elsewhere"
                                ),
                            ));
                        }
                    }
                    header_config = Some(config);
                    for (i, &line) in records.iter().enumerate() {
                        match unframe_line(line) {
                            Ok(json) => {
                                if is_lease_json(json) {
                                    // Multi-worker lease/heartbeat records: a
                                    // single-worker resume ignores them (the
                                    // summaries alone are the resume set) but
                                    // keeps them through compaction so a
                                    // rejoining fleet sees its fencing history.
                                    survivors.push(line);
                                    continue;
                                }
                                let summary = decode_summary(json)
                                    .map_err(|e| invalid_data(&path, i + 2, e))?;
                                survivors.push(line);
                                restored.push(summary);
                            }
                            Err(e) => {
                                diag.corrupt_lines += 1;
                                eprintln!(
                                    "warning: {}:{}: dropping corrupt journal line ({e}); \
                                     that cell re-runs",
                                    path.display(),
                                    i + 2
                                );
                            }
                        }
                    }
                }
                Err(frame_err) => {
                    // A pre-CRC (v1) journal parses as bare JSON with a "v"
                    // field: refuse it by version, with a precise message.
                    if let Ok(v) = parse_line(first) {
                        if let Ok(found) = v.field("v").and_then(Json::num) {
                            return Err(invalid_data(
                                &path,
                                1,
                                format!(
                                    "journal version {found} (this build reads {VERSION}; \
                                     pre-CRC journals cannot be resumed)"
                                ),
                            ));
                        }
                    }
                    // Unreadable header: the journal's identity (version,
                    // config) is unknowable, so no record can be trusted to
                    // belong to this campaign. Discard everything, restart.
                    diag.header_discarded = true;
                    diag.corrupt_lines = lines.len() as u64;
                    eprintln!(
                        "warning: {}: journal header unreadable ({frame_err}); discarding \
                         {} line(s) and starting fresh",
                        path.display(),
                        lines.len()
                    );
                }
            }
        }
        if diag.header_discarded {
            restored.clear();
            survivors.clear();
            header_config = None;
        }

        // Materialize a clean file when anything was dropped (or the header
        // is missing entirely): header + surviving records, written to a
        // temp file and renamed into place so a crash mid-compaction can
        // never make things worse. Write-side failures here (and below)
        // degrade to a broken journal instead of killing the campaign: the
        // resume set is already in hand, we just lose crash protection.
        let config = opts.config.or(header_config.clone()).unwrap_or_default();
        let needs_rewrite = diag.any() || header_config.is_none() || !existed;
        let mut broken = false;
        if needs_rewrite {
            let mut out = String::with_capacity(
                64 + survivors.iter().map(|l| l.len() + 1).sum::<usize>(),
            );
            out.push_str(&encode_journal_header(&config));
            for line in &survivors {
                out.push_str(line);
                out.push('\n');
            }
            if let Err(e) = chaos::write_atomic(&path, out.as_bytes(), "journal") {
                eprintln!(
                    "warning: checkpoint journal {}: {e}; journaling disabled for this run",
                    path.display()
                );
                broken = true;
            }
        }
        let file = match OpenOptions::new().create(true).append(true).open(&path) {
            Ok(f) => Some(ChaosWriter::new(f, "journal")),
            Err(e) => {
                if !broken {
                    eprintln!(
                        "warning: checkpoint journal {}: {e}; journaling disabled for this run",
                        path.display()
                    );
                }
                broken = true;
                None
            }
        };
        Ok((Journal { path, file, broken, sync, diag }, restored))
    }

    /// The journal's on-disk path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// What [`Journal::open_with`] recovered from (all-zero when clean).
    pub fn diag(&self) -> JournalDiag {
        self.diag
    }

    /// Appends one completed summary as a CRC-framed line, then flushes
    /// (and fsyncs in sync mode) so a kill immediately after loses nothing.
    /// After the first write failure the journal goes inert: one stderr
    /// warning, then appends become no-ops.
    pub fn append(&mut self, summary: &RunSummary) {
        if self.broken {
            return;
        }
        let Some(file) = self.file.as_mut() else {
            return;
        };
        let line = frame_line(&encode_summary(summary));
        let sync = self.sync;
        let result = file
            .write_all(line.as_bytes())
            .and_then(|()| file.flush())
            .and_then(|()| if sync { file.sync_data() } else { Ok(()) });
        if let Err(e) = result {
            eprintln!(
                "warning: checkpoint journal {} stopped recording: {e}",
                self.path.display()
            );
            self.broken = true;
        }
    }

    /// `true` once a write has failed and journaling has been disabled.
    pub fn is_broken(&self) -> bool {
        self.broken
    }
}

fn env_sync() -> bool {
    std::env::var("CHARLIE_JOURNAL_SYNC").map(|v| !v.is_empty() && v != "0").unwrap_or(false)
}

// ---------------------------------------------------------------------------
// Shared (multi-worker) journals: lease records and lock-free access.
// ---------------------------------------------------------------------------
//
// A multi-worker campaign coordinates *only* through its journal file: every
// worker appends CRC-framed lease records (claim / renew / reclaim) and
// summaries with O_APPEND + fsync, and reads the whole file back to compute
// the current lease table. There are no locks and no compaction while the
// fleet is live — an atomic-rename compaction under a racing O_APPEND writer
// would strand that writer's lines in the unlinked inode. Instead:
//
// * appends are single `write(2)` calls of whole framed lines, so records
//   from different processes interleave at line granularity;
// * a worker SIGKILL'd mid-append leaves a torn tail; the next appender
//   seals it with a leading newline, isolating the fragment into one
//   corrupt (CRC-failed) line that scans simply drop;
// * duplicate summaries — possible only in the narrow window between a
//   zombie's fencing check and its append — are byte-identical re-runs of a
//   deterministic cell, and every reader keeps the first occurrence;
// * generation-dropping compaction ([`compact_shared`]) runs only once the
//   fleet is quiesced (campaign complete).

/// What a lease record announces.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LeaseEvent {
    /// First claim of an unowned cell: opens generation `maxgen + 1`.
    Claim,
    /// Heartbeat: the holder extends its deadline within its generation.
    Renew,
    /// Claim of a cell whose lease expired (holder SIGKILL'd, hung, or its
    /// heartbeats went stale): opens a new generation, which *fences* the
    /// old holder — a zombie's late result is refused at publish time.
    Reclaim,
}

impl LeaseEvent {
    /// The wire spelling.
    pub fn name(self) -> &'static str {
        match self {
            LeaseEvent::Claim => "claim",
            LeaseEvent::Renew => "renew",
            LeaseEvent::Reclaim => "reclaim",
        }
    }

    /// Parses the wire spelling.
    pub fn parse(s: &str) -> Option<LeaseEvent> {
        [LeaseEvent::Claim, LeaseEvent::Renew, LeaseEvent::Reclaim]
            .into_iter()
            .find(|e| e.name() == s)
    }

    /// `true` for events that open a generation (claim/reclaim); renewals
    /// only extend the deadline of a generation someone else opened.
    pub fn opens_generation(self) -> bool {
        !matches!(self, LeaseEvent::Renew)
    }
}

/// One lease line in a shared campaign journal.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LeaseRecord {
    /// What happened.
    pub event: LeaseEvent,
    /// Cell index into the campaign manifest's grid (the journal does not
    /// repeat the experiment; workers resolve indices through the manifest).
    pub cell: u64,
    /// The worker holding (or taking) the lease.
    pub worker: String,
    /// Fencing generation: claims and reclaims for one cell carry strictly
    /// increasing generations; a publish is valid only while its generation
    /// is still the cell's newest.
    pub gen: u64,
    /// Absolute wall-clock deadline (Unix milliseconds). Past it, any peer
    /// may reclaim the cell.
    pub deadline_ms: u64,
}

/// Encodes one lease record — unframed JSON; [`frame_line`] adds the CRC.
/// The `{"lease":` prefix is the record-type discriminator scans dispatch
/// on, so it must stay the first field.
pub fn encode_lease(l: &LeaseRecord) -> String {
    let mut s = String::with_capacity(96);
    let _ = write!(s, "{{\"lease\":\"{}\",\"cell\":{},", l.event.name(), l.cell);
    push_str_field(&mut s, "worker", &l.worker);
    let _ = write!(s, "\"gen\":{},\"deadline_ms\":{}}}", l.gen, l.deadline_ms);
    s
}

/// Decodes an unframed lease payload.
pub fn decode_lease(json: &str) -> Result<LeaseRecord, String> {
    let v = parse_line(json)?;
    let event_name = v.field("lease")?.str()?;
    let event = LeaseEvent::parse(event_name)
        .ok_or_else(|| format!("unknown lease event {event_name:?}"))?;
    Ok(LeaseRecord {
        event,
        cell: v.field("cell")?.num()?,
        worker: v.field("worker")?.str()?.to_owned(),
        gen: v.field("gen")?.num()?,
        deadline_ms: v.field("deadline_ms")?.num()?,
    })
}

/// `true` when a CRC-valid payload is a lease record rather than a summary.
/// A prefix test suffices because [`encode_lease`] pins `"lease"` as the
/// first field and summaries always open with `"v"`.
fn is_lease_json(json: &str) -> bool {
    json.starts_with("{\"lease\":")
}

/// Read-only parse of a shared campaign journal: everything intact, nothing
/// rewritten, no warnings — workers poll this in a loop.
#[derive(Clone, Debug, Default)]
pub struct SharedScan {
    /// First occurrence of each cell's summary, in file order (duplicates
    /// are byte-identical re-runs; see the module notes).
    pub summaries: Vec<RunSummary>,
    /// Every intact lease record, in file order — the raw material for a
    /// lease table, and for asserting generation monotonicity in tests.
    pub leases: Vec<LeaseRecord>,
    /// Summary lines dropped as duplicates of an earlier cell.
    pub duplicate_summaries: u64,
    /// Complete lines whose CRC frame failed (torn-write grafts, bit rot).
    pub corrupt_lines: u64,
    /// Bytes of an unterminated final line (a writer died mid-append).
    pub torn_tail_bytes: u64,
}

/// Scans the shared journal at `path` without modifying it. A missing file
/// is an empty scan. Damage (torn tail, CRC-failed lines) is counted and
/// skipped — the cells re-run — but a version mismatch, a config-key
/// mismatch against `expected_config`, an unreadable header, or a CRC-valid
/// line that fails to decode is a hard error: those mean the journal cannot
/// be trusted to belong to this campaign at all.
pub fn scan_shared(path: &Path, expected_config: Option<&str>) -> io::Result<SharedScan> {
    let mut content = String::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_string(&mut content)
                .map_err(|e| io::Error::new(e.kind(), format!("{}: {e}", path.display())))?;
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(SharedScan::default()),
        Err(e) => return Err(io::Error::new(e.kind(), format!("{}: {e}", path.display()))),
    }
    let complete_len = content.rfind('\n').map_or(0, |i| i + 1);
    let mut scan = SharedScan {
        torn_tail_bytes: (content.len() - complete_len) as u64,
        ..SharedScan::default()
    };
    let lines: Vec<&str> =
        content[..complete_len].lines().filter(|l| !l.trim().is_empty()).collect();
    let Some((&first, records)) = lines.split_first() else {
        return Ok(scan);
    };
    let json = unframe_line(first)
        .map_err(|e| invalid_data(path, 1, format!("shared journal header unreadable: {e}")))?;
    let (version, config) = decode_journal_header(json).map_err(|e| invalid_data(path, 1, e))?;
    if version != VERSION {
        return Err(invalid_data(
            path,
            1,
            format!("journal version {version} (this build reads {VERSION})"),
        ));
    }
    if let Some(expected) = expected_config {
        if expected != config {
            return Err(invalid_data(
                path,
                1,
                format!(
                    "shared journal was written for config {config:?} but this campaign \
                     is {expected:?}; refusing to join"
                ),
            ));
        }
    }
    let mut seen = std::collections::HashSet::new();
    for (i, &line) in records.iter().enumerate() {
        match unframe_line(line) {
            Ok(json) if is_lease_json(json) => {
                let lease = decode_lease(json).map_err(|e| invalid_data(path, i + 2, e))?;
                scan.leases.push(lease);
            }
            Ok(json) => {
                let summary = decode_summary(json).map_err(|e| invalid_data(path, i + 2, e))?;
                if seen.insert(summary.experiment) {
                    scan.summaries.push(summary);
                } else {
                    scan.duplicate_summaries += 1;
                }
            }
            Err(_) => scan.corrupt_lines += 1,
        }
    }
    Ok(scan)
}

/// Creates the shared journal with a durable header if it does not exist
/// yet. Safe to race: exactly one creator wins `create_new`, everyone else
/// sees `AlreadyExists` and proceeds.
pub fn ensure_shared(path: &Path, config: &str) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(|e| {
                io::Error::new(e.kind(), format!("creating {}: {e}", parent.display()))
            })?;
        }
    }
    match OpenOptions::new().write(true).create_new(true).open(path) {
        Ok(f) => {
            let mut w = ChaosWriter::new(f, "journal");
            let header = encode_journal_header(config);
            w.write_all(header.as_bytes())
                .and_then(|()| w.flush())
                .and_then(|()| w.sync_data())
                .map_err(|e| io::Error::new(e.kind(), format!("{}: {e}", path.display())))
        }
        Err(e) if e.kind() == io::ErrorKind::AlreadyExists => Ok(()),
        Err(e) => Err(io::Error::new(e.kind(), format!("{}: {e}", path.display()))),
    }
}

/// One worker's append handle into a shared journal: O_APPEND, one
/// `write(2)` of whole framed lines per call, fsync'd before returning —
/// a lease that has not reached disk does not exist.
///
/// The handle is persistent for the worker's lifetime so chaos fault
/// offsets accumulate across appends (a `lease:torn@k` plan tears exactly
/// one record per process instead of every record crossing byte `k`).
#[derive(Debug)]
pub struct SharedAppender {
    path: PathBuf,
    file: ChaosWriter<File>,
}

impl SharedAppender {
    /// Opens an append handle; `tag` names the chaos target (`lease` for
    /// lease records, `journal` for worker-published summaries).
    pub fn open(path: &Path, tag: &str) -> io::Result<SharedAppender> {
        let f = OpenOptions::new().create(true).append(true).open(path).map_err(|e| {
            io::Error::new(e.kind(), format!("{}: {e}", path.display()))
        })?;
        Ok(SharedAppender { path: path.to_path_buf(), file: ChaosWriter::new(f, tag) })
    }

    /// Appends one or more already-framed lines (each ending in `\n`) in a
    /// single write, fsync'd. If some other process died mid-append and
    /// left the file without a trailing newline, the write leads with a
    /// sealing `\n` so the torn fragment is isolated into one corrupt line
    /// instead of swallowing this record too.
    pub fn append(&mut self, framed: &str) -> io::Result<()> {
        let sealed = tail_sealed(&self.path)?;
        let mut buf = String::with_capacity(framed.len() + 1);
        if !sealed {
            buf.push('\n');
        }
        buf.push_str(framed);
        self.file
            .write_all(buf.as_bytes())
            .and_then(|()| self.file.flush())
            .and_then(|()| self.file.sync_data())
            .map_err(|e| io::Error::new(e.kind(), format!("{}: {e}", self.path.display())))
    }
}

/// `true` when the file is empty or ends with a newline.
fn tail_sealed(path: &Path) -> io::Result<bool> {
    use std::io::{Seek, SeekFrom};
    let mut f = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(true),
        Err(e) => return Err(io::Error::new(e.kind(), format!("{}: {e}", path.display()))),
    };
    let len = f.metadata()?.len();
    if len == 0 {
        return Ok(true);
    }
    f.seek(SeekFrom::End(-1))?;
    let mut b = [0u8; 1];
    f.read_exact(&mut b)?;
    Ok(b[0] == b'\n')
}

/// Compacts a quiesced shared journal: keeps the header, the first summary
/// per cell, and — for cells not yet published — only the lease records of
/// the cell's *newest* generation. Superseded generations and the lease
/// trail of published cells are dropped; a fleet rejoining the compacted
/// journal sees exactly the state that still matters.
///
/// Must only run when no worker holds an O_APPEND handle mid-claim (the
/// campaign is complete, or a single owner remains): the atomic rename
/// would strand a racing writer's lines in the unlinked inode.
pub fn compact_shared(path: &Path, config: &str, cells: &[crate::lab::Experiment]) -> io::Result<()> {
    let scan = scan_shared(path, Some(config))?;
    let published: std::collections::HashSet<u64> = cells
        .iter()
        .enumerate()
        .filter(|(_, exp)| scan.summaries.iter().any(|s| s.experiment == **exp))
        .map(|(i, _)| i as u64)
        .collect();
    let mut newest_gen: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    for lease in &scan.leases {
        let slot = newest_gen.entry(lease.cell).or_insert(0);
        *slot = (*slot).max(lease.gen);
    }
    let mut out = String::with_capacity(4096);
    out.push_str(&encode_journal_header(config));
    for summary in &scan.summaries {
        out.push_str(&frame_line(&encode_summary(summary)));
    }
    for lease in &scan.leases {
        if !published.contains(&lease.cell) && Some(&lease.gen) == newest_gen.get(&lease.cell) {
            out.push_str(&frame_line(&encode_lease(lease)));
        }
    }
    chaos::write_atomic(path, out.as_bytes(), "journal")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lab::{Experiment, Lab, ObserveSpec, RunConfig};
    use charlie_prefetch::Strategy;
    use charlie_workloads::Workload;

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("charlie-checkpoint-{}-{name}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn sample_summary() -> RunSummary {
        let mut lab = Lab::new(RunConfig {
            procs: 2,
            refs_per_proc: 500,
            seed: 11,
            ..RunConfig::default()
        });
        lab.run(Experiment::paper(Workload::Mp3d, Strategy::Pws, 16)).clone()
    }

    #[test]
    fn summary_round_trips_exactly() {
        let summary = sample_summary();
        let line = encode_summary(&summary);
        assert!(!line.contains('\n'), "journal lines are single lines");
        let back = decode_summary(&line).expect("round trip");
        assert_eq!(back, summary);
    }

    #[test]
    fn summary_with_timeline_round_trips_exactly() {
        let mut lab = Lab::new(RunConfig {
            procs: 2,
            refs_per_proc: 500,
            seed: 11,
            ..RunConfig::default()
        });
        lab.set_observe(ObserveSpec {
            sample_interval: Some(2_000),
            ..ObserveSpec::default()
        });
        let summary = lab.run(Experiment::paper(Workload::Mp3d, Strategy::Pws, 16)).clone();
        let timeline = summary.timeline.as_ref().expect("sampled run records a timeline");
        assert!(!timeline.windows.is_empty());
        let back = decode_summary(&encode_summary(&summary)).expect("round trip");
        assert_eq!(back, summary);
    }

    #[test]
    fn keyed_report_round_trips_exactly() {
        let summary = sample_summary();
        let line = encode_keyed_report("cache/Mp3d/16KB", &summary.report);
        let (key, report) = decode_keyed_report(&line).expect("round trip");
        assert_eq!(key, "cache/Mp3d/16KB");
        assert_eq!(report, summary.report);
    }

    #[test]
    fn empty_latency_distribution_round_trips() {
        // NP runs on hit-heavy traces can produce an empty fill-latency
        // distribution; its min is the u64::MAX sentinel.
        let mut summary = sample_summary();
        summary.report.fill_latency = LatencyStats::default();
        let back = decode_summary(&encode_summary(&summary)).unwrap();
        assert_eq!(back, summary);
    }

    #[test]
    fn hw_prefetch_stats_round_trip_and_stay_invisible_when_empty() {
        // Off runs must serialize exactly as the version-2 format did.
        let summary = sample_summary();
        assert!(summary.report.hw_prefetch.is_empty());
        assert!(!encode_summary(&summary).contains("hw_prefetch"));

        let mut with_hw = summary.clone();
        with_hw.report.hw_prefetch =
            HwPrefetchStats { trained: 7, issued: 41, useful: 23, late: 5, useless: 13 };
        let line = encode_summary(&with_hw);
        assert!(line.contains("\"hw_prefetch\""));
        let back = decode_summary(&line).expect("round trip");
        assert_eq!(back, with_hw);
    }

    #[test]
    fn update_broadcasts_round_trip_and_stay_invisible_when_zero() {
        // Write-invalidate runs must serialize exactly as before the
        // `updates` counter existed.
        let summary = sample_summary();
        assert_eq!(summary.report.bus.updates, 0);
        assert!(!encode_summary(&summary).contains("\"updates\""));

        // An update-protocol run carries the counter and round-trips it.
        let mut lab = Lab::new(RunConfig {
            procs: 2,
            refs_per_proc: 500,
            seed: 11,
            protocol: charlie_sim::Protocol::Dragon,
            ..RunConfig::default()
        });
        let dragon = lab.run(Experiment::paper(Workload::Mp3d, Strategy::Pref, 16)).clone();
        assert!(dragon.report.bus.updates > 0, "shared stores broadcast under Dragon");
        let line = encode_summary(&dragon);
        assert!(line.contains("\"updates\""));
        let back = decode_summary(&line).expect("round trip");
        assert_eq!(back, dragon);
    }

    #[test]
    fn pointer_chase_summaries_round_trip() {
        let mut lab = Lab::new(RunConfig {
            procs: 2,
            refs_per_proc: 500,
            seed: 11,
            ..RunConfig::default()
        });
        let summary =
            lab.run(Experiment::paper(Workload::PointerChase, Strategy::NoPrefetch, 16)).clone();
        let back = decode_summary(&encode_summary(&summary)).expect("round trip");
        assert_eq!(back, summary);
    }

    #[test]
    fn journal_persists_and_restores() {
        let path = temp_path("persist");
        let summary = sample_summary();
        {
            let (mut journal, restored) = Journal::open(&path).unwrap();
            assert!(restored.is_empty());
            journal.append(&summary);
        }
        let (_journal, restored) = Journal::open(&path).unwrap();
        assert_eq!(restored, vec![summary]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn trailing_partial_line_is_dropped() {
        let path = temp_path("partial");
        let summary = sample_summary();
        let mut content = encode_journal_header("");
        content.push_str(&frame_line(&encode_summary(&summary)));
        content.push_str("0000dead {\"v\":2,\"workload\":\"Wat"); // killed mid-write
        std::fs::write(&path, &content).unwrap();
        let (journal, restored) = Journal::open(&path).unwrap();
        assert_eq!(restored.len(), 1, "complete line kept, partial dropped");
        assert!(journal.diag().torn_tail_bytes > 0);
        assert_eq!(journal.diag().corrupt_lines, 0, "torn is not corrupt");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn append_after_torn_tail_yields_parseable_journal() {
        let path = temp_path("torn-append");
        let summary = sample_summary();
        let mut content = encode_journal_header("");
        content.push_str(&frame_line(&encode_summary(&summary)));
        content.push_str("0000dead {\"v\":2,\"workload\":\"Wat"); // killed mid-write
        std::fs::write(&path, &content).unwrap();
        // Opening must compact the torn bytes away so this append starts on
        // a fresh line instead of grafting onto them.
        let (mut journal, restored) = Journal::open(&path).unwrap();
        assert_eq!(restored.len(), 1);
        journal.append(&summary);
        drop(journal);
        let (journal, restored) = Journal::open(&path).unwrap();
        assert_eq!(restored.len(), 2, "torn tail replaced by a clean record");
        assert_eq!(restored[0], restored[1]);
        assert!(!journal.diag().any(), "compaction left a clean journal");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_complete_line_is_dropped_and_compacted() {
        let path = temp_path("bitrot");
        let summary = sample_summary();
        let good = frame_line(&encode_summary(&summary));
        let mut content = encode_journal_header("");
        content.push_str(&good);
        // Same record again, with one payload bit flipped: a *complete*
        // line whose CRC no longer matches.
        let mut rotted = good.clone().into_bytes();
        let target = good.len() / 2;
        rotted[target] ^= 0x01;
        content.extend(String::from_utf8(rotted).unwrap().chars());
        content.push_str(&good);
        std::fs::write(&path, &content).unwrap();

        let (journal, restored) = Journal::open(&path).unwrap();
        assert_eq!(restored.len(), 2, "intact records survive around the rot");
        assert_eq!(journal.diag().corrupt_lines, 1);
        assert_eq!(journal.diag().torn_tail_bytes, 0, "corrupt is not torn");
        drop(journal);
        // The compaction rewrote the file: reopening finds it clean.
        let (journal, restored) = Journal::open(&path).unwrap();
        assert_eq!(restored.len(), 2);
        assert!(!journal.diag().any());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn crc_valid_but_undecodable_line_is_an_error() {
        // A line that passes its checksum but fails to decode was *written*
        // wrong — that is a bug, not wire damage, and must not be skipped.
        let path = temp_path("writer-bug");
        let mut content = encode_journal_header("");
        content.push_str(&frame_line("{\"v\":2,\"workload\":\"NoSuch\"}"));
        std::fs::write(&path, &content).unwrap();
        let err = Journal::open(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains(":2:"), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn header_corruption_discards_records_but_recovers() {
        let path = temp_path("bad-header");
        let summary = sample_summary();
        let mut content = encode_journal_header("");
        content.push_str(&frame_line(&encode_summary(&summary)));
        let mut bytes = content.into_bytes();
        bytes[3] ^= 0x10; // rot inside the header's CRC field
        std::fs::write(&path, &bytes).unwrap();

        let (mut journal, restored) = Journal::open(&path).unwrap();
        assert!(restored.is_empty(), "untrusted header discards every record");
        assert!(journal.diag().header_discarded);
        journal.append(&summary);
        drop(journal);
        let (journal, restored) = Journal::open(&path).unwrap();
        assert_eq!(restored.len(), 1, "journal restarted cleanly");
        assert!(!journal.diag().any());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn version_mismatch_is_an_error() {
        let path = temp_path("version");
        std::fs::write(&path, frame_line("{\"charlie_journal\":99,\"config\":\"\"}")).unwrap();
        let err = Journal::open(&path).unwrap_err();
        assert!(err.to_string().contains("version 99"), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn pre_crc_v1_journal_is_refused_by_version() {
        let path = temp_path("v1");
        std::fs::write(&path, "{\"v\":1,\"workload\":\"water\"}\n").unwrap();
        let err = Journal::open(&path).unwrap_err();
        assert!(err.to_string().contains("version 1"), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn config_key_mismatch_is_refused() {
        let path = temp_path("config-key");
        let opts = |key: &str| JournalOptions { config: Some(key.to_string()), sync: false };
        {
            let (mut journal, _) = Journal::open_with(&path, opts("sweep/water/p2")).unwrap();
            journal.append(&sample_summary());
        }
        let err = Journal::open_with(&path, opts("sweep/mp3d/p8")).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let text = err.to_string();
        assert!(text.contains("sweep/water/p2") && text.contains("sweep/mp3d/p8"), "{text}");
        assert!(text.contains("refusing to resume"), "{text}");
        // The matching key still resumes, and an un-keyed open stays
        // compatible with any journal.
        let (_, restored) = Journal::open_with(&path, opts("sweep/water/p2")).unwrap();
        assert_eq!(restored.len(), 1);
        let (_, restored) = Journal::open(&path).unwrap();
        assert_eq!(restored.len(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn sync_mode_appends_are_readable_back() {
        let path = temp_path("sync");
        let summary = sample_summary();
        {
            let (mut journal, _) = Journal::open_with(
                &path,
                JournalOptions { config: None, sync: true },
            )
            .unwrap();
            journal.append(&summary);
            assert!(!journal.is_broken());
        }
        let (_, restored) = Journal::open(&path).unwrap();
        assert_eq!(restored, vec![summary]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn frame_round_trips_and_rejects_damage() {
        let line = frame_line("{\"k\":1}");
        assert!(line.ends_with('\n'));
        assert_eq!(unframe_line(line.trim_end()).unwrap(), "{\"k\":1}");
        assert!(unframe_line("{\"k\":1}").is_err(), "unframed line rejected");
        assert!(unframe_line("deadbeef {\"k\":1}").unwrap_err().contains("mismatch"));
        assert!(unframe_line("xyz {\"k\":1}").is_err(), "short checksum rejected");
    }

    #[test]
    fn keys_with_quotes_and_backslashes_survive() {
        let report = SimReport::default();
        let line = encode_keyed_report("odd \"key\" with \\ slash", &report);
        let (key, _) = decode_keyed_report(&line).unwrap();
        assert_eq!(key, "odd \"key\" with \\ slash");
    }

    fn lease(event: LeaseEvent, cell: u64, worker: &str, gen: u64, deadline_ms: u64) -> LeaseRecord {
        LeaseRecord { event, cell, worker: worker.to_owned(), gen, deadline_ms }
    }

    #[test]
    fn lease_records_round_trip_and_are_recognized() {
        for event in [LeaseEvent::Claim, LeaseEvent::Renew, LeaseEvent::Reclaim] {
            let rec = lease(event, 42, "w-\"quoted\"-7", 3, 1_754_555_555_000);
            let json = encode_lease(&rec);
            assert!(is_lease_json(&json), "{json} must carry the lease discriminator");
            assert!(!is_lease_json(&encode_summary(&sample_summary())));
            assert_eq!(decode_lease(&json).unwrap(), rec);
            assert_eq!(LeaseEvent::parse(event.name()), Some(event));
        }
        assert!(LeaseEvent::Claim.opens_generation());
        assert!(LeaseEvent::Reclaim.opens_generation());
        assert!(!LeaseEvent::Renew.opens_generation());
        assert!(decode_lease("{\"lease\":\"vanish\",\"cell\":1}").is_err());
    }

    /// A single-worker resume ignores lease records but keeps them through
    /// compaction, so a fleet rejoining the journal still sees its history.
    #[test]
    fn open_with_skips_and_preserves_lease_lines() {
        let path = temp_path("lease-skip");
        let summary = sample_summary();
        ensure_shared(&path, "cfg").unwrap();
        let mut app = SharedAppender::open(&path, "lease").unwrap();
        app.append(&frame_line(&encode_lease(&lease(LeaseEvent::Claim, 0, "w1", 1, 500)))).unwrap();
        app.append(&frame_line(&encode_summary(&summary))).unwrap();
        // Torn tail: force a rewrite so compaction provably keeps the lease.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"deadbeef {\"torn").unwrap();
        }
        let opts = JournalOptions { config: Some("cfg".to_owned()), sync: false };
        let (journal, restored) = Journal::open_with(&path, opts).unwrap();
        drop(journal);
        assert_eq!(restored, vec![summary.clone()]);
        let scan = scan_shared(&path, Some("cfg")).unwrap();
        assert_eq!(scan.leases.len(), 1, "compaction preserved the lease record");
        assert_eq!(scan.summaries, vec![summary]);
        let _ = std::fs::remove_file(&path);
    }

    /// Compaction keeps only the newest generation of unpublished cells and
    /// drops the whole lease trail of published ones.
    #[test]
    fn compact_shared_drops_superseded_generations() {
        let path = temp_path("lease-compact");
        let summary = sample_summary();
        let cells = [summary.experiment, Experiment::paper(Workload::Water, Strategy::NoPrefetch, 16)];
        ensure_shared(&path, "cfg").unwrap();
        let mut app = SharedAppender::open(&path, "lease").unwrap();
        // Cell 0 gets published; cell 1 is claimed, dies, and is reclaimed.
        app.append(&frame_line(&encode_lease(&lease(LeaseEvent::Claim, 0, "w1", 1, 100)))).unwrap();
        app.append(&frame_line(&encode_lease(&lease(LeaseEvent::Claim, 1, "w2", 1, 100)))).unwrap();
        app.append(&frame_line(&encode_lease(&lease(LeaseEvent::Renew, 1, "w2", 1, 200)))).unwrap();
        app.append(&frame_line(&encode_summary(&summary))).unwrap();
        app.append(&frame_line(&encode_lease(&lease(LeaseEvent::Reclaim, 1, "w3", 2, 900)))).unwrap();
        compact_shared(&path, "cfg", &cells).unwrap();
        let scan = scan_shared(&path, Some("cfg")).unwrap();
        assert_eq!(scan.summaries, vec![summary]);
        assert_eq!(scan.leases, vec![lease(LeaseEvent::Reclaim, 1, "w3", 2, 900)]);
        // Compacting again is a no-op fixed point.
        compact_shared(&path, "cfg", &cells).unwrap();
        let again = scan_shared(&path, Some("cfg")).unwrap();
        assert_eq!(again.leases, scan.leases);
        assert_eq!(again.summaries, scan.summaries);
        let _ = std::fs::remove_file(&path);
    }

    /// A worker SIGKILL'd mid-append leaves a torn tail; the next appender
    /// seals it so exactly one corrupt line is lost and its own record
    /// survives, and duplicate summaries keep the first occurrence.
    #[test]
    fn shared_appends_seal_torn_tails_and_dedupe_summaries() {
        let path = temp_path("lease-seal");
        let summary = sample_summary();
        ensure_shared(&path, "cfg").unwrap();
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"0bad0bad {\"lease\":\"claim\",\"cell\":9").unwrap();
        }
        let mut app = SharedAppender::open(&path, "lease").unwrap();
        app.append(&frame_line(&encode_lease(&lease(LeaseEvent::Claim, 3, "w1", 1, 50)))).unwrap();
        app.append(&frame_line(&encode_summary(&summary))).unwrap();
        app.append(&frame_line(&encode_summary(&summary))).unwrap();
        let scan = scan_shared(&path, Some("cfg")).unwrap();
        assert_eq!(scan.corrupt_lines, 1, "the torn fragment became one corrupt line");
        assert_eq!(scan.torn_tail_bytes, 0);
        assert_eq!(scan.leases, vec![lease(LeaseEvent::Claim, 3, "w1", 1, 50)]);
        assert_eq!(scan.summaries.len(), 1);
        assert_eq!(scan.duplicate_summaries, 1, "re-published cells keep the first copy");
        let _ = std::fs::remove_file(&path);
    }

    /// Joining a journal written for a different campaign config is refused
    /// outright; a missing journal scans as empty.
    #[test]
    fn scan_shared_rejects_foreign_configs() {
        let path = temp_path("lease-foreign");
        assert!(scan_shared(&path, Some("cfg")).unwrap().summaries.is_empty());
        ensure_shared(&path, "cfg-a").unwrap();
        ensure_shared(&path, "cfg-b").unwrap(); // second create is a no-op...
        assert!(scan_shared(&path, Some("cfg-a")).is_ok());
        let err = scan_shared(&path, Some("cfg-b")).unwrap_err();
        assert!(err.to_string().contains("refusing to join"), "{err}");
        let _ = std::fs::remove_file(&path);
    }
}
