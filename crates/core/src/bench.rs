//! Macro-benchmark harness: times a representative slice of the paper's
//! experiment grid and snapshots the numbers as JSON so the repository
//! carries a performance trajectory (`BENCH_charlie.json`) future changes
//! can be regressed against.
//!
//! The slice is Mp3d — the most coherence-intensive workload — across all
//! five prefetch strategies and all five paper transfer latencies: 25 cells,
//! the same shape as one Figure-2 panel. Cells run through the same
//! shared-trace pipeline a `Lab` batch uses; the harness records the
//! median cell wall-clock, scheduler events per second (from
//! [`charlie_sim::simulate_counted_prevalidated`]), peak RSS, and a
//! checksum over the reports proving two snapshots simulated identical
//! work.
//!
//! Run it via `charlie-cli bench [--quick]` or the `ci.sh` quick-bench
//! smoke stage; see EXPERIMENTS.md for how to compare snapshots.

use crate::Experiment;
use charlie_bus::BusConfig;
use charlie_prefetch::Strategy;
use charlie_sim::{simulate_counted_prevalidated, SimConfig};
use charlie_workloads::{generate, Layout, Workload, WorkloadConfig};
use std::fmt::Write as _;
use std::time::Instant;

/// Trace-size knobs for one slice run.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct SliceConfig {
    /// Demand references per processor.
    pub refs_per_proc: usize,
    /// Processors.
    pub procs: usize,
    /// Workload seed.
    pub seed: u64,
}

impl SliceConfig {
    /// The full-size slice: the experiment suite's defaults (what the
    /// checked-in before/after numbers are measured at).
    pub fn full() -> Self {
        SliceConfig { refs_per_proc: 160_000, procs: 8, seed: 0xC0FFEE }
    }

    /// A ~8× smaller slice for the CI smoke stage (seconds, not minutes).
    pub fn quick() -> Self {
        SliceConfig { refs_per_proc: 20_000, ..SliceConfig::full() }
    }
}

/// The benchmarked grid slice: Mp3d × all strategies × all paper latencies.
pub fn slice_experiments() -> Vec<Experiment> {
    let mut exps = Vec::new();
    for &transfer in &BusConfig::PAPER_SWEEP {
        for strategy in Strategy::ALL {
            exps.push(Experiment::paper(Workload::Mp3d, strategy, transfer));
        }
    }
    exps
}

/// One measured slice run, as recorded in `BENCH_charlie.json`.
#[derive(Clone, PartialEq, Debug)]
pub struct Snapshot {
    /// Name this run is filed under (`before`, `after`, `quick_baseline`…).
    pub label: String,
    /// Cells in the slice.
    pub cells: usize,
    /// Processors per cell.
    pub procs: usize,
    /// References per processor.
    pub refs_per_proc: usize,
    /// Median wall-clock of one cell (simulation plus its amortized share
    /// of the batch-shared generate/validate/apply work), ms.
    pub median_cell_ms: f64,
    /// Wall-clock of the whole slice, ms.
    pub total_ms: f64,
    /// Portion of `total_ms` spent inside the simulator proper, ms.
    pub sim_ms: f64,
    /// Scheduler events processed across the slice (deterministic).
    pub events: u64,
    /// `events / sim_ms` — the throughput number CI regresses against.
    pub events_per_sec: f64,
    /// Peak resident set of the process, KiB (`/proc/self/status` VmHWM;
    /// 0 where unavailable).
    pub peak_rss_kb: u64,
    /// Wrapping sum of every cell's simulated cycle count: two snapshots
    /// with equal checksums simulated bit-identical work.
    pub cycles_checksum: u64,
}

/// Runs the grid slice under `cfg` and measures it.
///
/// The slice executes through the same shared-trace pipeline a `Lab` batch
/// uses: the raw trace is generated and validated once (the slice is one
/// workload and layout), each strategy is applied once, and each cell
/// simulates prevalidated. A cell's wall-clock is its simulation plus its
/// amortized share of that shared preparation, so `median_cell_ms` is the
/// true marginal cost of one cell inside a full-grid regeneration.
pub fn run_slice(label: &str, cfg: &SliceConfig) -> Snapshot {
    let exps = slice_experiments();
    let mut cell_ms: Vec<f64> = Vec::with_capacity(exps.len());
    let mut sim_nanos: u128 = 0;
    let mut events: u64 = 0;
    let mut checksum: u64 = 0;
    let slice_start = Instant::now();
    let wcfg = WorkloadConfig {
        procs: cfg.procs,
        refs_per_proc: cfg.refs_per_proc,
        seed: cfg.seed,
        layout: Layout::Interleaved,
    };
    let gen_start = Instant::now();
    let raw = generate(Workload::Mp3d, &wcfg);
    raw.validate().expect("generated trace is valid");
    let gen_share_ns = gen_start.elapsed().as_nanos() as f64 / exps.len() as f64;
    for strategy in Strategy::ALL {
        let apply_start = Instant::now();
        let prepared =
            charlie_prefetch::apply(strategy, &raw, charlie_cache::CacheGeometry::paper_default());
        let cells: Vec<&Experiment> =
            exps.iter().filter(|e| e.strategy == strategy).collect();
        let apply_share_ns = apply_start.elapsed().as_nanos() as f64 / cells.len() as f64;
        for exp in cells {
            let sim_cfg = SimConfig::paper(cfg.procs, exp.transfer_cycles);
            let sim_start = Instant::now();
            let (report, cell_events) = simulate_counted_prevalidated(&sim_cfg, &prepared)
                .unwrap_or_else(|e| panic!("bench cell {exp}: {e}"));
            sim_nanos += sim_start.elapsed().as_nanos();
            events += cell_events;
            checksum =
                checksum.wrapping_add(report.cycles).wrapping_add(report.miss.cpu_misses());
            let cell_nanos =
                sim_start.elapsed().as_nanos() as f64 + apply_share_ns + gen_share_ns;
            cell_ms.push(cell_nanos / 1e6);
        }
    }
    let total_ms = slice_start.elapsed().as_nanos() as f64 / 1e6;
    let sim_ms = sim_nanos as f64 / 1e6;
    Snapshot {
        label: label.to_owned(),
        cells: exps.len(),
        procs: cfg.procs,
        refs_per_proc: cfg.refs_per_proc,
        median_cell_ms: median(&mut cell_ms),
        total_ms,
        sim_ms,
        events,
        events_per_sec: if sim_ms > 0.0 { events as f64 * 1e3 / sim_ms } else { 0.0 },
        peak_rss_kb: peak_rss_kb(),
        cycles_checksum: checksum,
    }
}

/// Runs the grid slice under SMARTS sampling (DESIGN.md §17) and measures
/// it — the `sampled` entry in `BENCH_charlie.json`. Same 25 cells and
/// shared-trace pipeline as [`run_slice`], but each cell simulates through
/// [`crate::sampling::run_sampled_on_prepared`], so `events` counts the
/// sampled run's scheduler events (period-fold fewer than exact) and
/// `cycles_checksum` sums the *estimated* cycle counts: it proves two
/// sampled snapshots estimated identically, not that they match exact.
pub fn run_sampled_slice(
    label: &str,
    cfg: &SliceConfig,
    scfg: &crate::SamplingConfig,
) -> Snapshot {
    let exps = slice_experiments();
    let mut cell_ms: Vec<f64> = Vec::with_capacity(exps.len());
    let mut sim_nanos: u128 = 0;
    let mut events: u64 = 0;
    let mut checksum: u64 = 0;
    let slice_start = Instant::now();
    let wcfg = WorkloadConfig {
        procs: cfg.procs,
        refs_per_proc: cfg.refs_per_proc,
        seed: cfg.seed,
        layout: Layout::Interleaved,
    };
    let gen_start = Instant::now();
    let raw = generate(Workload::Mp3d, &wcfg);
    raw.validate().expect("generated trace is valid");
    let gen_share_ns = gen_start.elapsed().as_nanos() as f64 / exps.len() as f64;
    for strategy in Strategy::ALL {
        let apply_start = Instant::now();
        let prepared =
            charlie_prefetch::apply(strategy, &raw, charlie_cache::CacheGeometry::paper_default());
        let cells: Vec<&Experiment> =
            exps.iter().filter(|e| e.strategy == strategy).collect();
        let apply_share_ns = apply_start.elapsed().as_nanos() as f64 / cells.len() as f64;
        for exp in cells {
            let sim_cfg = SimConfig::paper(cfg.procs, exp.transfer_cycles);
            let sim_start = Instant::now();
            let (report, summary) =
                crate::sampling::run_sampled_on_prepared(&sim_cfg, &prepared, scfg)
                    .unwrap_or_else(|e| panic!("sampled bench cell {exp}: {e}"));
            sim_nanos += sim_start.elapsed().as_nanos();
            events += summary.events;
            checksum =
                checksum.wrapping_add(report.cycles).wrapping_add(report.miss.cpu_misses());
            let cell_nanos =
                sim_start.elapsed().as_nanos() as f64 + apply_share_ns + gen_share_ns;
            cell_ms.push(cell_nanos / 1e6);
        }
    }
    let total_ms = slice_start.elapsed().as_nanos() as f64 / 1e6;
    let sim_ms = sim_nanos as f64 / 1e6;
    Snapshot {
        label: label.to_owned(),
        cells: exps.len(),
        procs: cfg.procs,
        refs_per_proc: cfg.refs_per_proc,
        median_cell_ms: median(&mut cell_ms),
        total_ms,
        sim_ms,
        events,
        events_per_sec: if sim_ms > 0.0 { events as f64 * 1e3 / sim_ms } else { 0.0 },
        peak_rss_kb: peak_rss_kb(),
        cycles_checksum: checksum,
    }
}

fn median(samples: &mut [f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let n = samples.len();
    if n % 2 == 1 {
        samples[n / 2]
    } else {
        (samples[n / 2 - 1] + samples[n / 2]) / 2.0
    }
}

/// Peak resident set size of the current process in KiB, from Linux
/// `/proc/self/status` (`VmHWM`). Returns 0 on other platforms.
pub fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            return rest.trim().trim_end_matches("kB").trim().parse().unwrap_or(0);
        }
    }
    0
}

impl Snapshot {
    /// This snapshot as a JSON object (stable key order).
    pub fn to_json(&self, indent: usize) -> String {
        let pad = " ".repeat(indent);
        let inner = " ".repeat(indent + 2);
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "{inner}\"cells\": {},", self.cells);
        let _ = writeln!(s, "{inner}\"procs\": {},", self.procs);
        let _ = writeln!(s, "{inner}\"refs_per_proc\": {},", self.refs_per_proc);
        let _ = writeln!(s, "{inner}\"median_cell_ms\": {:.2},", self.median_cell_ms);
        let _ = writeln!(s, "{inner}\"total_ms\": {:.2},", self.total_ms);
        let _ = writeln!(s, "{inner}\"sim_ms\": {:.2},", self.sim_ms);
        let _ = writeln!(s, "{inner}\"events\": {},", self.events);
        let _ = writeln!(s, "{inner}\"events_per_sec\": {:.0},", self.events_per_sec);
        let _ = writeln!(s, "{inner}\"peak_rss_kb\": {},", self.peak_rss_kb);
        let _ = writeln!(s, "{inner}\"cycles_checksum\": {}", self.cycles_checksum);
        let _ = write!(s, "{pad}}}");
        s
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "{}: {} cells x {} refs/proc — median cell {:.1} ms, total {:.1} ms, {:.2} M events/s, peak RSS {} KiB",
            self.label,
            self.cells,
            self.refs_per_proc,
            self.median_cell_ms,
            self.total_ms,
            self.events_per_sec / 1e6,
            self.peak_rss_kb,
        )
    }
}

/// Renders a complete `BENCH_charlie.json` from named snapshots.
pub fn render_file(runs: &[&Snapshot]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"charlie grid slice: Mp3d x {NP,PREF,EXCL,LPD,PWS} x {4,8,16,24,32}cy\",\n");
    s.push_str("  \"runs\": {\n");
    for (i, run) in runs.iter().enumerate() {
        let _ = write!(s, "    \"{}\": {}", run.label, run.to_json(4));
        s.push_str(if i + 1 < runs.len() { ",\n" } else { "\n" });
    }
    s.push_str("  }\n}\n");
    s
}

/// Extracts `runs.<label>.<key>` from a `BENCH_charlie.json` produced by
/// [`render_file`] with a deliberately naive scan (no JSON dependency):
/// finds the quoted label, then the first quoted key after it, then parses
/// the number that follows the colon.
pub fn extract_run_number(json: &str, label: &str, key: &str) -> Option<f64> {
    let label_at = json.find(&format!("\"{label}\""))?;
    let section = &json[label_at..];
    let key_at = section.find(&format!("\"{key}\""))?;
    let after_key = &section[key_at..];
    let colon = after_key.find(':')?;
    let tail = after_key[colon + 1..].trim_start();
    let end = tail
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e' || c == 'E'))
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(label: &str) -> Snapshot {
        Snapshot {
            label: label.into(),
            cells: 25,
            procs: 8,
            refs_per_proc: 20_000,
            median_cell_ms: 12.5,
            total_ms: 410.0,
            sim_ms: 395.5,
            events: 12_345_678,
            events_per_sec: 31_215_000.0,
            peak_rss_kb: 34_567,
            cycles_checksum: 987_654_321,
        }
    }

    #[test]
    fn slice_covers_all_strategies_and_latencies() {
        let exps = slice_experiments();
        assert_eq!(exps.len(), 25);
        assert!(exps.iter().all(|e| e.workload == Workload::Mp3d));
        for &t in &BusConfig::PAPER_SWEEP {
            assert_eq!(exps.iter().filter(|e| e.transfer_cycles == t).count(), 5);
        }
    }

    #[test]
    fn json_round_trips_through_the_naive_extractor() {
        let before = snap("before");
        let after = Snapshot { events_per_sec: 75_000_000.0, ..snap("after") };
        let file = render_file(&[&before, &after]);
        assert_eq!(extract_run_number(&file, "before", "events_per_sec"), Some(31_215_000.0));
        assert_eq!(extract_run_number(&file, "after", "events_per_sec"), Some(75_000_000.0));
        assert_eq!(extract_run_number(&file, "before", "cells"), Some(25.0));
        assert_eq!(extract_run_number(&file, "after", "median_cell_ms"), Some(12.5));
        assert_eq!(extract_run_number(&file, "missing", "cells"), None);
        assert_eq!(extract_run_number(&file, "before", "missing"), None);
    }

    #[test]
    fn median_of_odd_and_even() {
        assert_eq!(median(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&mut [4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&mut []), 0.0);
    }

    #[test]
    fn tiny_slice_runs_and_measures() {
        let cfg = SliceConfig { refs_per_proc: 300, procs: 2, seed: 7 };
        let s = run_slice("test", &cfg);
        assert_eq!(s.cells, 25);
        assert!(s.events > 0);
        assert!(s.events_per_sec > 0.0);
        assert!(s.total_ms >= s.sim_ms);
        // Determinism: same slice, same events and checksum.
        let s2 = run_slice("test", &cfg);
        assert_eq!(s.events, s2.events);
        assert_eq!(s.cycles_checksum, s2.cycles_checksum);
    }
}
