//! Sampled simulation: run a small, representative fraction of a trace in
//! detail, fast-forward the rest functionally, and reconstruct full-run
//! metrics with measured confidence intervals.
//!
//! Two methodologies share the window machinery in [`charlie_sim::sampling`]:
//!
//! * **SMARTS** ([`SamplingMode::Smarts`]) — systematic sampling: every
//!   `period`-th access window runs detailed (preceded by `warmup` warm
//!   windows that refill bus state), the rest fast-forward. Full-run cycles
//!   are a ratio estimate — detailed cycles-per-access extrapolated over the
//!   run's exact access count — with a CLT confidence interval from the
//!   between-window variance.
//! * **SimPoint** ([`SamplingMode::Simpoint`]) — representative intervals:
//!   a pure fast-forward signature pass records a per-window phase
//!   signature (miss rate, busy/stall mix, fill rate, approximate span);
//!   deterministic seeded k-means++ clusters the windows (k chosen by BIC);
//!   a second pass simulates one representative window per cluster in
//!   detail and the estimate is the cluster-weighted sum. The CI comes from
//!   the within-cluster signature variance, scaled by each representative's
//!   detailed/fast span ratio.
//!
//! Both estimators add a relative floor to the reported interval covering
//! the fast-forward path's *non-sampling* bias (warm-up transients at
//! window boundaries, the run-ahead quantum's clock skew), which the
//! statistical term cannot see. `tests/sampling_props.rs` checks the exact
//! value falls inside the interval across randomized configurations.
//!
//! Functional counters (miss classification, access mix, sharing) are not
//! estimated: fast-forward updates caches and coherence exactly, so the
//! sampled run's own counters are the true values.
//!
//! [`calibrate`] measures the error empirically: it runs sampled and exact
//! simulations side by side over an experiment grid and reports per-cell
//! error, CI coverage and wall-clock speedup.

use crate::lab::{Experiment, RunConfig};
use charlie_sim::{
    simulate_prevalidated, simulate_sampled_prevalidated, SamplePlan, SampledWindow, SimConfig,
    SimError, SimReport, WindowKind,
};
use charlie_trace::Trace;
use charlie_workloads::{generate, Workload, WorkloadConfig};
use std::fmt;

/// Two-sided 99% normal quantile used for every confidence interval.
const Z_99: f64 = 2.576;

/// Relative bias floor added to every interval: `estimate / BIAS_FLOOR_DIV`
/// (4%) covers fast-forward non-sampling bias the variance term cannot see.
const BIAS_FLOOR_DIV: u64 = 25;

/// Maximum k-means iterations (assignments converge far earlier in
/// practice; the cap only bounds adversarial inputs).
const KMEANS_MAX_ITERS: usize = 64;

/// Which sampling methodology to run.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum SamplingMode {
    /// Systematic (periodic) sampling with ratio estimation.
    Smarts,
    /// Phase-clustered representative intervals.
    Simpoint,
}

impl SamplingMode {
    /// CLI spelling.
    pub fn name(self) -> &'static str {
        match self {
            SamplingMode::Smarts => "smarts",
            SamplingMode::Simpoint => "simpoint",
        }
    }

    /// Parses the CLI spelling.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "smarts" => Some(SamplingMode::Smarts),
            "simpoint" => Some(SamplingMode::Simpoint),
            _ => None,
        }
    }
}

impl fmt::Display for SamplingMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Sampled-simulation knobs. Integer-only and `Copy`/`Eq`/`Hash` so
/// [`RunConfig`] keeps its derives and memo/journal keys stay exact.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct SamplingConfig {
    /// Methodology.
    pub mode: SamplingMode,
    /// Machine-wide demand accesses per window.
    pub window_accesses: u64,
    /// SMARTS: windows per sampling unit (one detailed window each).
    /// Ignored by SimPoint.
    pub period: u64,
    /// Detailed warm-up windows before each measured window (both modes).
    pub warmup: u64,
    /// SimPoint: upper bound of the BIC cluster-count sweep. Ignored by
    /// SMARTS.
    pub max_k: u64,
    /// SimPoint: k-means seed (deterministic for a given seed). Ignored by
    /// SMARTS.
    pub seed: u64,
    /// SMARTS: detailed cold-start windows measured exactly instead of
    /// extrapolated — cache-fill transients concentrate in the first few
    /// windows and would otherwise be weighted `period`-fold. Ignored by
    /// SimPoint (phase clustering isolates the transient on its own).
    pub cold: u64,
}

impl SamplingConfig {
    /// SMARTS defaults: 4096-access windows, one detailed (plus two warm)
    /// windows per 37, after an 8-window measured cold-start stratum. The
    /// period is deliberately *prime*: the synthetic workloads have
    /// power-of-two phase structure, and a power-of-two period aliases with
    /// it (samples land on the same phase offset every time), which
    /// measured up to 75% execution-time error on Water — 37 breaks the
    /// resonance and calibrates to ≤2%.
    pub fn smarts() -> Self {
        SamplingConfig {
            mode: SamplingMode::Smarts,
            window_accesses: 4096,
            period: 37,
            warmup: 2,
            max_k: 0,
            seed: 0,
            cold: 8,
        }
    }

    /// SimPoint defaults: 4096-access windows, BIC sweep up to 8 clusters.
    pub fn simpoint() -> Self {
        SamplingConfig {
            mode: SamplingMode::Simpoint,
            window_accesses: 4096,
            period: 0,
            warmup: 1,
            max_k: 8,
            seed: 0x5EED,
            cold: 0,
        }
    }

    /// Structural validity (positive window size, SMARTS warmup < period,
    /// SimPoint max_k ≥ 1).
    pub fn validate(&self) -> Result<(), String> {
        if self.window_accesses == 0 {
            return Err("sampling window_accesses must be >= 1".into());
        }
        match self.mode {
            SamplingMode::Smarts => {
                if self.period == 0 {
                    return Err("smarts period must be >= 1".into());
                }
                if self.warmup >= self.period {
                    return Err(format!(
                        "smarts warmup ({}) must be < period ({})",
                        self.warmup, self.period
                    ));
                }
            }
            SamplingMode::Simpoint => {
                if self.max_k == 0 {
                    return Err("simpoint max_k must be >= 1".into());
                }
            }
        }
        Ok(())
    }
}

/// Sampled-run estimate attached to a run summary. All-integer so
/// [`crate::RunSummary`] keeps `PartialEq` and journals round-trip
/// losslessly.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct SampledSummary {
    /// Methodology that produced the estimate.
    pub mode: SamplingMode,
    /// Access windows in the (final) sampled pass.
    pub total_windows: u64,
    /// Windows simulated in detail and measured.
    pub detailed_windows: u64,
    /// Phase clusters (SimPoint; 0 for SMARTS).
    pub clusters: u64,
    /// Exact demand accesses in the run (the extrapolation base).
    pub total_accesses: u64,
    /// Estimated full-run execution time in cycles.
    pub est_cycles: u64,
    /// Half-width of the 99% confidence interval on `est_cycles`.
    pub ci_cycles: u64,
    /// Estimated full-run bus-busy cycles.
    pub est_bus_busy: u64,
    /// Half-width of the 99% confidence interval on `est_bus_busy`.
    pub ci_bus_busy: u64,
    /// Scheduler events across every sampled pass (the cost that shrank).
    pub events: u64,
}

impl SampledSummary {
    /// Estimated bus utilization (busy over estimated cycles).
    pub fn bus_utilization(&self) -> f64 {
        if self.est_cycles == 0 {
            0.0
        } else {
            self.est_bus_busy as f64 / self.est_cycles as f64
        }
    }

    /// Relative CI half-width on execution time (1.0 = fully uncertain).
    pub fn relative_ci(&self) -> f64 {
        if self.est_cycles == 0 {
            0.0
        } else {
            self.ci_cycles as f64 / self.est_cycles as f64
        }
    }
}

/// `numerator * scale / denominator` in u128 (exact for all in-range runs).
fn ratio_scale(numerator: u64, scale: u64, denominator: u64) -> u64 {
    if denominator == 0 {
        return 0;
    }
    ((numerator as u128 * scale as u128) / denominator as u128) as u64
}

/// A detailed window's execution-time contribution: the per-processor
/// busy+stall cycle delta, summed over processors. This measures each
/// processor's *own* elapsed time inside the window, so the machine-wide
/// clock skew a fast-forward stretch leaves behind (stragglers up to a
/// run-ahead quantum apart) cancels instead of inflating the span — the
/// wall-clock `span()` systematically overestimates by that skew. Dividing
/// the extrapolated total by `procs` recovers wall cycles.
fn proc_cycles(w: &SampledWindow) -> u64 {
    w.proc_busy + w.proc_stall
}

/// Ratio estimate plus CI for one metric from detailed windows: per-window
/// rates `value / accesses` extrapolated over `total_accesses`, CI from the
/// between-window rate variance (CLT), floored at `est / BIAS_FLOOR_DIV`.
/// With fewer than two detailed windows the interval is the estimate itself
/// (fully uncertain).
fn ratio_estimate(detailed: &[&SampledWindow], total_accesses: u64, value: impl Fn(&SampledWindow) -> u64) -> (u64, u64) {
    let acc_d: u64 = detailed.iter().map(|w| w.accesses).sum();
    let val_d: u64 = detailed.iter().map(|w| value(w)).sum();
    let est = ratio_scale(val_d, total_accesses, acc_d);
    let n = detailed.len();
    if n < 2 || acc_d == 0 {
        return (est, est);
    }
    let mean = val_d as f64 / acc_d as f64;
    let var = detailed
        .iter()
        .filter(|w| w.accesses > 0)
        .map(|w| {
            let r = value(w) as f64 / w.accesses as f64;
            (r - mean) * (r - mean)
        })
        .sum::<f64>()
        / (n - 1) as f64;
    let se = (var / n as f64).sqrt();
    let ci = (Z_99 * se * total_accesses as f64) as u64;
    (est, ci.max(est / BIAS_FLOOR_DIV))
}

/// SMARTS: one periodic sampled pass plus stratified ratio estimation —
/// the cold-start stratum (first `cold` windows, all detailed) contributes
/// its measured cycles exactly; the steady-state remainder is a ratio
/// estimate from the periodic detailed windows.
fn run_smarts(
    sim_cfg: &SimConfig,
    prepared: &Trace,
    scfg: &SamplingConfig,
) -> Result<(SimReport, SampledSummary), SimError> {
    let plan =
        SamplePlan::periodic_with_cold(scfg.window_accesses, scfg.period, scfg.warmup, scfg.cold);
    let run = simulate_sampled_prevalidated(sim_cfg, prepared, &plan)?;
    let total_accesses = run.report.demand_accesses();
    let (cold, detailed): (Vec<&SampledWindow>, Vec<&SampledWindow>) = run
        .windows
        .iter()
        .filter(|w| w.kind == WindowKind::Detailed)
        .partition(|w| w.index < scfg.cold);
    let procs = sim_cfg.num_procs.max(1) as u64;
    let cold_accesses: u64 = cold.iter().map(|w| w.accesses).sum();
    let cold_proc: u64 = cold.iter().map(|w| proc_cycles(w)).sum();
    let cold_bus: u64 = cold.iter().map(|w| w.bus_busy).sum();
    let steady_accesses = total_accesses.saturating_sub(cold_accesses);
    // The bias floor re-applies against the *total* estimate: fast-forward
    // interleaving drift biases the whole run (the cold stratum included —
    // its windows are measured, but against a slightly different legal
    // interleaving than the exact run's), not just the extrapolated part.
    let (est_proc, ci_proc) = ratio_estimate(&detailed, steady_accesses, proc_cycles);
    let est_proc_total = cold_proc + est_proc;
    let ci_proc = ci_proc.max(est_proc_total / BIAS_FLOOR_DIV);
    let (est_cycles, ci_cycles) = (est_proc_total / procs, ci_proc / procs);
    let (est_bus_steady, ci_bus) = ratio_estimate(&detailed, steady_accesses, |w| w.bus_busy);
    let est_bus = cold_bus + est_bus_steady;
    let ci_bus = ci_bus.max(est_bus / BIAS_FLOOR_DIV);
    let summary = SampledSummary {
        mode: SamplingMode::Smarts,
        total_windows: run.windows.len() as u64,
        detailed_windows: (cold.len() + detailed.len()) as u64,
        clusters: 0,
        total_accesses,
        est_cycles,
        ci_cycles,
        est_bus_busy: est_bus.min(est_cycles),
        ci_bus_busy: ci_bus,
        events: run.events,
    };
    Ok((patch_report(run.report, &summary), summary))
}

/// Deterministic linear congruential generator seeding k-means++ (the PCG
/// multiplier/increment; quality is irrelevant here, determinism is not).
struct Lcg(u64);

impl Lcg {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0
    }

    /// Uniform in `[0, 1)` from the top 53 bits.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

fn dist2(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Seeded k-means++ over z-scored features. Returns (assignment, centroids,
/// residual sum of squares). Fully deterministic for a given seed: ties in
/// nearest-centroid assignment break toward the lowest index, empty
/// clusters keep their previous centroid.
fn kmeans(feats: &[Vec<f64>], k: usize, seed: u64) -> (Vec<usize>, Vec<Vec<f64>>, f64) {
    let n = feats.len();
    debug_assert!(k >= 1 && k <= n);
    let mut rng = Lcg(seed ^ (k as u64).wrapping_mul(0x9E3779B97F4A7C15));
    // k-means++ seeding: first centroid uniform, then proportional to
    // squared distance from the nearest chosen centroid.
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    centroids.push(feats[(rng.next_u64() % n as u64) as usize].clone());
    let mut d2: Vec<f64> = feats.iter().map(|f| dist2(f, &centroids[0])).collect();
    while centroids.len() < k {
        let total: f64 = d2.iter().sum();
        let idx = if total <= f64::EPSILON {
            // All points coincide with a centroid; take the first
            // not-yet-chosen index for determinism.
            (0..n).find(|i| d2[*i] > 0.0).unwrap_or(centroids.len())
        } else {
            let mut r = rng.next_f64() * total;
            let mut chosen = n - 1;
            for (i, d) in d2.iter().enumerate() {
                r -= d;
                if r <= 0.0 {
                    chosen = i;
                    break;
                }
            }
            chosen
        };
        let c = feats[idx.min(n - 1)].clone();
        for (i, f) in feats.iter().enumerate() {
            d2[i] = d2[i].min(dist2(f, &c));
        }
        centroids.push(c);
    }
    // Lloyd iterations.
    let dims = feats[0].len();
    let mut assign = vec![0usize; n];
    for _ in 0..KMEANS_MAX_ITERS {
        let mut changed = false;
        for (i, f) in feats.iter().enumerate() {
            let mut best = 0usize;
            let mut best_d = f64::INFINITY;
            for (c, cent) in centroids.iter().enumerate() {
                let d = dist2(f, cent);
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            if assign[i] != best {
                assign[i] = best;
                changed = true;
            }
        }
        if !changed {
            break;
        }
        let mut sums = vec![vec![0.0; dims]; k];
        let mut counts = vec![0usize; k];
        for (i, f) in feats.iter().enumerate() {
            counts[assign[i]] += 1;
            for (d, x) in f.iter().enumerate() {
                sums[assign[i]][d] += x;
            }
        }
        for c in 0..k {
            if counts[c] > 0 {
                for d in 0..dims {
                    centroids[c][d] = sums[c][d] / counts[c] as f64;
                }
            }
        }
    }
    let rss: f64 = feats.iter().enumerate().map(|(i, f)| dist2(f, &centroids[assign[i]])).sum();
    (assign, centroids, rss)
}

/// Per-window phase signature from a fast-forward pass, z-score normalized
/// per dimension: miss rate, busy and stall per access, fill rate, and the
/// approximate window span per access.
fn featurize(windows: &[&SampledWindow]) -> Vec<Vec<f64>> {
    let raw: Vec<[f64; 5]> = windows
        .iter()
        .map(|w| {
            let a = w.accesses.max(1) as f64;
            [
                w.misses as f64 / a,
                w.proc_busy as f64 / a,
                w.proc_stall as f64 / a,
                w.fills as f64 / a,
                w.span() as f64 / a,
            ]
        })
        .collect();
    let n = raw.len() as f64;
    let mut out = vec![vec![0.0; 5]; raw.len()];
    for d in 0..5 {
        let mean = raw.iter().map(|r| r[d]).sum::<f64>() / n;
        let var = raw.iter().map(|r| (r[d] - mean) * (r[d] - mean)).sum::<f64>() / n;
        let sd = var.sqrt();
        if sd > 1e-12 {
            for (i, r) in raw.iter().enumerate() {
                out[i][d] = (r[d] - mean) / sd;
            }
        }
    }
    out
}

/// Picks k by the Bayesian information criterion over `1..=max_k`:
/// `BIC(k) = n·ln(RSS/n) + k·ln(n)`, smallest wins (ties to the smaller k).
fn choose_k(feats: &[Vec<f64>], max_k: usize, seed: u64) -> (usize, Vec<usize>, Vec<Vec<f64>>) {
    let n = feats.len();
    let cap = max_k.min(n);
    let mut best: Option<(f64, usize, Vec<usize>, Vec<Vec<f64>>)> = None;
    for k in 1..=cap {
        let (assign, centroids, rss) = kmeans(feats, k, seed);
        let bic = n as f64 * (rss.max(1e-9) / n as f64).ln() + k as f64 * (n as f64).ln();
        if best.as_ref().map_or(true, |b| bic < b.0) {
            best = Some((bic, k, assign, centroids));
        }
    }
    let (_, k, assign, centroids) = best.expect("at least k=1 evaluated");
    (k, assign, centroids)
}

/// SimPoint: fast-forward signature pass, cluster, re-run with one detailed
/// representative per cluster, weight by cluster size.
fn run_simpoint(
    sim_cfg: &SimConfig,
    prepared: &Trace,
    scfg: &SamplingConfig,
) -> Result<(SimReport, SampledSummary), SimError> {
    // Pass 1: pure fast-forward, collecting phase signatures.
    let sig_plan = SamplePlan::fast_forward(scfg.window_accesses);
    let sig = simulate_sampled_prevalidated(sim_cfg, prepared, &sig_plan)?;
    let usable: Vec<&SampledWindow> =
        sig.windows.iter().filter(|w| w.accesses > 0).collect();
    if usable.is_empty() {
        return Err(SimError::InvalidSamplePlan(
            "trace produced no sampleable windows".into(),
        ));
    }
    let feats = featurize(&usable);
    let (k, assign, centroids) = choose_k(&feats, scfg.max_k as usize, scfg.seed);

    // Representative per cluster: the member closest to the centroid
    // (lowest window index on ties); weight = member accesses.
    struct Cluster {
        rep_pos: usize,
        rep_d2: f64,
        accesses: u64,
        members: Vec<usize>,
    }
    let mut clusters: Vec<Cluster> = (0..k)
        .map(|_| Cluster { rep_pos: usize::MAX, rep_d2: f64::INFINITY, accesses: 0, members: Vec::new() })
        .collect();
    for (pos, &c) in assign.iter().enumerate() {
        let cl = &mut clusters[c];
        cl.accesses += usable[pos].accesses;
        cl.members.push(pos);
        let d = dist2(&feats[pos], &centroids[c]);
        if d < cl.rep_d2 {
            cl.rep_d2 = d;
            cl.rep_pos = pos;
        }
    }
    clusters.retain(|c| !c.members.is_empty());
    let mut rep_indices: Vec<u64> = clusters.iter().map(|c| usable[c.rep_pos].index).collect();
    rep_indices.sort_unstable();
    rep_indices.dedup();

    // Pass 2: detailed simulation of exactly the representatives.
    let plan = SamplePlan::explicit(scfg.window_accesses, rep_indices, scfg.warmup);
    let run = simulate_sampled_prevalidated(sim_cfg, prepared, &plan)?;
    let total_accesses = run.report.demand_accesses();
    let detailed: Vec<&SampledWindow> =
        run.windows.iter().filter(|w| w.kind == WindowKind::Detailed).collect();
    let find_detailed = |index: u64| detailed.iter().find(|w| w.index == index);

    // Cluster-weighted estimate in per-processor cycle space (see
    // [`proc_cycles`]): est = Σ_c A_c · (rep busy+stall / rep accesses),
    // divided by the processor count at the end. CI: within-cluster
    // variance of the pass-1 rates, scaled by the representative's
    // detailed/fast rate ratio (the fast pass understates stalls by
    // roughly that factor), summed in quadrature across clusters.
    let procs = sim_cfg.num_procs.max(1) as u64;
    let mut est_proc: u64 = 0;
    let mut est_bus: u64 = 0;
    let mut var_sum = 0.0f64;
    for cl in &clusters {
        let rep = usable[cl.rep_pos];
        let Some(det) = find_detailed(rep.index) else { continue };
        est_proc += ratio_scale(proc_cycles(det), cl.accesses, det.accesses);
        est_bus += ratio_scale(det.bus_busy, cl.accesses, det.accesses);
        let n_c = cl.members.len();
        if n_c >= 2 {
            let rates: Vec<f64> = cl
                .members
                .iter()
                .map(|&p| proc_cycles(usable[p]) as f64 / usable[p].accesses.max(1) as f64)
                .collect();
            let mean = rates.iter().sum::<f64>() / n_c as f64;
            let var =
                rates.iter().map(|r| (r - mean) * (r - mean)).sum::<f64>() / (n_c - 1) as f64;
            let ff_rate = proc_cycles(rep) as f64 / rep.accesses.max(1) as f64;
            let det_rate = proc_cycles(det) as f64 / det.accesses.max(1) as f64;
            let kappa = if ff_rate > 1e-9 { det_rate / ff_rate } else { 1.0 };
            let se_scaled = (var / n_c as f64).sqrt() * kappa * cl.accesses as f64;
            var_sum += se_scaled * se_scaled;
        }
    }
    let est_cycles = est_proc / procs;
    let ci_cycles =
        (((Z_99 * var_sum.sqrt()) as u64) / procs).max(est_cycles / BIAS_FLOOR_DIV);
    let ci_bus = if est_cycles == 0 {
        0
    } else {
        ratio_scale(est_bus, ci_cycles, est_cycles).max(est_bus / BIAS_FLOOR_DIV)
    };
    let summary = SampledSummary {
        mode: SamplingMode::Simpoint,
        total_windows: run.windows.len() as u64,
        detailed_windows: detailed.len() as u64,
        clusters: clusters.len() as u64,
        total_accesses,
        est_cycles,
        ci_cycles,
        est_bus_busy: est_bus.min(est_cycles),
        ci_bus_busy: ci_bus,
        events: sig.events + run.events,
    };
    Ok((patch_report(run.report, &summary), summary))
}

/// Overwrites the report's timing totals with the sampled estimates so
/// downstream consumers (relative execution time, bus-utilization tables,
/// JSON output) read full-run estimates. Functional counters are left
/// untouched — they are exact.
fn patch_report(mut report: SimReport, summary: &SampledSummary) -> SimReport {
    report.cycles = summary.est_cycles;
    report.bus.busy_cycles = summary.est_bus_busy;
    report
}

/// Runs one prepared trace in sampled mode, returning the patched report
/// (timing totals replaced by estimates; see [`patch_report`]) and the
/// estimate itself. Requires `sim_cfg.warmup_accesses == 0` — the sampled
/// path owns the measurement-window semantics.
pub fn run_sampled_on_prepared(
    sim_cfg: &SimConfig,
    prepared: &Trace,
    scfg: &SamplingConfig,
) -> Result<(SimReport, SampledSummary), SimError> {
    scfg.validate().map_err(SimError::InvalidSamplePlan)?;
    match scfg.mode {
        SamplingMode::Smarts => run_smarts(sim_cfg, prepared, scfg),
        SamplingMode::Simpoint => run_simpoint(sim_cfg, prepared, scfg),
    }
}

// ---------------------------------------------------------------------------
// Calibration: sampled vs exact over an experiment grid.
// ---------------------------------------------------------------------------

/// One grid cell's sampled-vs-exact comparison.
#[derive(Clone, PartialEq, Debug)]
pub struct CalibrationCell {
    /// The cell.
    pub experiment: Experiment,
    /// Exact execution time (full detailed simulation).
    pub exact_cycles: u64,
    /// Exact bus-busy cycles.
    pub exact_bus_busy: u64,
    /// The sampled estimate for the same cell.
    pub sampled: SampledSummary,
    /// Wall-clock nanoseconds of the exact run.
    pub exact_wall_ns: u64,
    /// Wall-clock nanoseconds of the sampled run (all passes).
    pub sampled_wall_ns: u64,
    /// Scheduler events of the exact run (for the deterministic speedup).
    pub exact_events: u64,
}

impl CalibrationCell {
    /// Relative execution-time error `|est − exact| / exact`.
    pub fn cycles_error(&self) -> f64 {
        if self.exact_cycles == 0 {
            return 0.0;
        }
        (self.sampled.est_cycles as f64 - self.exact_cycles as f64).abs()
            / self.exact_cycles as f64
    }

    /// Relative bus-utilization error.
    pub fn util_error(&self) -> f64 {
        let exact = if self.exact_cycles == 0 {
            0.0
        } else {
            self.exact_bus_busy as f64 / self.exact_cycles as f64
        };
        if exact == 0.0 {
            return 0.0;
        }
        (self.sampled.bus_utilization() - exact).abs() / exact
    }

    /// Wall-clock speedup of the sampled run over the exact run.
    pub fn speedup(&self) -> f64 {
        if self.sampled_wall_ns == 0 {
            return 0.0;
        }
        self.exact_wall_ns as f64 / self.sampled_wall_ns as f64
    }

    /// Event-count speedup (deterministic; wall clock is noisy under load).
    pub fn event_speedup(&self) -> f64 {
        if self.sampled.events == 0 {
            return 0.0;
        }
        self.exact_events as f64 / self.sampled.events as f64
    }

    /// Whether the exact execution time falls inside the estimate's CI.
    pub fn ci_contains_cycles(&self) -> bool {
        let lo = self.sampled.est_cycles.saturating_sub(self.sampled.ci_cycles);
        let hi = self.sampled.est_cycles.saturating_add(self.sampled.ci_cycles);
        (lo..=hi).contains(&self.exact_cycles)
    }

    /// Whether the exact bus-busy total falls inside its CI.
    pub fn ci_contains_bus(&self) -> bool {
        let lo = self.sampled.est_bus_busy.saturating_sub(self.sampled.ci_bus_busy);
        let hi = self.sampled.est_bus_busy.saturating_add(self.sampled.ci_bus_busy);
        (lo..=hi).contains(&self.exact_bus_busy)
    }
}

/// Result of a [`calibrate`] sweep.
#[derive(Clone, PartialEq, Debug)]
pub struct Calibration {
    /// The sampling configuration measured.
    pub config: SamplingConfig,
    /// Per-cell comparisons, in grid order.
    pub cells: Vec<CalibrationCell>,
}

impl Calibration {
    /// Largest per-cell execution-time error.
    pub fn max_cycles_error(&self) -> f64 {
        self.cells.iter().map(CalibrationCell::cycles_error).fold(0.0, f64::max)
    }

    /// Largest per-cell bus-utilization error.
    pub fn max_util_error(&self) -> f64 {
        self.cells.iter().map(CalibrationCell::util_error).fold(0.0, f64::max)
    }

    /// Mean execution-time error across cells.
    pub fn mean_cycles_error(&self) -> f64 {
        if self.cells.is_empty() {
            return 0.0;
        }
        self.cells.iter().map(CalibrationCell::cycles_error).sum::<f64>()
            / self.cells.len() as f64
    }

    /// Geometric-mean wall-clock speedup.
    pub fn mean_speedup(&self) -> f64 {
        let positive: Vec<f64> =
            self.cells.iter().map(CalibrationCell::speedup).filter(|s| *s > 0.0).collect();
        if positive.is_empty() {
            return 0.0;
        }
        (positive.iter().map(|s| s.ln()).sum::<f64>() / positive.len() as f64).exp()
    }

    /// Geometric-mean event-count speedup (deterministic across machines).
    pub fn mean_event_speedup(&self) -> f64 {
        let positive: Vec<f64> =
            self.cells.iter().map(CalibrationCell::event_speedup).filter(|s| *s > 0.0).collect();
        if positive.is_empty() {
            return 0.0;
        }
        (positive.iter().map(|s| s.ln()).sum::<f64>() / positive.len() as f64).exp()
    }

    /// Fraction of cells whose execution-time CI contains the exact value.
    pub fn ci_coverage(&self) -> f64 {
        if self.cells.is_empty() {
            return 1.0;
        }
        self.cells.iter().filter(|c| c.ci_contains_cycles()).count() as f64
            / self.cells.len() as f64
    }
}

/// The quick calibration grid: one representative workload per behaviour
/// class (streaming-heavy Mp3d, sharing-heavy Pverify, quiet Water), NP and
/// PREF, fast and slow buses — 12 cells, cheap enough for CI.
pub fn quick_grid() -> Vec<Experiment> {
    use charlie_prefetch::Strategy;
    let mut grid = Vec::new();
    for w in [Workload::Mp3d, Workload::Pverify, Workload::Water] {
        for s in [Strategy::NoPrefetch, Strategy::Pref] {
            for lat in [4u64, 32] {
                grid.push(Experiment::paper(w, s, lat));
            }
        }
    }
    grid
}

/// Runs `grid` sampled and exact under `cfg`, comparing per cell.
/// Deterministic in everything but the wall-clock columns; `jobs` workers
/// split the grid cell-by-cell (results are in grid order regardless).
pub fn calibrate(
    cfg: &RunConfig,
    scfg: &SamplingConfig,
    grid: &[Experiment],
    jobs: usize,
) -> Result<Calibration, SimError> {
    scfg.validate().map_err(SimError::InvalidSamplePlan)?;
    let results = crate::parallel::map(grid, jobs.max(1), |_, exp| calibrate_cell(cfg, scfg, *exp));
    let mut cells = Vec::with_capacity(results.len());
    for r in results {
        cells.push(r?);
    }
    Ok(Calibration { config: *scfg, cells })
}

/// One cell: generate, apply strategy, run exact and sampled, compare.
fn calibrate_cell(
    cfg: &RunConfig,
    scfg: &SamplingConfig,
    exp: Experiment,
) -> Result<CalibrationCell, SimError> {
    let (sim_cfg, prepared) = prepare_cell(cfg, exp)?;

    let exact_start = std::time::Instant::now();
    let (exact, exact_events) =
        charlie_sim::simulate_counted_prevalidated(&sim_cfg, &prepared)?;
    let exact_wall_ns = exact_start.elapsed().as_nanos() as u64;

    let sampled_start = std::time::Instant::now();
    let (_, sampled) = run_sampled_on_prepared(&sim_cfg, &prepared, scfg)?;
    let sampled_wall_ns = sampled_start.elapsed().as_nanos() as u64;

    Ok(CalibrationCell {
        experiment: exp,
        exact_cycles: exact.cycles,
        exact_bus_busy: exact.bus.busy_cycles,
        sampled,
        exact_wall_ns,
        sampled_wall_ns,
        exact_events,
    })
}

/// Builds the simulator configuration and prepared trace for one cell the
/// same way the lab does (validated raw trace, strategy applied).
fn prepare_cell(cfg: &RunConfig, exp: Experiment) -> Result<(SimConfig, Trace), SimError> {
    let wcfg = WorkloadConfig {
        procs: cfg.procs,
        refs_per_proc: cfg.refs_per_proc,
        seed: cfg.seed,
        layout: exp.layout,
    };
    let raw = generate(exp.workload, &wcfg);
    raw.validate()?;
    let prepared = charlie_prefetch::apply(exp.strategy, &raw, cfg.geometry);
    let sim_cfg = SimConfig {
        geometry: cfg.geometry,
        wall_limit_ms: cfg.wall_limit_ms,
        hw_prefetch: cfg.hw_prefetch,
        ..SimConfig::paper(cfg.procs, exp.transfer_cycles)
    };
    Ok((sim_cfg, prepared))
}

/// Smoke check: the exact path reproduces a plain simulation (used by the
/// property suite; exported so the CLI can cheaply self-test).
pub fn exact_reference(cfg: &RunConfig, exp: Experiment) -> Result<SimReport, SimError> {
    let (sim_cfg, prepared) = prepare_cell(cfg, exp)?;
    simulate_prevalidated(&sim_cfg, &prepared)
}

#[cfg(test)]
mod tests {
    use super::*;
    use charlie_prefetch::Strategy;

    fn small_cfg() -> RunConfig {
        RunConfig { refs_per_proc: 4_000, procs: 4, ..RunConfig::default() }
    }

    #[test]
    fn mode_names_round_trip() {
        for m in [SamplingMode::Smarts, SamplingMode::Simpoint] {
            assert_eq!(SamplingMode::parse(m.name()), Some(m));
        }
        assert_eq!(SamplingMode::parse("nope"), None);
    }

    #[test]
    fn config_validation() {
        assert!(SamplingConfig::smarts().validate().is_ok());
        assert!(SamplingConfig::simpoint().validate().is_ok());
        assert!(SamplingConfig { window_accesses: 0, ..SamplingConfig::smarts() }
            .validate()
            .is_err());
        assert!(SamplingConfig { period: 0, ..SamplingConfig::smarts() }.validate().is_err());
        assert!(SamplingConfig { warmup: 37, ..SamplingConfig::smarts() }.validate().is_err());
        assert!(SamplingConfig { max_k: 0, ..SamplingConfig::simpoint() }.validate().is_err());
    }

    #[test]
    fn kmeans_is_deterministic_and_partitions() {
        let feats: Vec<Vec<f64>> = (0..40)
            .map(|i| {
                let base = if i % 2 == 0 { 0.0 } else { 10.0 };
                vec![base + (i as f64) * 0.01, base]
            })
            .collect();
        let (a1, c1, r1) = kmeans(&feats, 2, 42);
        let (a2, c2, r2) = kmeans(&feats, 2, 42);
        assert_eq!(a1, a2);
        assert_eq!(c1, c2);
        assert_eq!(r1, r2);
        // The two obvious blobs separate.
        assert_ne!(a1[0], a1[1]);
        assert_eq!(a1[0], a1[2]);
        assert!(r1 < 1.0);
    }

    #[test]
    fn choose_k_finds_two_blobs() {
        let feats: Vec<Vec<f64>> = (0..30)
            .map(|i| if i % 2 == 0 { vec![0.0, 0.0] } else { vec![5.0, 5.0] })
            .collect();
        let (k, assign, _) = choose_k(&feats, 6, 7);
        assert_eq!(k, 2);
        assert_ne!(assign[0], assign[1]);
    }

    #[test]
    fn smarts_estimate_close_to_exact() {
        let cfg = small_cfg();
        let exp = Experiment::paper(Workload::Mp3d, Strategy::NoPrefetch, 8);
        let exact = exact_reference(&cfg, exp).unwrap();
        let (sim_cfg, prepared) = prepare_cell(&cfg, exp).unwrap();
        let scfg = SamplingConfig { period: 8, ..SamplingConfig::smarts() };
        let (report, summary) = run_sampled_on_prepared(&sim_cfg, &prepared, &scfg).unwrap();
        assert_eq!(report.cycles, summary.est_cycles);
        assert!(summary.detailed_windows >= 1);
        let err = (summary.est_cycles as f64 - exact.cycles as f64).abs() / exact.cycles as f64;
        assert!(err < 0.25, "estimate {} vs exact {} (err {err:.3})", summary.est_cycles, exact.cycles);
        // Functional counters are simulated, not estimated: they match the
        // detailed run up to the different (but equally legal) lock
        // interleaving fast-forward settles on — sync retries and
        // timing-sensitive miss classification drift by a few percent,
        // never wholesale.
        let close = |a: u64, b: u64, what: &str| {
            let diff = (a as i64 - b as i64).unsigned_abs();
            assert!(diff * 20 <= b.max(1), "sampled {what} {a} vs exact {b}");
        };
        close(report.demand_accesses(), exact.demand_accesses(), "accesses");
        close(report.miss.cpu_misses(), exact.miss.cpu_misses(), "misses");
    }

    #[test]
    fn simpoint_runs_and_patches_report() {
        let cfg = small_cfg();
        let exp = Experiment::paper(Workload::Water, Strategy::Pref, 8);
        let (sim_cfg, prepared) = prepare_cell(&cfg, exp).unwrap();
        let scfg = SamplingConfig { window_accesses: 1024, ..SamplingConfig::simpoint() };
        let (report, summary) = run_sampled_on_prepared(&sim_cfg, &prepared, &scfg).unwrap();
        assert_eq!(summary.mode, SamplingMode::Simpoint);
        assert!(summary.clusters >= 1);
        assert!(summary.detailed_windows >= 1);
        assert_eq!(report.cycles, summary.est_cycles);
        assert!(summary.est_cycles > 0);
        assert!(summary.est_bus_busy <= summary.est_cycles);
    }

    #[test]
    fn calibrate_reports_errors_and_speedup() {
        // Big enough that windows extend well past the cold-start stratum;
        // a run that fits inside it is all-detailed and has no speedup.
        let cfg = RunConfig { refs_per_proc: 30_000, procs: 4, ..RunConfig::default() };
        let grid = [Experiment::paper(Workload::Mp3d, Strategy::NoPrefetch, 8)];
        let scfg = SamplingConfig { period: 8, cold: 4, ..SamplingConfig::smarts() };
        let cal = calibrate(&cfg, &scfg, &grid, 1).unwrap();
        assert_eq!(cal.cells.len(), 1);
        let cell = &cal.cells[0];
        assert!(cell.exact_cycles > 0);
        assert!(cell.sampled.est_cycles > 0);
        assert!(cell.event_speedup() > 1.0, "event speedup {}", cell.event_speedup());
        assert!(cal.max_cycles_error() < 1.0);
    }

    #[test]
    fn calibrate_deterministic_across_jobs() {
        let cfg = RunConfig { refs_per_proc: 2_000, procs: 2, ..RunConfig::default() };
        let grid = quick_grid();
        let scfg = SamplingConfig { period: 4, ..SamplingConfig::smarts() };
        let a = calibrate(&cfg, &scfg, &grid[..4], 1).unwrap();
        let b = calibrate(&cfg, &scfg, &grid[..4], 4).unwrap();
        for (x, y) in a.cells.iter().zip(&b.cells) {
            assert_eq!(x.sampled, y.sampled);
            assert_eq!(x.exact_cycles, y.exact_cycles);
        }
    }
}
