//! Deterministic fault injection for the persistence surface.
//!
//! Every writer that matters for durability — checkpoint journals, event
//! traces, exported reports, `BENCH_charlie.json` — funnels its bytes
//! through a [`ChaosWriter`]. When no [`FaultPlan`] is armed the wrapper is
//! a passthrough (no buffering, no extra syscalls, byte-identical output);
//! when one is armed, the plan's fault points fire at exact byte offsets,
//! so a given `(plan, workload)` pair always corrupts the same byte of the
//! same file. That determinism is what turns "we survive filesystem
//! faults" from a hope into a replayable test
//! (`tests/chaos_props.rs`, `charlie chaos`).
//!
//! ## Fault taxonomy
//!
//! | kind      | behaviour at offset *k*                                        |
//! |-----------|----------------------------------------------------------------|
//! | `short`   | honest partial write: accepts only the bytes up to *k*         |
//! | `torn`    | claims success but silently drops the bytes from *k* onward    |
//! | `enospc`  | persists up to *k*, then fails with the real `ENOSPC` errno    |
//! | `eio`     | persists up to *k*, then fails with the real `EIO` errno       |
//! | `bitflip` | flips one bit in the byte at *k*, reports success              |
//! | `crash`   | persists up to *k*, then the writer is frozen forever          |
//! | `leasecrash` | persists the whole buffer crossing *k*, then freezes        |
//! | `stalehb` | silently swallows the whole buffer crossing *k*                |
//!
//! `short` exercises `write_all` retry loops; `torn` grafts the next write
//! directly after the dropped tail (a torn tail *inside* a line — exactly
//! the corruption per-line CRCs exist to catch); `crash` leaves the file in
//! the same state a process killed at byte *k* would, without killing the
//! process, which is what makes an exhaustive crash-point matrix cheap.
//!
//! The last two model multi-worker lease failure modes at record (not byte)
//! granularity: `leasecrash` is a worker that dies *immediately after* its
//! claim record lands durably — the most adversarial spot for exactly-once,
//! because the lease exists with no torn line to betray the death — and
//! `stalehb` is a heartbeat renewal that reports success to the worker but
//! never reaches the shared journal, so peers see the lease go stale while
//! the worker believes it still holds the cell. Both are buffer-aligned on
//! purpose: lease appends write one complete framed record per call, so the
//! fault lands on exactly one record.
//!
//! Offsets are logical per-writer offsets: byte 0 is the first byte written
//! through *this* wrapper, regardless of pre-existing file content.
//!
//! ## Arming
//!
//! Plans arrive two ways: programmatically via [`arm`]/[`disarm`] (used by
//! `charlie chaos` and the test suite), or from the `CHARLIE_CHAOS`
//! environment variable (spec format below) for ad-hoc experiments. An
//! armed plan takes precedence over the environment.

use std::fs::{self, File};
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock};

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3, reflected) — used for journal line framing.
// ---------------------------------------------------------------------------

fn crc32_table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            }
            *slot = crc;
        }
        table
    })
}

/// CRC32 (IEEE) of `bytes` — the checksum in checkpoint-journal line frames.
pub fn crc32(bytes: &[u8]) -> u32 {
    let table = crc32_table();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ table[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------------
// Fault plans
// ---------------------------------------------------------------------------

/// What goes wrong at a fault point. See the module docs for semantics.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum FaultKind {
    /// Honest partial write (`Ok(n)` with `n < buf.len()`).
    ShortWrite,
    /// Claims the full buffer was written but silently drops a tail.
    TornWrite,
    /// Partial write, then the real `ENOSPC` errno.
    Enospc,
    /// Partial write, then the real `EIO` errno.
    Eio,
    /// One bit of one byte is flipped; the write reports success.
    BitFlip,
    /// Bytes up to the offset persist; every later operation fails.
    Crash,
    /// The whole buffer crossing the offset persists (a complete record),
    /// *then* the writer freezes — a worker dying right after its lease
    /// claim landed durably.
    LeaseCrash,
    /// The whole buffer crossing the offset is silently swallowed (the
    /// write reports success) — a heartbeat renewal that never reaches the
    /// shared journal, leaving peers looking at a stale lease.
    StaleHeartbeat,
}

impl FaultKind {
    /// Every kind, in spec order.
    pub const ALL: [FaultKind; 8] = [
        FaultKind::ShortWrite,
        FaultKind::TornWrite,
        FaultKind::Enospc,
        FaultKind::Eio,
        FaultKind::BitFlip,
        FaultKind::Crash,
        FaultKind::LeaseCrash,
        FaultKind::StaleHeartbeat,
    ];

    /// The spec-string name (`short`, `torn`, `enospc`, `eio`, `bitflip`,
    /// `crash`, `leasecrash`, `stalehb`).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::ShortWrite => "short",
            FaultKind::TornWrite => "torn",
            FaultKind::Enospc => "enospc",
            FaultKind::Eio => "eio",
            FaultKind::BitFlip => "bitflip",
            FaultKind::Crash => "crash",
            FaultKind::LeaseCrash => "leasecrash",
            FaultKind::StaleHeartbeat => "stalehb",
        }
    }

    fn parse(name: &str) -> Option<FaultKind> {
        FaultKind::ALL.into_iter().find(|k| k.name() == name)
    }
}

/// One scheduled fault: `kind` fires when the writer tagged `tag` reaches
/// byte `offset`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FaultPoint {
    /// Which writer this targets (`journal`, `trace`, `report`, `bench`).
    pub tag: String,
    /// The fault to inject.
    pub kind: FaultKind,
    /// Logical byte offset (bytes written through the wrapper so far).
    pub offset: u64,
}

/// A deterministic schedule of fault points.
///
/// Spec grammar (also what `CHARLIE_CHAOS` accepts):
/// `tag:kind@offset[,tag:kind@offset...]`, e.g.
/// `journal:crash@1234,trace:enospc@4096`.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct FaultPlan {
    points: Vec<FaultPoint>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Adds one fault point.
    pub fn push(&mut self, tag: &str, kind: FaultKind, offset: u64) {
        self.points.push(FaultPoint { tag: tag.to_string(), kind, offset });
    }

    /// All scheduled points, in insertion order.
    pub fn points(&self) -> &[FaultPoint] {
        &self.points
    }

    /// `true` when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Parses a `tag:kind@offset[,...]` spec. An empty spec is an empty plan.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::new();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (tag, rest) = part
                .split_once(':')
                .ok_or_else(|| format!("fault point {part:?}: expected tag:kind@offset"))?;
            let (kind, offset) = rest
                .split_once('@')
                .ok_or_else(|| format!("fault point {part:?}: expected tag:kind@offset"))?;
            let kind = FaultKind::parse(kind).ok_or_else(|| {
                format!(
                    "fault point {part:?}: unknown kind {kind:?} (expected one of {})",
                    FaultKind::ALL.map(FaultKind::name).join(", ")
                )
            })?;
            let offset = offset
                .parse()
                .map_err(|e| format!("fault point {part:?}: bad offset {offset:?}: {e}"))?;
            if tag.is_empty() {
                return Err(format!("fault point {part:?}: empty tag"));
            }
            plan.push(tag, kind, offset);
        }
        Ok(plan)
    }

    /// Renders the plan back into the spec format `parse` accepts.
    pub fn render(&self) -> String {
        self.points
            .iter()
            .map(|p| format!("{}:{}@{}", p.tag, p.kind.name(), p.offset))
            .collect::<Vec<_>>()
            .join(",")
    }

    /// A seeded plan: `count` points for `tag`, kinds and offsets drawn
    /// from an LCG over `0..len_hint`. Same seed, same plan — forever.
    pub fn seeded(seed: u64, tag: &str, len_hint: u64, count: usize) -> FaultPlan {
        let mut plan = FaultPlan::new();
        let mut state = seed ^ 0x9E37_79B9_7F4A_7C15;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 11
        };
        let span = len_hint.max(1);
        for _ in 0..count {
            let kind = FaultKind::ALL[(next() % FaultKind::ALL.len() as u64) as usize];
            plan.push(tag, kind, next() % span);
        }
        plan
    }

    /// The pending `(offset, kind)` queue for one writer tag, sorted by
    /// offset (stable for equal offsets).
    fn faults_for(&self, tag: &str) -> Vec<(u64, FaultKind)> {
        let mut faults: Vec<(u64, FaultKind)> = self
            .points
            .iter()
            .filter(|p| p.tag == tag)
            .map(|p| (p.offset, p.kind))
            .collect();
        faults.sort_by_key(|&(offset, _)| offset);
        faults
    }
}

// ---------------------------------------------------------------------------
// Ambient plan: armed programmatically or via CHARLIE_CHAOS.
// ---------------------------------------------------------------------------

fn armed_plan() -> &'static Mutex<Option<Arc<FaultPlan>>> {
    static ARMED: OnceLock<Mutex<Option<Arc<FaultPlan>>>> = OnceLock::new();
    ARMED.get_or_init(|| Mutex::new(None))
}

fn env_plan() -> Option<Arc<FaultPlan>> {
    static ENV: OnceLock<Option<Arc<FaultPlan>>> = OnceLock::new();
    ENV.get_or_init(|| {
        let spec = std::env::var("CHARLIE_CHAOS").ok()?;
        match FaultPlan::parse(&spec) {
            Ok(plan) if !plan.is_empty() => Some(Arc::new(plan)),
            Ok(_) => None,
            Err(e) => {
                eprintln!("warning: ignoring CHARLIE_CHAOS: {e}");
                None
            }
        }
    })
    .clone()
}

/// Arms `plan` process-wide: every [`ChaosWriter`] created afterwards picks
/// it up. Replaces any previously armed plan.
pub fn arm(plan: FaultPlan) {
    *armed_plan().lock().unwrap() = Some(Arc::new(plan));
}

/// Disarms the programmatic plan. A `CHARLIE_CHAOS` plan (if any) becomes
/// visible again — the environment is the outermost layer, not a casualty
/// of a test's cleanup.
pub fn disarm() {
    *armed_plan().lock().unwrap() = None;
}

/// The currently ambient plan: the armed one, else `CHARLIE_CHAOS`.
pub fn ambient() -> Option<Arc<FaultPlan>> {
    armed_plan().lock().unwrap().clone().or_else(env_plan)
}

/// `true` when some plan (armed or environment) is ambient.
pub fn is_armed() -> bool {
    ambient().is_some()
}

// ---------------------------------------------------------------------------
// The faultable writer
// ---------------------------------------------------------------------------

fn errno(code: i32, context: String) -> io::Error {
    let os = io::Error::from_raw_os_error(code);
    io::Error::new(os.kind(), format!("{context}: {os}"))
}

/// A `Write` wrapper that injects the ambient [`FaultPlan`]'s faults for
/// its tag at exact byte offsets. With no ambient plan (the production
/// default) every call forwards untouched — reports stay bit-identical.
#[derive(Debug)]
pub struct ChaosWriter<W: Write> {
    inner: W,
    tag: String,
    /// Logical offset: bytes this wrapper has accepted (claimed written).
    written: u64,
    /// Pending faults, sorted by offset; popped from the front as they fire.
    faults: Vec<(u64, FaultKind)>,
    crashed: bool,
}

impl<W: Write> ChaosWriter<W> {
    /// Wraps `inner`, drawing faults for `tag` from the ambient plan.
    pub fn new(inner: W, tag: &str) -> ChaosWriter<W> {
        let faults = ambient().map(|plan| plan.faults_for(tag)).unwrap_or_default();
        ChaosWriter { inner, tag: tag.to_string(), written: 0, faults, crashed: false }
    }

    /// Wraps `inner` with an explicit plan (tests), bypassing the ambient one.
    pub fn with_plan(inner: W, tag: &str, plan: &FaultPlan) -> ChaosWriter<W> {
        ChaosWriter {
            inner,
            tag: tag.to_string(),
            written: 0,
            faults: plan.faults_for(tag),
            crashed: false,
        }
    }

    /// Bytes accepted so far (the logical offset faults are scheduled
    /// against). After a torn write this exceeds what the inner writer saw.
    pub fn offset(&self) -> u64 {
        self.written
    }

    /// `true` once a `crash` fault froze this writer.
    pub fn crashed(&self) -> bool {
        self.crashed
    }

    /// The wrapped writer.
    pub fn get_ref(&self) -> &W {
        &self.inner
    }

    fn crash_error(&self) -> io::Error {
        io::Error::new(
            io::ErrorKind::BrokenPipe,
            format!("chaos[{}]: simulated crash froze the writer at byte {}", self.tag, self.written),
        )
    }
}

impl<W: Write> Write for ChaosWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.crashed {
            return Err(self.crash_error());
        }
        let Some(&(offset, kind)) = self.faults.first() else {
            let n = self.inner.write(buf)?;
            self.written += n as u64;
            return Ok(n);
        };
        let end = self.written + buf.len() as u64;
        if buf.is_empty() || offset >= end {
            // Fault point not reached inside this buffer.
            let n = self.inner.write(buf)?;
            self.written += n as u64;
            return Ok(n);
        }
        self.faults.remove(0);
        let split = (offset - self.written) as usize;
        let context = format!("chaos[{}]: injected {} at byte {offset}", self.tag, kind.name());
        match kind {
            FaultKind::ShortWrite => {
                // Honest partial write; accept at least one byte so callers
                // never see the pathological Ok(0).
                let take = split.max(1);
                self.inner.write_all(&buf[..take])?;
                self.written += take as u64;
                Ok(take)
            }
            FaultKind::TornWrite => {
                // Claim the whole buffer landed; silently drop the tail.
                // The next write grafts straight onto the hole.
                self.inner.write_all(&buf[..split])?;
                self.written += buf.len() as u64;
                Ok(buf.len())
            }
            FaultKind::Enospc => {
                self.inner.write_all(&buf[..split])?;
                self.written += split as u64;
                Err(errno(28, context)) // ENOSPC
            }
            FaultKind::Eio => {
                self.inner.write_all(&buf[..split])?;
                self.written += split as u64;
                Err(errno(5, context)) // EIO
            }
            FaultKind::BitFlip => {
                let mut flipped = buf.to_vec();
                flipped[split] ^= 1 << (offset & 7);
                self.inner.write_all(&flipped)?;
                self.written += buf.len() as u64;
                Ok(buf.len())
            }
            FaultKind::Crash => {
                self.inner.write_all(&buf[..split])?;
                let _ = self.inner.flush();
                self.written += split as u64;
                self.crashed = true;
                Err(self.crash_error())
            }
            FaultKind::LeaseCrash => {
                // The record containing the offset lands in full — a clean
                // line boundary — and only *then* does the writer die, so
                // the surviving file shows a durable claim with no owner.
                self.inner.write_all(buf)?;
                let _ = self.inner.flush();
                self.written += buf.len() as u64;
                self.crashed = true;
                Err(self.crash_error())
            }
            FaultKind::StaleHeartbeat => {
                // Claim success without touching the file: the whole
                // record vanishes, and unlike `torn` nothing grafts — the
                // next write starts on the same clean boundary.
                self.written += buf.len() as u64;
                Ok(buf.len())
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.crashed {
            return Err(self.crash_error());
        }
        self.inner.flush()
    }
}

impl ChaosWriter<File> {
    /// `fsync`-lite passthrough for the journal's opt-in sync mode; a
    /// crashed writer refuses, like every other operation.
    pub fn sync_data(&mut self) -> io::Result<()> {
        if self.crashed {
            return Err(self.crash_error());
        }
        self.inner.sync_data()
    }
}

// ---------------------------------------------------------------------------
// Atomic replace: temp file + rename, for final reports.
// ---------------------------------------------------------------------------

fn annotate(e: io::Error, path: &Path) -> io::Error {
    io::Error::new(e.kind(), format!("{}: {e}", path.display()))
}

/// A file that only appears at its final path on [`commit`](AtomicFile::commit):
/// bytes stream into a sibling temp file (through a [`ChaosWriter`]), and
/// commit flushes, fsyncs and renames into place. Readers therefore see
/// either the old complete file or the new complete file — never a torn
/// report. Dropped uncommitted, the temp file is removed.
#[derive(Debug)]
pub struct AtomicFile {
    final_path: PathBuf,
    temp_path: PathBuf,
    writer: Option<ChaosWriter<BufWriter<File>>>,
}

impl AtomicFile {
    /// Starts an atomic write of `path`; `tag` names the chaos target.
    pub fn create(path: impl AsRef<Path>, tag: &str) -> io::Result<AtomicFile> {
        let final_path = path.as_ref().to_path_buf();
        let mut name = final_path.file_name().unwrap_or_default().to_os_string();
        name.push(format!(".tmp.{}", std::process::id()));
        let temp_path = final_path.with_file_name(name);
        let file = File::create(&temp_path).map_err(|e| annotate(e, &temp_path))?;
        Ok(AtomicFile {
            final_path,
            temp_path,
            writer: Some(ChaosWriter::new(BufWriter::new(file), tag)),
        })
    }

    /// Flushes, fsyncs and renames the temp file into place, then fsyncs
    /// the parent directory so the rename itself is durable.
    pub fn commit(mut self) -> io::Result<()> {
        let mut writer = self.writer.take().expect("commit consumes the writer");
        writer.flush().map_err(|e| annotate(e, &self.temp_path))?;
        if writer.crashed() {
            return Err(annotate(writer.crash_error(), &self.temp_path));
        }
        let file = match writer.inner.into_inner() {
            Ok(file) => file,
            Err(e) => return Err(annotate(io::Error::new(io::ErrorKind::Other, e.to_string()), &self.temp_path)),
        };
        file.sync_all().map_err(|e| annotate(e, &self.temp_path))?;
        drop(file);
        fs::rename(&self.temp_path, &self.final_path).map_err(|e| annotate(e, &self.final_path))?;
        // Without this, a power loss after the rename can resurrect the old
        // file (the rename lived only in the directory's page cache) — for
        // a compacted journal that silently un-drops corrupt lines. Best
        // effort: some filesystems refuse directory fsync, and the rename
        // has already succeeded at the process level.
        if let Some(parent) = self.final_path.parent() {
            let dir = if parent.as_os_str().is_empty() { Path::new(".") } else { parent };
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
        // self drops with writer == None: nothing to clean up.
    }
}

impl Write for AtomicFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let temp = &self.temp_path;
        match self.writer.as_mut().expect("write before commit").write(buf) {
            Ok(n) => Ok(n),
            Err(e) => Err(annotate(e, temp)),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        let temp = &self.temp_path;
        self.writer.as_mut().expect("flush before commit").flush().map_err(|e| annotate(e, temp))
    }
}

impl Drop for AtomicFile {
    fn drop(&mut self) {
        if self.writer.take().is_some() {
            // Never committed: leave no temp droppings behind.
            let _ = fs::remove_file(&self.temp_path);
        }
    }
}

/// Writes `bytes` to `path` atomically (temp + fsync + rename). The
/// standard path for final artifacts: reports, benchmark baselines,
/// rendered timelines.
pub fn write_atomic(path: impl AsRef<Path>, bytes: &[u8], tag: &str) -> io::Result<()> {
    let mut file = AtomicFile::create(path, tag)?;
    file.write_all(bytes)?;
    file.commit()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_ieee_check_value() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn plan_spec_round_trips() {
        let spec = "journal:crash@1234,trace:enospc@4096,bench:bitflip@7";
        let plan = FaultPlan::parse(spec).unwrap();
        assert_eq!(plan.points().len(), 3);
        assert_eq!(plan.render(), spec);
        assert_eq!(FaultPlan::parse(&plan.render()).unwrap(), plan);
    }

    #[test]
    fn plan_spec_rejects_garbage() {
        for bad in ["journal", "journal:frobnicate@3", "journal:crash@x", ":crash@3"] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad:?} should not parse");
        }
        assert!(FaultPlan::parse("").unwrap().is_empty());
    }

    #[test]
    fn seeded_plans_are_reproducible() {
        let a = FaultPlan::seeded(42, "journal", 10_000, 8);
        let b = FaultPlan::seeded(42, "journal", 10_000, 8);
        assert_eq!(a, b);
        assert_eq!(a.points().len(), 8);
        assert!(a.points().iter().all(|p| p.offset < 10_000));
        assert_ne!(FaultPlan::seeded(43, "journal", 10_000, 8), a);
    }

    #[test]
    fn disarmed_writer_is_a_passthrough() {
        let mut w = ChaosWriter::with_plan(Vec::new(), "journal", &FaultPlan::new());
        w.write_all(b"hello ").unwrap();
        w.write_all(b"world").unwrap();
        w.flush().unwrap();
        assert_eq!(w.get_ref(), b"hello world");
        assert_eq!(w.offset(), 11);
    }

    #[test]
    fn faults_only_fire_for_their_tag() {
        let plan = FaultPlan::parse("other:crash@0").unwrap();
        let mut w = ChaosWriter::with_plan(Vec::new(), "journal", &plan);
        w.write_all(b"untouched").unwrap();
        assert_eq!(w.get_ref(), b"untouched");
    }

    #[test]
    fn short_write_is_an_honest_partial() {
        let plan = FaultPlan::parse("t:short@4").unwrap();
        let mut w = ChaosWriter::with_plan(Vec::new(), "t", &plan);
        assert_eq!(w.write(b"abcdefgh").unwrap(), 4);
        // write_all-style retry completes the line.
        w.write_all(b"efgh").unwrap();
        assert_eq!(w.get_ref(), b"abcdefgh");
    }

    #[test]
    fn torn_write_silently_drops_a_tail() {
        let plan = FaultPlan::parse("t:torn@4").unwrap();
        let mut w = ChaosWriter::with_plan(Vec::new(), "t", &plan);
        assert_eq!(w.write(b"abcdefgh").unwrap(), 8, "claims success");
        w.write_all(b"NEXT").unwrap();
        assert_eq!(w.get_ref(), b"abcdNEXT", "tail dropped, next write grafted");
        assert_eq!(w.offset(), 12, "logical offset counts the dropped bytes");
    }

    #[test]
    fn enospc_and_eio_persist_the_prefix_then_fail() {
        for (spec, code) in [("t:enospc@3", 28), ("t:eio@3", 5)] {
            let plan = FaultPlan::parse(spec).unwrap();
            let mut w = ChaosWriter::with_plan(Vec::new(), "t", &plan);
            let err = w.write(b"abcdef").unwrap_err();
            assert_eq!(err.raw_os_error(), None, "wrapped error keeps context, not errno");
            assert!(err.to_string().contains("chaos[t]"), "{err}");
            assert_eq!(w.get_ref(), b"abc");
            // The fault is one-shot: the retry goes through.
            w.write_all(b"def").unwrap();
            assert_eq!(w.get_ref(), b"abcdef");
            let _ = code;
        }
    }

    #[test]
    fn bitflip_corrupts_exactly_one_bit() {
        let plan = FaultPlan::parse("t:bitflip@2").unwrap();
        let mut w = ChaosWriter::with_plan(Vec::new(), "t", &plan);
        w.write_all(b"aaaa").unwrap();
        let got = w.get_ref();
        assert_eq!(got.len(), 4);
        let diff: Vec<usize> = (0..4).filter(|&i| got[i] != b'a').collect();
        assert_eq!(diff, vec![2]);
        assert_eq!((got[2] ^ b'a').count_ones(), 1);
    }

    #[test]
    fn crash_freezes_the_writer_at_the_exact_byte() {
        let plan = FaultPlan::parse("t:crash@5").unwrap();
        let mut w = ChaosWriter::with_plan(Vec::new(), "t", &plan);
        assert!(w.write(b"abcdefgh").is_err());
        assert!(w.crashed());
        assert_eq!(w.get_ref(), b"abcde", "exactly 5 bytes persisted");
        assert!(w.write(b"more").is_err(), "stays frozen");
        assert!(w.flush().is_err());
        assert_eq!(w.get_ref(), b"abcde");
    }

    #[test]
    fn leasecrash_persists_the_whole_record_then_freezes() {
        let plan = FaultPlan::parse("lease:leasecrash@12").unwrap();
        let mut w = ChaosWriter::with_plan(Vec::new(), "lease", &plan);
        w.write_all(b"rec-one\n").unwrap();
        assert!(w.write(b"rec-two\n").is_err(), "the fault still surfaces as an error");
        assert!(w.crashed());
        assert_eq!(w.get_ref(), b"rec-one\nrec-two\n", "record crossing the offset landed whole");
        assert!(w.write(b"rec-three\n").is_err(), "frozen afterwards");
        assert_eq!(w.get_ref(), b"rec-one\nrec-two\n");
    }

    #[test]
    fn stale_heartbeat_swallows_exactly_one_record() {
        let plan = FaultPlan::parse("lease:stalehb@10").unwrap();
        let mut w = ChaosWriter::with_plan(Vec::new(), "lease", &plan);
        w.write_all(b"rec-one\n").unwrap();
        w.write_all(b"rec-two\n").unwrap(); // crosses offset 10: swallowed
        w.write_all(b"rec-three\n").unwrap();
        assert_eq!(w.get_ref(), b"rec-one\nrec-three\n", "one whole record vanished cleanly");
        assert_eq!(w.offset(), 26, "logical offset still counts the swallowed record");
    }

    #[test]
    fn write_atomic_replaces_and_cleans_up() {
        let mut path = std::env::temp_dir();
        path.push(format!("charlie-chaos-atomic-{}.txt", std::process::id()));
        write_atomic(&path, b"first", "report").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"first");
        write_atomic(&path, b"second", "report").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"second");
        // No temp droppings next to the file.
        let dir = path.parent().unwrap();
        let strays: Vec<_> = fs::read_dir(dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.starts_with("charlie-chaos-atomic-") && n.contains(".tmp."))
            .collect();
        assert!(strays.is_empty(), "leftover temp files: {strays:?}");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn uncommitted_atomic_file_leaves_no_trace() {
        let mut path = std::env::temp_dir();
        path.push(format!("charlie-chaos-abort-{}.txt", std::process::id()));
        {
            let mut file = AtomicFile::create(&path, "report").unwrap();
            file.write_all(b"doomed").unwrap();
            // dropped without commit
        }
        assert!(!path.exists(), "final path must not appear");
    }
}
