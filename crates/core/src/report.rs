//! Plain-text table and CSV rendering for the experiment reproductions.

use std::fmt;

/// Formats a rate the way the paper's tables do (`.18`, `1.00`).
pub fn format_rate(x: f64) -> String {
    if (x - 1.0).abs() < 5e-3 || x >= 1.0 {
        format!("{x:.2}")
    } else {
        // strip the leading zero: 0.18 → .18
        let s = format!("{x:.2}");
        s.strip_prefix('0').map(str::to_owned).unwrap_or(s)
    }
}

/// A simple right-aligned text table with a title, used by every
/// table/figure binary.
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: Vec<impl Into<String>>) -> Self {
        Table {
            title: title.into(),
            headers: headers.into_iter().map(Into::into).collect(),
        rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<impl Into<String>>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row width must match headers");
        self.rows.push(cells);
        self
    }

    /// The table's title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Cell accessor (row-major), `None` out of range.
    pub fn cell(&self, row: usize, col: usize) -> Option<&str> {
        self.rows.get(row).and_then(|r| r.get(col)).map(String::as_str)
    }

    /// Renders as CSV (headers first). Cells containing commas are quoted.
    pub fn to_csv(&self) -> String {
        let quote = |s: &str| {
            if s.contains(',') {
                format!("\"{s}\"")
            } else {
                s.to_owned()
            }
        };
        let mut out = String::new();
        out.push_str(&self.headers.iter().map(|h| quote(h)).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        writeln!(f, "{}", self.title)?;
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, c) in cells.iter().enumerate() {
                if i == 0 {
                    // first column left-aligned
                    write!(f, "{:<width$}", c, width = widths[i])?;
                } else {
                    write!(f, "  {:>width$}", c, width = widths[i])?;
                }
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_formatting_matches_paper_style() {
        assert_eq!(format_rate(0.18), ".18");
        assert_eq!(format_rate(0.997), "1.00");
        assert_eq!(format_rate(1.0), "1.00");
        assert_eq!(format_rate(1.23), "1.23");
        assert_eq!(format_rate(0.04), ".04");
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("Demo", vec!["name", "x"]);
        t.row(vec!["alpha", "1"]).row(vec!["b", "22"]);
        let s = t.to_string();
        assert!(s.contains("Demo"));
        assert!(s.contains("alpha"));
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.cell(1, 1), Some("22"));
        assert_eq!(t.cell(9, 0), None);
    }

    #[test]
    fn csv_quotes_commas() {
        let mut t = Table::new("x", vec!["a", "b"]);
        t.row(vec!["1,5", "2"]);
        assert_eq!(t.to_csv(), "a,b\n\"1,5\",2\n");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new("x", vec!["a", "b"]);
        t.row(vec!["only one"]);
    }
}
