//! A small ASCII line-chart renderer for experiment binaries.

use std::fmt;

/// Glyphs assigned to successive series.
const GLYPHS: [char; 6] = ['*', '+', 'o', 'x', '#', '@'];

/// A multi-series ASCII chart: x/y points mapped onto a character grid,
/// with a y-axis, an x-axis, and a legend.
///
/// # Example
///
/// ```
/// use charlie::AsciiChart;
///
/// let mut c = AsciiChart::new("relative time", 40, 10);
/// c.series("PREF", &[(4.0, 0.8), (16.0, 0.95), (32.0, 1.02)]);
/// let drawn = c.to_string();
/// assert!(drawn.contains("PREF"));
/// ```
#[derive(Clone, Debug)]
pub struct AsciiChart {
    title: String,
    width: usize,
    height: usize,
    series: Vec<(String, Vec<(f64, f64)>)>,
}

impl AsciiChart {
    /// Creates an empty chart of `width`×`height` plot cells (clamped to a
    /// sane minimum of 16×4).
    pub fn new(title: impl Into<String>, width: usize, height: usize) -> Self {
        AsciiChart {
            title: title.into(),
            width: width.max(16),
            height: height.max(4),
            series: Vec::new(),
        }
    }

    /// Adds a named series; points need not be sorted.
    pub fn series(&mut self, name: impl Into<String>, points: &[(f64, f64)]) -> &mut Self {
        self.series.push((name.into(), points.to_vec()));
        self
    }

    fn bounds(&self) -> Option<(f64, f64, f64, f64)> {
        let mut pts = self.series.iter().flat_map(|(_, p)| p.iter()).peekable();
        pts.peek()?;
        let mut it = self.series.iter().flat_map(|(_, p)| p.iter().copied());
        let first = it.next()?;
        let (mut x0, mut x1, mut y0, mut y1) = (first.0, first.0, first.1, first.1);
        for (x, y) in it {
            x0 = x0.min(x);
            x1 = x1.max(x);
            y0 = y0.min(y);
            y1 = y1.max(y);
        }
        if (x1 - x0).abs() < f64::EPSILON {
            x1 = x0 + 1.0;
        }
        if (y1 - y0).abs() < f64::EPSILON {
            y1 = y0 + 1.0;
        }
        Some((x0, x1, y0, y1))
    }
}

impl fmt::Display for AsciiChart {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let Some((x0, x1, y0, y1)) = self.bounds() else {
            return writeln!(f, "{} (no data)", self.title);
        };
        let mut grid = vec![vec![' '; self.width]; self.height];
        for (idx, (_, points)) in self.series.iter().enumerate() {
            let glyph = GLYPHS[idx % GLYPHS.len()];
            for &(x, y) in points {
                let cx = ((x - x0) / (x1 - x0) * (self.width - 1) as f64).round() as usize;
                let cy = ((y - y0) / (y1 - y0) * (self.height - 1) as f64).round() as usize;
                let row = self.height - 1 - cy;
                grid[row][cx.min(self.width - 1)] = glyph;
            }
        }
        writeln!(f, "{}", self.title)?;
        for (i, row) in grid.iter().enumerate() {
            let y = y1 - (y1 - y0) * i as f64 / (self.height - 1) as f64;
            let line: String = row.iter().collect();
            writeln!(f, "{y:>8.3} |{line}")?;
        }
        writeln!(f, "{:>8} +{}", "", "-".repeat(self.width))?;
        writeln!(f, "{:>9}{x0:<8.0}{:>width$}", "", format!("{x1:.0}"), width = self.width - 8)?;
        let legend: Vec<String> = self
            .series
            .iter()
            .enumerate()
            .map(|(i, (name, _))| format!("{} {name}", GLYPHS[i % GLYPHS.len()]))
            .collect();
        writeln!(f, "{:>10}{}", "", legend.join("   "))
    }
}

impl AsciiChart {
    /// Renders the same data as a standalone SVG document (line-connected
    /// series, axes, legend) — handy for dropping Figure-2 panels into
    /// papers or READMEs without any plotting dependency.
    pub fn to_svg(&self) -> String {
        const W: f64 = 640.0;
        const H: f64 = 400.0;
        const ML: f64 = 64.0; // margins
        const MR: f64 = 16.0;
        const MT: f64 = 40.0;
        const MB: f64 = 48.0;
        const COLORS: [&str; 6] =
            ["#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b"];

        let mut out = String::new();
        out.push_str(&format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{W}\" height=\"{H}\"              viewBox=\"0 0 {W} {H}\" font-family=\"sans-serif\" font-size=\"12\">\n"
        ));
        out.push_str(&format!(
            "<text x=\"{}\" y=\"20\" text-anchor=\"middle\" font-size=\"14\">{}</text>\n",
            W / 2.0,
            xml_escape(&self.title)
        ));
        let Some((x0, x1, y0, y1)) = self.bounds() else {
            out.push_str("<text x=\"20\" y=\"60\">no data</text>\n</svg>\n");
            return out;
        };
        let px = |x: f64| ML + (x - x0) / (x1 - x0) * (W - ML - MR);
        let py = |y: f64| H - MB - (y - y0) / (y1 - y0) * (H - MT - MB);

        // Axes.
        out.push_str(&format!(
            "<line x1=\"{ML}\" y1=\"{}\" x2=\"{}\" y2=\"{}\" stroke=\"black\"/>\n",
            H - MB,
            W - MR,
            H - MB
        ));
        out.push_str(&format!(
            "<line x1=\"{ML}\" y1=\"{MT}\" x2=\"{ML}\" y2=\"{}\" stroke=\"black\"/>\n",
            H - MB
        ));
        for i in 0..=4 {
            let y = y0 + (y1 - y0) * f64::from(i) / 4.0;
            out.push_str(&format!(
                "<text x=\"{}\" y=\"{}\" text-anchor=\"end\">{y:.3}</text>\n",
                ML - 6.0,
                py(y) + 4.0
            ));
        }
        for i in 0..=4 {
            let x = x0 + (x1 - x0) * f64::from(i) / 4.0;
            out.push_str(&format!(
                "<text x=\"{}\" y=\"{}\" text-anchor=\"middle\">{x:.0}</text>\n",
                px(x),
                H - MB + 18.0
            ));
        }

        // Series.
        for (i, (name, points)) in self.series.iter().enumerate() {
            let color = COLORS[i % COLORS.len()];
            let mut sorted = points.clone();
            sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
            let path: Vec<String> =
                sorted.iter().map(|&(x, y)| format!("{:.1},{:.1}", px(x), py(y))).collect();
            if !path.is_empty() {
                out.push_str(&format!(
                    "<polyline fill=\"none\" stroke=\"{color}\" stroke-width=\"2\"                      points=\"{}\"/>\n",
                    path.join(" ")
                ));
            }
            for &(x, y) in &sorted {
                out.push_str(&format!(
                    "<circle cx=\"{:.1}\" cy=\"{:.1}\" r=\"3\" fill=\"{color}\"/>\n",
                    px(x),
                    py(y)
                ));
            }
            out.push_str(&format!(
                "<text x=\"{}\" y=\"{}\" fill=\"{color}\">{}</text>\n",
                W - MR - 90.0,
                MT + 16.0 * i as f64,
                xml_escape(name)
            ));
        }
        out.push_str("</svg>\n");
        out
    }
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_points_and_legend() {
        let mut c = AsciiChart::new("demo", 30, 8);
        c.series("a", &[(0.0, 0.0), (10.0, 1.0)]).series("b", &[(5.0, 0.5)]);
        let s = c.to_string();
        assert!(s.contains("demo"));
        assert!(s.contains("* a"));
        assert!(s.contains("+ b"));
        assert!(s.contains('*'), "{s}");
        assert!(s.contains('+'), "{s}");
        // y-axis labels cover the data range
        assert!(s.contains("1.000"));
        assert!(s.contains("0.000"));
    }

    #[test]
    fn empty_chart_renders_placeholder() {
        let c = AsciiChart::new("empty", 20, 5);
        assert!(c.to_string().contains("no data"));
    }

    #[test]
    fn degenerate_ranges_do_not_divide_by_zero() {
        let mut c = AsciiChart::new("flat", 20, 5);
        c.series("s", &[(1.0, 2.0), (1.0, 2.0)]);
        let s = c.to_string();
        assert!(s.contains('*'));
    }

    #[test]
    fn svg_renders_well_formed_document() {
        let mut c = AsciiChart::new("svg <demo>", 30, 8);
        c.series("PREF", &[(4.0, 0.8), (32.0, 1.02)]);
        let svg = c.to_svg();
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert!(svg.contains("polyline"));
        assert!(svg.contains("svg &lt;demo&gt;"), "titles are XML-escaped");
        assert!(svg.contains("PREF"));
        // Tag balance (cheap well-formedness check).
        assert_eq!(svg.matches("<svg").count(), svg.matches("</svg>").count());
    }

    #[test]
    fn svg_empty_chart() {
        let c = AsciiChart::new("empty", 20, 5);
        assert!(c.to_svg().contains("no data"));
    }

    #[test]
    fn min_dimensions_enforced() {
        let mut c = AsciiChart::new("tiny", 1, 1);
        c.series("s", &[(0.0, 0.0), (1.0, 1.0)]);
        let lines = c.to_string().lines().count();
        assert!(lines >= 4 + 3, "clamped to at least 4 rows plus frame");
    }
}
