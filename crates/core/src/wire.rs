//! Minimal JSON value, parser, and experiment-field codecs shared by the
//! checkpoint journal and the serve protocol.
//!
//! The workspace is fully vendored (no serde), so persistence and the
//! daemon wire format share one hand-rolled recursive-descent reader over
//! a byte cursor — only what those formats need: non-negative integers,
//! strings, arrays, objects, and the two string escapes the encoders emit
//! (`\"` and `\\`). Keeping the journal and the socket on the same codec
//! is what makes a streamed [`RunSummary`] lossless end to end: the bytes
//! a client decodes are the bytes a resumed daemon would replay.
//!
//! [`RunSummary`]: crate::RunSummary

use crate::lab::Experiment;
use charlie_prefetch::Strategy;
use charlie_workloads::{Layout, Workload};
use std::fmt::Write as _;

/// A parsed JSON value (journal lines, serve requests/replies).
#[derive(Clone, PartialEq, Debug)]
pub enum Json {
    /// Non-negative integer (every numeric field in the formats).
    Num(u64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// The value as an integer, or a descriptive error.
    pub fn num(&self) -> Result<u64, String> {
        match self {
            Json::Num(n) => Ok(*n),
            other => Err(format!("expected number, found {other:?}")),
        }
    }

    /// The value as a string, or a descriptive error.
    pub fn str(&self) -> Result<&str, String> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(format!("expected string, found {other:?}")),
        }
    }

    /// The value as an array, or a descriptive error.
    pub fn arr(&self) -> Result<&[Json], String> {
        match self {
            Json::Arr(items) => Ok(items),
            other => Err(format!("expected array, found {other:?}")),
        }
    }

    /// Required object field lookup.
    pub fn field<'a>(&'a self, name: &str) -> Result<&'a Json, String> {
        match self {
            Json::Obj(fields) => fields
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("missing field {name:?}")),
            other => Err(format!("expected object with field {name:?}, found {other:?}")),
        }
    }

    /// Tolerant lookup for fields that newer writers add and older readers
    /// lack (e.g. `"timeline"`): `None` instead of an error when absent.
    pub fn opt_field<'a>(&'a self, name: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Deepest container nesting [`parse`] accepts. The formats nest three
/// levels at most; the cap exists because the parser is recursive descent
/// and fed untrusted socket bytes — without it, a line of consecutive `[`
/// bytes overflows the connection thread's stack, which `catch_unwind`
/// cannot contain and which would abort the whole daemon.
pub const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser { bytes: text.as_bytes(), pos: 0, depth: 0 }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        match self.peek() {
            Some(b) if b == byte => {
                self.pos += 1;
                Ok(())
            }
            other => Err(format!(
                "expected {:?} at byte {}, found {:?}",
                byte as char,
                self.pos,
                other.map(|b| b as char)
            )),
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.nested(Self::object),
            Some(b'[') => self.nested(Self::array),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'0'..=b'9') => self.number(),
            // Booleans read as 0/1 — the serve frames use `"ok":true`-style
            // flags, and a dedicated variant would buy the formats nothing.
            Some(b't') => self.literal("true", Json::Num(1)),
            Some(b'f') => self.literal("false", Json::Num(0)),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            )),
        }
    }

    fn nested(
        &mut self,
        container: fn(&mut Self) -> Result<Json, String>,
    ) -> Result<Json, String> {
        if self.depth >= MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH} at byte {}", self.pos));
        }
        self.depth += 1;
        let value = container(self);
        self.depth -= 1;
        value
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, String> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("unexpected literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        self.skip_ws();
        let start = self.pos;
        while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| format!("invalid utf-8 in number at byte {start}: {e}"))?;
        text.parse().map(Json::Num).map_err(|e| format!("bad number {text:?}: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        let mut run_start = self.pos;
        // Unescaped runs are copied as whole UTF-8 slices (the delimiters
        // `"` and `\` are ASCII, so they never split a multi-byte char) —
        // per-byte `as char` would mangle non-ASCII into Latin-1.
        let bytes = self.bytes;
        let flush_run = |out: &mut String, start: usize, end: usize| {
            std::str::from_utf8(&bytes[start..end])
                .map(|s| out.push_str(s))
                .map_err(|e| format!("invalid utf-8 in string at byte {start}: {e}"))
        };
        loop {
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    flush_run(&mut out, run_start, self.pos)?;
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    flush_run(&mut out, run_start, self.pos)?;
                    // Only the two escapes the encoder emits.
                    match self.bytes.get(self.pos + 1) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        other => {
                            return Err(format!("unsupported escape {other:?}"));
                        }
                    }
                    self.pos += 2;
                    run_start = self.pos;
                }
                Some(_) => self.pos += 1,
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected ',' or ']', found {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
    }
}

/// Parses one complete JSON value, rejecting trailing bytes.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut parser = Parser::new(text);
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(format!("trailing bytes after value at byte {}", parser.pos));
    }
    Ok(value)
}

/// Appends `"key":"escaped-value",` to an object under construction.
pub fn push_str_field(out: &mut String, key: &str, value: &str) {
    let _ = write!(out, "\"{key}\":\"");
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            _ => out.push(c),
        }
    }
    out.push_str("\",");
}

/// Inverts [`Workload::name`] over the extended suite.
pub fn decode_workload(name: &str) -> Result<Workload, String> {
    Workload::EXTENDED
        .into_iter()
        .find(|w| w.name() == name)
        .ok_or_else(|| format!("unknown workload {name:?}"))
}

/// Inverts [`Strategy::name`] over the extended suite.
pub fn decode_strategy(name: &str) -> Result<Strategy, String> {
    Strategy::EXTENDED
        .into_iter()
        .find(|s| s.name() == name)
        .ok_or_else(|| format!("unknown strategy {name:?}"))
}

/// Inverts the layout's wire name (`"interleaved"` / `"padded"`).
pub fn decode_layout(name: &str) -> Result<Layout, String> {
    match name {
        "interleaved" => Ok(Layout::Interleaved),
        "padded" => Ok(Layout::Padded),
        other => Err(format!("unknown layout {other:?}")),
    }
}

/// The layout's wire name.
pub fn layout_name(layout: Layout) -> &'static str {
    match layout {
        Layout::Interleaved => "interleaved",
        Layout::Padded => "padded",
    }
}

/// Encodes one experiment's identifying fields — the same field names and
/// spellings the journal uses, so request cells and journal lines agree.
pub fn encode_experiment(exp: Experiment) -> String {
    let mut s = String::with_capacity(96);
    s.push('{');
    push_str_field(&mut s, "workload", exp.workload.name());
    push_str_field(&mut s, "strategy", exp.strategy.name());
    let _ = write!(s, "\"transfer\":{},", exp.transfer_cycles);
    push_str_field(&mut s, "layout", layout_name(exp.layout));
    s.pop(); // trailing comma from the last field
    s.push('}');
    s
}

/// Decodes an experiment from an object carrying the fields
/// [`encode_experiment`] emits (extra fields are ignored, so a journal
/// summary line decodes too).
pub fn decode_experiment(v: &Json) -> Result<Experiment, String> {
    Ok(Experiment {
        workload: decode_workload(v.field("workload")?.str()?)?,
        strategy: decode_strategy(v.field("strategy")?.str()?)?,
        transfer_cycles: v.field("transfer")?.num()?,
        layout: decode_layout(v.field("layout")?.str()?)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_rejects_trailing_bytes_and_bad_escapes() {
        assert!(parse("{\"a\":1} x").is_err());
        assert!(parse("\"\\n\"").is_err(), "only the emitted escapes are accepted");
        assert!(parse("").is_err());
        assert_eq!(parse("42").unwrap().num().unwrap(), 42);
        assert_eq!(parse("true").unwrap().num().unwrap(), 1);
        assert_eq!(parse("false").unwrap().num().unwrap(), 0);
        assert!(parse("trueX").is_err());
        assert!(parse("tru").is_err());
    }

    /// Hostile deep nesting is rejected by the depth cap instead of
    /// recursing the stack into the ground (the daemon feeds this parser
    /// untrusted socket bytes, and a stack overflow aborts the process).
    #[test]
    fn parse_rejects_hostile_nesting_depth() {
        for (open, close) in [("[", "]"), ("{\"k\":", "}")] {
            let deep = format!("{}0{}", open.repeat(100_000), close.repeat(100_000));
            let err = parse(&deep).unwrap_err();
            assert!(err.contains("nesting deeper than"), "{err}");
        }
        // At-the-cap nesting still parses.
        let ok = format!("{}0{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(parse(&ok).is_ok());
        let over = format!("{}0{}", "[".repeat(MAX_DEPTH + 1), "]".repeat(MAX_DEPTH + 1));
        assert!(parse(&over).is_err());
    }

    /// Non-ASCII string values survive an encode/parse round trip —
    /// `push_str_field` emits real UTF-8, so the parser must read it back
    /// as UTF-8 rather than byte-at-a-time Latin-1.
    #[test]
    fn non_ascii_strings_round_trip() {
        let value = "pfad/zur/Messung-µßé — キャッシュ \\ \"q\"";
        let mut obj = String::from("{");
        push_str_field(&mut obj, "detail", value);
        obj.pop();
        obj.push('}');
        let parsed = parse(&obj).unwrap();
        assert_eq!(parsed.field("detail").unwrap().str().unwrap(), value);
    }

    #[test]
    fn experiment_round_trips_through_the_wire_fields() {
        for exp in [
            Experiment::paper(Workload::Mp3d, Strategy::Pref, 8),
            Experiment::paper(Workload::Pverify, Strategy::Pws, 32).restructured(),
        ] {
            let v = parse(&encode_experiment(exp)).unwrap();
            assert_eq!(decode_experiment(&v).unwrap(), exp);
        }
    }

    #[test]
    fn decode_rejects_unknown_names() {
        assert!(decode_workload("nope").is_err());
        assert!(decode_strategy("nope").is_err());
        assert!(decode_layout("diagonal").is_err());
    }
}
