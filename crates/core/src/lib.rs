//! # charlie — prefetching limits on a bus-based multiprocessor
//!
//! A from-scratch reproduction of Dean M. Tullsen and Susan J. Eggers,
//! *"Limitations of Cache Prefetching on a Bus-Based Multiprocessor"*
//! (ISCA 1993): the trace-driven multiprocessor simulator (a rebuild of
//! their "Charlie"), the oracle compiler-directed prefetch-insertion
//! pipeline with all five strategies (NP, PREF, EXCL, LPD, PWS), synthetic
//! versions of the five-application workload suite, and a harness that
//! regenerates every table and figure of the paper's evaluation.
//!
//! ## Crate map
//!
//! This facade re-exports the whole workspace:
//!
//! * [`trace`] — event streams, builders, sharing analysis;
//! * [`cache`] — geometry, Illinois protocol, cache arrays, filter caches;
//! * [`bus`] — the contended split-transaction bus;
//! * [`sim`] — the multiprocessor machine and its metrics;
//! * [`prefetch`] — oracle miss marking and strategy application;
//! * [`workloads`] — the synthetic Topopt/Pverify/LocusRoute/Mp3d/Water
//!   generators;
//! * [`Lab`] / [`experiments`] — memoizing experiment runner and the
//!   per-table/figure reproductions.
//!
//! ## Quick start
//!
//! ```
//! use charlie::{Experiment, Lab, RunConfig, Strategy, Workload};
//!
//! // Keep it tiny for the doctest; defaults are larger.
//! let mut lab = Lab::new(RunConfig { refs_per_proc: 2_000, ..RunConfig::default() });
//! let np = lab.run(Experiment::paper(Workload::Water, Strategy::NoPrefetch, 8)).clone();
//! let pf = lab.run(Experiment::paper(Workload::Water, Strategy::Pref, 8)).clone();
//! // Prefetching lowers the CPU-observed miss rate…
//! assert!(pf.report.cpu_miss_rate() <= np.report.cpu_miss_rate());
//! // …but the bus still has to carry every fetched line.
//! assert!(pf.report.bus.total_ops() + 10 >= np.report.bus.total_ops());
//! ```

pub mod bench;
pub mod chaos;
mod chart;
pub mod checkpoint;
pub mod experiments;
mod lab;
pub mod parallel;
mod report;
pub mod retry;
pub mod sampling;
pub mod timeline;
pub mod wire;

pub use chart::AsciiChart;
pub use lab::{
    execute_cell, BatchReport, Experiment, Lab, LabStats, ObserveSpec, RetryOutcome, RunConfig,
    RunError, RunFailure, RunMeta, RunSummary, MAX_JOBS,
};
pub use report::{format_rate, Table};
pub use sampling::{
    calibrate, quick_grid, run_sampled_on_prepared, Calibration, CalibrationCell, SampledSummary,
    SamplingConfig, SamplingMode,
};

/// Re-export: trace infrastructure.
pub use charlie_trace as trace;
/// Re-export: cache substrate.
pub use charlie_cache as cache;
/// Re-export: bus model.
pub use charlie_bus as bus;
/// Re-export: the multiprocessor simulator.
pub use charlie_sim as sim;
/// Re-export: prefetch insertion.
pub use charlie_prefetch as prefetch;
/// Re-export: workload generators.
pub use charlie_workloads as workloads;

pub use charlie_bus::BusConfig;
pub use charlie_cache::CacheGeometry;
pub use charlie_prefetch::Strategy;
pub use charlie_sim::{Protocol, SimConfig, SimReport};
pub use charlie_workloads::{Layout, Workload, WorkloadConfig};
