//! The experiment runner: one [`Experiment`] = workload × strategy × memory
//! architecture × layout; a [`Lab`] memoizes runs so the table/figure
//! reproductions can share them.
//!
//! Experiments are independent, seeded and deterministic, so a batch of
//! them is embarrassingly parallel: [`Lab::run_batch`] fans a worklist out
//! over a [`std::thread`] pool and merges the results into the same memo
//! the serial [`Lab::run`] path uses — callers cannot observe which path
//! filled the cache, and `tests/parallel_equivalence.rs` proves the reports
//! are bit-identical either way.

use crate::retry::RetryPolicy;
use charlie_cache::CacheGeometry;
use charlie_prefetch::Strategy;
use charlie_sim::{
    simulate_observed_prevalidated, HwPrefetchConfig, Observability, Protocol, SampleConfig,
    SimConfig, SimError, SimReport, Timeline, TraceCategories, TraceEmitter,
};
use charlie_trace::Trace;
use charlie_workloads::{generate, Layout, Workload, WorkloadConfig};
use std::collections::HashMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// One cell of the paper's evaluation space.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct Experiment {
    /// Application.
    pub workload: Workload,
    /// Prefetching discipline.
    pub strategy: Strategy,
    /// Contended data-transfer latency (4–32 in the paper).
    pub transfer_cycles: u64,
    /// Original or restructured shared-data layout.
    pub layout: Layout,
}

impl Experiment {
    /// An experiment on the paper's default (interleaved) layout.
    pub fn paper(workload: Workload, strategy: Strategy, transfer_cycles: u64) -> Self {
        Experiment { workload, strategy, transfer_cycles, layout: Layout::Interleaved }
    }

    /// The same experiment on the restructured layout (§4.4).
    pub fn restructured(self) -> Self {
        Experiment { layout: Layout::Padded, ..self }
    }

    /// The NP baseline this experiment's execution time is reported against.
    pub fn baseline(self) -> Self {
        Experiment { strategy: Strategy::NoPrefetch, ..self }
    }
}

impl fmt::Display for Experiment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} @{}cy{}",
            self.workload,
            self.strategy,
            self.transfer_cycles,
            if self.layout == Layout::Padded { " (restructured)" } else { "" }
        )
    }
}

/// Machine- and trace-size knobs shared by every experiment in a [`Lab`].
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct RunConfig {
    /// Processors (the paper's machines; we default to 8).
    pub procs: usize,
    /// Demand references per processor. Defaults to the `CHARLIE_REFS`
    /// environment variable or 160 000 (the paper traced ~2 M; rates are
    /// stable well below that).
    pub refs_per_proc: usize,
    /// Workload generator seed.
    pub seed: u64,
    /// Per-processor cache geometry (the paper's experiments use
    /// 32 KB direct-mapped with 32-byte blocks; §3.3 discusses other
    /// configurations, reproduced by the `config_sweep` binary).
    pub geometry: CacheGeometry,
    /// Per-run wall-clock watchdog in milliseconds
    /// ([`SimConfig::wall_limit_ms`]); 0 (the default, overridable with the
    /// `CHARLIE_WALL_LIMIT_MS` environment variable) disables it. The
    /// deterministic event budget ([`watchdog_budget`]) stays armed either
    /// way; this additionally catches runs wedged cheaply in wall time.
    pub wall_limit_ms: u64,
    /// On-line hardware prefetcher every run of this lab simulates with
    /// ([`SimConfig::hw_prefetch`]). Off by default — the paper's machine
    /// has no hardware prefetcher, and the full grid must stay bit-identical
    /// to the published output when this is disabled. A lab-wide knob rather
    /// than an [`Experiment`] axis: head-to-head exhibits build one private
    /// lab per prefetcher configuration.
    pub hw_prefetch: HwPrefetchConfig,
    /// Coherence protocol every run of this lab simulates with
    /// ([`SimConfig::protocol`]). The paper's Illinois write-invalidate by
    /// default; like [`hw_prefetch`](RunConfig::hw_prefetch) it is a
    /// lab-wide knob — the `protocols` exhibit builds one private lab per
    /// protocol rather than adding an [`Experiment`] axis.
    pub protocol: Protocol,
    /// Sampled-simulation mode ([`crate::sampling`]). `None` (the default)
    /// runs every cell fully detailed and is byte-identical to builds
    /// without the feature. `Some` trades exact timing for a 10–100x
    /// cheaper estimate with a confidence interval
    /// ([`RunSummary::sampled`]); functional counters stay exact either
    /// way. Sampled runs carry no [`Timeline`] — per-window observability
    /// and sampled estimation own the same windowing machinery.
    pub sampling: Option<crate::sampling::SamplingConfig>,
}

impl Default for RunConfig {
    fn default() -> Self {
        let refs = std::env::var("CHARLIE_REFS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(160_000);
        let wall_limit_ms = std::env::var("CHARLIE_WALL_LIMIT_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        RunConfig {
            procs: 8,
            refs_per_proc: refs,
            seed: 0xC0FFEE,
            geometry: CacheGeometry::paper_default(),
            wall_limit_ms,
            hw_prefetch: HwPrefetchConfig::OFF,
            protocol: Protocol::WriteInvalidate,
            sampling: None,
        }
    }
}

/// Opt-in observability for every run a [`Lab`] executes (see
/// [`Lab::set_observe`]). The default spec is fully off and adds zero cost:
/// runs go through the exact same simulation path and produce bit-identical
/// reports with no timeline.
#[derive(Clone, Debug)]
pub struct ObserveSpec {
    /// Record a per-run [`Timeline`] sampled every this many cycles.
    pub sample_interval: Option<u64>,
    /// Write one JSONL trace file per run into this directory, named
    /// `{workload}-{strategy}-{transfer}cy-{layout}.jsonl`.
    pub trace_dir: Option<PathBuf>,
    /// Categories the per-run trace files record (ignored without
    /// `trace_dir`).
    pub trace_cats: TraceCategories,
}

impl Default for ObserveSpec {
    fn default() -> Self {
        ObserveSpec { sample_interval: None, trace_dir: None, trace_cats: TraceCategories::all() }
    }
}

impl ObserveSpec {
    /// Builds the per-run [`Observability`] attachments for `exp`, opening
    /// the run's trace file if a trace directory is configured.
    fn observability_for(&self, exp: Experiment) -> Result<Observability, RunError> {
        let tracer = match &self.trace_dir {
            None => None,
            Some(dir) => {
                let name = format!(
                    "{}-{}-{}cy-{:?}.jsonl",
                    exp.workload, exp.strategy, exp.transfer_cycles, exp.layout
                );
                let file = std::fs::File::create(dir.join(&name)).map_err(|e| {
                    RunError::Trace(format!("creating trace file {name}: {e}"))
                })?;
                // Chaos tag `trace`: per-run JSONL traces are a faultable
                // persistence surface like every other writer.
                let sink = crate::chaos::ChaosWriter::new(std::io::BufWriter::new(file), "trace");
                Some(TraceEmitter::new(Box::new(sink), self.trace_cats))
            }
        };
        Ok(Observability { sample: self.sample_interval.map(SampleConfig::every), tracer })
    }
}

/// Result of one experiment run.
#[derive(Clone, PartialEq, Debug)]
pub struct RunSummary {
    /// The experiment that produced this.
    pub experiment: Experiment,
    /// Full simulator output.
    pub report: SimReport,
    /// Prefetch events the off-line pass inserted (the paper's prefetch
    /// overhead measure).
    pub prefetches_inserted: u64,
    /// Per-window time series, present when the lab ran with sampling
    /// enabled ([`Lab::set_observe`]). `None` on unsampled runs — and on
    /// summaries restored from journals written by unsampled campaigns.
    pub timeline: Option<Timeline>,
    /// Sampled-simulation estimate, present when the run executed under
    /// [`RunConfig::sampling`]. `None` on exact runs — and on summaries
    /// restored from journals written before the sampled mode existed.
    /// When present, `report.cycles` and `report.bus.busy_cycles` are the
    /// estimates (see [`crate::sampling`]); everything else in the report
    /// is the sampled run's exact functional outcome.
    pub sampled: Option<crate::sampling::SampledSummary>,
}

/// Why one experiment run failed.
///
/// Every failure mode a batch worker can hit is funnelled into this type so
/// [`Lab::run_batch`] can finish the healthy cells and *report* the broken
/// ones instead of aborting the whole campaign.
#[derive(Clone, PartialEq, Debug)]
pub enum RunError {
    /// The simulator rejected or aborted the run (including watchdog
    /// [`SimError::BudgetExceeded`] and invariant-checker failures).
    Sim(SimError),
    /// The worker panicked; the payload message is preserved.
    Panic(String),
    /// A trace stream failed to load or parse (external-trace labs).
    Trace(String),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Sim(e) => write!(f, "{e}"),
            RunError::Panic(msg) => write!(f, "panic: {msg}"),
            RunError::Trace(msg) => write!(f, "trace error: {msg}"),
        }
    }
}

impl std::error::Error for RunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RunError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for RunError {
    fn from(e: SimError) -> Self {
        RunError::Sim(e)
    }
}

impl From<charlie_trace::io::ReadTraceError> for RunError {
    fn from(e: charlie_trace::io::ReadTraceError) -> Self {
        RunError::Trace(e.to_string())
    }
}

impl RunError {
    /// Whether this failure is plausibly transient I/O and therefore worth
    /// a backed-off retry ladder instead of a single diagnostic re-run.
    /// Trace-stream failures qualify (a loaded filesystem can drop a read
    /// mid-campaign and succeed seconds later); simulator errors and worker
    /// panics are deterministic functions of the trace and never do.
    pub fn is_transient_io(&self) -> bool {
        matches!(self, RunError::Trace(_))
    }
}

/// What the bounded serial re-run of a failed cell established.
#[derive(Clone, PartialEq, Debug)]
pub enum RetryOutcome {
    /// The re-run failed identically: the failure is deterministic (a real
    /// bug in the cell, not harness nondeterminism).
    Reproduced,
    /// The re-run failed *differently* — evidence of nondeterminism.
    DivergedError(RunError),
    /// The re-run succeeded; its result was kept and memoized (the original
    /// failure was transient).
    Recovered,
}

impl RetryOutcome {
    /// Short human label for failure summaries.
    pub fn label(&self) -> &'static str {
        match self {
            RetryOutcome::Reproduced => "deterministic (reproduced on retry)",
            RetryOutcome::DivergedError(_) => "nondeterministic (retry failed differently)",
            RetryOutcome::Recovered => "transient (recovered on retry)",
        }
    }
}

/// One failed cell of a batch, with its retry diagnosis.
#[derive(Clone, PartialEq, Debug)]
pub struct RunFailure {
    /// The experiment that failed.
    pub experiment: Experiment,
    /// The first failure observed.
    pub error: RunError,
    /// What the bounded re-run established.
    pub retry: RetryOutcome,
}

impl fmt::Display for RunFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {} [{}]", self.experiment, self.error, self.retry.label())
    }
}

/// Execution metadata for one completed run.
///
/// Deliberately kept *outside* [`RunSummary`] so serial and parallel
/// executions of the same experiment stay bit-comparable: wall-clock and
/// worker assignment vary run to run, the simulated report must not.
#[derive(Copy, Clone, Debug)]
pub struct RunMeta {
    /// Wall-clock nanoseconds the simulation took.
    pub wall_nanos: u128,
    /// Index of the worker that ran it (0 on the serial path).
    pub worker: usize,
    /// Whether the run was executed through [`Lab::run_batch`].
    pub via_batch: bool,
}

/// Lab-wide memo and batch accounting.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct LabStats {
    /// Lookups answered from the memo without simulating.
    pub memo_hits: u64,
    /// Lookups that had to simulate.
    pub memo_misses: u64,
    /// `run_batch` invocations.
    pub batches: u64,
    /// Experiments actually simulated by batch workers (excludes memo hits
    /// inside batches).
    pub batch_executed: u64,
    /// Summaries restored from a checkpoint journal ([`Lab::restore`]).
    pub restored: u64,
}

/// What one [`Lab::run_batch`] call did.
#[derive(Clone, Debug)]
pub struct BatchReport {
    /// Experiments requested (before deduplication).
    pub requested: usize,
    /// Requests already present in the memo.
    pub memo_hits: usize,
    /// Distinct experiments simulated *successfully* by this batch
    /// (including cells recovered by the retry).
    pub executed: usize,
    /// Worker threads used.
    pub jobs: usize,
    /// Wall-clock nanoseconds for the whole batch.
    pub wall_nanos: u128,
    /// Sum of per-run wall-clocks (≈ serial time; `sim_nanos / wall_nanos`
    /// estimates the achieved speedup).
    pub sim_nanos: u128,
    /// Cells that failed (panic, simulator error, watchdog abort), each with
    /// its retry diagnosis. Empty on a fully healthy batch.
    pub failures: Vec<RunFailure>,
}

impl BatchReport {
    /// `true` when every attempted cell completed.
    pub fn is_complete(&self) -> bool {
        self.failures.is_empty()
    }

    /// Multi-line human summary of the failures (`None` when complete).
    /// Callers print this and exit nonzero — the batch itself never aborts.
    pub fn failure_summary(&self) -> Option<String> {
        if self.failures.is_empty() {
            return None;
        }
        let attempted = self.executed + self.failures.len();
        let mut text =
            format!("{} of {} attempted cells failed:", self.failures.len(), attempted);
        for failure in &self.failures {
            text.push_str("\n  ");
            text.push_str(&failure.to_string());
        }
        Some(text)
    }
}

/// Upper bound on worker threads (guards against absurd `--jobs` values;
/// batches are also capped at one worker per pending experiment).
pub const MAX_JOBS: usize = 1024;

/// Watchdog headroom: events budgeted per demand access. Even under worst
/// observed contention a retired access costs well under 20 scheduler
/// events, so 128 leaves nearly an order of magnitude of slack (derivation
/// in DESIGN.md, "Fault tolerance & validation").
const WATCHDOG_EVENTS_PER_ACCESS: u64 = 128;

/// Watchdog floor covering per-run fixed costs (sync traffic, tiny traces).
const WATCHDOG_EVENT_FLOOR: u64 = 1 << 20;

/// Deterministic event budget for one run under `cfg`. A livelocked or
/// runaway simulation trips [`SimError::BudgetExceeded`] instead of wedging
/// its worker forever; an honest run never gets near the bound.
fn watchdog_budget(cfg: &RunConfig) -> u64 {
    let accesses = (cfg.procs as u64).saturating_mul(cfg.refs_per_proc as u64);
    WATCHDOG_EVENT_FLOOR.saturating_add(WATCHDOG_EVENTS_PER_ACCESS.saturating_mul(accesses))
}

/// Stable per-experiment salt seeding the retry jitter (see
/// [`RetryPolicy::salt`]): reproducible for a given cell, never in
/// lockstep across cells.
fn experiment_salt(exp: Experiment) -> u64 {
    RetryPolicy::salt(&format!("{exp}"))
}

/// Workload-generator settings for the lab's machine at a given layout —
/// the only experiment axis (besides the workload itself) that changes the
/// raw trace. Strategy and transfer latency do not.
fn workload_config(cfg: &RunConfig, layout: Layout) -> WorkloadConfig {
    WorkloadConfig {
        procs: cfg.procs,
        refs_per_proc: cfg.refs_per_proc,
        seed: cfg.seed,
        layout,
    }
}

/// Runs one experiment against an already-prepared (strategy applied,
/// validity established) trace. `apply` preserves trace validity (asserted
/// by `apply_preserves_trace_validity` below), so one validation of the raw
/// trace covers every strategy and latency cell derived from it.
fn run_on_prepared(
    cfg: &RunConfig,
    exp: Experiment,
    prepared: &Trace,
    prefetches_inserted: u64,
    observe: &ObserveSpec,
) -> Result<RunSummary, RunError> {
    let sim_cfg = SimConfig {
        geometry: cfg.geometry,
        max_events: watchdog_budget(cfg),
        wall_limit_ms: cfg.wall_limit_ms,
        hw_prefetch: cfg.hw_prefetch,
        protocol: cfg.protocol,
        ..SimConfig::paper(cfg.procs, exp.transfer_cycles)
    };
    if let Some(scfg) = cfg.sampling {
        let (report, sampled) =
            crate::sampling::run_sampled_on_prepared(&sim_cfg, prepared, &scfg)
                .map_err(RunError::Sim)?;
        return Ok(RunSummary {
            experiment: exp,
            report,
            prefetches_inserted,
            timeline: None,
            sampled: Some(sampled),
        });
    }
    let obs = observe.observability_for(exp)?;
    let (report, timeline) = simulate_observed_prevalidated(&sim_cfg, prepared, obs)?;
    Ok(RunSummary { experiment: exp, report, prefetches_inserted, timeline, sampled: None })
}

/// Runs one experiment against an already-validated raw trace.
fn run_on_raw(
    cfg: &RunConfig,
    exp: Experiment,
    raw: &Trace,
    observe: &ObserveSpec,
) -> Result<RunSummary, RunError> {
    let prepared = charlie_prefetch::apply(exp.strategy, raw, cfg.geometry);
    let prefetches_inserted = prepared.total_prefetches() as u64;
    run_on_prepared(cfg, exp, &prepared, prefetches_inserted, observe)
}

/// Runs one experiment under `cfg`, independent of any lab. This is the
/// unit of work both the serial and the parallel paths execute; it touches
/// no shared state, which is what makes [`Lab::run_batch`] trivially
/// deterministic.
fn run_experiment(
    cfg: &RunConfig,
    exp: Experiment,
    observe: &ObserveSpec,
) -> Result<RunSummary, RunError> {
    let raw = generate(exp.workload, &workload_config(cfg, exp.layout));
    raw.validate().map_err(|e| RunError::Sim(SimError::InvalidTrace(e)))?;
    run_on_raw(cfg, exp, &raw, observe)
}

/// Fault-injection hook: consulted with the experiment before each run; a
/// `Some(error)` fails the cell without simulating.
type Injector = dyn Fn(Experiment) -> Option<RunError> + Send + Sync;

/// Extracts a printable message from a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// One isolated cell execution: the injector (if any) runs first, then the
/// experiment, with panics from either caught and converted into
/// [`RunError::Panic`] so a single bad cell cannot take down its batch.
fn run_cell(
    cfg: &RunConfig,
    exp: Experiment,
    injector: Option<&Injector>,
    observe: &ObserveSpec,
) -> Result<RunSummary, RunError> {
    let attempt = catch_unwind(AssertUnwindSafe(|| {
        if let Some(inject) = injector {
            if let Some(error) = inject(exp) {
                return Err(error);
            }
        }
        run_experiment(cfg, exp, observe)
    }));
    match attempt {
        Ok(result) => result,
        Err(payload) => Err(RunError::Panic(panic_message(payload.as_ref()))),
    }
}

/// One panic-isolated cell execution independent of any [`Lab`] — the
/// entry point the serve daemon's worker pool uses. Exactly the unit of
/// work [`Lab::run_batch`] executes per cell (generate, validate, apply
/// strategy, simulate), so a served summary is bit-identical to a batch
/// one; a panicking cell comes back as [`RunError::Panic`] instead of
/// unwinding the worker.
pub fn execute_cell(cfg: &RunConfig, exp: Experiment) -> Result<RunSummary, RunError> {
    run_cell(cfg, exp, None, &ObserveSpec::default())
}

/// Generates and validates the raw (pre-strategy) trace for one
/// (workload, layout) pair, with the same panic isolation as [`run_cell`].
/// A batch calls this once per distinct pair and shares the result across
/// every strategy/latency cell derived from it.
fn prepare_raw(cfg: &RunConfig, exp: Experiment) -> Result<Arc<Trace>, RunError> {
    let attempt = catch_unwind(AssertUnwindSafe(|| {
        let raw = generate(exp.workload, &workload_config(cfg, exp.layout));
        raw.validate().map_err(|e| RunError::Sim(SimError::InvalidTrace(e)))?;
        Ok(Arc::new(raw))
    }));
    match attempt {
        Ok(result) => result,
        Err(payload) => Err(RunError::Panic(panic_message(payload.as_ref()))),
    }
}

/// Applies `strategy` to a batch-shared raw trace with the same panic
/// isolation as [`run_cell`], returning the prepared trace and its
/// inserted-prefetch count. One call serves every latency cell of a
/// (workload, layout, strategy) group — `apply` does not depend on the
/// transfer latency.
fn prepare_strategy(
    cfg: &RunConfig,
    strategy: Strategy,
    raw: &Trace,
) -> Result<(Trace, u64), RunError> {
    catch_unwind(AssertUnwindSafe(|| {
        let prepared = charlie_prefetch::apply(strategy, raw, cfg.geometry);
        let inserted = prepared.total_prefetches() as u64;
        Ok((prepared, inserted))
    }))
    .unwrap_or_else(|payload| Err(RunError::Panic(panic_message(payload.as_ref()))))
}

/// [`run_cell`] against a batch-shared prepared trace.
fn run_cell_prepared(
    cfg: &RunConfig,
    exp: Experiment,
    prepared: &Trace,
    prefetches_inserted: u64,
    injector: Option<&Injector>,
    observe: &ObserveSpec,
) -> Result<RunSummary, RunError> {
    let attempt = catch_unwind(AssertUnwindSafe(|| {
        if let Some(inject) = injector {
            if let Some(error) = inject(exp) {
                return Err(error);
            }
        }
        run_on_prepared(cfg, exp, prepared, prefetches_inserted, observe)
    }));
    match attempt {
        Ok(result) => result,
        Err(payload) => Err(RunError::Panic(panic_message(payload.as_ref()))),
    }
}

/// Memoizing experiment runner.
///
/// Traces are regenerated per run (generation is cheap and deterministic);
/// completed [`RunSummary`]s are cached, so the table/figure reproductions
/// can share the underlying runs.
pub struct Lab {
    cfg: RunConfig,
    runs: HashMap<Experiment, RunSummary>,
    meta: HashMap<Experiment, RunMeta>,
    stats: LabStats,
    injector: Option<Box<Injector>>,
    observe: ObserveSpec,
}

impl Lab {
    /// Creates an empty lab.
    pub fn new(cfg: RunConfig) -> Self {
        Lab {
            cfg,
            runs: HashMap::new(),
            meta: HashMap::new(),
            stats: LabStats::default(),
            injector: None,
            observe: ObserveSpec::default(),
        }
    }

    /// The lab's run configuration.
    pub fn config(&self) -> &RunConfig {
        &self.cfg
    }

    /// Attaches observability to every subsequent run: per-run sampled
    /// timelines ([`RunSummary::timeline`]) and/or per-run JSONL trace
    /// files. Memoized results are unaffected — set the spec before running.
    /// The default spec turns everything off again.
    pub fn set_observe(&mut self, observe: ObserveSpec) {
        self.observe = observe;
    }

    /// Installs a fault injector: before each non-memoized run the hook is
    /// consulted with the experiment, and a `Some(error)` fails that cell.
    /// Injected failures flow through exactly the same isolation, retry and
    /// reporting paths as organic ones — this is how the failure machinery
    /// itself is tested.
    pub fn set_fault_injector<F>(&mut self, inject: F)
    where
        F: Fn(Experiment) -> Option<RunError> + Send + Sync + 'static,
    {
        self.injector = Some(Box::new(inject));
    }

    /// Removes any installed fault injector.
    pub fn clear_fault_injector(&mut self) {
        self.injector = None;
    }

    /// Ensures `exp` is memoized, simulating it serially if needed.
    fn ensure(&mut self, exp: Experiment) -> Result<(), RunError> {
        if self.runs.contains_key(&exp) {
            self.stats.memo_hits += 1;
            return Ok(());
        }
        self.stats.memo_misses += 1;
        let started = Instant::now();
        let summary = run_cell(&self.cfg, exp, self.injector.as_deref(), &self.observe)?;
        self.meta.insert(
            exp,
            RunMeta { wall_nanos: started.elapsed().as_nanos(), worker: 0, via_batch: false },
        );
        self.runs.insert(exp, summary);
        Ok(())
    }

    /// Runs (or returns the cached result of) `exp`.
    ///
    /// # Panics
    ///
    /// Panics if the run fails — for generated traces that indicates a bug
    /// in the generators or the simulator, not user error. Use
    /// [`Lab::try_run`] to handle failures programmatically.
    pub fn run(&mut self, exp: Experiment) -> &RunSummary {
        if let Err(e) = self.ensure(exp) {
            panic!("simulating {exp}: {e}");
        }
        &self.runs[&exp]
    }

    /// Fallible [`Lab::run`]: failures come back as [`RunError`] instead of
    /// panicking. Failed runs are not memoized.
    pub fn try_run(&mut self, exp: Experiment) -> Result<&RunSummary, RunError> {
        self.ensure(exp)?;
        Ok(&self.runs[&exp])
    }

    /// Injects a checkpointed summary into the memo without simulating
    /// (resume path: cells journaled by an earlier, interrupted batch).
    pub fn restore(&mut self, summary: RunSummary) {
        self.stats.restored += 1;
        self.meta.insert(
            summary.experiment,
            RunMeta { wall_nanos: 0, worker: 0, via_batch: false },
        );
        self.runs.insert(summary.experiment, summary);
    }

    /// Runs every experiment in `exps` that is not already memoized,
    /// fanning the worklist out over `jobs` worker threads (`0` = one per
    /// available core), and merges the results into the memo.
    ///
    /// Results are bit-identical to running each experiment through
    /// [`Lab::run`]: every run regenerates its own trace from the lab seed
    /// and simulates it in isolation, so neither worker count nor
    /// completion order can influence any report.
    ///
    /// A batch never aborts: failed cells (panic, simulator error, watchdog
    /// trip) are isolated, re-run once serially to classify the failure, and
    /// reported in [`BatchReport::failures`] while every healthy cell
    /// completes normally.
    pub fn run_batch(&mut self, exps: &[Experiment], jobs: usize) -> BatchReport {
        self.run_batch_inner(exps, jobs, None)
    }

    /// [`Lab::run_batch`] with a checkpoint journal: each completed
    /// [`RunSummary`] is appended (and flushed) the moment it exists, so an
    /// interrupted batch can be resumed by restoring the journal into a
    /// fresh lab. Resumed and fresh campaigns produce byte-identical
    /// reports — the journal round-trip is exact.
    pub fn run_batch_checkpointed(
        &mut self,
        exps: &[Experiment],
        jobs: usize,
        journal: &mut crate::checkpoint::Journal,
    ) -> BatchReport {
        let mut sink = |summary: &RunSummary| journal.append(summary);
        self.run_batch_inner(exps, jobs, Some(&mut sink))
    }

    fn run_batch_inner(
        &mut self,
        exps: &[Experiment],
        jobs: usize,
        mut on_complete: Option<&mut dyn FnMut(&RunSummary)>,
    ) -> BatchReport {
        let started = Instant::now();
        self.stats.batches += 1;

        // Deduplicate while preserving order; skip memoized cells.
        let mut todo: Vec<Experiment> = Vec::new();
        let mut memo_hits = 0usize;
        for &exp in exps {
            if self.runs.contains_key(&exp) {
                memo_hits += 1;
            } else if !todo.contains(&exp) {
                todo.push(exp);
            }
        }
        self.stats.memo_hits += memo_hits as u64;
        self.stats.memo_misses += todo.len() as u64;

        // Group cells that can share a prepared (post-strategy) trace:
        // within one (workload, layout, strategy) group only the transfer
        // latency varies, and neither trace generation nor `apply` depends
        // on it. A batch therefore generates+validates each raw trace once
        // per (workload, layout) and applies each strategy once per group,
        // instead of redoing both for every cell. Each worker holds at most
        // one prepared trace at a time, so memory stays bounded by `jobs`.
        let mut group_of: HashMap<(Workload, Layout, Strategy), usize> = HashMap::new();
        let mut groups: Vec<Vec<(usize, Experiment)>> = Vec::new();
        for (i, &exp) in todo.iter().enumerate() {
            let g = *group_of.entry((exp.workload, exp.layout, exp.strategy)).or_insert_with(
                || {
                    groups.push(Vec::new());
                    groups.len() - 1
                },
            );
            groups[g].push((i, exp));
        }

        let jobs = Self::resolve_jobs(jobs).min(groups.len().max(1));
        let cfg = &self.cfg;
        let injector = self.injector.as_deref();
        let observe = &self.observe;

        // The raw-trace cache is read-only by the time workers see it; a
        // failed generation fails exactly the cells that would have used
        // that trace.
        let mut shared: HashMap<(Workload, Layout), Result<Arc<Trace>, RunError>> =
            HashMap::new();
        for &exp in &todo {
            shared.entry((exp.workload, exp.layout)).or_insert_with(|| prepare_raw(cfg, exp));
        }
        let shared = &shared;

        // `parallel::map_observed` returns results in submission order, so
        // the merge below is deterministic regardless of worker scheduling;
        // the observer journals successes in completion order from the
        // caller's thread (order inside the journal does not matter — it is
        // a set of cells, replayed into a memo on resume).
        let group_results = crate::parallel::map_observed(
            &groups,
            jobs,
            |worker, group| {
                let (_, first) = group[0];
                let apply_start = Instant::now();
                let prepared = match &shared[&(first.workload, first.layout)] {
                    Ok(raw) => prepare_strategy(cfg, first.strategy, raw),
                    Err(error) => Err(error.clone()),
                };
                let apply_nanos = apply_start.elapsed().as_nanos();
                group
                    .iter()
                    .enumerate()
                    .map(|(k, &(i, exp))| {
                        let t0 = Instant::now();
                        let outcome = match &prepared {
                            Ok((trace, inserted)) => {
                                run_cell_prepared(cfg, exp, trace, *inserted, injector, observe)
                            }
                            Err(error) => Err(error.clone()),
                        };
                        // The one-off apply cost is charged to the group's
                        // first cell.
                        let nanos =
                            t0.elapsed().as_nanos() + if k == 0 { apply_nanos } else { 0 };
                        (i, outcome, nanos, worker)
                    })
                    .collect::<Vec<_>>()
            },
            |_, cells| {
                if let Some(cb) = on_complete.as_deref_mut() {
                    for cell in cells {
                        if let Ok(summary) = &cell.1 {
                            cb(summary);
                        }
                    }
                }
            },
        );

        // Flatten back to `todo` order (groups interleave cells).
        let mut results: Vec<Option<(Result<RunSummary, RunError>, u128, usize)>> =
            todo.iter().map(|_| None).collect();
        for cells in group_results {
            for (i, outcome, nanos, worker) in cells {
                results[i] = Some((outcome, nanos, worker));
            }
        }

        let mut sim_nanos = 0u128;
        let mut executed = 0usize;
        let mut failures: Vec<RunFailure> = Vec::new();
        for (i, &exp) in todo.iter().enumerate() {
            let (outcome, nanos, worker) =
                results[i].take().expect("every todo cell belongs to exactly one group");
            sim_nanos += nanos;
            match outcome {
                Ok(summary) => {
                    executed += 1;
                    self.meta
                        .insert(exp, RunMeta { wall_nanos: nanos, worker, via_batch: jobs > 1 });
                    self.runs.insert(exp, summary);
                }
                Err(error) => {
                    // Bounded diagnosis: serial re-runs distinguish a
                    // deterministic failure from harness nondeterminism and
                    // rescue transient ones. Failures classified as
                    // transient I/O get a capped exponential-backoff ladder
                    // (the filesystem gets time to recover); everything
                    // else gets exactly one immediate re-run.
                    let transient = error.is_transient_io();
                    let policy = if transient {
                        RetryPolicy::TRANSIENT_IO
                    } else {
                        RetryPolicy::NONE
                    };
                    let salt = experiment_salt(exp);
                    let mut recovered = None;
                    let mut last = error.clone();
                    for attempt in 0..policy.attempts {
                        if transient {
                            std::thread::sleep(policy.delay(attempt, salt));
                        }
                        match run_cell(&self.cfg, exp, self.injector.as_deref(), &self.observe)
                        {
                            Ok(summary) => {
                                recovered = Some(summary);
                                break;
                            }
                            Err(second) => {
                                let diverged = second != last;
                                last = second;
                                // A deterministic failure that re-fails
                                // *differently* is already diagnosed as
                                // nondeterminism; further attempts add
                                // nothing.
                                if diverged && !transient {
                                    break;
                                }
                            }
                        }
                    }
                    match recovered {
                        Some(summary) => {
                            executed += 1;
                            if let Some(cb) = on_complete.as_deref_mut() {
                                cb(&summary);
                            }
                            self.meta.insert(
                                exp,
                                RunMeta { wall_nanos: nanos, worker, via_batch: jobs > 1 },
                            );
                            self.runs.insert(exp, summary);
                        }
                        None => {
                            let retry = if last == error {
                                RetryOutcome::Reproduced
                            } else {
                                RetryOutcome::DivergedError(last)
                            };
                            failures.push(RunFailure { experiment: exp, error, retry });
                        }
                    }
                }
            }
        }
        self.stats.batch_executed += executed as u64;

        BatchReport {
            requested: exps.len(),
            memo_hits,
            executed,
            jobs,
            wall_nanos: started.elapsed().as_nanos(),
            sim_nanos,
            failures,
        }
    }

    /// Pre-computes the paper's entire experiment grid (every cell any
    /// exhibit of §4 reads) on `jobs` workers, so subsequent table/figure
    /// calls are pure memo lookups.
    pub fn prefetch_all(&mut self, jobs: usize) -> BatchReport {
        let grid = crate::experiments::full_grid();
        self.run_batch(&grid, jobs)
    }

    /// [`Lab::prefetch_all`] journaling each completed cell to `journal`
    /// (see [`Lab::run_batch_checkpointed`]).
    pub fn prefetch_all_checkpointed(
        &mut self,
        jobs: usize,
        journal: &mut crate::checkpoint::Journal,
    ) -> BatchReport {
        let grid = crate::experiments::full_grid();
        self.run_batch_checkpointed(&grid, jobs, journal)
    }

    /// Normalizes a `--jobs`-style request: `0` means one worker per
    /// available core; anything else is clamped to [`MAX_JOBS`].
    pub fn resolve_jobs(jobs: usize) -> usize {
        if jobs == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            jobs.min(MAX_JOBS)
        }
    }

    /// Execution time of `exp` relative to its NP baseline (the paper's
    /// Figure 2 / Table 5 metric; < 1 means prefetching sped the program up).
    pub fn relative_time(&mut self, exp: Experiment) -> f64 {
        let base = self.run(exp.baseline()).report.cycles as f64;
        let this = self.run(exp).report.cycles as f64;
        this / base
    }

    /// Number of distinct experiments run so far.
    pub fn runs_completed(&self) -> usize {
        self.runs.len()
    }

    /// Execution metadata for a completed experiment (`None` if it has not
    /// run).
    pub fn meta(&self, exp: Experiment) -> Option<RunMeta> {
        self.meta.get(&exp).copied()
    }

    /// Memo and batch accounting counters.
    pub fn stats(&self) -> LabStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_lab() -> Lab {
        Lab::new(RunConfig { procs: 4, refs_per_proc: 2_000, seed: 7, ..RunConfig::default() })
    }

    #[test]
    fn run_is_memoized() {
        let mut lab = tiny_lab();
        let exp = Experiment::paper(Workload::Water, Strategy::NoPrefetch, 8);
        let first = lab.run(exp).clone();
        let second = lab.run(exp).clone();
        assert_eq!(first, second);
        assert_eq!(lab.runs_completed(), 1);
        assert_eq!(lab.stats(), LabStats { memo_hits: 1, memo_misses: 1, ..LabStats::default() });
    }

    #[test]
    fn batch_matches_serial_and_fills_memo() {
        let exps = [
            Experiment::paper(Workload::Water, Strategy::NoPrefetch, 8),
            Experiment::paper(Workload::Water, Strategy::Pref, 8),
            Experiment::paper(Workload::Mp3d, Strategy::Pws, 16),
        ];
        let mut serial = tiny_lab();
        let mut parallel = tiny_lab();
        let report = parallel.run_batch(&exps, 3);
        assert_eq!(report.executed, 3);
        assert_eq!(report.memo_hits, 0);
        for exp in exps {
            assert_eq!(serial.run(exp), &parallel.runs[&exp]);
            let meta = parallel.meta(exp).expect("batch records metadata");
            assert!(meta.via_batch);
            assert!(meta.worker < 3);
        }
        // The batch populated the memo: re-running simulates nothing.
        let again = parallel.run_batch(&exps, 3);
        assert_eq!(again.executed, 0);
        assert_eq!(again.memo_hits, 3);
    }

    #[test]
    fn sampling_records_timeline_without_perturbing_report() {
        let exp = Experiment::paper(Workload::Mp3d, Strategy::Pref, 16);
        let mut plain = tiny_lab();
        let baseline = plain.run(exp).clone();
        assert!(baseline.timeline.is_none(), "observation is off by default");

        let mut observed = tiny_lab();
        observed.set_observe(ObserveSpec {
            sample_interval: Some(5_000),
            ..ObserveSpec::default()
        });
        let sampled = observed.run(exp).clone();
        assert_eq!(sampled.report, baseline.report, "sampling must not change results");
        let timeline = sampled.timeline.expect("sampled run records a timeline");
        assert!(!timeline.windows.is_empty());
        assert_eq!(timeline.total_bus_busy(), sampled.report.bus.busy_cycles);
    }

    #[test]
    fn tracing_writes_one_jsonl_file_per_run() {
        let dir = std::env::temp_dir()
            .join(format!("charlie-lab-trace-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut lab = tiny_lab();
        lab.set_observe(ObserveSpec {
            trace_dir: Some(dir.clone()),
            ..ObserveSpec::default()
        });
        let exp = Experiment::paper(Workload::Water, Strategy::Pref, 8);
        lab.run(exp);
        let path = dir.join("Water-PREF-8cy-Interleaved.jsonl");
        let body = std::fs::read_to_string(&path).expect("trace file written");
        assert!(!body.is_empty());
        for line in body.lines().take(50) {
            assert!(line.starts_with("{\"t\":"), "JSONL schema: {line}");
            assert!(line.ends_with('}'), "JSONL schema: {line}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unwritable_trace_dir_is_a_run_error() {
        let mut lab = tiny_lab();
        lab.set_observe(ObserveSpec {
            trace_dir: Some(PathBuf::from("/nonexistent/charlie-trace-dir")),
            ..ObserveSpec::default()
        });
        let exp = Experiment::paper(Workload::Water, Strategy::NoPrefetch, 8);
        match lab.try_run(exp) {
            Err(RunError::Trace(msg)) => assert!(msg.contains("trace file"), "{msg}"),
            other => panic!("expected trace error, got {other:?}"),
        }
    }

    #[test]
    fn batch_deduplicates_requests() {
        let exp = Experiment::paper(Workload::Topopt, Strategy::NoPrefetch, 8);
        let mut lab = tiny_lab();
        let report = lab.run_batch(&[exp, exp, exp], 2);
        assert_eq!(report.requested, 3);
        assert_eq!(report.executed, 1);
        assert_eq!(lab.runs_completed(), 1);
    }

    /// Load-bearing for the shared-trace batch path: a batch validates each
    /// raw trace once and simulates the *prepared* traces prevalidated, so
    /// `charlie_prefetch::apply` must never turn a valid trace invalid —
    /// for any workload, layout or strategy.
    #[test]
    fn apply_preserves_trace_validity() {
        let cfg = RunConfig { procs: 4, refs_per_proc: 1_500, seed: 11, ..RunConfig::default() };
        for workload in Workload::ALL {
            for layout in [Layout::Interleaved, Layout::Padded] {
                let raw = generate(workload, &workload_config(&cfg, layout));
                raw.validate().expect("generators emit valid traces");
                for strategy in Strategy::ALL {
                    let prepared = charlie_prefetch::apply(strategy, &raw, cfg.geometry);
                    prepared.validate().unwrap_or_else(|e| {
                        panic!("apply({strategy}) broke {workload}/{layout:?}: {e}")
                    });
                }
            }
        }
    }

    #[test]
    fn single_job_batch_stays_on_the_serial_path() {
        let exp = Experiment::paper(Workload::Water, Strategy::NoPrefetch, 8);
        let mut lab = tiny_lab();
        let report = lab.run_batch(&[exp], 1);
        assert_eq!(report.jobs, 1);
        assert!(!lab.meta(exp).unwrap().via_batch);
    }

    #[test]
    fn resolve_jobs_normalizes() {
        assert!(Lab::resolve_jobs(0) >= 1);
        assert_eq!(Lab::resolve_jobs(5), 5);
        assert_eq!(Lab::resolve_jobs(usize::MAX), MAX_JOBS);
    }

    #[test]
    fn prefetch_all_covers_every_exhibit_cell() {
        let mut lab =
            Lab::new(RunConfig { procs: 2, refs_per_proc: 400, seed: 7, ..RunConfig::default() });
        let report = lab.prefetch_all(0);
        assert_eq!(report.executed, lab.runs_completed());
        let before = lab.runs_completed();
        // Regenerating every exhibit must not trigger a single new run.
        let _ = crate::experiments::figure1(&mut lab);
        let _ = crate::experiments::table2(&mut lab);
        let _ = crate::experiments::figure2(&mut lab);
        let _ = crate::experiments::figure3(&mut lab);
        let _ = crate::experiments::table3(&mut lab);
        let _ = crate::experiments::table4(&mut lab);
        let _ = crate::experiments::table5(&mut lab);
        let _ = crate::experiments::processor_utilization(&mut lab);
        assert_eq!(lab.runs_completed(), before, "an exhibit escaped full_grid()");
    }

    #[test]
    fn np_inserts_no_prefetches() {
        let mut lab = tiny_lab();
        let s = lab.run(Experiment::paper(Workload::Topopt, Strategy::NoPrefetch, 8));
        assert_eq!(s.prefetches_inserted, 0);
        assert_eq!(s.report.prefetch.executed, 0);
    }

    #[test]
    fn pref_inserts_prefetches_and_they_execute() {
        let mut lab = tiny_lab();
        let s = lab.run(Experiment::paper(Workload::Mp3d, Strategy::Pref, 8));
        assert!(s.prefetches_inserted > 0);
        assert_eq!(s.report.prefetch.executed, s.prefetches_inserted);
    }

    #[test]
    fn relative_time_of_baseline_is_one() {
        let mut lab = tiny_lab();
        let exp = Experiment::paper(Workload::Water, Strategy::NoPrefetch, 8);
        assert!((lab.relative_time(exp) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn injected_failure_is_isolated_and_diagnosed() {
        let bad = Experiment::paper(Workload::Mp3d, Strategy::Pref, 8);
        let exps = [
            Experiment::paper(Workload::Water, Strategy::NoPrefetch, 8),
            bad,
            Experiment::paper(Workload::Topopt, Strategy::NoPrefetch, 8),
        ];
        let mut lab = tiny_lab();
        lab.set_fault_injector(move |exp| {
            (exp == bad).then(|| RunError::Panic("injected".into()))
        });
        let report = lab.run_batch(&exps, 2);
        assert_eq!(report.executed, 2, "healthy cells complete");
        assert_eq!(report.failures.len(), 1);
        assert!(!report.is_complete());
        let failure = &report.failures[0];
        assert_eq!(failure.experiment, bad);
        assert_eq!(failure.error, RunError::Panic("injected".into()));
        assert_eq!(failure.retry, RetryOutcome::Reproduced);
        assert!(!lab.runs.contains_key(&bad), "failed cells are not memoized");
        let summary = report.failure_summary().expect("incomplete batch summarizes");
        assert!(summary.contains("1 of 3 attempted cells failed"), "{summary}");
        assert!(summary.contains("deterministic (reproduced on retry)"), "{summary}");
    }

    #[test]
    fn real_panic_in_worker_is_caught() {
        let exp = Experiment::paper(Workload::Water, Strategy::NoPrefetch, 8);
        let mut lab = tiny_lab();
        lab.set_fault_injector(|_| -> Option<RunError> { panic!("worker blew up") });
        // Injected panics print to stderr via the default hook; silence it
        // for the duration so test output stays readable.
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let report = lab.run_batch(&[exp], 1);
        let err = lab.try_run(exp).unwrap_err();
        std::panic::set_hook(hook);
        assert_eq!(report.failures.len(), 1);
        assert_eq!(report.failures[0].error, RunError::Panic("worker blew up".into()));
        assert_eq!(err, RunError::Panic("worker blew up".into()));
    }

    #[test]
    fn transient_failure_recovers_on_retry() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        let exp = Experiment::paper(Workload::Water, Strategy::NoPrefetch, 8);
        let armed = Arc::new(AtomicBool::new(true));
        let trigger = Arc::clone(&armed);
        let mut lab = tiny_lab();
        lab.set_fault_injector(move |_| {
            trigger
                .swap(false, Ordering::SeqCst)
                .then(|| RunError::Trace("flaky read".into()))
        });
        let report = lab.run_batch(&[exp], 1);
        assert!(report.is_complete(), "transient failure rescued by retry");
        assert_eq!(report.executed, 1);
        assert!(lab.runs.contains_key(&exp), "recovered cell is memoized");
    }

    /// The transient-I/O ladder survives *consecutive* faults: two flaky
    /// reads in a row still recover on the third attempt, where the old
    /// single blind retry would have given up after one.
    #[test]
    fn transient_io_ladder_survives_consecutive_faults() {
        use std::sync::atomic::{AtomicU32, Ordering};
        use std::sync::Arc;
        let exp = Experiment::paper(Workload::Water, Strategy::NoPrefetch, 8);
        let calls = Arc::new(AtomicU32::new(0));
        let seen = Arc::clone(&calls);
        let mut lab = tiny_lab();
        lab.set_fault_injector(move |_| {
            (seen.fetch_add(1, Ordering::SeqCst) < 2)
                .then(|| RunError::Trace("flaky read".into()))
        });
        let report = lab.run_batch(&[exp], 1);
        assert!(report.is_complete(), "two consecutive transient faults rescued");
        assert_eq!(calls.load(Ordering::SeqCst), 3, "batch run + two ladder attempts");
        assert!(lab.runs.contains_key(&exp));
    }

    /// Deterministic failures (anything but `RunError::Trace`) still get
    /// exactly one diagnostic re-run — the ladder is reserved for I/O.
    #[test]
    fn deterministic_failure_gets_single_rerun() {
        use std::sync::atomic::{AtomicU32, Ordering};
        use std::sync::Arc;
        let exp = Experiment::paper(Workload::Water, Strategy::NoPrefetch, 8);
        let calls = Arc::new(AtomicU32::new(0));
        let seen = Arc::clone(&calls);
        let mut lab = tiny_lab();
        lab.set_fault_injector(move |_| {
            seen.fetch_add(1, Ordering::SeqCst);
            Some(RunError::Panic("always".into()))
        });
        let report = lab.run_batch(&[exp], 1);
        assert_eq!(report.failures.len(), 1);
        assert_eq!(report.failures[0].retry, RetryOutcome::Reproduced);
        assert_eq!(calls.load(Ordering::SeqCst), 2, "batch run + one diagnostic re-run only");
    }

    /// The batch engine's backoff schedule is the shared
    /// [`RetryPolicy::TRANSIENT_IO`] ladder, seeded per cell: deterministic
    /// for a given experiment, distinct across experiments.
    #[test]
    fn retry_delay_is_capped_and_jittered() {
        let policy = RetryPolicy::TRANSIENT_IO;
        let salt = experiment_salt(Experiment::paper(Workload::Mp3d, Strategy::Pref, 8));
        for attempt in 0..10u32 {
            let nominal = (policy.base_ms << attempt.min(16)).min(policy.cap_ms);
            let ms = policy.delay(attempt, salt).as_millis() as u64;
            assert!(
                ms >= nominal * 3 / 4 && ms < nominal + nominal / 4 + 1,
                "attempt {attempt}: {ms}ms outside ±25% of {nominal}ms"
            );
            assert_eq!(policy.delay(attempt, salt), policy.delay(attempt, salt));
        }
        let other = experiment_salt(Experiment::paper(Workload::Water, Strategy::NoPrefetch, 16));
        assert_ne!(salt, other, "distinct cells seed distinct jitter streams");
    }

    /// An ample wall-clock limit flows through to the simulator without
    /// perturbing results; a 1 ms limit against a debug-build run (invariant
    /// checker on every transaction) trips [`SimError::WallClockExceeded`].
    #[test]
    fn wall_limit_threads_through_lab() {
        let exp = Experiment::paper(Workload::Water, Strategy::NoPrefetch, 8);
        let base = tiny_lab().run(exp).clone();
        let cfg = RunConfig { wall_limit_ms: 600_000, ..*tiny_lab().config() };
        let ample = Lab::new(cfg).run(exp).clone();
        assert_eq!(base, ample, "an unhit wall limit is invisible in the report");
        let cfg = RunConfig { wall_limit_ms: 1, ..*tiny_lab().config() };
        match Lab::new(cfg).try_run(exp) {
            Err(RunError::Sim(SimError::WallClockExceeded { limit_ms, .. })) => {
                assert_eq!(limit_ms, 1);
            }
            other => panic!("expected WallClockExceeded, got {other:?}"),
        }
    }

    #[test]
    fn restore_skips_simulation_on_later_batches() {
        let exp = Experiment::paper(Workload::Water, Strategy::NoPrefetch, 8);
        let mut fresh = tiny_lab();
        let summary = fresh.run(exp).clone();
        let mut resumed = tiny_lab();
        resumed.restore(summary.clone());
        assert_eq!(resumed.stats().restored, 1);
        let report = resumed.run_batch(&[exp], 2);
        assert_eq!(report.memo_hits, 1);
        assert_eq!(report.executed, 0);
        assert_eq!(resumed.run(exp), &summary);
    }

    #[test]
    fn clear_fault_injector_restores_health() {
        let exp = Experiment::paper(Workload::Water, Strategy::NoPrefetch, 8);
        let mut lab = tiny_lab();
        lab.set_fault_injector(|_| Some(RunError::Trace("always".into())));
        assert!(lab.try_run(exp).is_err());
        lab.clear_fault_injector();
        assert!(lab.try_run(exp).is_ok());
    }

    #[test]
    fn watchdog_budget_scales_with_trace_size() {
        let small = RunConfig { procs: 2, refs_per_proc: 100, ..RunConfig::default() };
        let large = RunConfig { procs: 16, refs_per_proc: 1_000_000, ..RunConfig::default() };
        assert!(watchdog_budget(&small) >= WATCHDOG_EVENT_FLOOR);
        assert!(watchdog_budget(&large) > watchdog_budget(&small));
        // The budget must dwarf the real event count: a tiny run retires
        // every reference well inside it (checked end-to-end in
        // crates/sim watchdog tests and tests/fault_tolerance.rs).
        assert_eq!(
            watchdog_budget(&small),
            WATCHDOG_EVENT_FLOOR + WATCHDOG_EVENTS_PER_ACCESS * 200
        );
    }

    #[test]
    fn experiment_display() {
        let e = Experiment::paper(Workload::Mp3d, Strategy::Pws, 16);
        assert_eq!(e.to_string(), "Mp3d/PWS @16cy");
        assert_eq!(e.restructured().to_string(), "Mp3d/PWS @16cy (restructured)");
    }

    #[test]
    fn baseline_strips_strategy_only() {
        let e = Experiment::paper(Workload::Mp3d, Strategy::Lpd, 16).restructured();
        let b = e.baseline();
        assert_eq!(b.strategy, Strategy::NoPrefetch);
        assert_eq!(b.workload, e.workload);
        assert_eq!(b.layout, Layout::Padded);
    }
}
