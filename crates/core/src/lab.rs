//! The experiment runner: one [`Experiment`] = workload × strategy × memory
//! architecture × layout; a [`Lab`] memoizes runs so the table/figure
//! reproductions can share them.

use charlie_cache::CacheGeometry;
use charlie_prefetch::Strategy;
use charlie_sim::{simulate, SimConfig, SimReport};
use charlie_workloads::{generate, Layout, Workload, WorkloadConfig};
use std::collections::HashMap;
use std::fmt;

/// One cell of the paper's evaluation space.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct Experiment {
    /// Application.
    pub workload: Workload,
    /// Prefetching discipline.
    pub strategy: Strategy,
    /// Contended data-transfer latency (4–32 in the paper).
    pub transfer_cycles: u64,
    /// Original or restructured shared-data layout.
    pub layout: Layout,
}

impl Experiment {
    /// An experiment on the paper's default (interleaved) layout.
    pub fn paper(workload: Workload, strategy: Strategy, transfer_cycles: u64) -> Self {
        Experiment { workload, strategy, transfer_cycles, layout: Layout::Interleaved }
    }

    /// The same experiment on the restructured layout (§4.4).
    pub fn restructured(self) -> Self {
        Experiment { layout: Layout::Padded, ..self }
    }

    /// The NP baseline this experiment's execution time is reported against.
    pub fn baseline(self) -> Self {
        Experiment { strategy: Strategy::NoPrefetch, ..self }
    }
}

impl fmt::Display for Experiment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} @{}cy{}",
            self.workload,
            self.strategy,
            self.transfer_cycles,
            if self.layout == Layout::Padded { " (restructured)" } else { "" }
        )
    }
}

/// Machine- and trace-size knobs shared by every experiment in a [`Lab`].
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct RunConfig {
    /// Processors (the paper's machines; we default to 8).
    pub procs: usize,
    /// Demand references per processor. Defaults to the `CHARLIE_REFS`
    /// environment variable or 160 000 (the paper traced ~2 M; rates are
    /// stable well below that).
    pub refs_per_proc: usize,
    /// Workload generator seed.
    pub seed: u64,
    /// Per-processor cache geometry (the paper's experiments use
    /// 32 KB direct-mapped with 32-byte blocks; §3.3 discusses other
    /// configurations, reproduced by the `config_sweep` binary).
    pub geometry: CacheGeometry,
}

impl Default for RunConfig {
    fn default() -> Self {
        let refs = std::env::var("CHARLIE_REFS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(160_000);
        RunConfig {
            procs: 8,
            refs_per_proc: refs,
            seed: 0xC0FFEE,
            geometry: CacheGeometry::paper_default(),
        }
    }
}

/// Result of one experiment run.
#[derive(Clone, PartialEq, Debug)]
pub struct RunSummary {
    /// The experiment that produced this.
    pub experiment: Experiment,
    /// Full simulator output.
    pub report: SimReport,
    /// Prefetch events the off-line pass inserted (the paper's prefetch
    /// overhead measure).
    pub prefetches_inserted: u64,
}

/// Memoizing experiment runner.
///
/// Traces are regenerated per run (generation is cheap and deterministic);
/// completed [`RunSummary`]s are cached, so the table/figure reproductions
/// can share the underlying runs.
pub struct Lab {
    cfg: RunConfig,
    runs: HashMap<Experiment, RunSummary>,
}

impl Lab {
    /// Creates an empty lab.
    pub fn new(cfg: RunConfig) -> Self {
        Lab { cfg, runs: HashMap::new() }
    }

    /// The lab's run configuration.
    pub fn config(&self) -> &RunConfig {
        &self.cfg
    }

    /// Runs (or returns the cached result of) `exp`.
    ///
    /// # Panics
    ///
    /// Panics if the simulator rejects the generated trace — that indicates
    /// a bug in the generators, not user error.
    pub fn run(&mut self, exp: Experiment) -> &RunSummary {
        if !self.runs.contains_key(&exp) {
            let summary = self.run_uncached(exp);
            self.runs.insert(exp, summary);
        }
        &self.runs[&exp]
    }

    fn run_uncached(&self, exp: Experiment) -> RunSummary {
        let wcfg = WorkloadConfig {
            procs: self.cfg.procs,
            refs_per_proc: self.cfg.refs_per_proc,
            seed: self.cfg.seed,
            layout: exp.layout,
        };
        let raw = generate(exp.workload, &wcfg);
        let prepared = charlie_prefetch::apply(exp.strategy, &raw, self.cfg.geometry);
        let prefetches_inserted = prepared.total_prefetches() as u64;
        let sim_cfg = SimConfig {
            geometry: self.cfg.geometry,
            ..SimConfig::paper(self.cfg.procs, exp.transfer_cycles)
        };
        let report = simulate(&sim_cfg, &prepared)
            .unwrap_or_else(|e| panic!("simulating {exp}: {e}"));
        RunSummary { experiment: exp, report, prefetches_inserted }
    }

    /// Execution time of `exp` relative to its NP baseline (the paper's
    /// Figure 2 / Table 5 metric; < 1 means prefetching sped the program up).
    pub fn relative_time(&mut self, exp: Experiment) -> f64 {
        let base = self.run(exp.baseline()).report.cycles as f64;
        let this = self.run(exp).report.cycles as f64;
        this / base
    }

    /// Number of distinct experiments run so far.
    pub fn runs_completed(&self) -> usize {
        self.runs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_lab() -> Lab {
        Lab::new(RunConfig { procs: 4, refs_per_proc: 2_000, seed: 7, ..RunConfig::default() })
    }

    #[test]
    fn run_is_memoized() {
        let mut lab = tiny_lab();
        let exp = Experiment::paper(Workload::Water, Strategy::NoPrefetch, 8);
        let first = lab.run(exp).clone();
        let second = lab.run(exp).clone();
        assert_eq!(first, second);
        assert_eq!(lab.runs_completed(), 1);
    }

    #[test]
    fn np_inserts_no_prefetches() {
        let mut lab = tiny_lab();
        let s = lab.run(Experiment::paper(Workload::Topopt, Strategy::NoPrefetch, 8));
        assert_eq!(s.prefetches_inserted, 0);
        assert_eq!(s.report.prefetch.executed, 0);
    }

    #[test]
    fn pref_inserts_prefetches_and_they_execute() {
        let mut lab = tiny_lab();
        let s = lab.run(Experiment::paper(Workload::Mp3d, Strategy::Pref, 8));
        assert!(s.prefetches_inserted > 0);
        assert_eq!(s.report.prefetch.executed, s.prefetches_inserted);
    }

    #[test]
    fn relative_time_of_baseline_is_one() {
        let mut lab = tiny_lab();
        let exp = Experiment::paper(Workload::Water, Strategy::NoPrefetch, 8);
        assert!((lab.relative_time(exp) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn experiment_display() {
        let e = Experiment::paper(Workload::Mp3d, Strategy::Pws, 16);
        assert_eq!(e.to_string(), "Mp3d/PWS @16cy");
        assert_eq!(e.restructured().to_string(), "Mp3d/PWS @16cy (restructured)");
    }

    #[test]
    fn baseline_strips_strategy_only() {
        let e = Experiment::paper(Workload::Mp3d, Strategy::Lpd, 16).restructured();
        let b = e.baseline();
        assert_eq!(b.strategy, Strategy::NoPrefetch);
        assert_eq!(b.workload, e.workload);
        assert_eq!(b.layout, Layout::Padded);
    }
}
