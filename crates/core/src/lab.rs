//! The experiment runner: one [`Experiment`] = workload × strategy × memory
//! architecture × layout; a [`Lab`] memoizes runs so the table/figure
//! reproductions can share them.
//!
//! Experiments are independent, seeded and deterministic, so a batch of
//! them is embarrassingly parallel: [`Lab::run_batch`] fans a worklist out
//! over a [`std::thread`] pool and merges the results into the same memo
//! the serial [`Lab::run`] path uses — callers cannot observe which path
//! filled the cache, and `tests/parallel_equivalence.rs` proves the reports
//! are bit-identical either way.

use charlie_cache::CacheGeometry;
use charlie_prefetch::Strategy;
use charlie_sim::{simulate, SimConfig, SimReport};
use charlie_workloads::{generate, Layout, Workload, WorkloadConfig};
use std::collections::HashMap;
use std::fmt;
use std::time::Instant;

/// One cell of the paper's evaluation space.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct Experiment {
    /// Application.
    pub workload: Workload,
    /// Prefetching discipline.
    pub strategy: Strategy,
    /// Contended data-transfer latency (4–32 in the paper).
    pub transfer_cycles: u64,
    /// Original or restructured shared-data layout.
    pub layout: Layout,
}

impl Experiment {
    /// An experiment on the paper's default (interleaved) layout.
    pub fn paper(workload: Workload, strategy: Strategy, transfer_cycles: u64) -> Self {
        Experiment { workload, strategy, transfer_cycles, layout: Layout::Interleaved }
    }

    /// The same experiment on the restructured layout (§4.4).
    pub fn restructured(self) -> Self {
        Experiment { layout: Layout::Padded, ..self }
    }

    /// The NP baseline this experiment's execution time is reported against.
    pub fn baseline(self) -> Self {
        Experiment { strategy: Strategy::NoPrefetch, ..self }
    }
}

impl fmt::Display for Experiment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} @{}cy{}",
            self.workload,
            self.strategy,
            self.transfer_cycles,
            if self.layout == Layout::Padded { " (restructured)" } else { "" }
        )
    }
}

/// Machine- and trace-size knobs shared by every experiment in a [`Lab`].
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct RunConfig {
    /// Processors (the paper's machines; we default to 8).
    pub procs: usize,
    /// Demand references per processor. Defaults to the `CHARLIE_REFS`
    /// environment variable or 160 000 (the paper traced ~2 M; rates are
    /// stable well below that).
    pub refs_per_proc: usize,
    /// Workload generator seed.
    pub seed: u64,
    /// Per-processor cache geometry (the paper's experiments use
    /// 32 KB direct-mapped with 32-byte blocks; §3.3 discusses other
    /// configurations, reproduced by the `config_sweep` binary).
    pub geometry: CacheGeometry,
}

impl Default for RunConfig {
    fn default() -> Self {
        let refs = std::env::var("CHARLIE_REFS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(160_000);
        RunConfig {
            procs: 8,
            refs_per_proc: refs,
            seed: 0xC0FFEE,
            geometry: CacheGeometry::paper_default(),
        }
    }
}

/// Result of one experiment run.
#[derive(Clone, PartialEq, Debug)]
pub struct RunSummary {
    /// The experiment that produced this.
    pub experiment: Experiment,
    /// Full simulator output.
    pub report: SimReport,
    /// Prefetch events the off-line pass inserted (the paper's prefetch
    /// overhead measure).
    pub prefetches_inserted: u64,
}

/// Execution metadata for one completed run.
///
/// Deliberately kept *outside* [`RunSummary`] so serial and parallel
/// executions of the same experiment stay bit-comparable: wall-clock and
/// worker assignment vary run to run, the simulated report must not.
#[derive(Copy, Clone, Debug)]
pub struct RunMeta {
    /// Wall-clock nanoseconds the simulation took.
    pub wall_nanos: u128,
    /// Index of the worker that ran it (0 on the serial path).
    pub worker: usize,
    /// Whether the run was executed through [`Lab::run_batch`].
    pub via_batch: bool,
}

/// Lab-wide memo and batch accounting.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct LabStats {
    /// Lookups answered from the memo without simulating.
    pub memo_hits: u64,
    /// Lookups that had to simulate.
    pub memo_misses: u64,
    /// `run_batch` invocations.
    pub batches: u64,
    /// Experiments actually simulated by batch workers (excludes memo hits
    /// inside batches).
    pub batch_executed: u64,
}

/// What one [`Lab::run_batch`] call did.
#[derive(Copy, Clone, Debug)]
pub struct BatchReport {
    /// Experiments requested (before deduplication).
    pub requested: usize,
    /// Requests already present in the memo.
    pub memo_hits: usize,
    /// Distinct experiments simulated by this batch.
    pub executed: usize,
    /// Worker threads used.
    pub jobs: usize,
    /// Wall-clock nanoseconds for the whole batch.
    pub wall_nanos: u128,
    /// Sum of per-run wall-clocks (≈ serial time; `sim_nanos / wall_nanos`
    /// estimates the achieved speedup).
    pub sim_nanos: u128,
}

/// Upper bound on worker threads (guards against absurd `--jobs` values;
/// batches are also capped at one worker per pending experiment).
pub const MAX_JOBS: usize = 1024;

/// Runs one experiment under `cfg`, independent of any lab. This is the
/// unit of work both the serial and the parallel paths execute; it touches
/// no shared state, which is what makes [`Lab::run_batch`] trivially
/// deterministic.
fn run_experiment(cfg: &RunConfig, exp: Experiment) -> RunSummary {
    let wcfg = WorkloadConfig {
        procs: cfg.procs,
        refs_per_proc: cfg.refs_per_proc,
        seed: cfg.seed,
        layout: exp.layout,
    };
    let raw = generate(exp.workload, &wcfg);
    let prepared = charlie_prefetch::apply(exp.strategy, &raw, cfg.geometry);
    let prefetches_inserted = prepared.total_prefetches() as u64;
    let sim_cfg = SimConfig {
        geometry: cfg.geometry,
        ..SimConfig::paper(cfg.procs, exp.transfer_cycles)
    };
    let report =
        simulate(&sim_cfg, &prepared).unwrap_or_else(|e| panic!("simulating {exp}: {e}"));
    RunSummary { experiment: exp, report, prefetches_inserted }
}

/// Memoizing experiment runner.
///
/// Traces are regenerated per run (generation is cheap and deterministic);
/// completed [`RunSummary`]s are cached, so the table/figure reproductions
/// can share the underlying runs.
pub struct Lab {
    cfg: RunConfig,
    runs: HashMap<Experiment, RunSummary>,
    meta: HashMap<Experiment, RunMeta>,
    stats: LabStats,
}

impl Lab {
    /// Creates an empty lab.
    pub fn new(cfg: RunConfig) -> Self {
        Lab { cfg, runs: HashMap::new(), meta: HashMap::new(), stats: LabStats::default() }
    }

    /// The lab's run configuration.
    pub fn config(&self) -> &RunConfig {
        &self.cfg
    }

    /// Runs (or returns the cached result of) `exp`.
    ///
    /// # Panics
    ///
    /// Panics if the simulator rejects the generated trace — that indicates
    /// a bug in the generators, not user error.
    pub fn run(&mut self, exp: Experiment) -> &RunSummary {
        if self.runs.contains_key(&exp) {
            self.stats.memo_hits += 1;
        } else {
            self.stats.memo_misses += 1;
            let started = Instant::now();
            let summary = run_experiment(&self.cfg, exp);
            self.meta.insert(
                exp,
                RunMeta { wall_nanos: started.elapsed().as_nanos(), worker: 0, via_batch: false },
            );
            self.runs.insert(exp, summary);
        }
        &self.runs[&exp]
    }

    /// Runs every experiment in `exps` that is not already memoized,
    /// fanning the worklist out over `jobs` worker threads (`0` = one per
    /// available core), and merges the results into the memo.
    ///
    /// Results are bit-identical to running each experiment through
    /// [`Lab::run`]: every run regenerates its own trace from the lab seed
    /// and simulates it in isolation, so neither worker count nor
    /// completion order can influence any report.
    ///
    /// # Panics
    ///
    /// As [`Lab::run`], panics if the simulator rejects a generated trace.
    pub fn run_batch(&mut self, exps: &[Experiment], jobs: usize) -> BatchReport {
        let started = Instant::now();
        self.stats.batches += 1;

        // Deduplicate while preserving order; skip memoized cells.
        let mut todo: Vec<Experiment> = Vec::new();
        let mut memo_hits = 0usize;
        for &exp in exps {
            if self.runs.contains_key(&exp) {
                memo_hits += 1;
            } else if !todo.contains(&exp) {
                todo.push(exp);
            }
        }
        self.stats.memo_hits += memo_hits as u64;
        self.stats.memo_misses += todo.len() as u64;
        self.stats.batch_executed += todo.len() as u64;

        let jobs = Self::resolve_jobs(jobs).min(todo.len().max(1));
        let cfg = &self.cfg;
        // `parallel::map` returns results in submission order, so the merge
        // below is deterministic regardless of worker scheduling.
        let results = crate::parallel::map(&todo, jobs, |worker, &exp| {
            let t0 = Instant::now();
            let summary = run_experiment(cfg, exp);
            (summary, t0.elapsed().as_nanos(), worker)
        });

        let mut sim_nanos = 0u128;
        let executed = results.len();
        for (summary, nanos, worker) in results {
            sim_nanos += nanos;
            self.meta.insert(
                summary.experiment,
                RunMeta { wall_nanos: nanos, worker, via_batch: jobs > 1 },
            );
            self.runs.insert(summary.experiment, summary);
        }

        BatchReport {
            requested: exps.len(),
            memo_hits,
            executed,
            jobs,
            wall_nanos: started.elapsed().as_nanos(),
            sim_nanos,
        }
    }

    /// Pre-computes the paper's entire experiment grid (every cell any
    /// exhibit of §4 reads) on `jobs` workers, so subsequent table/figure
    /// calls are pure memo lookups.
    pub fn prefetch_all(&mut self, jobs: usize) -> BatchReport {
        let grid = crate::experiments::full_grid();
        self.run_batch(&grid, jobs)
    }

    /// Normalizes a `--jobs`-style request: `0` means one worker per
    /// available core; anything else is clamped to [`MAX_JOBS`].
    pub fn resolve_jobs(jobs: usize) -> usize {
        if jobs == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            jobs.min(MAX_JOBS)
        }
    }

    /// Execution time of `exp` relative to its NP baseline (the paper's
    /// Figure 2 / Table 5 metric; < 1 means prefetching sped the program up).
    pub fn relative_time(&mut self, exp: Experiment) -> f64 {
        let base = self.run(exp.baseline()).report.cycles as f64;
        let this = self.run(exp).report.cycles as f64;
        this / base
    }

    /// Number of distinct experiments run so far.
    pub fn runs_completed(&self) -> usize {
        self.runs.len()
    }

    /// Execution metadata for a completed experiment (`None` if it has not
    /// run).
    pub fn meta(&self, exp: Experiment) -> Option<RunMeta> {
        self.meta.get(&exp).copied()
    }

    /// Memo and batch accounting counters.
    pub fn stats(&self) -> LabStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_lab() -> Lab {
        Lab::new(RunConfig { procs: 4, refs_per_proc: 2_000, seed: 7, ..RunConfig::default() })
    }

    #[test]
    fn run_is_memoized() {
        let mut lab = tiny_lab();
        let exp = Experiment::paper(Workload::Water, Strategy::NoPrefetch, 8);
        let first = lab.run(exp).clone();
        let second = lab.run(exp).clone();
        assert_eq!(first, second);
        assert_eq!(lab.runs_completed(), 1);
        assert_eq!(lab.stats(), LabStats { memo_hits: 1, memo_misses: 1, ..LabStats::default() });
    }

    #[test]
    fn batch_matches_serial_and_fills_memo() {
        let exps = [
            Experiment::paper(Workload::Water, Strategy::NoPrefetch, 8),
            Experiment::paper(Workload::Water, Strategy::Pref, 8),
            Experiment::paper(Workload::Mp3d, Strategy::Pws, 16),
        ];
        let mut serial = tiny_lab();
        let mut parallel = tiny_lab();
        let report = parallel.run_batch(&exps, 3);
        assert_eq!(report.executed, 3);
        assert_eq!(report.memo_hits, 0);
        for exp in exps {
            assert_eq!(serial.run(exp), &parallel.runs[&exp]);
            let meta = parallel.meta(exp).expect("batch records metadata");
            assert!(meta.via_batch);
            assert!(meta.worker < 3);
        }
        // The batch populated the memo: re-running simulates nothing.
        let again = parallel.run_batch(&exps, 3);
        assert_eq!(again.executed, 0);
        assert_eq!(again.memo_hits, 3);
    }

    #[test]
    fn batch_deduplicates_requests() {
        let exp = Experiment::paper(Workload::Topopt, Strategy::NoPrefetch, 8);
        let mut lab = tiny_lab();
        let report = lab.run_batch(&[exp, exp, exp], 2);
        assert_eq!(report.requested, 3);
        assert_eq!(report.executed, 1);
        assert_eq!(lab.runs_completed(), 1);
    }

    #[test]
    fn single_job_batch_stays_on_the_serial_path() {
        let exp = Experiment::paper(Workload::Water, Strategy::NoPrefetch, 8);
        let mut lab = tiny_lab();
        let report = lab.run_batch(&[exp], 1);
        assert_eq!(report.jobs, 1);
        assert!(!lab.meta(exp).unwrap().via_batch);
    }

    #[test]
    fn resolve_jobs_normalizes() {
        assert!(Lab::resolve_jobs(0) >= 1);
        assert_eq!(Lab::resolve_jobs(5), 5);
        assert_eq!(Lab::resolve_jobs(usize::MAX), MAX_JOBS);
    }

    #[test]
    fn prefetch_all_covers_every_exhibit_cell() {
        let mut lab =
            Lab::new(RunConfig { procs: 2, refs_per_proc: 400, seed: 7, ..RunConfig::default() });
        let report = lab.prefetch_all(0);
        assert_eq!(report.executed, lab.runs_completed());
        let before = lab.runs_completed();
        // Regenerating every exhibit must not trigger a single new run.
        let _ = crate::experiments::figure1(&mut lab);
        let _ = crate::experiments::table2(&mut lab);
        let _ = crate::experiments::figure2(&mut lab);
        let _ = crate::experiments::figure3(&mut lab);
        let _ = crate::experiments::table3(&mut lab);
        let _ = crate::experiments::table4(&mut lab);
        let _ = crate::experiments::table5(&mut lab);
        let _ = crate::experiments::processor_utilization(&mut lab);
        assert_eq!(lab.runs_completed(), before, "an exhibit escaped full_grid()");
    }

    #[test]
    fn np_inserts_no_prefetches() {
        let mut lab = tiny_lab();
        let s = lab.run(Experiment::paper(Workload::Topopt, Strategy::NoPrefetch, 8));
        assert_eq!(s.prefetches_inserted, 0);
        assert_eq!(s.report.prefetch.executed, 0);
    }

    #[test]
    fn pref_inserts_prefetches_and_they_execute() {
        let mut lab = tiny_lab();
        let s = lab.run(Experiment::paper(Workload::Mp3d, Strategy::Pref, 8));
        assert!(s.prefetches_inserted > 0);
        assert_eq!(s.report.prefetch.executed, s.prefetches_inserted);
    }

    #[test]
    fn relative_time_of_baseline_is_one() {
        let mut lab = tiny_lab();
        let exp = Experiment::paper(Workload::Water, Strategy::NoPrefetch, 8);
        assert!((lab.relative_time(exp) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn experiment_display() {
        let e = Experiment::paper(Workload::Mp3d, Strategy::Pws, 16);
        assert_eq!(e.to_string(), "Mp3d/PWS @16cy");
        assert_eq!(e.restructured().to_string(), "Mp3d/PWS @16cy (restructured)");
    }

    #[test]
    fn baseline_strips_strategy_only() {
        let e = Experiment::paper(Workload::Mp3d, Strategy::Lpd, 16).restructured();
        let b = e.baseline();
        assert_eq!(b.strategy, Strategy::NoPrefetch);
        assert_eq!(b.workload, e.workload);
        assert_eq!(b.layout, Layout::Padded);
    }
}
