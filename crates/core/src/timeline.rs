//! Rendering helpers for sampled run [`Timeline`]s: the CSV and JSON
//! serializations the `charlie profile` command emits, plus the
//! saturation-onset summary backing the paper's contention argument (§4:
//! prefetch traffic pushes the shared bus toward saturation, and queueing —
//! not miss rates — caps speedup).
//!
//! These are pure formatting functions over [`Timeline`]; the sampling
//! itself lives in `charlie_sim::sample`.

use charlie_sim::{Timeline, WindowSample};
use std::fmt::Write as _;

/// Bus-utilization threshold above which a window counts as saturated for
/// [`saturation_summary`] (the paper's contention regime; a shared bus
/// loaded past ~0.9 queues more than it transfers).
pub const SATURATION_THRESHOLD: f64 = 0.9;

/// Header row matching [`timeline_csv_row`].
pub const TIMELINE_CSV_HEADER: &str = "start,end,bus_utilization,bus_busy_cycles,bus_ops,\
     bus_queueing_cycles,prefetch_grants,proc_busy_cycles,proc_stall_cycles,accesses,fills,\
     avg_fill_latency,bus_pending,outstanding_txns,prefetch_buffer";

/// One CSV row per sampled window (no header; see [`TIMELINE_CSV_HEADER`]).
pub fn timeline_csv_row(w: &WindowSample) -> String {
    let mut s = String::with_capacity(128);
    let _ = write!(
        s,
        "{},{},{:.6},{},{},{},{},{},{},{},{},{:.2},{},{},{}",
        w.start,
        w.end,
        w.bus_utilization(),
        w.bus_busy_cycles,
        w.bus_ops,
        w.bus_queueing_cycles,
        w.prefetch_grants,
        w.proc_busy_cycles,
        w.proc_stall_cycles,
        w.accesses,
        w.fills,
        avg_fill_latency(w),
        w.bus_pending,
        w.outstanding_txns,
        w.prefetch_buffer,
    );
    s
}

/// Full CSV document: header plus one row per window.
pub fn timeline_csv(timeline: &Timeline) -> String {
    let mut s = String::with_capacity(64 + 128 * timeline.windows.len());
    s.push_str(TIMELINE_CSV_HEADER);
    s.push('\n');
    for w in &timeline.windows {
        s.push_str(&timeline_csv_row(w));
        s.push('\n');
    }
    s
}

/// JSON rendering of a timeline — same shape the checkpoint journal embeds
/// (`{"interval":..,"windows":[..]}`), so consumers parse one schema.
pub fn timeline_json(timeline: &Timeline) -> String {
    let mut s = String::with_capacity(64 + 256 * timeline.windows.len());
    let _ = write!(s, "{{\"interval\":{},\"windows\":[", timeline.interval);
    for (i, w) in timeline.windows.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"start\":{},\"end\":{},\"bus_busy\":{},\"bus_ops\":{},\
             \"bus_queueing\":{},\"prefetch_grants\":{},\"proc_busy\":{},\
             \"proc_stall\":{},\"accesses\":{},\"fills\":{},\
             \"fill_buckets\":[{},{},{},{},{},{},{}],\"bus_pending\":{},\
             \"outstanding\":{},\"pf_occupancy\":{}}}",
            w.start,
            w.end,
            w.bus_busy_cycles,
            w.bus_ops,
            w.bus_queueing_cycles,
            w.prefetch_grants,
            w.proc_busy_cycles,
            w.proc_stall_cycles,
            w.accesses,
            w.fills,
            w.fill_latency_buckets[0],
            w.fill_latency_buckets[1],
            w.fill_latency_buckets[2],
            w.fill_latency_buckets[3],
            w.fill_latency_buckets[4],
            w.fill_latency_buckets[5],
            w.fill_latency_buckets[6],
            w.bus_pending,
            w.outstanding_txns,
            w.prefetch_buffer,
        );
    }
    s.push_str("]}");
    s
}

/// Mean fill latency inside one window (0 when it saw no fills). The exact
/// per-fill latencies are bucketed ([`charlie_sim::LATENCY_BUCKET_BOUNDS`]);
/// this midpoint estimate is for trend plots, not for arithmetic.
pub fn avg_fill_latency(w: &WindowSample) -> f64 {
    if w.fills == 0 {
        return 0.0;
    }
    // Bucket midpoints for bounds (≤100, ≤125, ≤150, ≤200, ≤300, ≤500, >500);
    // the unloaded fill costs 100 cycles, so the first bucket sits at it.
    const MIDPOINTS: [f64; 7] = [100.0, 112.5, 137.5, 175.0, 250.0, 400.0, 750.0];
    let weighted: f64 = w
        .fill_latency_buckets
        .iter()
        .zip(MIDPOINTS)
        .map(|(&n, mid)| n as f64 * mid)
        .sum();
    weighted / w.fills as f64
}

/// How (and when) the run saturated its bus.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct SaturationSummary {
    /// Start cycle of the first window whose bus utilization exceeded
    /// [`SATURATION_THRESHOLD`] (`None`: the bus never saturated).
    pub onset: Option<u64>,
    /// Windows at or past the threshold.
    pub saturated_windows: usize,
    /// Total sampled windows.
    pub windows: usize,
    /// Peak single-window bus utilization.
    pub peak_utilization: f64,
}

/// Scans a timeline for the paper's contention signature: the first window
/// where bus utilization exceeds [`SATURATION_THRESHOLD`], and how much of
/// the run stayed there.
pub fn saturation_summary(timeline: &Timeline) -> SaturationSummary {
    let mut summary = SaturationSummary {
        onset: timeline.saturation_onset(SATURATION_THRESHOLD),
        windows: timeline.windows.len(),
        ..SaturationSummary::default()
    };
    for w in &timeline.windows {
        let util = w.bus_utilization();
        if util > SATURATION_THRESHOLD {
            summary.saturated_windows += 1;
        }
        if util > summary.peak_utilization {
            summary.peak_utilization = util;
        }
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(start: u64, end: u64, busy: u64) -> WindowSample {
        WindowSample { start, end, bus_busy_cycles: busy, ..WindowSample::default() }
    }

    fn timeline() -> Timeline {
        Timeline {
            interval: 100,
            windows: vec![window(0, 100, 20), window(100, 200, 95), window(200, 260, 30)],
        }
    }

    #[test]
    fn csv_has_header_and_one_row_per_window() {
        let csv = timeline_csv(&timeline());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("start,end,bus_utilization"));
        assert!(lines[1].starts_with("0,100,0.200000,20,"));
        assert!(lines[2].starts_with("100,200,0.950000,95,"));
        assert_eq!(
            lines[0].split(',').count(),
            lines[1].split(',').count(),
            "header and rows have the same arity"
        );
    }

    #[test]
    fn json_matches_checkpoint_schema() {
        let json = timeline_json(&timeline());
        assert!(json.starts_with("{\"interval\":100,\"windows\":[{\"start\":0,"));
        assert_eq!(json.matches("\"bus_busy\":").count(), 3);
        assert!(json.ends_with("]}"));
    }

    #[test]
    fn saturation_summary_finds_onset_and_peak() {
        let s = saturation_summary(&timeline());
        assert_eq!(s.onset, Some(100));
        assert_eq!(s.saturated_windows, 1);
        assert_eq!(s.windows, 3);
        assert!((s.peak_utilization - 0.95).abs() < 1e-12);
    }

    #[test]
    fn unsaturated_timeline_has_no_onset() {
        let t = Timeline { interval: 100, windows: vec![window(0, 100, 50)] };
        let s = saturation_summary(&t);
        assert_eq!(s.onset, None);
        assert_eq!(s.saturated_windows, 0);
    }

    #[test]
    fn avg_fill_latency_handles_empty_windows() {
        let w = WindowSample::default();
        assert_eq!(avg_fill_latency(&w), 0.0);
        let mut w2 = WindowSample { fills: 2, ..WindowSample::default() };
        w2.fill_latency_buckets[1] = 2;
        assert!((avg_fill_latency(&w2) - 112.5).abs() < 1e-12);
    }
}
