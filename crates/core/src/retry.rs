//! Reusable retry policy for failures classified as transient I/O.
//!
//! One policy object owns the whole ladder — attempt count, capped
//! exponential backoff, and deterministic per-cell jitter — so the batch
//! engine ([`Lab::run_batch`](crate::Lab::run_batch)) and the serve
//! request path apply byte-for-byte the same schedule instead of each
//! carrying its own copy of the constants.
//!
//! Determinism matters here the same way it does everywhere else in the
//! lab: given the same cell, the ladder waits the same milliseconds on
//! every run, yet distinct cells never back off in lockstep (each seeds
//! its own jitter stream from a stable salt over its display form).

use std::time::Duration;

/// Attempts, backoff, and jitter for retrying transient failures.
///
/// Retry `n` (0-based) waits `base_ms * 2^n` capped at `cap_ms`, scaled
/// into `[0.75, 1.25)` of itself by an LCG step over the caller's salt.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct RetryPolicy {
    /// Retries granted *after* the initial execution: a transient failure
    /// runs `1 + attempts` times in total, sleeping
    /// [`delay`](RetryPolicy::delay)`(0..attempts)` between runs. The batch
    /// engine and [`RetryPolicy::run`] both count this way.
    pub attempts: u32,
    /// First-retry backoff, in milliseconds.
    pub base_ms: u64,
    /// Backoff ceiling: doubling stops here.
    pub cap_ms: u64,
}

impl RetryPolicy {
    /// The lab's ladder for transient I/O: the initial run plus 3 retries,
    /// waiting roughly 5 + 10 + 20 ms (± jitter) before giving up.
    /// Deterministic failures should get exactly one diagnostic re-run
    /// instead (see [`RetryPolicy::NONE`]).
    pub const TRANSIENT_IO: RetryPolicy = RetryPolicy { attempts: 3, base_ms: 5, cap_ms: 80 };

    /// A single immediate re-run with no backoff — the diagnostic policy
    /// for failures already classified as deterministic.
    pub const NONE: RetryPolicy = RetryPolicy { attempts: 1, base_ms: 0, cap_ms: 0 };

    /// Stable salt (FNV-1a over `name`) seeding the jitter stream, so the
    /// schedule is reproducible for a given cell yet different cells never
    /// back off in lockstep. Callers pass the cell's display form.
    pub fn salt(name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// The wait before retry `attempt` (0-based, counting retries after
    /// the initial run): capped exponential backoff with deterministic
    /// ±25% jitter.
    pub fn delay(&self, attempt: u32, salt: u64) -> Duration {
        let exp = (self.base_ms << attempt.min(16)).min(self.cap_ms);
        Duration::from_millis(jittered_ms(exp, salt.wrapping_add(u64::from(attempt))))
    }

    /// Runs `op` once plus up to `attempts` retries, sleeping
    /// [`RetryPolicy::delay`]`(0..attempts)` before each retry, for as
    /// long as the error is classified transient by `transient`. Returns
    /// the first success or the last error. This is the same
    /// initial-run-plus-`attempts`-retries schedule the batch engine's
    /// ladder applies, so both paths wait the same milliseconds.
    pub fn run<T, E>(
        &self,
        salt: u64,
        transient: impl Fn(&E) -> bool,
        mut op: impl FnMut() -> Result<T, E>,
    ) -> Result<T, E> {
        let mut attempt = 0u32;
        loop {
            match op() {
                Ok(value) => return Ok(value),
                Err(e) => {
                    if attempt >= self.attempts || !transient(&e) {
                        return Err(e);
                    }
                    std::thread::sleep(self.delay(attempt, salt));
                    attempt += 1;
                }
            }
        }
    }
}

/// Scales `base_ms` into `[0.75, 1.25)` of itself by one LCG step over
/// `salt` — the ladder's jitter, exposed on its own so other backoff hints
/// (the serve daemon's saturated `retry_after_ms`) can de-synchronize
/// clients with exactly the same deterministic schedule.
pub fn jittered_ms(base_ms: u64, salt: u64) -> u64 {
    let mix = salt
        .wrapping_mul(6_364_136_223_846_793_005)
        .wrapping_add(1_442_695_040_888_963_407);
    let frac = (mix >> 33) % 512;
    base_ms * (768 + frac) / 1024
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The backoff schedule is deterministic per salt, capped, and
    /// jittered within ±25% of the nominal exponential step.
    #[test]
    fn delay_is_capped_and_jittered() {
        let policy = RetryPolicy::TRANSIENT_IO;
        let salt = RetryPolicy::salt("Mp3d/PREF @8cy");
        for attempt in 0..10u32 {
            let nominal = (policy.base_ms << attempt.min(16)).min(policy.cap_ms);
            let ms = policy.delay(attempt, salt).as_millis() as u64;
            assert!(
                ms >= nominal * 3 / 4 && ms < nominal + nominal / 4 + 1,
                "attempt {attempt}: {ms}ms outside ±25% of {nominal}ms"
            );
            assert_eq!(policy.delay(attempt, salt), policy.delay(attempt, salt));
        }
        let other = RetryPolicy::salt("water/NP @16cy");
        assert_ne!(salt, other, "distinct cells seed distinct jitter streams");
    }

    /// The standalone jitter stays inside ±25%, is deterministic per salt,
    /// and distinct salts spread across the window instead of clumping.
    #[test]
    fn jittered_ms_spreads_salts_within_the_window() {
        let mut seen = std::collections::HashSet::new();
        for salt in 0..64u64 {
            let ms = jittered_ms(1000, RetryPolicy::salt(&format!("client-{salt}")));
            assert!((750..1250).contains(&ms), "{ms}ms outside [750, 1250)");
            assert_eq!(ms, jittered_ms(1000, RetryPolicy::salt(&format!("client-{salt}"))));
            seen.insert(ms);
        }
        assert!(seen.len() > 16, "64 clients landed on only {} retry slots", seen.len());
    }

    /// `run` stops on the first success, retries only transient errors,
    /// and executes exactly the initial run plus the retry budget — the
    /// same count the batch engine's ladder performs.
    #[test]
    fn run_honors_classification_and_budget() {
        let policy = RetryPolicy { attempts: 3, base_ms: 0, cap_ms: 0 };
        let mut calls = 0;
        let out: Result<u32, &str> = policy.run(0, |_| true, || {
            calls += 1;
            if calls < 3 { Err("flaky") } else { Ok(7) }
        });
        assert_eq!(out, Ok(7));
        assert_eq!(calls, 3);

        let mut calls = 0;
        let out: Result<u32, &str> = policy.run(0, |_| false, || {
            calls += 1;
            Err("deterministic")
        });
        assert_eq!(out, Err("deterministic"));
        assert_eq!(calls, 1, "non-transient errors are not retried");

        let mut calls = 0;
        let out: Result<u32, &str> = policy.run(0, |_| true, || {
            calls += 1;
            Err("always")
        });
        assert_eq!(out, Err("always"));
        assert_eq!(calls, 4, "initial run plus `attempts` retries, like the batch ladder");

        let mut calls = 0;
        let out: Result<u32, &str> = RetryPolicy::NONE.run(0, |_| true, || {
            calls += 1;
            Err("always")
        });
        assert_eq!(out, Err("always"));
        assert_eq!(calls, 2, "NONE grants exactly one re-run");
    }
}
