//! A minimal deterministic worker pool (std::thread only, no external
//! dependencies).
//!
//! [`map`] fans a slice of independent work items out over N OS threads
//! and returns the outputs *in input order*, so callers see exactly what a
//! serial `iter().map().collect()` would have produced — the scheduling
//! nondeterminism stays internal. [`Lab::run_batch`](crate::Lab::run_batch)
//! builds on this, and the ablation/bench binaries use it directly for
//! sweeps whose knobs live outside [`Experiment`](crate::Experiment)
//! (prefetch distance, arbitration policy, alternative geometries).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Applies `f` to every item on up to `jobs` worker threads and returns the
/// results in input order. `f` receives `(worker_index, item)`.
///
/// With `jobs <= 1` (or one item) everything runs inline on the caller's
/// thread — no pool, no channels — so a single-job "parallel" run is
/// *literally* the serial path.
///
/// # Panics
///
/// Re-raises the first panic raised by `f` (scoped threads propagate on
/// join), matching serial behaviour.
pub fn map<T: Sync, U: Send>(
    items: &[T],
    jobs: usize,
    f: impl Fn(usize, &T) -> U + Sync,
) -> Vec<U> {
    map_observed(items, jobs, f, |_, _| {})
}

/// [`map`] plus a completion observer: `observe(index, &result)` runs on the
/// *caller's* thread as each result arrives (in arrival order, which is
/// nondeterministic under parallelism). The returned vector is still in
/// input order.
///
/// This is the hook the checkpoint journal hangs off: results can be
/// persisted the moment they exist, instead of only after the whole batch —
/// exactly what makes a SIGTERM mid-batch survivable.
///
/// # Panics
///
/// As [`map`]; additionally re-raises panics from `observe`.
pub fn map_observed<T: Sync, U: Send>(
    items: &[T],
    jobs: usize,
    f: impl Fn(usize, &T) -> U + Sync,
    mut observe: impl FnMut(usize, &U),
) -> Vec<U> {
    let jobs = jobs.min(items.len());
    if jobs <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| {
                let u = f(0, item);
                observe(i, &u);
                u
            })
            .collect();
    }
    let next = &AtomicUsize::new(0);
    let f = &f;
    let (tx, rx) = mpsc::channel::<(usize, U)>();
    let mut results: Vec<(usize, U)> = std::thread::scope(|scope| {
        for worker in 0..jobs {
            let tx = tx.clone();
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                // A failed send means the receiver side panicked; the scope
                // is about to propagate that anyway.
                let _ = tx.send((i, f(worker, &items[i])));
            });
        }
        drop(tx);
        rx.into_iter()
            .map(|(i, u)| {
                observe(i, &u);
                (i, u)
            })
            .collect()
    });
    results.sort_by_key(|&(i, _)| i);
    results.into_iter().map(|(_, u)| u).collect()
}

type PoolJob = Box<dyn FnOnce(usize) + Send + 'static>;

/// A persistent worker pool for long-lived callers (the serve daemon),
/// complementing the scoped, batch-shaped [`map`]/[`map_observed`].
///
/// Jobs are closures pulled from one shared queue by `jobs` OS threads
/// (work-stealing in the only sense that matters here: an idle worker
/// takes the next job regardless of who submitted it). Each job receives
/// its worker index. Dropping the pool closes the queue and joins every
/// worker after in-flight jobs finish; a panicking job is caught and
/// dropped so one bad cell cannot take a worker (or the daemon) down.
pub struct Pool {
    tx: Option<mpsc::Sender<PoolJob>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Pool {
    /// Spawns `jobs` workers (clamped to at least 1).
    pub fn new(jobs: usize) -> Pool {
        let jobs = jobs.max(1);
        let (tx, rx) = mpsc::channel::<PoolJob>();
        let rx = std::sync::Arc::new(std::sync::Mutex::new(rx));
        let workers = (0..jobs)
            .map(|worker| {
                let rx = std::sync::Arc::clone(&rx);
                std::thread::spawn(move || loop {
                    // Holding the receiver lock only while popping keeps the
                    // queue available to the other workers during the job.
                    let job = match rx.lock() {
                        Ok(guard) => guard.recv(),
                        Err(_) => return,
                    };
                    match job {
                        Ok(job) => {
                            let _ = std::panic::catch_unwind(
                                std::panic::AssertUnwindSafe(|| job(worker)),
                            );
                        }
                        Err(_) => return, // queue closed: pool dropped
                    }
                })
            })
            .collect();
        Pool { tx: Some(tx), workers }
    }

    /// Queues one job; an idle worker picks it up in submission order.
    pub fn submit(&self, job: impl FnOnce(usize) + Send + 'static) {
        if let Some(tx) = &self.tx {
            // A closed queue means the pool is mid-drop; the job is dropped,
            // which callers observe through their own completion signals.
            let _ = tx.send(Box::new(job));
        }
    }

    /// Worker count.
    pub fn jobs(&self) -> usize {
        self.workers.len()
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        drop(self.tx.take());
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = map(&items, 8, |_, &x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_job_runs_inline() {
        let items = [1, 2, 3];
        let out = map(&items, 1, |worker, &x| {
            assert_eq!(worker, 0);
            x + 1
        });
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u32> = map(&[] as &[u32], 4, |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn every_item_processed_exactly_once() {
        let counter = AtomicUsize::new(0);
        let items: Vec<usize> = (0..257).collect();
        let out = map(&items, 16, |_, &x| {
            counter.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(counter.load(Ordering::Relaxed), 257);
        assert_eq!(out, items);
    }

    #[test]
    fn worker_indices_stay_in_range() {
        let items: Vec<u32> = (0..64).collect();
        let workers = map(&items, 4, |worker, _| worker);
        assert!(workers.iter().all(|&w| w < 4));
    }

    #[test]
    fn observer_sees_every_result_once_on_the_caller_thread() {
        let items: Vec<u64> = (0..64).collect();
        let caller = std::thread::current().id();
        let mut seen = vec![0u32; items.len()];
        let out = map_observed(
            &items,
            8,
            |_, &x| x + 1,
            |i, &u| {
                assert_eq!(std::thread::current().id(), caller);
                assert_eq!(u, items[i] + 1);
                seen[i] += 1;
            },
        );
        assert_eq!(out, (1..=64).collect::<Vec<_>>());
        assert!(seen.iter().all(|&n| n == 1));
    }

    #[test]
    fn observer_runs_inline_on_single_job() {
        let mut order = Vec::new();
        let _ = map_observed(&[10, 20, 30], 1, |_, &x| x, |i, _| order.push(i));
        assert_eq!(order, vec![0, 1, 2], "serial path observes in input order");
    }

    #[test]
    fn pool_runs_every_job_and_survives_panics() {
        use std::sync::atomic::AtomicU64;
        use std::sync::Arc;
        let pool = Pool::new(4);
        assert_eq!(pool.jobs(), 4);
        let sum = Arc::new(AtomicU64::new(0));
        for i in 1..=64u64 {
            let sum = Arc::clone(&sum);
            pool.submit(move |_worker| {
                if i == 13 {
                    panic!("one bad job");
                }
                sum.fetch_add(i, Ordering::SeqCst);
            });
        }
        drop(pool); // joins workers after the queue drains
        let expected: u64 = (1..=64).sum::<u64>() - 13;
        assert_eq!(sum.load(Ordering::SeqCst), expected, "panicking job is isolated");
    }

    #[test]
    // The scope re-raises with its own message ("a scoped thread panicked"),
    // so we can only assert that the panic surfaces, not its payload.
    #[should_panic]
    fn worker_panics_propagate() {
        let items = [1, 2, 3, 4];
        let _ = map(&items, 2, |_, &x| {
            if x == 3 {
                panic!("boom");
            }
            x
        });
    }
}
