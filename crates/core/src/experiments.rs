//! Reproductions of every table and figure in the paper's evaluation
//! (§4), one function per exhibit. Each takes a [`Lab`] so related exhibits
//! share their underlying simulation runs, and returns a renderable
//! [`Table`] (Figure 2 returns one per workload).
//!
//! | Function | Paper exhibit |
//! |---|---|
//! | [`table1`] | Table 1 — workload characteristics |
//! | [`figure1`] | Figure 1 — total & CPU miss rates (8-cycle transfer) |
//! | [`table2`] | Table 2 — bus utilizations |
//! | [`figure2`] | Figure 2 — relative execution time vs. transfer latency |
//! | [`figure3`] | Figure 3 — sources of CPU misses |
//! | [`table3`] | Table 3 — invalidation & false-sharing miss rates |
//! | [`table4`] | Table 4 — miss rates, restructured programs |
//! | [`table5`] | Table 5 — execution times, restructured programs |
//! | [`processor_utilization`] | §4.2 — NP processor utilizations |

use crate::lab::{Experiment, Lab, RunConfig};
use crate::report::{format_rate, Table};
use charlie_bus::BusConfig;
use charlie_prefetch::{HwPrefetchConfig, Strategy};
use charlie_sim::Protocol;
use charlie_trace::TraceStats;
use charlie_workloads::{generate, Layout, Workload, WorkloadConfig};

/// The transfer latency Figures 1 and 3 and Tables 3 and 4 are reported at.
pub const FIGURE_LATENCY: u64 = 8;

/// The workloads Figure 3 details.
pub const FIGURE3_WORKLOADS: [Workload; 3] = [Workload::Topopt, Workload::Pverify, Workload::Mp3d];

/// The strategies Tables 4 and 5 report for restructured programs.
pub const RESTRUCTURED_STRATEGIES: [Strategy; 3] =
    [Strategy::NoPrefetch, Strategy::Pref, Strategy::Pws];

/// The on-line hardware prefetcher configurations the head-to-head exhibit
/// compares against the oracle software strategies: each of the three
/// predictor families at degree 2 (the stride prefetcher at the paper
/// buffer's native lookahead of 4).
pub fn hw_prefetch_configs() -> [HwPrefetchConfig; 3] {
    [HwPrefetchConfig::stride(2, 4), HwPrefetchConfig::sms(2), HwPrefetchConfig::markov(2)]
}

fn pct(x: f64) -> String {
    format!("{:.2}%", 100.0 * x)
}

/// Every experiment cell the paper's exhibits (Tables 1–5, Figures 1–3,
/// §4.2 utilizations) read: the full workload × strategy × transfer-latency
/// grid on the interleaved layout, plus the restructured cells of Tables 4
/// and 5. [`Lab::prefetch_all`](crate::Lab::prefetch_all) feeds this list to
/// the parallel engine so each exhibit function afterwards runs entirely
/// from the memo.
pub fn full_grid() -> Vec<Experiment> {
    let mut grid = Vec::new();
    for w in Workload::ALL {
        for s in Strategy::ALL {
            for lat in BusConfig::PAPER_SWEEP {
                grid.push(Experiment::paper(w, s, lat));
            }
        }
    }
    for w in Workload::ALL.into_iter().filter(|w| w.restructurable()) {
        for s in RESTRUCTURED_STRATEGIES {
            for lat in BusConfig::TABLE2_SWEEP {
                grid.push(Experiment::paper(w, s, lat).restructured());
            }
        }
    }
    grid
}

/// The experiment cells one named exhibit reads (names as the CLI and the
/// bench binaries spell them). Unknown names and `table1` (which only
/// analyses traces) map to an empty grid; `all` maps to [`full_grid`].
/// Feeding the result to [`Lab::run_batch`](crate::Lab::run_batch) before
/// calling the exhibit function turns the exhibit itself into pure memo
/// lookups.
pub fn grid_for(exhibit: &str) -> Vec<Experiment> {
    let mut grid = Vec::new();
    match exhibit {
        "figure1" => {
            for w in Workload::ALL {
                for s in Strategy::ALL {
                    grid.push(Experiment::paper(w, s, FIGURE_LATENCY));
                }
            }
        }
        "table2" => {
            for w in Workload::ALL {
                for s in Strategy::ALL {
                    for lat in BusConfig::TABLE2_SWEEP {
                        grid.push(Experiment::paper(w, s, lat));
                    }
                }
            }
        }
        "figure2" => {
            for w in Workload::ALL {
                for s in Strategy::ALL {
                    for lat in BusConfig::PAPER_SWEEP {
                        grid.push(Experiment::paper(w, s, lat));
                    }
                }
            }
        }
        "figure3" => {
            for w in FIGURE3_WORKLOADS {
                for s in Strategy::ALL {
                    grid.push(Experiment::paper(w, s, FIGURE_LATENCY));
                }
            }
        }
        "table3" => {
            for w in Workload::ALL {
                grid.push(Experiment::paper(w, Strategy::NoPrefetch, FIGURE_LATENCY));
            }
        }
        "table4" => {
            for w in Workload::ALL.into_iter().filter(|w| w.restructurable()) {
                for s in RESTRUCTURED_STRATEGIES {
                    grid.push(Experiment::paper(w, s, FIGURE_LATENCY).restructured());
                }
            }
        }
        "table5" => {
            for w in Workload::ALL.into_iter().filter(|w| w.restructurable()) {
                for s in RESTRUCTURED_STRATEGIES {
                    for lat in BusConfig::TABLE2_SWEEP {
                        grid.push(Experiment::paper(w, s, lat).restructured());
                    }
                }
            }
        }
        "proc-util" => {
            for w in Workload::ALL {
                for lat in [4, 32] {
                    grid.push(Experiment::paper(w, Strategy::NoPrefetch, lat));
                }
            }
        }
        "hw-prefetch" => {
            // Only the cells the *shared* lab serves: the NP baselines and
            // the oracle PREF runs. The hardware-prefetcher runs live in
            // private per-configuration labs built by the exhibit itself.
            for w in Workload::EXTENDED {
                grid.push(Experiment::paper(w, Strategy::NoPrefetch, FIGURE_LATENCY));
                grid.push(Experiment::paper(w, Strategy::Pref, FIGURE_LATENCY));
            }
        }
        "protocols" => {
            // Only the Illinois cells the *shared* lab serves; the other
            // protocols' runs live in private per-protocol labs built by
            // the exhibit itself (protocol is a lab-wide knob).
            for w in Workload::ALL {
                grid.push(Experiment::paper(w, Strategy::NoPrefetch, FIGURE_LATENCY));
                grid.push(Experiment::paper(w, Strategy::Pref, FIGURE_LATENCY));
            }
        }
        "all" => grid = full_grid(),
        _ => {}
    }
    grid
}

/// Table 1: the workload suite. The paper lists data-set and shared-data
/// sizes and process counts; we report the measured equivalents of our
/// synthetic traces (footprint, shared footprint, references, processes).
pub fn table1(lab: &mut Lab) -> Table {
    let cfg = *lab.config();
    let mut t = Table::new(
        "Table 1: Workload used in experiments",
        vec!["Program", "Data Set", "Shared Data", "Refs/proc", "Processes"],
    );
    for w in Workload::ALL {
        let wcfg = WorkloadConfig {
            procs: cfg.procs,
            refs_per_proc: cfg.refs_per_proc,
            seed: cfg.seed,
            layout: Layout::Interleaved,
        };
        let trace = generate(w, &wcfg);
        let stats = TraceStats::gather(&trace, 32);
        let shared_kb =
            (stats.read_shared_lines + stats.write_shared_lines) as u64 * 32 / 1024;
        t.row(vec![
            w.name().to_owned(),
            format!("{} KB", stats.footprint_bytes() / 1024),
            format!("{} KB", shared_kb),
            format!("{}", cfg.refs_per_proc),
            format!("{}", cfg.procs),
        ]);
    }
    t
}

/// Figure 1: total, CPU and adjusted-CPU miss rates for the five workloads
/// under each prefetching strategy, at the 8-cycle data-transfer latency.
pub fn figure1(lab: &mut Lab) -> Table {
    let mut t = Table::new(
        format!(
            "Figure 1: Total and CPU miss rates ({}-cycle data transfer)",
            FIGURE_LATENCY
        ),
        vec!["Workload", "Strategy", "Total MR", "CPU MR", "Adj CPU MR"],
    );
    for w in Workload::ALL {
        for s in Strategy::ALL {
            let r = &lab.run(Experiment::paper(w, s, FIGURE_LATENCY)).report;
            t.row(vec![
                w.name().to_owned(),
                s.name().to_owned(),
                pct(r.total_miss_rate()),
                pct(r.cpu_miss_rate()),
                pct(r.adjusted_cpu_miss_rate()),
            ]);
        }
    }
    t
}

/// Table 2: bus utilization for every workload × strategy at the
/// {4, 8, 16, 32}-cycle transfer latencies.
pub fn table2(lab: &mut Lab) -> Table {
    let mut t = Table::new(
        "Table 2: Selected bus utilizations",
        vec!["Workload", "Strategy", "4 cycles", "8 cycles", "16 cycles", "32 cycles"],
    );
    for w in Workload::ALL {
        for s in Strategy::ALL {
            let mut cells = vec![w.name().to_owned(), s.name().to_owned()];
            for lat in BusConfig::TABLE2_SWEEP {
                let util = lab.run(Experiment::paper(w, s, lat)).report.bus_utilization();
                cells.push(format_rate(util.min(1.0)));
            }
            t.row(cells);
        }
    }
    t
}

/// Figure 2: execution time relative to NP as a function of the data-bus
/// transfer latency (4–32 cycles), one table per workload.
pub fn figure2(lab: &mut Lab) -> Vec<Table> {
    Workload::ALL.iter().map(|&w| figure2_for(lab, w)).collect()
}

/// One workload's Figure 2 panel as an ASCII chart (relative time vs.
/// transfer latency, one glyph per strategy).
pub fn figure2_chart(lab: &mut Lab, w: Workload) -> crate::AsciiChart {
    let mut chart = crate::AsciiChart::new(
        format!("{w}: execution time relative to NP vs data-transfer latency"),
        56,
        12,
    );
    for s in Strategy::PREFETCHING {
        let points: Vec<(f64, f64)> = BusConfig::PAPER_SWEEP
            .iter()
            .map(|&lat| (lat as f64, lab.relative_time(Experiment::paper(w, s, lat))))
            .collect();
        chart.series(s.name(), &points);
    }
    chart
}

/// One workload's Figure 2 panel.
pub fn figure2_for(lab: &mut Lab, w: Workload) -> Table {
    let mut t = Table::new(
        format!("Figure 2: execution time relative to NP — {w}"),
        vec!["Strategy", "4", "8", "16", "24", "32"],
    );
    for s in Strategy::PREFETCHING {
        let mut cells = vec![s.name().to_owned()];
        for lat in BusConfig::PAPER_SWEEP {
            let rel = lab.relative_time(Experiment::paper(w, s, lat));
            cells.push(format!("{rel:.3}"));
        }
        t.row(cells);
    }
    t
}

/// Figure 3: sources of CPU misses (per-category miss rates) for Topopt,
/// Pverify and Mp3d under every strategy, at the 8-cycle transfer latency.
pub fn figure3(lab: &mut Lab) -> Table {
    let mut t = Table::new(
        format!("Figure 3: Sources of CPU misses ({}-cycle data transfer)", FIGURE_LATENCY),
        vec![
            "Workload",
            "Strategy",
            "non-shr !pf",
            "non-shr pf",
            "inval !pf",
            "inval pf",
            "pf-in-prog",
            "CPU MR",
        ],
    );
    for w in FIGURE3_WORKLOADS {
        for s in Strategy::ALL {
            let r = &lab.run(Experiment::paper(w, s, FIGURE_LATENCY)).report;
            let d = r.demand_accesses().max(1) as f64;
            let m = r.miss;
            t.row(vec![
                w.name().to_owned(),
                s.name().to_owned(),
                pct(m.non_sharing_not_prefetched as f64 / d),
                pct(m.non_sharing_prefetched as f64 / d),
                pct(m.invalidation_not_prefetched as f64 / d),
                pct(m.invalidation_prefetched as f64 / d),
                pct(m.prefetch_in_progress as f64 / d),
                pct(r.cpu_miss_rate()),
            ]);
        }
    }
    t
}

/// Table 3: total invalidation and false-sharing miss rates per workload
/// (NP baseline, 8-cycle transfer).
pub fn table3(lab: &mut Lab) -> Table {
    let mut t = Table::new(
        "Table 3: Total Invalidation and False Sharing Miss Rates",
        vec!["Workload", "Total Inval MR", "Total FS MR", "FS share of inval"],
    );
    for w in Workload::ALL {
        let r = &lab.run(Experiment::paper(w, Strategy::NoPrefetch, FIGURE_LATENCY)).report;
        let inval = r.invalidation_miss_rate();
        let fs = r.false_sharing_miss_rate();
        let share = if inval > 0.0 { fs / inval } else { 0.0 };
        t.row(vec![
            w.name().to_owned(),
            pct(inval),
            pct(fs),
            format!("{:.0}%", 100.0 * share),
        ]);
    }
    t
}

/// Table 4: miss rates for the restructured programs (Topopt and Pverify)
/// at the 8-cycle transfer latency.
pub fn table4(lab: &mut Lab) -> Table {
    let mut t = Table::new(
        "Table 4: Miss rates for data transfer latency of 8 cycles, restructured programs",
        vec!["Workload", "Strategy", "CPU MR", "Total MR", "Total Inval MR", "Total FS MR"],
    );
    for w in Workload::ALL.into_iter().filter(|w| w.restructurable()) {
        for s in RESTRUCTURED_STRATEGIES {
            let exp = Experiment::paper(w, s, FIGURE_LATENCY).restructured();
            let r = &lab.run(exp).report;
            t.row(vec![
                format!("{w} (restr)"),
                s.name().to_owned(),
                pct(r.cpu_miss_rate()),
                pct(r.total_miss_rate()),
                pct(r.invalidation_miss_rate()),
                pct(r.false_sharing_miss_rate()),
            ]);
        }
    }
    t
}

/// Table 5: execution times of the restructured programs relative to the
/// restructured NP baseline, across transfer latencies.
pub fn table5(lab: &mut Lab) -> Table {
    let mut t = Table::new(
        "Table 5: Relative execution times for restructured programs",
        vec!["Workload", "Strategy", "4 cycles", "8 cycles", "16 cycles", "32 cycles"],
    );
    for w in Workload::ALL.into_iter().filter(|w| w.restructurable()) {
        for s in RESTRUCTURED_STRATEGIES {
            let mut cells = vec![format!("{w} (restr)"), s.name().to_owned()];
            for lat in BusConfig::TABLE2_SWEEP {
                let rel = lab.relative_time(Experiment::paper(w, s, lat).restructured());
                cells.push(format!("{rel:.3}"));
            }
            t.row(cells);
        }
    }
    t
}

/// §4.2's processor-utilization observations: NP utilization per workload at
/// the fastest and slowest buses, plus the implied best-possible speedup
/// (1 / utilization).
pub fn processor_utilization(lab: &mut Lab) -> Table {
    let mut t = Table::new(
        "Processor utilization (NP) and the prefetching headroom it implies",
        vec!["Workload", "util @4cy", "util @32cy", "max speedup @4cy", "max speedup @32cy"],
    );
    for w in Workload::ALL {
        let fast =
            lab.run(Experiment::paper(w, Strategy::NoPrefetch, 4)).report.avg_processor_utilization();
        let slow = lab
            .run(Experiment::paper(w, Strategy::NoPrefetch, 32))
            .report
            .avg_processor_utilization();
        t.row(vec![
            w.name().to_owned(),
            format_rate(fast),
            format_rate(slow),
            format!("{:.1}", 1.0 / fast.max(1e-9)),
            format!("{:.1}", 1.0 / slow.max(1e-9)),
        ]);
    }
    t
}

/// Post-paper exhibit: the on-line hardware prefetchers (per-PC stride,
/// SMS-style spatial patterns, Markov correlation — see DESIGN.md §15)
/// head-to-head against the paper's oracle PREF strategy, on the five paper
/// workloads plus the pointer-chase stress workload.
///
/// The software strategies rewrite the trace off-line with perfect
/// knowledge; the hardware prefetchers observe the demand stream on-line and
/// must earn their fills. Returns two tables: execution time relative to the
/// NP baseline, and the hardware training/accuracy counters behind it.
///
/// Hardware runs use one private [`Lab`] per prefetcher configuration —
/// `hw_prefetch` is a lab-wide knob, not an [`Experiment`] axis, so the
/// shared lab's paper grid stays exactly the paper's.
pub fn hw_prefetch_head_to_head(lab: &mut Lab) -> Vec<Table> {
    let base = *lab.config();
    let mut hw_labs: Vec<(HwPrefetchConfig, Lab)> = hw_prefetch_configs()
        .into_iter()
        .map(|hw| (hw, Lab::new(RunConfig { hw_prefetch: hw, ..base })))
        .collect();

    let mut time = Table::new(
        format!(
            "Hardware vs oracle prefetching: time relative to NP ({FIGURE_LATENCY}-cycle transfer)"
        ),
        vec!["Workload", "PREF (oracle)", "HW-STRIDE", "HW-SMS", "HW-MARKOV"],
    );
    let mut counters = Table::new(
        "Hardware prefetcher training and accuracy",
        vec![
            "Workload", "Prefetcher", "Trained", "Issued", "Useful", "Late", "Useless", "Accuracy",
        ],
    );
    for w in Workload::EXTENDED {
        let np =
            lab.run(Experiment::paper(w, Strategy::NoPrefetch, FIGURE_LATENCY)).report.cycles;
        let pref = lab.run(Experiment::paper(w, Strategy::Pref, FIGURE_LATENCY)).report.cycles;
        let mut cells =
            vec![w.name().to_owned(), format!("{:.3}", pref as f64 / np.max(1) as f64)];
        for (hw, hw_lab) in &mut hw_labs {
            let r = &hw_lab.run(Experiment::paper(w, Strategy::NoPrefetch, FIGURE_LATENCY)).report;
            cells.push(format!("{:.3}", r.cycles as f64 / np.max(1) as f64));
            let h = r.hw_prefetch;
            counters.row(vec![
                w.name().to_owned(),
                hw.kind.label().to_owned(),
                h.trained.to_string(),
                h.issued.to_string(),
                h.useful.to_string(),
                h.late.to_string(),
                h.useless.to_string(),
                pct(h.accuracy()),
            ]);
        }
        time.row(cells);
    }
    vec![time, counters]
}

/// Post-paper exhibit: does prefetching help or hurt differently under
/// update-based coherence? The paper's grid is all Illinois write-invalidate,
/// where invalidation misses are prefetching's fundamental limit (§4.2); this
/// reruns its NP and PREF cells under Firefly- and Dragon-style write-update
/// (no invalidation misses exist at all — the cost moves onto word-broadcast
/// bus traffic) and MOESI (dirty cache-to-cache supply without the reflective
/// write-back), across all five paper workloads.
///
/// Returns two tables: execution time relative to the Illinois NP baseline,
/// and the coherence traffic (invalidation misses, upgrades, word updates,
/// write-backs, bus utilization) behind it.
///
/// Non-Illinois runs use one private [`Lab`] per protocol — like
/// `hw_prefetch`, `protocol` is a lab-wide knob, not an [`Experiment`] axis,
/// so the shared lab's paper grid stays exactly the paper's.
pub fn protocol_head_to_head(lab: &mut Lab) -> Vec<Table> {
    let base = *lab.config();
    let mut proto_labs: Vec<(Protocol, Lab)> = Protocol::ALL
        .into_iter()
        .filter(|&p| p != Protocol::WriteInvalidate)
        .map(|p| (p, Lab::new(RunConfig { protocol: p, ..base })))
        .collect();

    let mut time = Table::new(
        format!(
            "Coherence protocols: time relative to Illinois NP ({FIGURE_LATENCY}-cycle transfer)"
        ),
        vec![
            "Workload",
            "ILLINOIS NP",
            "ILLINOIS PREF",
            "FIREFLY NP",
            "FIREFLY PREF",
            "DRAGON NP",
            "DRAGON PREF",
            "MOESI NP",
            "MOESI PREF",
        ],
    );
    let mut traffic = Table::new(
        "Coherence traffic under prefetching (PREF)",
        vec![
            "Workload", "Protocol", "Inval misses", "Upgrades", "Updates", "Writebacks", "Bus util",
        ],
    );
    for w in Workload::ALL {
        let np =
            lab.run(Experiment::paper(w, Strategy::NoPrefetch, FIGURE_LATENCY)).report.cycles;
        let np = np.max(1);
        let mut cells = vec![w.name().to_owned()];
        let mut traffic_row = |proto: Protocol, lab: &mut Lab| -> Vec<u64> {
            let mut cycles = Vec::with_capacity(2);
            for s in [Strategy::NoPrefetch, Strategy::Pref] {
                let r = &lab.run(Experiment::paper(w, s, FIGURE_LATENCY)).report;
                cycles.push(r.cycles);
                if s == Strategy::Pref {
                    let inval = r.miss.invalidation_not_prefetched + r.miss.invalidation_prefetched;
                    traffic.row(vec![
                        w.name().to_owned(),
                        proto.key_name().to_owned(),
                        inval.to_string(),
                        r.bus.upgrades.to_string(),
                        r.bus.updates.to_string(),
                        r.bus.writebacks.to_string(),
                        format_rate(r.bus_utilization().min(1.0)),
                    ]);
                }
            }
            cycles
        };
        let mut all_cycles = traffic_row(Protocol::WriteInvalidate, lab);
        for (proto, proto_lab) in &mut proto_labs {
            all_cycles.extend(traffic_row(*proto, proto_lab));
        }
        cells.extend(all_cycles.iter().map(|&c| format!("{:.3}", c as f64 / np as f64)));
        time.row(cells);
    }
    vec![time, traffic]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lab::RunConfig;

    fn tiny_lab() -> Lab {
        Lab::new(RunConfig { procs: 4, refs_per_proc: 1_500, seed: 3, ..RunConfig::default() })
    }

    #[test]
    fn table1_has_five_rows() {
        let t = table1(&mut tiny_lab());
        assert_eq!(t.num_rows(), 5);
        assert!(t.to_string().contains("Water"));
    }

    #[test]
    fn figure1_covers_grid() {
        let t = figure1(&mut tiny_lab());
        assert_eq!(t.num_rows(), 25); // 5 workloads × 5 strategies
    }

    #[test]
    fn table2_covers_grid() {
        let mut lab = Lab::new(RunConfig { procs: 2, refs_per_proc: 800, seed: 3, ..RunConfig::default() });
        let t = table2(&mut lab);
        assert_eq!(t.num_rows(), 25);
        // every utilization cell parses back as a rate ≤ 1
        for r in 0..t.num_rows() {
            for c in 2..6 {
                let cell = t.cell(r, c).unwrap();
                let v: f64 = format!("0{cell}").parse().unwrap();
                assert!((0.0..=1.0).contains(&v), "{cell}");
            }
        }
    }

    #[test]
    fn figure2_one_panel_per_workload() {
        let mut lab = Lab::new(RunConfig { procs: 2, refs_per_proc: 600, seed: 3, ..RunConfig::default() });
        let panels = figure2(&mut lab);
        assert_eq!(panels.len(), 5);
        assert_eq!(panels[0].num_rows(), 4); // PREF/EXCL/LPD/PWS
    }

    #[test]
    fn figure3_covers_three_workloads() {
        let t = figure3(&mut tiny_lab());
        assert_eq!(t.num_rows(), 15);
    }

    #[test]
    fn table3_reports_all_workloads() {
        let t = table3(&mut tiny_lab());
        assert_eq!(t.num_rows(), 5);
    }

    #[test]
    fn tables_4_and_5_cover_restructured_programs() {
        let mut lab = Lab::new(RunConfig { procs: 2, refs_per_proc: 600, seed: 3, ..RunConfig::default() });
        assert_eq!(table4(&mut lab).num_rows(), 6); // 2 workloads × 3 strategies
        assert_eq!(table5(&mut lab).num_rows(), 6);
    }

    #[test]
    fn processor_utilization_sane() {
        let t = processor_utilization(&mut tiny_lab());
        assert_eq!(t.num_rows(), 5);
    }

    #[test]
    fn hw_head_to_head_covers_extended_workloads() {
        let mut lab =
            Lab::new(RunConfig { procs: 2, refs_per_proc: 800, seed: 3, ..RunConfig::default() });
        let tables = hw_prefetch_head_to_head(&mut lab);
        assert_eq!(tables.len(), 2);
        let (time, counters) = (&tables[0], &tables[1]);
        assert_eq!(time.num_rows(), Workload::EXTENDED.len());
        assert_eq!(counters.num_rows(), Workload::EXTENDED.len() * 3);
        let rendered = counters.to_string();
        for label in ["HW-STRIDE", "HW-SMS", "HW-MARKOV"] {
            assert!(rendered.contains(label), "{label} missing");
        }
        assert!(time.to_string().contains("PointerChase"));
        // The hardware runs actually prefetched: some configuration issued
        // and some fills were useful somewhere in the grid.
        let mut issued = 0u64;
        let mut useful = 0u64;
        for r in 0..counters.num_rows() {
            issued += counters.cell(r, 3).unwrap().parse::<u64>().unwrap();
            useful += counters.cell(r, 4).unwrap().parse::<u64>().unwrap();
        }
        assert!(issued > 0, "no hardware prefetches issued");
        assert!(useful > 0, "no hardware prefetch was useful");
    }

    #[test]
    fn protocol_head_to_head_covers_all_workloads_and_protocols() {
        let mut lab =
            Lab::new(RunConfig { procs: 2, refs_per_proc: 800, seed: 3, ..RunConfig::default() });
        let tables = protocol_head_to_head(&mut lab);
        assert_eq!(tables.len(), 2);
        let (time, traffic) = (&tables[0], &tables[1]);
        assert_eq!(time.num_rows(), Workload::ALL.len());
        assert_eq!(traffic.num_rows(), Workload::ALL.len() * Protocol::ALL.len());
        let rendered = traffic.to_string();
        for name in ["illinois", "firefly", "dragon", "moesi"] {
            assert!(rendered.contains(name), "{name} missing from traffic table");
        }
        // The update-based protocols actually broadcast somewhere in the
        // grid, and the invalidation protocols never do.
        let mut updates_by_proto = std::collections::HashMap::new();
        for r in 0..traffic.num_rows() {
            let proto = traffic.cell(r, 1).unwrap().to_owned();
            let updates: u64 = traffic.cell(r, 4).unwrap().parse().unwrap();
            *updates_by_proto.entry(proto).or_insert(0u64) += updates;
        }
        assert!(updates_by_proto["firefly"] > 0, "Firefly never broadcast");
        assert!(updates_by_proto["dragon"] > 0, "Dragon never broadcast");
        assert_eq!(updates_by_proto["illinois"], 0);
        assert_eq!(updates_by_proto["moesi"], 0);
        assert_eq!(grid_for("protocols").len(), Workload::ALL.len() * 2);
    }

    #[test]
    fn hw_prefetch_grid_is_disjoint_from_paper_grid_cells() {
        let g = grid_for("hw-prefetch");
        assert_eq!(g.len(), Workload::EXTENDED.len() * 2);
        assert!(grid_for("all").len() == full_grid().len());
        assert!(
            !full_grid().iter().any(|e| e.workload == Workload::PointerChase),
            "paper grid must stay 5 workloads"
        );
    }
}
