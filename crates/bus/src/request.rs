//! Bus transaction requests and identifiers.

use charlie_cache::protocol::BusOp;
use charlie_trace::{LineAddr, ProcId};
use std::fmt;

/// Opaque identifier of a submitted bus transaction.
///
/// Packed as `(generation << 32) | slot`. Slots are recycled through a free
/// list once the engine calls [`crate::Bus::release`], so [`TxnId::index`]
/// stays dense and can address a slab directly; the generation half makes a
/// stale id from a previous occupant of the slot compare unequal.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct TxnId(pub(crate) u64);

impl TxnId {
    pub(crate) fn from_parts(slot: u32, generation: u32) -> Self {
        TxnId((u64::from(generation) << 32) | u64::from(slot))
    }

    /// Dense slot index, suitable for direct slab addressing. The bus never
    /// has two live transactions with the same index.
    pub fn index(self) -> usize {
        (self.0 & 0xFFFF_FFFF) as usize
    }

    pub(crate) fn generation(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.generation() == 0 {
            write!(f, "txn#{}", self.index())
        } else {
            write!(f, "txn#{}r{}", self.index(), self.generation())
        }
    }
}

/// Arbitration class. The paper's arbiter "favors blocking loads over
/// prefetches": [`Priority::Demand`] always wins over [`Priority::Prefetch`].
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Priority {
    /// A request the processor is stalled on (demand fills, upgrades) or
    /// that must drain promptly (write-backs).
    Demand,
    /// A background prefetch fill.
    Prefetch,
}

/// A transaction queued at the bus.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct BusRequest {
    /// Identifier assigned at submission.
    pub id: TxnId,
    /// Requesting processor.
    pub proc: ProcId,
    /// Line the transaction concerns.
    pub line: LineAddr,
    /// Coherence kind.
    pub op: BusOp,
    /// Arbitration class.
    pub priority: Priority,
    /// Simulated time at which the request becomes eligible for arbitration
    /// (submission time plus the uncontended latency portion for fills).
    pub ready_at: u64,
}

impl BusRequest {
    /// `true` when `op` moves a full block and therefore occupies the bus for
    /// the full transfer latency.
    pub fn transfers_data(&self) -> bool {
        self.op.transfers_data()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn txn_id_display() {
        assert_eq!(TxnId(7).to_string(), "txn#7");
        assert_eq!(TxnId::from_parts(7, 2).to_string(), "txn#7r2");
    }

    #[test]
    fn txn_id_packing_round_trips() {
        let id = TxnId::from_parts(0xABCD, 31);
        assert_eq!(id.index(), 0xABCD);
        assert_eq!(id.generation(), 31);
        assert_ne!(id, TxnId::from_parts(0xABCD, 30), "stale generation differs");
    }

    #[test]
    fn transfers_data_delegates_to_op() {
        let mk = |op| BusRequest {
            id: TxnId(0),
            proc: ProcId(0),
            line: LineAddr::from_raw(1),
            op,
            priority: Priority::Demand,
            ready_at: 0,
        };
        assert!(mk(BusOp::Read).transfers_data());
        assert!(mk(BusOp::WriteBack).transfers_data());
        assert!(!mk(BusOp::Upgrade).transfers_data());
    }
}
