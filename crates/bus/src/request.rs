//! Bus transaction requests and identifiers.

use charlie_cache::protocol::BusOp;
use charlie_trace::{LineAddr, ProcId};
use std::fmt;

/// Opaque identifier of a submitted bus transaction.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct TxnId(pub(crate) u64);

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "txn#{}", self.0)
    }
}

/// Arbitration class. The paper's arbiter "favors blocking loads over
/// prefetches": [`Priority::Demand`] always wins over [`Priority::Prefetch`].
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Priority {
    /// A request the processor is stalled on (demand fills, upgrades) or
    /// that must drain promptly (write-backs).
    Demand,
    /// A background prefetch fill.
    Prefetch,
}

/// A transaction queued at the bus.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct BusRequest {
    /// Identifier assigned at submission.
    pub id: TxnId,
    /// Requesting processor.
    pub proc: ProcId,
    /// Line the transaction concerns.
    pub line: LineAddr,
    /// Coherence kind.
    pub op: BusOp,
    /// Arbitration class.
    pub priority: Priority,
    /// Simulated time at which the request becomes eligible for arbitration
    /// (submission time plus the uncontended latency portion for fills).
    pub ready_at: u64,
}

impl BusRequest {
    /// `true` when `op` moves a full block and therefore occupies the bus for
    /// the full transfer latency.
    pub fn transfers_data(&self) -> bool {
        self.op.transfers_data()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn txn_id_display() {
        assert_eq!(TxnId(7).to_string(), "txn#7");
    }

    #[test]
    fn transfers_data_delegates_to_op() {
        let mk = |op| BusRequest {
            id: TxnId(0),
            proc: ProcId(0),
            line: LineAddr::from_raw(1),
            op,
            priority: Priority::Demand,
            ready_at: 0,
        };
        assert!(mk(BusOp::Read).transfers_data());
        assert!(mk(BusOp::WriteBack).transfers_data());
        assert!(!mk(BusOp::Upgrade).transfers_data());
    }
}
