//! Bus/memory-subsystem timing parameters.

use std::fmt;

/// Timing parameters of the memory subsystem.
///
/// The paper's spectrum of architectures is produced by holding
/// `total_latency` at 100 cycles and sweeping `transfer_cycles` over
/// `{4, 8, 16, 24, 32}`: a 4-cycle transfer models a very high-bandwidth
/// data bus (64 bits per CPU cycle at the paper's scale), 32 cycles a
/// low-bandwidth one.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct BusConfig {
    /// End-to-end unloaded miss latency in cycles (the paper uses 100).
    pub total_latency: u64,
    /// Contended data-transfer portion of `total_latency`.
    pub transfer_cycles: u64,
    /// Contended occupancy of an invalidation-only upgrade (address slot).
    pub invalidate_cycles: u64,
}

impl BusConfig {
    /// The paper's architecture with data-transfer latency `transfer_cycles`
    /// out of a 100-cycle total.
    ///
    /// # Panics
    ///
    /// Panics if `transfer_cycles` is zero or exceeds the 100-cycle total.
    pub fn paper(transfer_cycles: u64) -> Self {
        assert!(
            transfer_cycles > 0 && transfer_cycles <= 100,
            "transfer latency must be in 1..=100"
        );
        BusConfig { total_latency: 100, transfer_cycles, invalidate_cycles: 2 }
    }

    /// The transfer latencies the paper sweeps (Figure 2's x-axis).
    pub const PAPER_SWEEP: [u64; 5] = [4, 8, 16, 24, 32];

    /// The subset of latencies Table 2 reports.
    pub const TABLE2_SWEEP: [u64; 4] = [4, 8, 16, 32];

    /// Uncontended portion of a fill: address transmission plus memory
    /// lookup, `total_latency − transfer_cycles`.
    pub fn uncontended_cycles(&self) -> u64 {
        self.total_latency - self.transfer_cycles
    }
}

impl Default for BusConfig {
    /// The paper's mid-range 8-cycle architecture (used for Figures 1 and 3).
    fn default() -> Self {
        BusConfig::paper(8)
    }
}

impl fmt::Display for BusConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}-cycle latency, {}-cycle data transfer",
            self.total_latency, self.transfer_cycles
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_split() {
        let c = BusConfig::paper(8);
        assert_eq!(c.total_latency, 100);
        assert_eq!(c.transfer_cycles, 8);
        assert_eq!(c.uncontended_cycles(), 92);
        assert_eq!(c.invalidate_cycles, 2);
    }

    #[test]
    fn default_is_8_cycle() {
        assert_eq!(BusConfig::default(), BusConfig::paper(8));
    }

    #[test]
    #[should_panic(expected = "1..=100")]
    fn rejects_zero_transfer() {
        let _ = BusConfig::paper(0);
    }

    #[test]
    #[should_panic(expected = "1..=100")]
    fn rejects_oversized_transfer() {
        let _ = BusConfig::paper(101);
    }

    #[test]
    fn sweeps_match_paper() {
        assert_eq!(BusConfig::PAPER_SWEEP, [4, 8, 16, 24, 32]);
        assert_eq!(BusConfig::TABLE2_SWEEP, [4, 8, 16, 32]);
    }
}
