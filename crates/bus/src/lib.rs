//! Split-transaction bus model for the `charlie` multiprocessor simulator.
//!
//! The paper (§3.3) models the memory subsystem as a 100-cycle latency split
//! into two components: an *uncontended* portion (address transmission and
//! memory lookup, assumed conflict-free thanks to interleaved banks) and a
//! *contended* portion — the data-bus transfer — of 4 to 32 cycles, for which
//! all processors compete. This crate implements that contended resource:
//!
//! * each data-carrying transaction occupies the bus for
//!   [`BusConfig::transfer_cycles`];
//! * invalidation-only upgrades occupy a short address slot;
//! * arbitration is round-robin and strictly favours *blocking* (demand)
//!   requests over prefetches, exactly as the paper specifies;
//! * fills become eligible for arbitration only after their uncontended
//!   `100 − T` cycles have elapsed.
//!
//! The [`Bus`] is a passive component driven by the simulator's event loop:
//! `submit` enqueues, [`Bus::try_grant`] hands the next transaction to the
//! caller together with its completion time.

mod config;
mod model;
mod request;

pub use config::BusConfig;
pub use model::{Bus, BusStats, GrantOutcome};
pub use request::{BusRequest, Priority, TxnId};
