//! The contended-bus state machine: queues, arbitration, occupancy.

use crate::config::BusConfig;
use crate::request::{BusRequest, Priority, TxnId};
use charlie_cache::protocol::BusOp;
use charlie_trace::{LineAddr, ProcId};
use std::collections::VecDeque;

/// Counters the bus accumulates; the paper's Table 2 (bus utilization) is
/// `busy_cycles / total simulated cycles`.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct BusStats {
    /// Cycles the contended resource was occupied.
    pub busy_cycles: u64,
    /// Shared-mode fills granted.
    pub reads: u64,
    /// Exclusive-mode fills granted.
    pub read_exclusives: u64,
    /// Invalidation-only upgrades granted.
    pub upgrades: u64,
    /// Word-broadcast updates granted (write-update protocols). Like
    /// upgrades these move no cache block: they occupy the bus for the
    /// short invalidation slot, not a data transfer.
    pub updates: u64,
    /// Dirty-victim write-backs granted.
    pub writebacks: u64,
    /// Grants that came from the prefetch class.
    pub prefetch_grants: u64,
    /// Total cycles requests spent queued past their `ready_at` (arbitration
    /// plus bus-busy delay), summed over grants.
    pub queueing_cycles: u64,
}

impl BusStats {
    /// Total transactions granted.
    pub fn total_ops(&self) -> u64 {
        self.reads + self.read_exclusives + self.upgrades + self.updates + self.writebacks
    }

    /// Transactions that invalidate remote copies (the paper reports the
    /// effect of EXCL through the decline of these).
    pub fn invalidating_ops(&self) -> u64 {
        self.read_exclusives + self.upgrades
    }

    /// Bus utilization over `total_cycles` of simulation, in `[0, 1]`.
    pub fn utilization(&self, total_cycles: u64) -> f64 {
        if total_cycles == 0 {
            0.0
        } else {
            self.busy_cycles as f64 / total_cycles as f64
        }
    }
}

/// Result of [`Bus::try_grant`].
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum GrantOutcome {
    /// A transaction was granted; it occupies the bus until `completes_at`.
    Granted {
        /// The granted request.
        request: BusRequest,
        /// Time the transfer finishes (fill data available / invalidation
        /// globally performed).
        completes_at: u64,
    },
    /// The bus is occupied; retry at the given time.
    BusyUntil(u64),
    /// The bus is free but the earliest queued request is not yet eligible;
    /// retry at the given time.
    WaitingUntil(u64),
    /// No transactions are queued.
    Idle,
}

/// The shared, contended data-bus resource with two-class round-robin
/// arbitration (demand over prefetch), per the paper.
///
/// The bus is passive: the simulation engine calls [`Bus::submit`] when a
/// processor issues a transaction and [`Bus::try_grant`] whenever the bus
/// might be able to start one (after a submit or a completion).
#[derive(Clone, Debug)]
pub struct Bus {
    config: BusConfig,
    /// Per-slot generation counters; `slot_generations.len()` is the
    /// high-water mark of concurrently live transactions.
    slot_generations: Vec<u32>,
    /// Slots returned by [`Bus::release`], reused LIFO.
    free_slots: Vec<u32>,
    demand: Vec<VecDeque<BusRequest>>,
    prefetch: Vec<VecDeque<BusRequest>>,
    rr_demand: usize,
    rr_prefetch: usize,
    busy_until: u64,
    stats: BusStats,
    /// Start of the statistics window (see [`Bus::open_window`]); occupancy
    /// and queueing accounted to `stats` are clipped to `window_start..`.
    /// 0 means "since the beginning of time" — no clipping.
    window_start: u64,
}

impl Bus {
    /// Creates an idle bus serving `num_procs` processors.
    pub fn new(config: BusConfig, num_procs: usize) -> Self {
        Bus {
            config,
            // In-flight transactions are bounded by a few per processor
            // (one demand miss plus the prefetch window), so pre-size for
            // the common case and let pathological traces grow it.
            slot_generations: Vec::with_capacity(4 * num_procs),
            free_slots: Vec::with_capacity(4 * num_procs),
            demand: vec![VecDeque::new(); num_procs],
            prefetch: vec![VecDeque::new(); num_procs],
            rr_demand: 0,
            rr_prefetch: 0,
            busy_until: 0,
            stats: BusStats::default(),
            window_start: 0,
        }
    }

    /// The bus timing configuration.
    pub fn config(&self) -> &BusConfig {
        &self.config
    }

    /// Submits a transaction at time `now`.
    ///
    /// Fills ([`BusOp::Read`], [`BusOp::ReadExclusive`]) become eligible for
    /// arbitration after the uncontended latency portion; upgrades and
    /// write-backs are eligible immediately.
    ///
    /// # Panics
    ///
    /// Panics if `proc` is out of range.
    pub fn submit(
        &mut self,
        now: u64,
        proc: ProcId,
        line: LineAddr,
        op: BusOp,
        priority: Priority,
    ) -> TxnId {
        let id = match self.free_slots.pop() {
            Some(slot) => TxnId::from_parts(slot, self.slot_generations[slot as usize]),
            None => {
                let slot = u32::try_from(self.slot_generations.len())
                    .expect("fewer than 2^32 live transactions");
                self.slot_generations.push(0);
                TxnId::from_parts(slot, 0)
            }
        };
        let ready_at = match op {
            BusOp::Read | BusOp::ReadExclusive => now + self.config.uncontended_cycles(),
            BusOp::Upgrade | BusOp::Update | BusOp::WriteBack => now,
        };
        let req = BusRequest { id, proc, line, op, priority, ready_at };
        match priority {
            Priority::Demand => self.demand[proc.index()].push_back(req),
            Priority::Prefetch => self.prefetch[proc.index()].push_back(req),
        }
        id
    }

    /// Moves a queued prefetch into the demand class (the CPU is now stalled
    /// on it). Returns `false` if the transaction is no longer queued (it was
    /// already granted or never existed).
    pub fn promote(&mut self, id: TxnId) -> bool {
        for proc_q in self.prefetch.iter_mut() {
            if let Some(pos) = proc_q.iter().position(|r| r.id == id) {
                let mut req = proc_q.remove(pos).expect("position valid");
                req.priority = Priority::Demand;
                self.demand[req.proc.index()].push_back(req);
                return true;
            }
        }
        false
    }

    /// Whether `id` is still waiting in an arbitration queue (submitted but
    /// not yet granted). Returns `false` for granted, completed, or unknown
    /// transactions.
    pub fn is_queued(&self, id: TxnId) -> bool {
        self.demand
            .iter()
            .chain(self.prefetch.iter())
            .any(|q| q.iter().any(|r| r.id == id))
    }

    /// Attempts to start the next transaction at time `now`.
    pub fn try_grant(&mut self, now: u64) -> GrantOutcome {
        if self.busy_until > now {
            return GrantOutcome::BusyUntil(self.busy_until);
        }
        if let Some(req) = Self::pick(&mut self.demand, &mut self.rr_demand, now)
            .or_else(|| Self::pick(&mut self.prefetch, &mut self.rr_prefetch, now))
        {
            let occupancy = if req.transfers_data() {
                self.config.transfer_cycles
            } else {
                self.config.invalidate_cycles
            };
            let completes_at = now + occupancy;
            self.busy_until = completes_at;
            // Clip both accounting intervals to the open statistics window:
            // a grant straddling `window_start` only contributes the portion
            // inside the window, so windowed busy/queueing cycles can never
            // exceed the window length. With `window_start == 0` (cold
            // start), both expressions reduce exactly to `occupancy` and
            // `now - ready_at`.
            self.stats.busy_cycles += completes_at.saturating_sub(self.window_start.max(now));
            self.stats.queueing_cycles += now.saturating_sub(self.window_start.max(req.ready_at));
            match req.op {
                BusOp::Read => self.stats.reads += 1,
                BusOp::ReadExclusive => self.stats.read_exclusives += 1,
                BusOp::Upgrade => self.stats.upgrades += 1,
                BusOp::Update => self.stats.updates += 1,
                BusOp::WriteBack => self.stats.writebacks += 1,
            }
            if req.priority == Priority::Prefetch {
                self.stats.prefetch_grants += 1;
            }
            return GrantOutcome::Granted { request: req, completes_at };
        }
        match self.earliest_ready() {
            Some(t) => GrantOutcome::WaitingUntil(t.max(now + 1)),
            None => GrantOutcome::Idle,
        }
    }

    /// Round-robin pick within one class: scan processors starting after the
    /// last-granted one; a processor's front request is eligible when
    /// `ready_at <= now`.
    fn pick(queues: &mut [VecDeque<BusRequest>], cursor: &mut usize, now: u64) -> Option<BusRequest> {
        let n = queues.len();
        if n == 0 {
            return None;
        }
        for i in 0..n {
            let p = (*cursor + 1 + i) % n;
            if let Some(front) = queues[p].front() {
                if front.ready_at <= now {
                    *cursor = p;
                    return queues[p].pop_front();
                }
            }
        }
        None
    }

    fn earliest_ready(&self) -> Option<u64> {
        self.demand
            .iter()
            .chain(self.prefetch.iter())
            .filter_map(|q| q.front().map(|r| r.ready_at))
            .min()
    }

    /// Returns a granted transaction's slot to the free list once the engine
    /// has fully retired it (no queue entry, no pending completion event).
    ///
    /// The slot's generation is bumped so any stale copy of `id` compares
    /// unequal to the slot's next occupant. Releasing an id twice, or one
    /// that is still queued, corrupts the slab discipline — callers release
    /// exactly once, at transaction completion.
    ///
    /// # Panics
    ///
    /// Panics if `id`'s generation does not match the slot's current one
    /// (double release or foreign id).
    pub fn release(&mut self, id: TxnId) {
        let slot = id.index();
        assert_eq!(
            self.slot_generations[slot],
            id.generation(),
            "release of stale or double-released {id}"
        );
        self.slot_generations[slot] = self.slot_generations[slot].wrapping_add(1);
        self.free_slots.push(slot as u32);
    }

    /// Upper bound (exclusive) on [`TxnId::index`] over all ids handed out
    /// so far: the slab size an id-indexed side table needs.
    pub fn slot_count(&self) -> usize {
        self.slot_generations.len()
    }

    /// Time the current transfer finishes (0 when never used).
    pub fn busy_until(&self) -> u64 {
        self.busy_until
    }

    /// Number of queued (not yet granted) transactions.
    pub fn pending(&self) -> usize {
        self.demand.iter().chain(self.prefetch.iter()).map(VecDeque::len).sum()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &BusStats {
        &self.stats
    }

    /// Zeroes the accumulated statistics; queues and timing state are
    /// untouched. Equivalent to `open_window(0)`: subsequent accounting is
    /// unclipped.
    pub fn reset_stats(&mut self) {
        self.open_window(0);
    }

    /// Opens a statistics window at time `start` (warm-up windowing):
    /// zeroes the counters and clips subsequent occupancy/queueing
    /// accounting to `start..`, so grants of requests that were submitted —
    /// or even started — before the window opened only contribute their
    /// in-window portion. Queues and timing state are untouched.
    pub fn open_window(&mut self, start: u64) {
        self.stats = BusStats::default();
        self.window_start = start;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: u64) -> LineAddr {
        LineAddr::from_raw(n)
    }

    fn bus() -> Bus {
        Bus::new(BusConfig::paper(8), 4)
    }

    #[test]
    fn idle_bus_reports_idle() {
        let mut b = bus();
        assert_eq!(b.try_grant(0), GrantOutcome::Idle);
        assert_eq!(b.pending(), 0);
    }

    #[test]
    fn fill_waits_uncontended_portion() {
        let mut b = bus();
        b.submit(0, ProcId(0), line(1), BusOp::Read, Priority::Demand);
        // Not eligible until cycle 92.
        assert_eq!(b.try_grant(0), GrantOutcome::WaitingUntil(92));
        match b.try_grant(92) {
            GrantOutcome::Granted { request, completes_at } => {
                assert_eq!(request.op, BusOp::Read);
                assert_eq!(completes_at, 100, "unloaded fill completes at total latency");
            }
            o => panic!("expected grant, got {o:?}"),
        }
    }

    #[test]
    fn upgrade_is_immediate_and_short() {
        let mut b = bus();
        b.submit(10, ProcId(1), line(2), BusOp::Upgrade, Priority::Demand);
        match b.try_grant(10) {
            GrantOutcome::Granted { completes_at, .. } => assert_eq!(completes_at, 12),
            o => panic!("expected grant, got {o:?}"),
        }
        assert_eq!(b.stats().upgrades, 1);
        assert_eq!(b.stats().busy_cycles, 2);
    }

    #[test]
    fn busy_bus_defers() {
        let mut b = bus();
        b.submit(0, ProcId(0), line(1), BusOp::WriteBack, Priority::Demand);
        let first = b.try_grant(0);
        assert!(matches!(first, GrantOutcome::Granted { completes_at: 8, .. }));
        b.submit(1, ProcId(1), line(2), BusOp::WriteBack, Priority::Demand);
        assert_eq!(b.try_grant(1), GrantOutcome::BusyUntil(8));
        assert!(matches!(b.try_grant(8), GrantOutcome::Granted { completes_at: 16, .. }));
    }

    #[test]
    fn demand_beats_prefetch() {
        let mut b = bus();
        b.submit(0, ProcId(0), line(1), BusOp::Read, Priority::Prefetch);
        b.submit(0, ProcId(1), line(2), BusOp::Read, Priority::Demand);
        match b.try_grant(92) {
            GrantOutcome::Granted { request, .. } => {
                assert_eq!(request.proc, ProcId(1), "demand request must win");
                assert_eq!(request.priority, Priority::Demand);
            }
            o => panic!("expected grant, got {o:?}"),
        }
        match b.try_grant(100) {
            GrantOutcome::Granted { request, .. } => {
                assert_eq!(request.proc, ProcId(0));
                assert_eq!(request.priority, Priority::Prefetch);
            }
            o => panic!("expected grant, got {o:?}"),
        }
        assert_eq!(b.stats().prefetch_grants, 1);
    }

    #[test]
    fn round_robin_rotates_across_procs() {
        let mut b = bus();
        for p in 0..4u8 {
            b.submit(0, ProcId(p), line(u64::from(p)), BusOp::WriteBack, Priority::Demand);
        }
        let mut order = Vec::new();
        let mut t = 0;
        for _ in 0..4 {
            match b.try_grant(t) {
                GrantOutcome::Granted { request, completes_at } => {
                    order.push(request.proc.0);
                    t = completes_at;
                }
                o => panic!("expected grant, got {o:?}"),
            }
        }
        assert_eq!(order, vec![1, 2, 3, 0], "round-robin starts after cursor and wraps");
    }

    #[test]
    fn promote_moves_prefetch_to_demand() {
        let mut b = bus();
        let pf = b.submit(0, ProcId(0), line(1), BusOp::Read, Priority::Prefetch);
        b.submit(0, ProcId(1), line(2), BusOp::Read, Priority::Prefetch);
        assert!(b.promote(pf));
        match b.try_grant(92) {
            GrantOutcome::Granted { request, .. } => {
                assert_eq!(request.id, pf);
                assert_eq!(request.priority, Priority::Demand);
            }
            o => panic!("expected grant, got {o:?}"),
        }
        // Promoting an already-granted txn fails.
        assert!(!b.promote(pf));
    }

    #[test]
    fn queueing_cycles_accumulate_under_contention() {
        let mut b = bus();
        b.submit(0, ProcId(0), line(1), BusOp::WriteBack, Priority::Demand);
        b.submit(0, ProcId(1), line(2), BusOp::WriteBack, Priority::Demand);
        let _ = b.try_grant(0); // grant P0 at 0, busy until 8
        let _ = b.try_grant(8); // P1 waited 8 cycles
        assert_eq!(b.stats().queueing_cycles, 8);
        assert_eq!(b.stats().writebacks, 2);
        assert_eq!(b.stats().busy_cycles, 16);
    }

    #[test]
    fn utilization_math() {
        let s = BusStats { busy_cycles: 25, ..BusStats::default() };
        assert!((s.utilization(100) - 0.25).abs() < 1e-12);
        assert_eq!(s.utilization(0), 0.0);
    }

    #[test]
    fn per_proc_fifo_order_within_class() {
        let mut b = bus();
        let a = b.submit(0, ProcId(0), line(1), BusOp::WriteBack, Priority::Demand);
        let c = b.submit(0, ProcId(0), line(2), BusOp::WriteBack, Priority::Demand);
        match b.try_grant(0) {
            GrantOutcome::Granted { request, .. } => assert_eq!(request.id, a),
            o => panic!("{o:?}"),
        }
        match b.try_grant(8) {
            GrantOutcome::Granted { request, .. } => assert_eq!(request.id, c),
            o => panic!("{o:?}"),
        }
    }

    #[test]
    fn released_slot_is_recycled_with_new_generation() {
        let mut b = bus();
        let a = b.submit(0, ProcId(0), line(1), BusOp::WriteBack, Priority::Demand);
        assert_eq!(a.index(), 0);
        assert!(matches!(b.try_grant(0), GrantOutcome::Granted { .. }));
        b.release(a);
        let c = b.submit(20, ProcId(1), line(2), BusOp::WriteBack, Priority::Demand);
        assert_eq!(c.index(), a.index(), "freed slot is reused");
        assert_ne!(c, a, "recycled id carries a fresh generation");
        assert_eq!(b.slot_count(), 1, "no new slot was allocated");
    }

    #[test]
    fn live_transactions_get_distinct_slots() {
        let mut b = bus();
        let ids: Vec<TxnId> = (0..4u8)
            .map(|p| b.submit(0, ProcId(p), line(u64::from(p)), BusOp::WriteBack, Priority::Demand))
            .collect();
        let mut slots: Vec<usize> = ids.iter().map(|i| i.index()).collect();
        slots.sort_unstable();
        assert_eq!(slots, vec![0, 1, 2, 3]);
        assert_eq!(b.slot_count(), 4);
    }

    #[test]
    #[should_panic(expected = "stale or double-released")]
    fn double_release_panics() {
        let mut b = bus();
        let a = b.submit(0, ProcId(0), line(1), BusOp::WriteBack, Priority::Demand);
        let _ = b.try_grant(0);
        b.release(a);
        b.release(a);
    }

    #[test]
    fn window_clips_straddling_grant_occupancy() {
        let mut b = bus();
        b.submit(0, ProcId(0), line(1), BusOp::WriteBack, Priority::Demand);
        // Window opens at 5; the grant at 0 occupies 0..8, only 5..8 counts.
        b.open_window(5);
        assert!(matches!(b.try_grant(0), GrantOutcome::Granted { completes_at: 8, .. }));
        assert_eq!(b.stats().busy_cycles, 3, "only the in-window 5..8 portion");
        assert_eq!(b.stats().writebacks, 1, "op counts are not time-prorated");
    }

    #[test]
    fn window_clips_queueing_before_start() {
        let mut b = bus();
        b.submit(0, ProcId(0), line(1), BusOp::WriteBack, Priority::Demand);
        b.submit(0, ProcId(1), line(2), BusOp::WriteBack, Priority::Demand);
        let _ = b.try_grant(0); // P0 granted at 0, busy until 8
        b.open_window(6);
        let _ = b.try_grant(8); // P1 waited 0..8; only 6..8 is in-window
        assert_eq!(b.stats().queueing_cycles, 2);
        assert_eq!(b.stats().busy_cycles, 8, "P1's own occupancy 8..16 is fully in-window");
    }

    #[test]
    fn window_entirely_after_grant_counts_nothing() {
        let mut b = bus();
        b.submit(0, ProcId(0), line(1), BusOp::WriteBack, Priority::Demand);
        b.open_window(100);
        assert!(matches!(b.try_grant(0), GrantOutcome::Granted { .. }));
        assert_eq!(b.stats().busy_cycles, 0, "grant 0..8 lies before the window");
        assert_eq!(b.stats().queueing_cycles, 0);
    }

    #[test]
    fn reset_stats_reverts_to_unclipped_accounting() {
        let mut b = bus();
        b.open_window(50);
        b.reset_stats();
        b.submit(0, ProcId(0), line(1), BusOp::WriteBack, Priority::Demand);
        assert!(matches!(b.try_grant(0), GrantOutcome::Granted { .. }));
        assert_eq!(b.stats().busy_cycles, 8, "full occupancy after reset_stats");
    }

    #[test]
    fn invalidating_ops_counts_rdx_and_upgrades() {
        let s = BusStats { read_exclusives: 3, upgrades: 2, reads: 10, ..BusStats::default() };
        assert_eq!(s.invalidating_ops(), 5);
        assert_eq!(s.total_ops(), 15);
    }

    #[test]
    fn update_broadcast_is_immediate_short_and_counted() {
        let mut b = bus();
        b.submit(10, ProcId(1), line(2), BusOp::Update, Priority::Demand);
        match b.try_grant(10) {
            GrantOutcome::Granted { completes_at, .. } => {
                assert_eq!(completes_at, 12, "word broadcast occupies the invalidation slot")
            }
            o => panic!("expected grant, got {o:?}"),
        }
        assert_eq!(b.stats().updates, 1);
        assert_eq!(b.stats().upgrades, 0, "broadcasts are not upgrades");
        assert_eq!(b.stats().busy_cycles, 2);
        assert_eq!(b.stats().total_ops(), 1);
        assert_eq!(b.stats().invalidating_ops(), 0, "an update invalidates nothing");
    }
}
