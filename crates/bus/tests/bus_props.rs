//! Property tests for the bus: every submitted transaction is eventually
//! granted, demand strictly beats prefetch, and occupancy accounting closes.

use charlie_bus::{Bus, BusConfig, GrantOutcome, Priority};
use charlie_cache::protocol::BusOp;
use charlie_trace::{LineAddr, ProcId};
use proptest::prelude::*;

#[derive(Clone, Debug)]
struct Req {
    proc: u8,
    op: u8,
    prefetch: bool,
    delay: u8,
}

fn arb_reqs() -> impl proptest::strategy::Strategy<Value = Vec<Req>> {
    proptest::collection::vec(
        (0u8..4, 0u8..4, any::<bool>(), 0u8..20)
            .prop_map(|(proc, op, prefetch, delay)| Req { proc, op, prefetch, delay }),
        1..80,
    )
}

fn op_of(code: u8) -> BusOp {
    match code {
        0 => BusOp::Read,
        1 => BusOp::ReadExclusive,
        2 => BusOp::Upgrade,
        _ => BusOp::WriteBack,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Drain-to-completion: everything submitted is granted exactly once and
    /// the busy-cycle ledger matches the per-op occupancy.
    #[test]
    fn all_requests_drain(reqs in arb_reqs(), transfer in 2u64..33) {
        let cfg = BusConfig::paper(transfer);
        let mut bus = Bus::new(cfg, 4);
        let mut t = 0u64;
        let mut expected_busy = 0u64;
        for (i, r) in reqs.iter().enumerate() {
            t += u64::from(r.delay);
            let prio = if r.prefetch { Priority::Prefetch } else { Priority::Demand };
            bus.submit(t, ProcId(r.proc), LineAddr::from_raw(i as u64), op_of(r.op), prio);
            expected_busy += if op_of(r.op).transfers_data() {
                cfg.transfer_cycles
            } else {
                cfg.invalidate_cycles
            };
        }
        let mut grants = 0usize;
        let mut guard = 0;
        loop {
            guard += 1;
            prop_assert!(guard < 100_000, "bus must not livelock");
            match bus.try_grant(t) {
                GrantOutcome::Granted { completes_at, .. } => {
                    prop_assert!(completes_at > t);
                    grants += 1;
                    t = completes_at;
                }
                GrantOutcome::BusyUntil(next) | GrantOutcome::WaitingUntil(next) => {
                    prop_assert!(next > t, "retry time must advance");
                    t = next;
                }
                GrantOutcome::Idle => break,
            }
        }
        prop_assert_eq!(grants, reqs.len());
        prop_assert_eq!(bus.pending(), 0);
        prop_assert_eq!(bus.stats().busy_cycles, expected_busy);
        prop_assert_eq!(bus.stats().total_ops() as usize, reqs.len());
    }

    /// Strict priority: while any demand request is eligible, no prefetch is
    /// granted.
    #[test]
    fn demand_always_beats_prefetch(n_demand in 1usize..8, n_prefetch in 1usize..8) {
        let mut bus = Bus::new(BusConfig::paper(8), 4);
        for i in 0..n_prefetch {
            bus.submit(0, ProcId((i % 4) as u8), LineAddr::from_raw(i as u64),
                BusOp::WriteBack, Priority::Prefetch);
        }
        for i in 0..n_demand {
            bus.submit(0, ProcId((i % 4) as u8), LineAddr::from_raw(100 + i as u64),
                BusOp::WriteBack, Priority::Demand);
        }
        let mut t = 0;
        for k in 0..(n_demand + n_prefetch) {
            match bus.try_grant(t) {
                GrantOutcome::Granted { request, completes_at } => {
                    if k < n_demand {
                        prop_assert_eq!(request.priority, Priority::Demand,
                            "grant {} must be demand", k);
                    } else {
                        prop_assert_eq!(request.priority, Priority::Prefetch);
                    }
                    t = completes_at;
                }
                other => prop_assert!(false, "expected grant, got {:?}", other),
            }
        }
    }

    /// Round-robin fairness: with one queued request per processor, each
    /// processor is granted exactly once before any second grant.
    #[test]
    fn round_robin_serves_everyone(procs in 2usize..5) {
        let mut bus = Bus::new(BusConfig::paper(4), procs);
        for p in 0..procs {
            bus.submit(0, ProcId(p as u8), LineAddr::from_raw(p as u64),
                BusOp::WriteBack, Priority::Demand);
        }
        let mut served = std::collections::HashSet::new();
        let mut t = 0;
        for _ in 0..procs {
            match bus.try_grant(t) {
                GrantOutcome::Granted { request, completes_at } => {
                    prop_assert!(served.insert(request.proc), "no proc served twice first");
                    t = completes_at;
                }
                other => prop_assert!(false, "expected grant, got {:?}", other),
            }
        }
        prop_assert_eq!(served.len(), procs);
    }
}
