//! Mp3d: rarefied hypersonic particle flow (SPLASH).
//!
//! The paper's profile: the worst cache behaviour of the suite — large
//! streaming particle arrays updated every step plus migratory space cells —
//! giving very high miss rates and the first workload to saturate the bus
//! (utilization 1.00 already at a 16-cycle transfer for the prefetching
//! runs). NP baseline: processor utilization 0.39→0.22, bus utilization
//! 0.48→1.00. Mp3d shows the paper's headline tension: the most latency to
//! hide, and the least bus headroom to hide it with.

use crate::mix::MixParams;
use crate::Layout;

/// Generator parameters for Mp3d.
pub fn params(layout: Layout) -> MixParams {
    MixParams {
        w_hot: 772,
        w_stream: 100,
        w_conflict: 0,
        w_false_share: 34,
        w_migratory: 21,
        w_read_shared: 60,

        hot_lines: 250,
        hot_write_pct: 30,
        stream_bytes: 0x0010_0000, // 1 MB particle array per processor
        stream_write_pct: 75,      // position/velocity updates
        stream_shared: false,
        conflict_aliases: 1,
        conflict_sets: 0,
        conflict_overlaps_hot: false,
        fs_lines: 64,
        fs_write_pct: 60,
        fs_hot_lines: 3,
        fs_hot_pct: 60,
        mig_objects: 128,
        mig_burst: (4, 2),
        mig_lock_pct: 10, // Mp3d is mostly lock-free (chaotic updates)
        rs_lines: 192,
        work_mean: 3,
        barrier_every: 30_000,
        padded_locality_boost: false,
        layout,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streaming_dominated_profile() {
        let p = params(Layout::Interleaved);
        assert!(p.w_stream >= 40, "particle streaming dominates");
        assert!(p.stream_bytes >= 0x0010_0000, "array far exceeds the 32 KB cache");
        assert!(p.stream_write_pct >= 50, "every particle is updated");
        assert!(p.mig_lock_pct <= 20, "mostly lock-free");
    }
}
