//! Pverify: parallel boolean-circuit functional-equivalence verification
//! (Ma, Devadas, Wei & Sangiovanni-Vincentelli).
//!
//! The paper's profile: heavy sharing with false sharing the dominant miss
//! source; the largest prefetching winner once write-shared data is handled
//! (PWS reaches a 1.39 speedup at the fast bus). NP baseline: processor
//! utilization 0.41→0.18, bus utilization 0.42→1.00. Restructuring (Table 4)
//! cuts the invalidation miss rate by ~4× — "virtually all of the
//! improvement came from the reduction in false sharing misses" — while
//! non-sharing misses rise slightly.

use crate::mix::MixParams;
use crate::Layout;

/// Generator parameters for Pverify.
pub fn params(layout: Layout) -> MixParams {
    MixParams {
        w_hot: 874,
        w_stream: 18,
        w_conflict: 0,
        w_false_share: 50,
        w_migratory: 7,
        w_read_shared: 50,

        hot_lines: 350,
        hot_write_pct: 20,
        stream_bytes: 0x0008_0000, // 512 KB private stream
        stream_write_pct: 20,
        stream_shared: false,
        conflict_aliases: 1,
        conflict_sets: 0,
        conflict_overlaps_hot: false,
        fs_lines: 96,
        fs_write_pct: 45,
        fs_hot_lines: 4,
        fs_hot_pct: 60,
        mig_objects: 128,
        mig_burst: (3, 2),
        mig_lock_pct: 60,
        rs_lines: 256,
        work_mean: 3,
        barrier_every: 50_000,
        padded_locality_boost: false,
        layout,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharing_dominated_profile() {
        let p = params(Layout::Interleaved);
        assert!(p.w_false_share >= 20, "false sharing dominates Pverify");
        assert!(p.mig_lock_pct >= 50, "fine-grain locking");
        assert!(!p.padded_locality_boost, "restructuring only removes false sharing");
    }
}
