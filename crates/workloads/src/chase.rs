//! Pointer-chase workload: linked-list and binary-tree traversal over
//! per-processor node pools with allocation churn.
//!
//! The paper's five applications are array-structured; their miss streams
//! carry either spatial regularity (streams, grids) or temporal regularity
//! (hot sets). Linked structures have neither: the address of the next node
//! lives *in* the current node, so the miss stream follows the allocation
//! order of the heap — exactly the access pattern the on-line hardware
//! prefetchers in `charlie-prefetch::hw` disagree about. A stride prefetcher
//! sees no stable delta; a Markov (correlation) prefetcher can replay the
//! miss-successor pairs of earlier traversals.
//!
//! The generator models that structure without simulating a real allocator:
//!
//! * each processor owns a private **node pool** twice the cache size, so a
//!   full traversal misses on most nodes every pass;
//! * the **list order** is a deterministic shuffle of the pool (allocation
//!   churn at program start scrambles the heap), and every node is *written*
//!   (initialized) before anything reads it;
//! * each pass walks the whole list reading the pointer word (and sometimes
//!   a payload word), then descends a private binary **tree** a few times
//!   (branchy pointer chasing: successors are data-dependent);
//! * between passes a **churn** step reallocates a few nodes: the relinked
//!   node and its predecessor are rewritten, and the traversal order changes
//!   under the prefetcher's feet;
//! * passes are separated by barriers (every processor emits the same
//!   episode count), mirroring the phase structure of the mix workloads.

use crate::mix::RegionMap;
use crate::WorkloadConfig;
use charlie_trace::{Addr, ProcTraceBuilder, Trace, TraceBuilder};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Line size every node is laid out for (one node per 32-byte line).
const BLOCK: u64 = 32;
/// Payload words per node (word 0 is the next pointer).
const WORDS: u64 = BLOCK / 4;

/// Nodes in the list pool: 2048 lines = 64 KB, twice the paper's cache, so
/// steady-state traversals are capacity-miss streams.
const LIST_NODES: usize = 2048;
/// Nodes in the implicit binary tree: 1024 lines = one full cache.
const TREE_NODES: usize = 1024;
/// Root-to-leaf descents per pass.
const TREE_DESCENTS: usize = 32;
/// Nodes reallocated (relinked) between passes.
const CHURN_PER_PASS: usize = 64;
/// Offset of the list pool inside a processor's private region (disjoint
/// from the mix generator's stream/conflict offsets).
const LIST_OFFSET: u64 = 0x00C0_0000;
/// Offset of the tree inside a processor's private region.
const TREE_OFFSET: u64 = 0x00E0_0000;

/// Per-processor generator state.
struct ChaseGen {
    rng: StdRng,
    /// Current list order: `order[i]` is the node stored at list position
    /// `i`; traversals visit positions in sequence, so the address stream is
    /// the (churned) allocation order.
    order: Vec<u32>,
    refs_done: usize,
}

impl ChaseGen {
    fn work(&mut self, proc: &mut ProcTraceBuilder<'_>) {
        proc.work(self.rng.random_range(1..8u32));
    }

    fn read(&mut self, proc: &mut ProcTraceBuilder<'_>, addr: u64) {
        proc.read(Addr::new(addr));
        self.refs_done += 1;
    }

    fn write(&mut self, proc: &mut ProcTraceBuilder<'_>, addr: u64) {
        proc.write(Addr::new(addr));
        self.refs_done += 1;
    }
}

fn list_addr(map: &RegionMap, p: usize, node: u32, word: u64) -> u64 {
    map.private(p, LIST_OFFSET + u64::from(node) * BLOCK + word * 4)
}

fn tree_addr(map: &RegionMap, p: usize, node: u32, word: u64) -> u64 {
    map.private(p, TREE_OFFSET + u64::from(node) * BLOCK + word * 4)
}

/// Generates the pointer-chase trace for `cfg`. Deterministic in the seed;
/// every processor emits the same number of barrier episodes; all data stays
/// inside the private regions far below the reserved sync space.
pub fn generate_chase(cfg: &WorkloadConfig) -> Trace {
    let map = RegionMap::default();
    let mut builder = TraceBuilder::new(cfg.procs);

    // Fixed per-run phase structure: the per-pass cost is deterministic
    // enough to size the pass count from the reference budget, and a final
    // budget-filling partial walk emits no barriers, so every processor's
    // episode count is identical by construction.
    let init_cost = LIST_NODES + TREE_NODES;
    let pass_cost = LIST_NODES + TREE_DESCENTS * 10 + CHURN_PER_PASS * 2;
    let passes = 1 + cfg.refs_per_proc.saturating_sub(init_cost) / pass_cost;

    for p in 0..cfg.procs {
        let mut st = ChaseGen {
            rng: StdRng::seed_from_u64(
                cfg.seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(p as u64 + 1)),
            ),
            order: (0..LIST_NODES as u32).collect(),
            refs_done: 0,
        };
        let mut proc = builder.proc(p);

        // Allocation: Fisher–Yates churn of the heap order, then every node
        // is initialized (written) in that order before any traversal reads
        // it — the "no references before allocation" contract.
        for i in (1..LIST_NODES).rev() {
            let j = st.rng.random_range(0..(i + 1) as u64) as usize;
            st.order.swap(i, j);
        }
        for i in 0..LIST_NODES {
            let node = st.order[i];
            st.work(&mut proc);
            st.write(&mut proc, list_addr(&map, p, node, 0));
        }
        for node in 0..TREE_NODES as u32 {
            st.work(&mut proc);
            st.write(&mut proc, tree_addr(&map, p, node, 0));
        }

        for pass in 0..passes {
            // List traversal: read each node's pointer word; sometimes a
            // payload word of the same node.
            for i in 0..LIST_NODES {
                let node = st.order[i];
                st.work(&mut proc);
                st.read(&mut proc, list_addr(&map, p, node, 0));
                if st.rng.random_range(0..100u32) < 25 {
                    let word = st.rng.random_range(1..WORDS);
                    st.read(&mut proc, list_addr(&map, p, node, word));
                }
            }
            // Tree descents: root to a leaf, branch chosen per level.
            for _ in 0..TREE_DESCENTS {
                let mut node = 0u32;
                while (node as usize) < TREE_NODES {
                    st.work(&mut proc);
                    st.read(&mut proc, tree_addr(&map, p, node, 0));
                    node = 2 * node + 1 + st.rng.random_range(0..2u64) as u32;
                }
            }
            // Churn: reallocate a few nodes — swap two list positions and
            // rewrite the moved node and its predecessor (the relink).
            for _ in 0..CHURN_PER_PASS {
                let a = st.rng.random_range(1..LIST_NODES as u64) as usize;
                let b = st.rng.random_range(1..LIST_NODES as u64) as usize;
                st.order.swap(a, b);
                st.work(&mut proc);
                st.write(&mut proc, list_addr(&map, p, st.order[a], 0));
                st.write(&mut proc, list_addr(&map, p, st.order[a - 1], 0));
            }
            proc.barrier(pass as u32);
        }

        // Fill any remaining budget with a barrier-free partial walk.
        let mut i = 0usize;
        while st.refs_done < cfg.refs_per_proc {
            let node = st.order[i % LIST_NODES];
            st.work(&mut proc);
            st.read(&mut proc, list_addr(&map, p, node, 0));
            i += 1;
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn tiny() -> WorkloadConfig {
        WorkloadConfig { refs_per_proc: 8_000, ..WorkloadConfig::default() }
    }

    #[test]
    fn chase_meets_budget_and_validates() {
        let t = generate_chase(&tiny());
        assert!(t.validate().is_ok());
        for (_, s) in t.iter() {
            assert!(s.num_accesses() >= 8_000);
        }
    }

    #[test]
    fn chase_is_deterministic_and_seed_sensitive() {
        assert_eq!(generate_chase(&tiny()), generate_chase(&tiny()));
        let other = WorkloadConfig { seed: 1, ..tiny() };
        assert_ne!(generate_chase(&tiny()), generate_chase(&other));
    }

    #[test]
    fn every_node_written_before_first_read() {
        let t = generate_chase(&tiny());
        for (_, s) in t.iter() {
            let mut allocated = HashSet::new();
            for a in s.accesses() {
                let line = a.addr.line(BLOCK);
                if a.kind.is_write() {
                    allocated.insert(line);
                } else {
                    assert!(allocated.contains(&line), "read of unallocated node {line:?}");
                }
            }
        }
    }

    #[test]
    fn list_order_is_not_sequential() {
        // The churned allocation order must not degenerate into the
        // stride-friendly sequential walk it is supposed to avoid.
        let t = generate_chase(&tiny());
        let s = t.proc(0);
        let reads: Vec<i64> =
            s.accesses().filter(|a| !a.kind.is_write()).map(|a| a.addr.raw() as i64).collect();
        let sequential = reads
            .windows(2)
            .filter(|w| (w[1] - w[0]).unsigned_abs() == BLOCK)
            .count();
        assert!(
            sequential < reads.len() / 4,
            "{sequential}/{} consecutive-line read pairs — too sequential",
            reads.len()
        );
    }
}
