//! LocusRoute: a commercial-quality VLSI standard-cell router (SPLASH).
//!
//! The paper's profile: moderate miss rate dominated by the shared routing
//! *cost grid*, which wires are routed through region by region — classic
//! *sequential sharing* (a region is written by one processor, later read
//! and rewritten by another). NP baseline: processor utilization 0.64→0.54,
//! bus utilization 0.21→0.89. Restructuring does not help it significantly.

use crate::mix::MixParams;
use crate::Layout;

/// Generator parameters for LocusRoute.
pub fn params(layout: Layout) -> MixParams {
    MixParams {
        w_hot: 884,
        w_stream: 22,
        w_conflict: 3,
        w_false_share: 3,
        w_migratory: 8,
        w_read_shared: 80,

        hot_lines: 330,
        hot_write_pct: 25,
        stream_bytes: 0x0008_0000, // 512 KB shared cost grid
        stream_write_pct: 30,
        stream_shared: true,
        conflict_aliases: 2,
        conflict_sets: 48,
        conflict_overlaps_hot: false,
        fs_lines: 32,
        fs_write_pct: 40,
        fs_hot_lines: 2,
        fs_hot_pct: 50,
        mig_objects: 96,
        mig_burst: (4, 2),
        mig_lock_pct: 50,
        rs_lines: 256,
        work_mean: 3,
        barrier_every: 40_000,
        padded_locality_boost: false,
        layout,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_grid_is_shared_stream() {
        let p = params(Layout::Interleaved);
        assert!(p.stream_shared, "the cost grid is the shared structure");
        assert!(p.w_stream > 0);
        assert!(p.stream_write_pct > 0, "routing writes the grid");
    }
}
