//! Water: molecular dynamics of liquid water (SPLASH).
//!
//! The paper's profile: the best cache behaviour of the suite — per-molecule
//! state fits the cache, sharing is light — so there is almost nothing for
//! prefetching to win ("the average processor utilization for Water was .82
//! with the fastest bus and .81 with the slowest"; the best possible speedup
//! is ~1.2). NP baseline: bus utilization 0.10→0.38.

use crate::mix::MixParams;
use crate::Layout;

/// Generator parameters for Water.
pub fn params(layout: Layout) -> MixParams {
    MixParams {
        w_hot: 925,
        w_stream: 5,
        w_conflict: 0,
        w_false_share: 1,
        w_migratory: 3,
        w_read_shared: 60,

        hot_lines: 380,
        hot_write_pct: 25,
        stream_bytes: 0x0003_0000, // 192 KB private inter-molecule sweep
        stream_write_pct: 30,
        stream_shared: false,
        conflict_aliases: 1,
        conflict_sets: 0,
        conflict_overlaps_hot: false,
        fs_lines: 8,
        fs_write_pct: 40,
        fs_hot_lines: 1,
        fs_hot_pct: 50,
        mig_objects: 32,
        mig_burst: (6, 2),
        mig_lock_pct: 40,
        rs_lines: 128,
        work_mean: 5,
        barrier_every: 50_000,
        padded_locality_boost: false,
        layout,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_friendly_profile() {
        let p = params(Layout::Interleaved);
        assert!(p.w_hot >= 80, "working set fits the cache");
        assert!(p.w_false_share <= 2, "very light sharing");
        assert!(p.hot_lines < 1024, "hot set fits a 1024-line cache");
    }
}
