//! Topopt: topological optimization of VLSI circuits by parallel simulated
//! annealing (Devadas & Newton).
//!
//! The paper's profile: a *small* shared data set, "the high degree of write
//! sharing and the large number of conflict misses it exhibits even with the
//! small shared data set size" (§3.2). Its NP baseline: processor
//! utilization 0.65→0.59 (fast→slow bus), bus utilization 0.18→0.76
//! (4→32-cycle transfer). Restructuring (Table 4) eliminates almost all
//! false sharing *and* improves locality enough to halve non-sharing misses.

use crate::mix::MixParams;
use crate::Layout;

/// Generator parameters for Topopt.
pub fn params(layout: Layout) -> MixParams {
    // Restructuring improves Topopt's locality across the board (Table 4
    // halves even the non-sharing misses): the annealing sweep mostly turns
    // into hot-set reuse.
    let restructured = layout == Layout::Padded;
    MixParams {
        w_hot: if restructured { 914 } else { 895 },
        w_stream: if restructured { 6 } else { 25 },
        w_conflict: 4,
        w_false_share: 16,
        w_migratory: 4,
        w_read_shared: 60,

        hot_lines: 300,
        hot_write_pct: 25,
        stream_bytes: 0x0004_0000,
        stream_write_pct: 30,
        stream_shared: false,
        conflict_aliases: 3,
        conflict_sets: 48,
        conflict_overlaps_hot: true,
        fs_lines: 48,
        fs_write_pct: 50,
        fs_hot_lines: 3,
        fs_hot_pct: 60,
        mig_objects: 64,
        mig_burst: (3, 1),
        mig_lock_pct: 30,
        rs_lines: 128,
        work_mean: 3,
        barrier_every: 25_000,
        padded_locality_boost: true,
        layout,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn annealing_profile() {
        let p = params(Layout::Interleaved);
        assert!(p.w_conflict > 0, "conflict misses are Topopt's signature");
        assert!(p.w_false_share > 0, "heavy write sharing");
        assert!(p.padded_locality_boost, "restructuring also improves locality");
        assert_eq!(p.layout, Layout::Interleaved);
    }

    #[test]
    fn padded_layout_propagates() {
        assert_eq!(params(Layout::Padded).layout, Layout::Padded);
    }
}
