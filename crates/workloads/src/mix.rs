//! The unified workload engine: every application is a parameterization of
//! six access components plus a synchronization cadence.
//!
//! Components:
//!
//! * **hot** — random accesses within a small private working set that fits
//!   the cache (hits after warm-up);
//! * **stream** — a sequential walk over an array much larger than the cache
//!   (pure capacity misses, one per line); can walk a *shared* grid with a
//!   per-processor starting offset to produce LocusRoute-style sequential
//!   sharing;
//! * **conflict** — alternating accesses to lines that alias in the
//!   direct-mapped cache (conflict misses, Topopt's signature);
//! * **false-share** — reads/writes of this processor's *own word* inside
//!   shared lines; under [`Layout::Interleaved`] eight processors share each
//!   line (pure false sharing), under [`Layout::Padded`] each element gets
//!   its own line;
//! * **migratory** — lock-optional read-modify-write bursts on shared
//!   objects that migrate between processors (sequential true sharing);
//! * **read-shared** — reads of a shared read-only table.

use crate::{Layout, WorkloadConfig};
use charlie_trace::{Addr, Trace, TraceBuilder};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Block size every region is laid out for (the paper's 32-byte lines).
const BLOCK: u64 = 32;

/// Fixed address map shared by all generators. All regions stay far below
/// the simulator's reserved sync region at `0xF000_0000`.
#[derive(Copy, Clone, Debug)]
pub struct RegionMap {
    /// Base of processor `p`'s private region (hot set, private stream,
    /// conflict groups).
    pub private_base: u64,
    /// Stride between consecutive processors' private regions.
    pub private_stride: u64,
    /// Base of the falsely-shared region.
    pub fs_base: u64,
    /// Base of the migratory-object region.
    pub mig_base: u64,
    /// Base of the read-shared table.
    pub rs_base: u64,
    /// Base of the shared streaming grid (LocusRoute's cost grid).
    pub grid_base: u64,
}

impl Default for RegionMap {
    fn default() -> Self {
        RegionMap {
            private_base: 0x1000_0000,
            private_stride: 0x0100_0000,
            fs_base: 0x8000_0000,
            mig_base: 0x8800_0000,
            rs_base: 0x9000_0000,
            grid_base: 0x9800_0000,
        }
    }
}

impl RegionMap {
    /// Byte address `offset` inside processor `proc`'s private region.
    pub(crate) fn private(&self, proc: usize, offset: u64) -> u64 {
        self.private_base + proc as u64 * self.private_stride + offset
    }
}

/// Cache sets of the paper's 32 KB direct-mapped cache; regions are placed
/// in disjoint set ranges so the *intended* conflict behaviour (the
/// `conflict` component, stream sweeps) is the only conflict behaviour.
const CACHE_SETS: u64 = 1024;

/// Per-workload set-range allocation for the frequently-revisited regions.
/// Contiguous ranges, assigned in a fixed order; `generate_mix` asserts the
/// budget fits the cache.
#[derive(Copy, Clone, Debug)]
struct SetPlan {
    rs_off: u64,
    fs_off: u64,
    mig_off: u64,
    conflict_off: u64,
}

impl SetPlan {
    fn new(params: &MixParams) -> SetPlan {
        let hot = params.hot_lines as u64;
        let rs_off = hot;
        let fs_off = rs_off + params.rs_lines as u64;
        let mig_off = fs_off + params.fs_lines as u64;
        let after_mig = mig_off + params.mig_objects as u64 * MIG_OBJ_LINES;
        // Restructuring relocates the aliasing data as part of the layout
        // transformation, so the overlap (and the thrash) only exists in the
        // original layout.
        let overlap = params.conflict_overlaps_hot
            && !(params.padded_locality_boost && params.layout == Layout::Padded);
        let conflict_off = if overlap { 0 } else { after_mig };
        let total = if overlap { after_mig } else { after_mig + u64::from(params.conflict_sets) };
        assert!(
            total <= CACHE_SETS,
            "workload set budget {total} exceeds the {CACHE_SETS}-set cache; shrink the regions"
        );
        SetPlan { rs_off, fs_off, mig_off, conflict_off }
    }
}

/// Parameters of one synthetic application. Weights are relative (they need
/// not sum to anything particular); a weight of zero disables the component.
#[derive(Copy, Clone, Debug)]
pub struct MixParams {
    /// Component weight: private hot set.
    pub w_hot: u32,
    /// Component weight: streaming walk.
    pub w_stream: u32,
    /// Component weight: conflict-alias accesses.
    pub w_conflict: u32,
    /// Component weight: falsely-shared element accesses.
    pub w_false_share: u32,
    /// Component weight: migratory-object bursts.
    pub w_migratory: u32,
    /// Component weight: read-shared table lookups.
    pub w_read_shared: u32,

    /// Private hot-set size in lines (should fit the 1024-line cache
    /// together with everything else).
    pub hot_lines: usize,
    /// Percent of hot accesses that write.
    pub hot_write_pct: u32,
    /// Streaming array length in bytes (per processor for private streams;
    /// total for the shared grid).
    pub stream_bytes: u64,
    /// Percent of stream accesses that write.
    pub stream_write_pct: u32,
    /// Stream over the shared grid instead of a private array.
    pub stream_shared: bool,
    /// Number of aliasing tags per conflict set-group (1 disables thrash).
    pub conflict_aliases: u32,
    /// Number of cache sets the conflict component covers.
    pub conflict_sets: u32,
    /// Map the conflict group onto the *hot set's* cache sets instead of its
    /// own range. This is Topopt's signature: annealing data aliases with
    /// the working set, so prefetched lines evict live data — the mechanism
    /// that makes long prefetch distances (LPD) backfire (§4.3).
    pub conflict_overlaps_hot: bool,
    /// Falsely-shared element count (one word per processor per element
    /// under the interleaved layout).
    pub fs_lines: usize,
    /// Percent of false-share accesses that write.
    pub fs_write_pct: u32,
    /// Size of the *hot contended* subset of the falsely-shared region.
    /// These lines are touched so frequently by every processor that their
    /// temporal locality looks good to the PWS filter — yet they are
    /// invalidated between touches. They model the invalidation misses no
    /// current prefetch heuristic covers (the paper's §4.4 limit).
    pub fs_hot_lines: usize,
    /// Percent of false-share accesses that go to the hot subset.
    pub fs_hot_pct: u32,
    /// Number of migratory objects (each two lines long).
    pub mig_objects: usize,
    /// Reads and writes per migratory burst.
    pub mig_burst: (u32, u32),
    /// Percent of migratory bursts protected by the object's lock.
    pub mig_lock_pct: u32,
    /// Read-shared table size in lines.
    pub rs_lines: usize,
    /// Mean pure-CPU cycles between accesses (uniform in
    /// `1..=2*work_mean-1`).
    pub work_mean: u32,
    /// Demand accesses between barrier episodes (0 = no barriers).
    pub barrier_every: usize,
    /// Restructuring also improves locality (the paper's Topopt): under
    /// [`Layout::Padded`] the conflict component stops thrashing.
    pub padded_locality_boost: bool,
    /// Layout actually in effect (set by the per-workload `params`).
    pub layout: Layout,
}

/// Number of migratory locks (objects hash onto these).
const MIG_LOCKS: u32 = 16;
/// Lines per migratory object.
const MIG_OBJ_LINES: u64 = 2;
/// Words per line.
const WORDS: u64 = BLOCK / 4;

/// Per-processor generator state.
struct ProcGen {
    rng: StdRng,
    stream_cursor: u64,
    conflict_phase: u32,
    refs_done: usize,
    barriers_done: u32,
}

/// Generates a trace from `params` under `cfg`.
///
/// Every processor receives at least `cfg.refs_per_proc` demand accesses and
/// exactly the same number of barrier episodes.
pub fn generate_mix(params: &MixParams, cfg: &WorkloadConfig) -> Trace {
    let map = RegionMap::default();
    let plan = SetPlan::new(params);
    let mut builder = TraceBuilder::new(cfg.procs);
    let total_barriers =
        cfg.refs_per_proc.checked_div(params.barrier_every).unwrap_or(0) as u32;

    let weights = [
        params.w_hot,
        params.w_stream,
        params.w_conflict,
        params.w_false_share,
        params.w_migratory,
        params.w_read_shared,
    ];
    let total_weight: u32 = weights.iter().sum();
    assert!(total_weight > 0, "at least one component must have weight");

    for p in 0..cfg.procs {
        let mut st = ProcGen {
            rng: StdRng::seed_from_u64(cfg.seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(p as u64 + 1))),
            stream_cursor: 0,
            conflict_phase: 0,
            refs_done: 0,
            barriers_done: 0,
        };
        let mut proc = builder.proc(p);

        while st.refs_done < cfg.refs_per_proc {
            // Pure CPU work between accesses.
            let w = st.rng.random_range(1..params.work_mean * 2);
            proc.work(w);

            // Pick a component by weight.
            let mut pick = st.rng.random_range(0..total_weight);
            let mut component = 0usize;
            for (i, &wt) in weights.iter().enumerate() {
                if pick < wt {
                    component = i;
                    break;
                }
                pick -= wt;
            }

            match component {
                0 => hot_access(params, &map, p, &mut st, &mut proc),
                1 => stream_access(params, &map, cfg, p, &mut st, &mut proc),
                2 => conflict_access(params, &map, &plan, p, &mut st, &mut proc),
                3 => false_share_access(params, &map, &plan, p, &mut st, &mut proc),
                4 => migratory_burst(params, &map, &plan, &mut st, &mut proc),
                _ => read_shared_access(params, &map, &plan, &mut st, &mut proc),
            }

            // Barrier cadence: emit every crossed multiple, up to the fixed
            // per-run episode count.
            if params.barrier_every > 0 {
                while st.barriers_done < total_barriers
                    && st.refs_done >= (st.barriers_done as usize + 1) * params.barrier_every
                {
                    proc.barrier(st.barriers_done);
                    st.barriers_done += 1;
                }
            }
        }
        // Keep every processor's barrier count identical.
        while st.barriers_done < total_barriers {
            proc.barrier(st.barriers_done);
            st.barriers_done += 1;
        }
    }
    builder.build()
}

fn emit(
    proc: &mut charlie_trace::ProcTraceBuilder<'_>,
    st: &mut ProcGen,
    addr: u64,
    write: bool,
) {
    if write {
        proc.write(Addr::new(addr));
    } else {
        proc.read(Addr::new(addr));
    }
    st.refs_done += 1;
}

fn pct(rng: &mut StdRng, percent: u32) -> bool {
    percent > 0 && rng.random_range(0..100u32) < percent
}

fn hot_access(
    params: &MixParams,
    map: &RegionMap,
    p: usize,
    st: &mut ProcGen,
    proc: &mut charlie_trace::ProcTraceBuilder<'_>,
) {
    let line = st.rng.random_range(0..params.hot_lines as u64);
    let word = st.rng.random_range(0..WORDS);
    let addr = map.private(p, line * BLOCK + word * 4);
    let write = pct(&mut st.rng, params.hot_write_pct);
    emit(proc, st, addr, write);
}

fn stream_access(
    params: &MixParams,
    map: &RegionMap,
    cfg: &WorkloadConfig,
    p: usize,
    st: &mut ProcGen,
    proc: &mut charlie_trace::ProcTraceBuilder<'_>,
) {
    let len = params.stream_bytes;
    let addr = if params.stream_shared {
        // Shared grid: each processor walks the same array from a different
        // starting offset — regions are written by one processor and later
        // read by the next one to sweep through (sequential sharing).
        let start = (p as u64) * (len / cfg.procs as u64);
        map.grid_base + ((start + st.stream_cursor) % len)
    } else {
        map.private(p, 0x0040_0000 + (st.stream_cursor % len))
    };
    st.stream_cursor += 4;
    let write = pct(&mut st.rng, params.stream_write_pct);
    emit(proc, st, addr, write);
}

fn conflict_access(
    params: &MixParams,
    map: &RegionMap,
    plan: &SetPlan,
    p: usize,
    st: &mut ProcGen,
    proc: &mut charlie_trace::ProcTraceBuilder<'_>,
) {
    // Under the restructured layout Topopt's locality improves: the aliasing
    // disappears (accesses stay within one tag).
    let aliases = if params.layout == Layout::Padded && params.padded_locality_boost {
        1
    } else {
        params.conflict_aliases.max(1)
    };
    let set = st.rng.random_range(0..params.conflict_sets as u64);
    let alias = (st.conflict_phase % aliases) as u64;
    st.conflict_phase = st.conflict_phase.wrapping_add(1);
    // 32 KB direct-mapped: lines 32 KB apart share a set.
    let addr =
        map.private(p, 0x0080_0000 + (plan.conflict_off + set) * BLOCK + alias * 32 * 1024);
    let write = pct(&mut st.rng, 30);
    emit(proc, st, addr, write);
}

fn false_share_access(
    params: &MixParams,
    map: &RegionMap,
    plan: &SetPlan,
    p: usize,
    st: &mut ProcGen,
    proc: &mut charlie_trace::ProcTraceBuilder<'_>,
) {
    let k = if params.fs_hot_lines > 0 && pct(&mut st.rng, params.fs_hot_pct) {
        st.rng.random_range(0..params.fs_hot_lines.min(params.fs_lines) as u64)
    } else {
        st.rng.random_range(0..params.fs_lines as u64)
    };
    let base = map.fs_base + plan.fs_off * BLOCK;
    let addr = match params.layout {
        Layout::Interleaved => {
            // Word `p % 8` of shared line `k`: distinct processors touch
            // distinct words of the same line.
            base + k * BLOCK + (p as u64 % WORDS) * 4
        }
        Layout::Padded => {
            // Restructured: each processor's element on its own line. The
            // copies are a cache-size apart, so every processor keeps the
            // same per-cache footprint (set indices) as the interleaved
            // layout — only the sharing disappears.
            base + k * BLOCK + p as u64 * 32 * 1024
        }
    };
    let write = pct(&mut st.rng, params.fs_write_pct);
    emit(proc, st, addr, write);
}

fn migratory_burst(
    params: &MixParams,
    map: &RegionMap,
    plan: &SetPlan,
    st: &mut ProcGen,
    proc: &mut charlie_trace::ProcTraceBuilder<'_>,
) {
    let obj = st.rng.random_range(0..params.mig_objects as u64);
    let base = map.mig_base + (plan.mig_off + obj * MIG_OBJ_LINES) * BLOCK;
    let locked = pct(&mut st.rng, params.mig_lock_pct);
    if locked {
        proc.lock(obj as u32 % MIG_LOCKS);
    }
    let (reads, writes) = params.mig_burst;
    // Stride the words so a burst of three or more accesses touches both of
    // the object's lines (objects are whole records, not single words).
    let span = MIG_OBJ_LINES * WORDS;
    for i in 0..reads {
        let word = (u64::from(i) * 5) % span;
        emit(proc, st, base + word * 4, false);
    }
    for i in 0..writes {
        let word = (u64::from(i) * 5 + 2) % span;
        emit(proc, st, base + word * 4, true);
    }
    if locked {
        proc.unlock(obj as u32 % MIG_LOCKS);
    }
}

fn read_shared_access(
    params: &MixParams,
    map: &RegionMap,
    plan: &SetPlan,
    st: &mut ProcGen,
    proc: &mut charlie_trace::ProcTraceBuilder<'_>,
) {
    let line = st.rng.random_range(0..params.rs_lines as u64);
    let word = st.rng.random_range(0..WORDS);
    emit(proc, st, map.rs_base + (plan.rs_off + line) * BLOCK + word * 4, false);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Workload;

    fn tiny_cfg() -> WorkloadConfig {
        WorkloadConfig { refs_per_proc: 1_000, ..WorkloadConfig::default() }
    }

    #[test]
    fn barrier_counts_equal_across_procs() {
        let t = generate_mix(&Workload::Mp3d.params(Layout::Interleaved), &tiny_cfg());
        assert!(t.validate().is_ok());
    }

    #[test]
    fn refs_budget_met_not_wildly_exceeded() {
        let cfg = tiny_cfg();
        let t = generate_mix(&Workload::Pverify.params(Layout::Interleaved), &cfg);
        for (_, s) in t.iter() {
            let n = s.num_accesses();
            assert!(n >= cfg.refs_per_proc);
            assert!(n < cfg.refs_per_proc + 64, "bursts overshoot by at most one burst");
        }
    }

    #[test]
    fn interleaved_fs_words_differ_per_proc() {
        let map = RegionMap::default();
        let params = Workload::Pverify.params(Layout::Interleaved);
        let cfg = tiny_cfg();
        // Directly check the address math of the false-sharing component.
        let mut seen = std::collections::HashSet::new();
        for p in 0..8usize {
            let addr = match params.layout {
                Layout::Interleaved => map.fs_base + (p as u64 % WORDS) * 4,
                Layout::Padded => unreachable!(),
            };
            assert!(seen.insert(addr), "each proc gets a distinct word of line 0");
            assert_eq!(Addr::new(addr).line(32), Addr::new(map.fs_base).line(32));
        }
        let _ = cfg;
    }

    #[test]
    fn padded_fs_lines_differ_per_proc_but_share_sets() {
        // Padded layout: per-processor copies a cache-size apart — distinct
        // lines (no sharing), identical set indices (identical footprint).
        let map = RegionMap::default();
        let mut lines = std::collections::HashSet::new();
        let set_of = |a: u64| (a >> 5) & (CACHE_SETS - 1);
        for p in 0..8u64 {
            let addr = map.fs_base + p * 32 * 1024; // element k=0, padded
            assert!(lines.insert(Addr::new(addr).line(32)));
            assert_eq!(set_of(addr), set_of(map.fs_base));
        }
    }

    #[test]
    fn set_plan_keeps_regions_disjoint() {
        for w in Workload::ALL {
            let p = w.params(Layout::Interleaved);
            let plan = SetPlan::new(&p); // asserts the budget internally
            assert!(plan.rs_off >= p.hot_lines as u64, "{w}");
            assert!(plan.fs_off >= plan.rs_off + p.rs_lines as u64, "{w}");
            assert!(plan.mig_off >= plan.fs_off + p.fs_lines as u64, "{w}");
        }
    }

    #[test]
    #[should_panic(expected = "set budget")]
    fn oversized_workload_rejected() {
        let mut p = Workload::Mp3d.params(Layout::Interleaved);
        p.hot_lines = 900;
        let _ = SetPlan::new(&p);
    }

    #[test]
    fn conflict_component_aliases_same_set() {
        // Two conflict addresses with the same set and different aliases map
        // to the same cache set of a 32 KB direct-mapped cache.
        let map = RegionMap::default();
        let a = map.private(0, 0x0080_0000);
        let b = map.private(0, 0x0080_0000 + 32 * 1024);
        let sets = 1024u64;
        assert_eq!(
            Addr::new(a).line(32).raw() & (sets - 1),
            Addr::new(b).line(32).raw() & (sets - 1)
        );
        assert_ne!(Addr::new(a).line(32), Addr::new(b).line(32));
    }

    #[test]
    fn zero_weight_component_never_fires() {
        let mut params = Workload::Water.params(Layout::Interleaved);
        params.w_stream = 0;
        params.w_conflict = 0;
        params.w_false_share = 0;
        params.w_migratory = 0;
        params.w_read_shared = 0;
        let t = generate_mix(&params, &tiny_cfg());
        let map = RegionMap::default();
        for (p, s) in t.iter() {
            for a in s.accesses() {
                let base = map.private(p.index(), 0);
                assert!(
                    a.addr.raw() >= base && a.addr.raw() < base + 0x0040_0000,
                    "all accesses in the hot region"
                );
            }
        }
    }
}
