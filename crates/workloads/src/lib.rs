//! Synthetic workload generators for the `charlie` simulator.
//!
//! The paper traced five coarse-grain parallel C programs on a Sequent
//! Symmetry with MPTrace: **Topopt** (topological optimization of VLSI
//! circuits by parallel simulated annealing), **Pverify** (boolean circuit
//! equivalence), **LocusRoute** (commercial-quality standard-cell router),
//! **Mp3d** (rarefied particle flow) and **Water** (liquid-state molecular
//! dynamics), the latter three from SPLASH. Those traces no longer exist;
//! this crate generates synthetic per-processor address streams whose
//! *statistical structure* — miss rate against a 32 KB direct-mapped cache,
//! write-sharing intensity, false-sharing fraction, synchronization cadence,
//! data-set-to-cache ratio — is calibrated to reproduce each application's
//! published baseline behaviour (the paper's Table 2 NP bus utilizations and
//! §4.2 processor utilizations). See `DESIGN.md` for the full substitution
//! argument.
//!
//! Every generator is deterministic in its seed, emits the same number of
//! barrier episodes on every processor, and keeps all data outside the
//! simulator's reserved lock/barrier region.
//!
//! The `Layout` knob reproduces the paper's §4.4 *restructuring*
//! experiment: [`Layout::Padded`] places each processor's write-shared words
//! on separate cache lines (what the Jeremiassen–Eggers transformation
//! achieves), eliminating false sharing; for Topopt it also improves
//! locality, as the paper reports.
//!
//! # Example
//!
//! ```
//! use charlie_workloads::{generate, Workload, WorkloadConfig};
//!
//! let cfg = WorkloadConfig { refs_per_proc: 2_000, ..WorkloadConfig::default() };
//! let trace = generate(Workload::Water, &cfg);
//! assert_eq!(trace.num_procs(), 8);
//! assert!(trace.validate().is_ok());
//! ```

mod chase;
mod locusroute;
mod mix;
mod mp3d;
mod pverify;
mod topopt;
mod water;

pub use mix::{MixParams, RegionMap};

use charlie_trace::Trace;
use std::fmt;

/// Data layout of the shared structures.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Default)]
pub enum Layout {
    /// The original programs: per-processor data word-interleaved within
    /// shared cache lines (false sharing present).
    #[default]
    Interleaved,
    /// The restructured programs of the paper's §4.4: each processor's
    /// write-shared words padded onto their own lines.
    Padded,
}

/// The five applications of the paper's Table 1.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Workload {
    /// Topological optimization of VLSI circuits (parallel simulated
    /// annealing): small shared data set, heavy write sharing, many conflict
    /// misses.
    Topopt,
    /// Boolean-circuit equivalence checking: heavy sharing, false sharing
    /// dominant, low processor utilization.
    Pverify,
    /// VLSI standard-cell router: moderate miss rate, sequential sharing of
    /// the cost grid.
    LocusRoute,
    /// Rarefied-flow particle simulation: very high miss rate (streaming
    /// particle arrays plus migratory space cells), saturates slow buses.
    Mp3d,
    /// Liquid-water molecular dynamics: small working set, low miss rate,
    /// mostly private data.
    Water,
    /// Linked-list and tree traversal with node-allocation churn. Not one of
    /// the paper's applications: a stress workload for the on-line hardware
    /// prefetchers, whose miss stream has no spatial regularity.
    PointerChase,
}

impl Workload {
    /// All five workloads, in the paper's reporting order. The paper-grid
    /// exhibits iterate this set, so it deliberately excludes the
    /// post-paper [`Workload::PointerChase`].
    pub const ALL: [Workload; 5] =
        [Workload::Topopt, Workload::Mp3d, Workload::LocusRoute, Workload::Pverify, Workload::Water];

    /// The paper's five workloads plus the pointer-chase stress workload.
    pub const EXTENDED: [Workload; 6] = [
        Workload::Topopt,
        Workload::Mp3d,
        Workload::LocusRoute,
        Workload::Pverify,
        Workload::Water,
        Workload::PointerChase,
    ];

    /// The paper's name for the program.
    pub fn name(self) -> &'static str {
        match self {
            Workload::Topopt => "Topopt",
            Workload::Pverify => "Pverify",
            Workload::LocusRoute => "LocusRoute",
            Workload::Mp3d => "Mp3d",
            Workload::Water => "Water",
            Workload::PointerChase => "PointerChase",
        }
    }

    /// One-line description (the paper's §3.2).
    pub fn description(self) -> &'static str {
        match self {
            Workload::Topopt => "topological optimization of VLSI circuits (simulated annealing)",
            Workload::Pverify => "boolean circuit functional-equivalence verification",
            Workload::LocusRoute => "commercial-quality VLSI standard cell router",
            Workload::Mp3d => "particle flow at extremely low density",
            Workload::Water => "forces and potentials in liquid water molecules",
            Workload::PointerChase => "linked-list and tree traversal with allocation churn",
        }
    }

    /// Whether the paper's restructuring algorithm helped this program
    /// (Tables 4 and 5 only report Topopt and Pverify; "the other programs
    /// were not improved significantly").
    pub fn restructurable(self) -> bool {
        matches!(self, Workload::Topopt | Workload::Pverify)
    }

    /// Generator parameters for the given layout.
    ///
    /// # Panics
    ///
    /// Panics for [`Workload::PointerChase`], which is generated by a
    /// dedicated linked-structure generator rather than the statistical mix
    /// and has no [`MixParams`].
    pub fn params(self, layout: Layout) -> MixParams {
        match self {
            Workload::Topopt => topopt::params(layout),
            Workload::Pverify => pverify::params(layout),
            Workload::LocusRoute => locusroute::params(layout),
            Workload::Mp3d => mp3d::params(layout),
            Workload::Water => water::params(layout),
            Workload::PointerChase => {
                panic!("PointerChase uses the linked-structure generator, not the mix")
            }
        }
    }
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Size and seeding of a generated run.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct WorkloadConfig {
    /// Number of processors (the paper's Table 1 machines; we default to 8).
    pub procs: usize,
    /// Demand references per processor (the paper traced ~2M; smaller runs
    /// reproduce the same rates).
    pub refs_per_proc: usize,
    /// RNG seed; identical seeds give identical traces.
    pub seed: u64,
    /// Shared-data layout (original or restructured).
    pub layout: Layout,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            procs: 8,
            refs_per_proc: 200_000,
            seed: 0xC0FFEE,
            layout: Layout::Interleaved,
        }
    }
}

/// Generates the trace of `workload` under `cfg`.
///
/// # Panics
///
/// Panics if `cfg.procs` is 0 or greater than 64.
pub fn generate(workload: Workload, cfg: &WorkloadConfig) -> Trace {
    assert!(cfg.procs > 0 && cfg.procs <= 64, "procs must be in 1..=64");
    match workload {
        Workload::PointerChase => chase::generate_chase(cfg),
        _ => mix::generate_mix(&workload.params(cfg.layout), cfg),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use charlie_trace::TraceStats;

    fn small(w: Workload) -> Trace {
        let cfg = WorkloadConfig { refs_per_proc: 4_000, ..WorkloadConfig::default() };
        generate(w, &cfg)
    }

    #[test]
    fn all_workloads_generate_valid_traces() {
        for w in Workload::ALL {
            let t = small(w);
            assert_eq!(t.num_procs(), 8, "{w}");
            assert!(t.validate().is_ok(), "{w}");
            assert_eq!(t.total_prefetches(), 0, "{w}: raw traces carry no prefetches");
            for (_, s) in t.iter() {
                assert!(
                    s.num_accesses() >= 4_000,
                    "{w}: every proc meets its reference budget"
                );
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = WorkloadConfig { refs_per_proc: 2_000, ..WorkloadConfig::default() };
        assert_eq!(generate(Workload::Mp3d, &cfg), generate(Workload::Mp3d, &cfg));
    }

    #[test]
    fn seed_changes_trace() {
        let a = WorkloadConfig { refs_per_proc: 2_000, ..WorkloadConfig::default() };
        let b = WorkloadConfig { seed: 1, ..a };
        assert_ne!(generate(Workload::Mp3d, &a), generate(Workload::Mp3d, &b));
    }

    #[test]
    fn padded_layout_reduces_write_shared_lines_for_pverify() {
        let base = WorkloadConfig { refs_per_proc: 6_000, ..WorkloadConfig::default() };
        let padded = WorkloadConfig { layout: Layout::Padded, ..base };
        let inter = TraceStats::gather(&generate(Workload::Pverify, &base), 32);
        let pad = TraceStats::gather(&generate(Workload::Pverify, &padded), 32);
        // Padding turns interleaved write-shared lines into private ones.
        assert!(
            pad.write_shared_lines < inter.write_shared_lines,
            "padded {} !< interleaved {}",
            pad.write_shared_lines,
            inter.write_shared_lines
        );
    }

    #[test]
    fn workloads_have_distinct_sharing_profiles() {
        let water = TraceStats::gather(&small(Workload::Water), 32);
        let pverify = TraceStats::gather(&small(Workload::Pverify), 32);
        assert!(
            pverify.write_shared_fraction() > water.write_shared_fraction(),
            "Pverify shares more than Water"
        );
    }

    #[test]
    fn data_avoids_reserved_sync_region() {
        for w in Workload::ALL {
            let t = small(w);
            for (_, s) in t.iter() {
                for a in s.accesses() {
                    assert!(a.addr.raw() < 0xF000_0000, "{w}: {} in reserved region", a.addr);
                }
            }
        }
    }

    #[test]
    fn proc_count_respected() {
        let cfg = WorkloadConfig { procs: 4, refs_per_proc: 1_000, ..WorkloadConfig::default() };
        assert_eq!(generate(Workload::Topopt, &cfg).num_procs(), 4);
    }

    #[test]
    #[should_panic(expected = "1..=64")]
    fn zero_procs_rejected() {
        let cfg = WorkloadConfig { procs: 0, refs_per_proc: 100, ..WorkloadConfig::default() };
        let _ = generate(Workload::Water, &cfg);
    }

    #[test]
    fn names_and_descriptions_nonempty() {
        for w in Workload::ALL {
            assert!(!w.name().is_empty());
            assert!(!w.description().is_empty());
            assert_eq!(w.to_string(), w.name());
        }
    }

    #[test]
    fn only_topopt_and_pverify_restructurable() {
        assert!(Workload::Topopt.restructurable());
        assert!(Workload::Pverify.restructurable());
        assert!(!Workload::Mp3d.restructurable());
        assert!(!Workload::Water.restructurable());
        assert!(!Workload::LocusRoute.restructurable());
        assert!(!Workload::PointerChase.restructurable());
    }

    #[test]
    fn extended_is_all_plus_pointer_chase() {
        assert_eq!(Workload::EXTENDED[..Workload::ALL.len()], Workload::ALL);
        assert_eq!(Workload::EXTENDED[Workload::ALL.len()], Workload::PointerChase);
        assert!(!Workload::ALL.contains(&Workload::PointerChase), "paper grid stays 5 workloads");
        assert!(!Workload::PointerChase.name().is_empty());
        assert!(!Workload::PointerChase.description().is_empty());
    }

    #[test]
    #[should_panic(expected = "linked-structure generator")]
    fn pointer_chase_has_no_mix_params() {
        let _ = Workload::PointerChase.params(Layout::Interleaved);
    }

    #[test]
    fn pointer_chase_generates_valid_trace() {
        let t = small(Workload::PointerChase);
        assert_eq!(t.num_procs(), 8);
        assert!(t.validate().is_ok());
        assert_eq!(t.total_prefetches(), 0);
        for (_, s) in t.iter() {
            assert!(s.num_accesses() >= 4_000);
            for a in s.accesses() {
                assert!(a.addr.raw() < 0xF000_0000, "{} in reserved region", a.addr);
            }
        }
    }

    /// FNV-1a over a stable byte encoding of every event. Any change to the
    /// pointer-chase generator — constants, RNG draws, emission order —
    /// shows up here; the reference digest below is the checked-in golden
    /// output for the default seed.
    fn trace_digest(t: &Trace) -> u64 {
        use charlie_trace::TraceEvent;
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for (pid, s) in t.iter() {
            eat(&[0xff, pid.0]);
            for ev in s.events() {
                match ev {
                    TraceEvent::Work(n) => {
                        eat(&[1]);
                        eat(&n.to_le_bytes());
                    }
                    TraceEvent::Access(a) => {
                        eat(&[if a.kind.is_write() { 3 } else { 2 }]);
                        eat(&a.addr.raw().to_le_bytes());
                    }
                    TraceEvent::Prefetch { addr, exclusive } => {
                        eat(&[4, u8::from(*exclusive)]);
                        eat(&addr.raw().to_le_bytes());
                    }
                    TraceEvent::LockAcquire(id) => {
                        eat(&[5]);
                        eat(&id.0.to_le_bytes());
                    }
                    TraceEvent::LockRelease(id) => {
                        eat(&[6]);
                        eat(&id.0.to_le_bytes());
                    }
                    TraceEvent::Barrier(id) => {
                        eat(&[7]);
                        eat(&id.0.to_le_bytes());
                    }
                }
            }
        }
        h
    }

    #[test]
    fn pointer_chase_matches_golden_digest() {
        let cfg = WorkloadConfig { refs_per_proc: 8_000, ..WorkloadConfig::default() };
        let digest = trace_digest(&generate(Workload::PointerChase, &cfg));
        assert_eq!(
            digest, 0xb01c_83a6_1709_c376,
            "pointer-chase output changed (digest {digest:#018x}); if intended, update the golden"
        );
    }

    mod chase_props {
        use super::*;
        use proptest::prelude::*;
        use std::collections::HashSet;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(16))]
            /// Pointer-chase traces are well-formed for arbitrary seeds and
            /// sizes: they validate (PIDs and barrier episodes in order),
            /// all addresses are word-aligned and outside the reserved sync
            /// region, every processor meets its reference budget, and no
            /// node line is read before its allocating write.
            #[test]
            fn chase_traces_are_well_formed(
                seed in 0u64..u64::MAX,
                procs in 1usize..=8,
                refs in 1_000usize..6_000,
            ) {
                let cfg = WorkloadConfig { procs, refs_per_proc: refs, seed, ..WorkloadConfig::default() };
                let t = generate(Workload::PointerChase, &cfg);
                prop_assert_eq!(t.num_procs(), procs);
                prop_assert!(t.validate().is_ok());
                for (_, s) in t.iter() {
                    prop_assert!(s.num_accesses() >= refs);
                    let mut allocated = HashSet::new();
                    for a in s.accesses() {
                        prop_assert_eq!(a.addr.raw() % 4, 0, "unaligned {}", a.addr);
                        prop_assert!(a.addr.raw() < 0xF000_0000, "{} in reserved region", a.addr);
                        let line = a.addr.line(32);
                        if a.kind.is_write() {
                            allocated.insert(line);
                        } else {
                            prop_assert!(allocated.contains(&line), "read before allocation");
                        }
                    }
                }
            }
        }
    }
}
