//! Microbenchmarks of the substrates: cache probing, bus arbitration,
//! trace generation and prefetch insertion.

use charlie::bus::{Bus, BusConfig, Priority};
use charlie::cache::protocol::BusOp;
use charlie::cache::{CacheArray, CacheGeometry, FilterCache, LineState};
use charlie::prefetch::{apply, Strategy};
use charlie::trace::{Addr, ProcId};
use charlie::workloads::{generate, Workload, WorkloadConfig};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn bench_cache_probe(c: &mut Criterion) {
    let geom = CacheGeometry::paper_default();
    let mut cache = CacheArray::new(geom);
    for i in 0..1024u64 {
        cache.fill(Addr::new(i * 32).line(32), LineState::Shared, false);
    }
    let mut group = c.benchmark_group("cache");
    group.throughput(Throughput::Elements(1024));
    group.bench_function("probe_1024_resident", |b| {
        b.iter(|| {
            for i in 0..1024u64 {
                black_box(cache.probe(Addr::new(i * 32 + 4)));
            }
        })
    });
    group.bench_function("fill_evict_1024", |b| {
        let mut cache = CacheArray::new(geom);
        let mut tag = 0u64;
        b.iter(|| {
            for i in 0..1024u64 {
                cache.fill(Addr::new(tag * 32768 + i * 32).line(32), LineState::Shared, false);
            }
            tag = tag.wrapping_add(1);
        })
    });
    group.finish();
}

fn bench_filter_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("filter");
    group.throughput(Throughput::Elements(4096));
    group.bench_function("oracle_stream_4096", |b| {
        b.iter(|| {
            let mut f = FilterCache::new(CacheGeometry::paper_default());
            for i in 0..4096u64 {
                black_box(f.access(Addr::new(i * 4)));
            }
        })
    });
    group.finish();
}

fn bench_bus_arbitration(c: &mut Criterion) {
    let mut group = c.benchmark_group("bus");
    group.throughput(Throughput::Elements(256));
    group.bench_function("submit_grant_256", |b| {
        b.iter(|| {
            let mut bus = Bus::new(BusConfig::paper(8), 8);
            for i in 0..256u64 {
                bus.submit(
                    i,
                    ProcId((i % 8) as u8),
                    Addr::new(i * 32).line(32),
                    if i % 3 == 0 { BusOp::WriteBack } else { BusOp::Read },
                    if i % 2 == 0 { Priority::Demand } else { Priority::Prefetch },
                );
            }
            let mut t = 0;
            loop {
                match bus.try_grant(t) {
                    charlie::bus::GrantOutcome::Granted { completes_at, .. } => t = completes_at,
                    charlie::bus::GrantOutcome::BusyUntil(next)
                    | charlie::bus::GrantOutcome::WaitingUntil(next) => t = next,
                    charlie::bus::GrantOutcome::Idle => break,
                }
            }
            black_box(bus.stats().total_ops())
        })
    });
    group.finish();
}

fn bench_generation_and_insertion(c: &mut Criterion) {
    let cfg = WorkloadConfig { refs_per_proc: 5_000, ..WorkloadConfig::default() };
    let mut group = c.benchmark_group("pipeline");
    group.throughput(Throughput::Elements((cfg.refs_per_proc * cfg.procs) as u64));
    group.bench_function("generate_mp3d", |b| {
        b.iter(|| black_box(generate(Workload::Mp3d, &cfg)))
    });
    let trace = generate(Workload::Mp3d, &cfg);
    group.bench_function("insert_pws_mp3d", |b| {
        b.iter(|| black_box(apply(Strategy::Pws, &trace, CacheGeometry::paper_default())))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_cache_probe,
    bench_filter_cache,
    bench_bus_arbitration,
    bench_generation_and_insertion
);
criterion_main!(benches);
