//! One bench per paper exhibit: each measures the end-to-end regeneration
//! of a table/figure at a reduced trace size, so `cargo bench` exercises
//! every experiment. The full-size numbers are produced by the binaries
//! (`cargo run --release -p charlie-bench --bin all_experiments`).

use charlie::{experiments, Lab, RunConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

const BENCH_REFS: usize = 4_000;

fn bench_cfg() -> RunConfig {
    RunConfig { procs: 8, refs_per_proc: BENCH_REFS, seed: 0xC0FFEE, ..RunConfig::default() }
}

macro_rules! exhibit_bench {
    ($fn_name:ident, $exhibit:ident) => {
        fn $fn_name(c: &mut Criterion) {
            let mut group = c.benchmark_group("exhibits");
            group.sample_size(10);
            group.bench_function(stringify!($exhibit), |b| {
                b.iter(|| {
                    let mut lab = Lab::new(bench_cfg());
                    black_box(experiments::$exhibit(&mut lab))
                })
            });
            group.finish();
        }
    };
}

exhibit_bench!(bench_table1, table1);
exhibit_bench!(bench_figure1, figure1);
exhibit_bench!(bench_table2, table2);
exhibit_bench!(bench_figure3, figure3);
exhibit_bench!(bench_table3, table3);
exhibit_bench!(bench_table4, table4);
exhibit_bench!(bench_table5, table5);
exhibit_bench!(bench_proc_util, processor_utilization);

fn bench_figure2(c: &mut Criterion) {
    let mut group = c.benchmark_group("exhibits");
    group.sample_size(10);
    group.bench_function("figure2", |b| {
        b.iter(|| {
            let mut lab = Lab::new(bench_cfg());
            black_box(experiments::figure2(&mut lab))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_table1,
    bench_figure1,
    bench_table2,
    bench_figure2,
    bench_figure3,
    bench_table3,
    bench_table4,
    bench_table5,
    bench_proc_util
);
criterion_main!(benches);
