//! Hot-path microbenchmarks: the three inner-loop costs the perf work in
//! DESIGN.md §11 targets — set probing (LRU bookkeeping), snoop application
//! under sharing (the broadcast-vs-filtered scan), and raw event dispatch.
//!
//! These complement the `BENCH_charlie.json` macro slice: the macro bench
//! answers "how fast is a grid cell", these answer "which inner loop moved".

use charlie::cache::{CacheArray, CacheGeometry, LineState};
use charlie::sim::{simulate_counted, SimConfig};
use charlie::trace::{Addr, TraceBuilder};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

/// Probe + LRU-touch over a warm 4-way cache: exercises `CacheSet::find`
/// and the replacement-order update that `touch` performs on every hit.
fn bench_probe_touch(c: &mut Criterion) {
    let geom = CacheGeometry::new(32 * 1024, 32, 4).expect("4-way geometry");
    let mut cache = CacheArray::new(geom);
    for i in 0..1024u64 {
        cache.fill(Addr::new(i * 32).line(32), LineState::Shared, false);
    }
    let mut group = c.benchmark_group("hotpath");
    group.throughput(Throughput::Elements(1024));
    group.bench_function("probe_touch_4way_1024", |b| {
        b.iter(|| {
            for i in 0..1024u64 {
                let line = Addr::new(i * 32).line(32);
                if let charlie::cache::Probe::Hit { way, .. } = cache.probe_line(line) {
                    black_box(cache.frame_mut(line, way).state());
                }
            }
        })
    });
    group.finish();
}

/// A write-invalidation ping-pong across 8 processors: nearly every bus
/// grant snoops all caches, so this isolates `apply_snoops` cost.
fn bench_snoop_heavy(c: &mut Criterion) {
    let mut b = TraceBuilder::new(8);
    for p in 0..8usize {
        let mut pb = b.proc(p);
        for i in 0..400u64 {
            // Everyone hammers the same 8 shared lines: maximal snooping.
            pb.write(Addr::new((i % 8) * 32)).read(Addr::new(((i + 3) % 8) * 32)).work(3);
        }
    }
    let trace = b.build();
    let cfg = SimConfig::paper(8, 8);
    let mut group = c.benchmark_group("hotpath");
    group.sample_size(5);
    group.bench_function("snoop_heavy_8p", |b| {
        b.iter(|| black_box(simulate_counted(&cfg, &trace).expect("healthy run")))
    });
    group.finish();
}

/// Private streaming reads on 8 processors: no sharing, so per-event
/// scheduler overhead (heap, transaction bookkeeping) dominates.
fn bench_event_dispatch(c: &mut Criterion) {
    let mut b = TraceBuilder::new(8);
    for p in 0..8usize {
        let mut pb = b.proc(p);
        for i in 0..2_000u64 {
            pb.read(Addr::new(0x10_0000 * (p as u64 + 1) + i * 32)).work(2);
        }
    }
    let trace = b.build();
    let cfg = SimConfig::paper(8, 8);
    let mut group = c.benchmark_group("hotpath");
    group.sample_size(5);
    group.bench_function("event_dispatch_8p_private", |b| {
        b.iter(|| black_box(simulate_counted(&cfg, &trace).expect("healthy run")))
    });
    group.finish();
}

criterion_group!(hotpath, bench_probe_touch, bench_snoop_heavy, bench_event_dispatch);
criterion_main!(hotpath);
