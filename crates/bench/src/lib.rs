//! Shared plumbing for the experiment binaries.
//!
//! Every binary regenerates one exhibit of the paper (see `DESIGN.md`'s
//! experiment index) using the [`charlie::Lab`]. Output size is controlled
//! by `CHARLIE_REFS` (references per processor, default 160 000) and
//! `CHARLIE_PROCS` (default 8); pass `--csv` to any binary for
//! machine-readable output.

use charlie::prefetch::HwPrefetchConfig;
use charlie::{BatchReport, Lab, RunConfig, Table};

/// Builds the lab from the environment (`CHARLIE_REFS`, `CHARLIE_PROCS`,
/// `CHARLIE_SEED`, `CHARLIE_HW_PREFETCH`).
///
/// `CHARLIE_HW_PREFETCH` takes the CLI's `--hw-prefetch` syntax
/// (`kind[:degree[:distance]]`, e.g. `stride:2:4`); an unparsable value
/// aborts loudly rather than silently running the wrong machine.
pub fn lab_from_env() -> Lab {
    let mut cfg = RunConfig::default();
    if let Some(procs) = std::env::var("CHARLIE_PROCS").ok().and_then(|v| v.parse().ok()) {
        cfg.procs = procs;
    }
    if let Some(seed) = std::env::var("CHARLIE_SEED").ok().and_then(|v| v.parse().ok()) {
        cfg.seed = seed;
    }
    if let Ok(spec) = std::env::var("CHARLIE_HW_PREFETCH") {
        match HwPrefetchConfig::parse(&spec) {
            Ok(hw) => cfg.hw_prefetch = hw,
            Err(e) => {
                eprintln!("error: CHARLIE_HW_PREFETCH={spec:?}: {e}");
                std::process::exit(2);
            }
        }
    }
    Lab::new(cfg)
}

/// Worker-thread count for the experiment grid: `CHARLIE_JOBS`, defaulting
/// to 0 (one worker per available core). An unparsable value warns once on
/// stderr and falls back to serial — parallelism is an optimization, not
/// something worth killing an overnight campaign over.
pub fn jobs_from_env() -> usize {
    match std::env::var("CHARLIE_JOBS") {
        Err(_) => 0,
        Ok(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("warning: invalid CHARLIE_JOBS {v:?}; falling back to serial (1 worker)");
            1
        }),
    }
}

/// Checkpoint-journal path from `CHARLIE_CHECKPOINT` (unset = no
/// checkpointing).
pub fn checkpoint_from_env() -> Option<std::path::PathBuf> {
    std::env::var_os("CHARLIE_CHECKPOINT").map(std::path::PathBuf::from)
}

/// Prints a batch's failure summary to stderr and exits nonzero, *after*
/// the healthy cells were simulated (and journaled, if checkpointing).
/// Call this before rendering exhibits: a partial grid would panic midway
/// through rendering instead of failing cleanly here.
pub fn exit_on_failures(batch: &BatchReport) {
    if let Some(summary) = batch.failure_summary() {
        eprintln!("{summary}");
        std::process::exit(1);
    }
}

/// Prints a batch's parallel-execution summary to stderr (skipped in CSV
/// mode, which must stay machine-readable).
pub fn report_batch(batch: &BatchReport) {
    if csv_requested() {
        return;
    }
    let wall_ms = batch.wall_nanos as f64 / 1e6;
    let sim_ms = batch.sim_nanos as f64 / 1e6;
    let speedup = if batch.wall_nanos > 0 { sim_ms / wall_ms } else { 1.0 };
    eprintln!(
        "batch: {} simulations on {} workers in {:.1} ms ({:.1} ms of simulation, {speedup:.1}x), {} memo hits",
        batch.executed, batch.jobs, wall_ms, sim_ms, batch.memo_hits
    );
}

/// `true` when the binary was invoked with `--csv`.
pub fn csv_requested() -> bool {
    std::env::args().any(|a| a == "--csv")
}

/// Prints a table in the requested format.
pub fn emit(table: &Table) {
    if csv_requested() {
        print!("{}", table.to_csv());
    } else {
        println!("{table}");
    }
}

/// Prints the standard run header (skipped in CSV mode).
pub fn header(lab: &Lab, exhibit: &str) {
    if !csv_requested() {
        let c = lab.config();
        println!(
            "== {exhibit} — {} procs, {} refs/proc, seed {:#x} ==\n",
            c.procs, c.refs_per_proc, c.seed
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lab_from_env_respects_defaults() {
        let lab = lab_from_env();
        assert!(lab.config().procs >= 1);
        assert!(lab.config().refs_per_proc >= 1);
    }
}
