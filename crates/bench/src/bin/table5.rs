//! Regenerates the paper's table5. See DESIGN.md's experiment index.

fn main() {
    let mut lab = charlie_bench::lab_from_env();
    charlie_bench::header(&lab, "table5");
    charlie_bench::emit(&charlie::experiments::table5(&mut lab));
}
