//! Conflict-remedy ablation: set associativity and victim caches.
//!
//! §4.3: the conflicts between prefetched data and the current working set
//! "would likely be reduced by a victim cache or a set-associative cache;
//! the primary result … would be a reduction in the performance degradations
//! seen in bus saturation." This runs Topopt (the conflict-ridden workload)
//! with 1-, 2- and 4-way caches, and separately with a direct-mapped cache
//! plus a 4- or 8-entry victim buffer. Geometry and victim depth live
//! outside [`charlie::Experiment`], so the cells fan out through
//! [`charlie::parallel::map`] (`CHARLIE_JOBS` workers).

use charlie::cache::CacheGeometry;
use charlie::prefetch::{apply, Strategy};
use charlie::sim::{simulate, SimConfig};
use charlie::workloads::{generate, Workload, WorkloadConfig};
use charlie::{parallel, Experiment, Lab, RunConfig, Table};

const WAYS: [u32; 3] = [1, 2, 4];
const VICTIM_ENTRIES: [usize; 4] = [0, 2, 4, 8];

fn main() {
    let base = charlie_bench::lab_from_env();
    let base_cfg = *base.config();
    drop(base);
    let jobs = Lab::resolve_jobs(charlie_bench::jobs_from_env());

    let mut t = Table::new(
        "Associativity ablation (Topopt): prefetch conflicts shrink with ways",
        vec!["Ways", "NP CPU MR", "PREF rel. time @8", "PREF rel. time @32", "wasted pf @8"],
    );
    // Each associativity needs its own lab (geometry lives in RunConfig);
    // the three NP/PREF cells inside run through the lab's own batch engine.
    let way_rows = parallel::map(&WAYS, jobs, |_, &ways| {
        let geometry = CacheGeometry::new(32 * 1024, 32, ways).expect("valid geometry");
        let mut lab = Lab::new(RunConfig { geometry, ..base_cfg });
        let np =
            lab.run(Experiment::paper(Workload::Topopt, Strategy::NoPrefetch, 8)).report.clone();
        let rel8 = lab.relative_time(Experiment::paper(Workload::Topopt, Strategy::Pref, 8));
        let rel32 = lab.relative_time(Experiment::paper(Workload::Topopt, Strategy::Pref, 32));
        let pf = lab.run(Experiment::paper(Workload::Topopt, Strategy::Pref, 8)).report.clone();
        (np, rel8, rel32, pf)
    });
    for (&ways, (np, rel8, rel32, pf)) in WAYS.iter().zip(&way_rows) {
        t.row(vec![
            format!("{ways}"),
            format!("{:.2}%", 100.0 * np.cpu_miss_rate()),
            format!("{rel8:.3}"),
            format!("{rel32:.3}"),
            format!("{}", pf.prefetch.wasted_evicted),
        ]);
    }
    charlie_bench::emit(&t);
    println!();

    let mut v = Table::new(
        "Victim-buffer ablation (Topopt, direct-mapped, PREF, 8-cycle transfer)",
        vec!["Victim entries", "rel. time", "victim hits", "CPU MR", "wasted pf"],
    );
    let wcfg = WorkloadConfig {
        procs: base_cfg.procs,
        refs_per_proc: base_cfg.refs_per_proc,
        seed: base_cfg.seed,
        ..WorkloadConfig::default()
    };
    let raw = generate(Workload::Topopt, &wcfg);
    let prepared = apply(Strategy::Pref, &raw, CacheGeometry::paper_default());
    let victim_rows = parallel::map(&VICTIM_ENTRIES, jobs, |_, &entries| {
        let sim_cfg = SimConfig {
            victim_entries: entries,
            ..SimConfig::paper(base_cfg.procs, 8)
        };
        let np = simulate(&sim_cfg, &raw).expect("NP simulates");
        let r = simulate(&sim_cfg, &prepared).expect("simulates");
        (np, r)
    });
    for (&entries, (np, r)) in VICTIM_ENTRIES.iter().zip(&victim_rows) {
        v.row(vec![
            format!("{entries}"),
            format!("{:.3}", r.cycles as f64 / np.cycles as f64),
            format!("{}", r.victim_hits),
            format!("{:.2}%", 100.0 * r.cpu_miss_rate()),
            format!("{}", r.prefetch.wasted_evicted),
        ]);
    }
    charlie_bench::emit(&v);
}
