//! Regenerates the paper's figure1. See DESIGN.md's experiment index.

fn main() {
    let mut lab = charlie_bench::lab_from_env();
    charlie_bench::header(&lab, "figure1");
    charlie_bench::emit(&charlie::experiments::figure1(&mut lab));
}
