//! §4.3 prefetch-distance ablation.
//!
//! The paper argues "prefetching algorithms should strive to receive the
//! prefetched data exactly on time": short distances leave prefetches in
//! progress (cheap-but-real misses), long ones trade them for conflict
//! misses ("trading prefetch-in-progress misses for conflict misses is not
//! wise"). This sweep shows the trade-off directly. The distance knob lives
//! outside [`charlie::Experiment`], so the cells fan out through
//! [`charlie::parallel::map`] (`CHARLIE_JOBS` workers).

use charlie::cache::CacheGeometry;
use charlie::parallel;
use charlie::prefetch::{apply_with_distance, Strategy};
use charlie::sim::{simulate, SimConfig};
use charlie::workloads::{generate, Workload, WorkloadConfig};
use charlie::{Lab, Table};

const DISTANCES: [u64; 6] = [25, 50, 100, 200, 400, 800];

fn main() {
    let lab = charlie_bench::lab_from_env();
    let cfg = *lab.config();
    drop(lab);
    let jobs = Lab::resolve_jobs(charlie_bench::jobs_from_env());

    let mut t = Table::new(
        "Prefetch-distance ablation (PREF discipline, 8-cycle transfer)",
        vec!["Workload", "Distance", "rel. time", "in-progress MR", "non-shr MR", "wasted pf"],
    );
    for w in [Workload::Topopt, Workload::Mp3d] {
        let wcfg = WorkloadConfig {
            procs: cfg.procs,
            refs_per_proc: cfg.refs_per_proc,
            seed: cfg.seed,
            ..WorkloadConfig::default()
        };
        let raw = generate(w, &wcfg);
        let sim_cfg = SimConfig::paper(cfg.procs, 8);
        let np = simulate(&sim_cfg, &raw).expect("NP simulates");
        let reports = parallel::map(&DISTANCES, jobs, |_, &distance| {
            let prepared =
                apply_with_distance(Strategy::Pref, &raw, CacheGeometry::paper_default(), distance);
            simulate(&sim_cfg, &prepared).expect("simulates")
        });
        for (&distance, r) in DISTANCES.iter().zip(&reports) {
            let d = r.demand_accesses().max(1) as f64;
            t.row(vec![
                w.name().to_owned(),
                format!("{distance}"),
                format!("{:.3}", r.cycles as f64 / np.cycles as f64),
                format!("{:.2}%", 100.0 * r.miss.prefetch_in_progress as f64 / d),
                format!("{:.2}%", 100.0 * r.non_sharing_miss_rate()),
                format!("{}", r.prefetch.wasted_evicted + r.prefetch.wasted_invalidated),
            ]);
        }
    }
    charlie_bench::emit(&t);
}
