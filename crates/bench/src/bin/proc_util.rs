//! Regenerates the paper's §4.2 processor-utilization observations (the
//! headroom argument: the best any latency-hiding technique can do is bring
//! utilization to 1).

fn main() {
    let mut lab = charlie_bench::lab_from_env();
    charlie_bench::header(&lab, "processor utilization");
    charlie_bench::emit(&charlie::experiments::processor_utilization(&mut lab));
}
