//! Off-line word-granularity sharing analysis of the workload traces.
//!
//! The paper attributes most invalidation misses to false sharing (Table 3)
//! and fixes it by restructuring (§4.4, citing Jeremiassen & Eggers). This
//! binary shows that the *trace alone* predicts both: the fraction of
//! write-shared lines whose sharing is purely false (fixable by padding)
//! correlates with the measured false-sharing miss share, and collapses to
//! zero under the restructured layout.

use charlie::trace::{TraceStats, WordSharingMap};
use charlie::workloads::{generate, Layout, Workload, WorkloadConfig};
use charlie::Table;

fn main() {
    let lab = charlie_bench::lab_from_env();
    let cfg = *lab.config();
    drop(lab);

    let mut t = Table::new(
        "Word-granularity sharing analysis (static, no simulation)",
        vec![
            "Workload",
            "Layout",
            "write-shared lines",
            "purely false",
            "truly shared",
            "FS potential",
        ],
    );
    for w in Workload::ALL {
        for layout in [Layout::Interleaved, Layout::Padded] {
            let wcfg = WorkloadConfig {
                procs: cfg.procs,
                refs_per_proc: cfg.refs_per_proc,
                seed: cfg.seed,
                layout,
            };
            let trace = generate(w, &wcfg);
            let stats = TraceStats::gather(&trace, 32);
            let words = WordSharingMap::analyze(&trace, 32);
            let (fs, ts) = words.word_class_counts();
            t.row(vec![
                w.name().to_owned(),
                format!("{layout:?}"),
                format!("{}", stats.write_shared_lines),
                format!("{fs}"),
                format!("{ts}"),
                format!("{:.0}%", 100.0 * words.false_sharing_potential()),
            ]);
        }
    }
    charlie_bench::emit(&t);
    if !charlie_bench::csv_requested() {
        println!(
            "\nHigh false-sharing potential predicts that the §4.4 restructuring\n\
             (the Padded layout) will pay off — compare Table 4's measured factors."
        );
    }
}
