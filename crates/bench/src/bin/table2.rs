//! Regenerates the paper's table2. See DESIGN.md's experiment index.

fn main() {
    let mut lab = charlie_bench::lab_from_env();
    charlie_bench::header(&lab, "table2");
    charlie_bench::emit(&charlie::experiments::table2(&mut lab));
}
