//! Regenerates the paper's table1. See DESIGN.md's experiment index.

fn main() {
    let mut lab = charlie_bench::lab_from_env();
    charlie_bench::header(&lab, "table1");
    charlie_bench::emit(&charlie::experiments::table1(&mut lab));
}
