//! Regenerates every table and figure of the paper in one run, sharing
//! simulations across exhibits through the lab's memoization. The whole
//! grid is simulated up front by the parallel engine (`CHARLIE_JOBS`
//! workers, default one per core); the exhibits then render from the memo.
//!
//! ```text
//! CHARLIE_REFS=160000 CHARLIE_JOBS=8 \
//!     cargo run --release -p charlie-bench --bin all_experiments
//! ```
//!
//! Set `CHARLIE_CHECKPOINT=FILE` to journal each completed cell to `FILE`
//! and resume a killed run from it: cells already journaled are restored
//! instead of re-simulated, and the final output is byte-identical to an
//! uninterrupted run.

use charlie::checkpoint::{Journal, JournalOptions};
use charlie::experiments;

fn main() {
    let mut lab = charlie_bench::lab_from_env();
    charlie_bench::header(&lab, "all experiments");

    let jobs = charlie_bench::jobs_from_env();
    let batch = match charlie_bench::checkpoint_from_env() {
        Some(path) => {
            // The config key binds the journal to this campaign's shape, so
            // resuming with a different CHARLIE_REFS/procs/seed refuses
            // instead of silently mixing grids.
            let cfg = lab.config();
            // The hw suffix appears only when an on-line prefetcher is
            // configured, so journals from plain paper campaigns keep their
            // historical keys (and stay resumable by this build).
            let hw = if cfg.hw_prefetch.is_enabled() {
                format!("/hw={}", cfg.hw_prefetch)
            } else {
                String::new()
            };
            let config = format!(
                "all_experiments/p{}/r{}/s{:#x}{hw}",
                cfg.procs, cfg.refs_per_proc, cfg.seed
            );
            let opts = JournalOptions { config: Some(config), sync: false };
            let (mut journal, restored) =
                Journal::open_with(&path, opts).unwrap_or_else(|e| {
                    eprintln!("error: checkpoint {}: {e}", path.display());
                    std::process::exit(2);
                });
            if !restored.is_empty() {
                eprintln!("resuming: {} cells restored from {}", restored.len(), path.display());
            }
            for summary in restored {
                lab.restore(summary);
            }
            lab.prefetch_all_checkpointed(jobs, &mut journal)
        }
        None => lab.prefetch_all(jobs),
    };
    charlie_bench::report_batch(&batch);
    charlie_bench::exit_on_failures(&batch);

    charlie_bench::emit(&experiments::table1(&mut lab));
    println!();
    charlie_bench::emit(&experiments::figure1(&mut lab));
    println!();
    charlie_bench::emit(&experiments::table2(&mut lab));
    println!();
    for panel in experiments::figure2(&mut lab) {
        charlie_bench::emit(&panel);
        println!();
    }
    charlie_bench::emit(&experiments::figure3(&mut lab));
    println!();
    charlie_bench::emit(&experiments::table3(&mut lab));
    println!();
    charlie_bench::emit(&experiments::table4(&mut lab));
    println!();
    charlie_bench::emit(&experiments::table5(&mut lab));
    println!();
    charlie_bench::emit(&experiments::processor_utilization(&mut lab));

    let stats = lab.stats();
    eprintln!(
        "\n{} distinct simulations run ({} memo hits, {} misses).",
        lab.runs_completed(),
        stats.memo_hits,
        stats.memo_misses
    );
}
