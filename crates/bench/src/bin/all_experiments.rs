//! Regenerates every table and figure of the paper in one run, sharing
//! simulations across exhibits through the lab's memoization.
//!
//! ```text
//! CHARLIE_REFS=160000 cargo run --release -p charlie-bench --bin all_experiments
//! ```

use charlie::experiments;

fn main() {
    let mut lab = charlie_bench::lab_from_env();
    charlie_bench::header(&lab, "all experiments");

    charlie_bench::emit(&experiments::table1(&mut lab));
    println!();
    charlie_bench::emit(&experiments::figure1(&mut lab));
    println!();
    charlie_bench::emit(&experiments::table2(&mut lab));
    println!();
    for panel in experiments::figure2(&mut lab) {
        charlie_bench::emit(&panel);
        println!();
    }
    charlie_bench::emit(&experiments::figure3(&mut lab));
    println!();
    charlie_bench::emit(&experiments::table3(&mut lab));
    println!();
    charlie_bench::emit(&experiments::table4(&mut lab));
    println!();
    charlie_bench::emit(&experiments::table5(&mut lab));
    println!();
    charlie_bench::emit(&experiments::processor_utilization(&mut lab));

    eprintln!("\n{} distinct simulations run.", lab.runs_completed());
}
