//! Arbitration-priority ablation.
//!
//! The paper's bus "favors blocking loads over prefetches" (§3.3). This
//! binary measures what that design choice is worth by letting prefetches
//! compete at demand priority: near saturation, prefetch traffic then delays
//! the loads processors are stalled on.

use charlie::cache::CacheGeometry;
use charlie::prefetch::{apply, Strategy};
use charlie::sim::{simulate, SimConfig};
use charlie::workloads::{generate, Workload, WorkloadConfig};
use charlie::Table;

fn main() {
    let lab = charlie_bench::lab_from_env();
    let cfg = *lab.config();
    drop(lab);

    let mut t = Table::new(
        "Arbitration ablation (PWS discipline): demand-over-prefetch priority vs flat priority",
        vec!["Workload", "Transfer", "rel. time (paper arb)", "rel. time (flat arb)"],
    );
    for w in [Workload::Mp3d, Workload::Pverify] {
        let wcfg = WorkloadConfig {
            procs: cfg.procs,
            refs_per_proc: cfg.refs_per_proc,
            seed: cfg.seed,
            ..WorkloadConfig::default()
        };
        let raw = generate(w, &wcfg);
        let prepared = apply(Strategy::Pws, &raw, CacheGeometry::paper_default());
        for lat in [8u64, 16, 32] {
            let base = SimConfig::paper(cfg.procs, lat);
            let np = simulate(&base, &raw).expect("NP simulates").cycles as f64;
            let paper_arb = simulate(&base, &prepared).expect("simulates").cycles as f64;
            let flat = SimConfig { prefetch_demand_priority: true, ..base };
            let flat_arb = simulate(&flat, &prepared).expect("simulates").cycles as f64;
            t.row(vec![
                w.name().to_owned(),
                format!("{lat} cycles"),
                format!("{:.3}", paper_arb / np),
                format!("{:.3}", flat_arb / np),
            ]);
        }
    }
    charlie_bench::emit(&t);
}
