//! Arbitration-priority ablation.
//!
//! The paper's bus "favors blocking loads over prefetches" (§3.3). This
//! binary measures what that design choice is worth by letting prefetches
//! compete at demand priority: near saturation, prefetch traffic then delays
//! the loads processors are stalled on. The arbitration knob lives outside
//! [`charlie::Experiment`], so the (latency, arbitration) cells fan out
//! through [`charlie::parallel::map`] (`CHARLIE_JOBS` workers).

use charlie::cache::CacheGeometry;
use charlie::parallel;
use charlie::prefetch::{apply, Strategy};
use charlie::sim::{simulate, SimConfig};
use charlie::workloads::{generate, Workload, WorkloadConfig};
use charlie::{Lab, Table};

const LATENCIES: [u64; 3] = [8, 16, 32];

fn main() {
    let lab = charlie_bench::lab_from_env();
    let cfg = *lab.config();
    drop(lab);
    let jobs = Lab::resolve_jobs(charlie_bench::jobs_from_env());

    let mut t = Table::new(
        "Arbitration ablation (PWS discipline): demand-over-prefetch priority vs flat priority",
        vec!["Workload", "Transfer", "rel. time (paper arb)", "rel. time (flat arb)"],
    );
    for w in [Workload::Mp3d, Workload::Pverify] {
        let wcfg = WorkloadConfig {
            procs: cfg.procs,
            refs_per_proc: cfg.refs_per_proc,
            seed: cfg.seed,
            ..WorkloadConfig::default()
        };
        let raw = generate(w, &wcfg);
        let prepared = apply(Strategy::Pws, &raw, CacheGeometry::paper_default());
        // Three independent simulations per latency: NP baseline, paper
        // arbitration, flat arbitration.
        let rows = parallel::map(&LATENCIES, jobs, |_, &lat| {
            let base = SimConfig::paper(cfg.procs, lat);
            let np = simulate(&base, &raw).expect("NP simulates").cycles as f64;
            let paper_arb = simulate(&base, &prepared).expect("simulates").cycles as f64;
            let flat = SimConfig { prefetch_demand_priority: true, ..base };
            let flat_arb = simulate(&flat, &prepared).expect("simulates").cycles as f64;
            (paper_arb / np, flat_arb / np)
        });
        for (&lat, &(paper_rel, flat_rel)) in LATENCIES.iter().zip(&rows) {
            t.row(vec![
                w.name().to_owned(),
                format!("{lat} cycles"),
                format!("{paper_rel:.3}"),
                format!("{flat_rel:.3}"),
            ]);
        }
    }
    charlie_bench::emit(&t);
}
