//! Regenerates the paper's Figure 2: execution time relative to NP as a
//! function of the data-bus transfer latency, one panel per workload.
//! This is the most expensive exhibit (5 workloads × 5 strategies × 5
//! latencies = 125 simulations); shrink `CHARLIE_REFS` for a quick pass.

fn main() {
    let mut lab = charlie_bench::lab_from_env();
    charlie_bench::header(&lab, "figure2");
    for panel in charlie::experiments::figure2(&mut lab) {
        charlie_bench::emit(&panel);
        if !charlie_bench::csv_requested() {
            println!();
        }
    }
    if !charlie_bench::csv_requested() {
        for w in charlie::Workload::ALL {
            println!("{}", charlie::experiments::figure2_chart(&mut lab, w));
        }
    }
    // CHARLIE_SVG_DIR=<dir> additionally writes one SVG panel per workload.
    if let Some(dir) = std::env::var_os("CHARLIE_SVG_DIR") {
        let dir = std::path::PathBuf::from(dir);
        std::fs::create_dir_all(&dir).expect("create SVG output directory");
        for w in charlie::Workload::ALL {
            let svg = charlie::experiments::figure2_chart(&mut lab, w).to_svg();
            let path = dir.join(format!("figure2_{}.svg", w.name().to_lowercase()));
            std::fs::write(&path, svg).expect("write SVG panel");
            eprintln!("wrote {}", path.display());
        }
    }
}
