//! The paper's §3.3 configuration sensitivity claims, reproduced:
//!
//! > "with larger caches, non-sharing misses were reduced, making
//! > invalidation miss effects much more dominant; larger block sizes
//! > increased false sharing and thus the total number of invalidation
//! > misses."
//!
//! Sweeps cache size (NP, 8-cycle bus) and block size and prints the miss
//! decomposition for the sharing-heavy workloads. Each geometry needs its
//! own [`Lab`] (geometry lives in `RunConfig`, not `Experiment`), so the
//! cells are fanned out with [`charlie::parallel::map`] rather than
//! `run_batch`; `CHARLIE_JOBS` sets the worker count.

use charlie::cache::CacheGeometry;
use charlie::sim::SimReport;
use charlie::{parallel, Experiment, Lab, RunConfig, Strategy, Table, Workload};

/// Simulates one NP cell under a private geometry and returns its report.
fn np_cell(base_cfg: &RunConfig, w: Workload, geometry: CacheGeometry) -> SimReport {
    let mut lab = Lab::new(RunConfig { geometry, ..*base_cfg });
    lab.run(Experiment::paper(w, Strategy::NoPrefetch, 8)).report.clone()
}

fn main() {
    let base = charlie_bench::lab_from_env();
    let base_cfg = *base.config();
    drop(base);
    let jobs = Lab::resolve_jobs(charlie_bench::jobs_from_env());

    let cache_cells: Vec<(Workload, u64)> = [Workload::Pverify, Workload::Topopt, Workload::Mp3d]
        .into_iter()
        .flat_map(|w| [16u64, 32, 64, 128].into_iter().map(move |kb| (w, kb)))
        .collect();
    let cache_reports = parallel::map(&cache_cells, jobs, |_, &(w, kb)| {
        let geometry = CacheGeometry::new(kb * 1024, 32, 1).expect("valid geometry");
        np_cell(&base_cfg, w, geometry)
    });

    let mut cache_table = Table::new(
        "Cache-size sweep (NP, 8-cycle transfer): larger caches leave invalidation misses dominant",
        vec!["Workload", "Cache", "non-shr MR", "inval MR", "inval share"],
    );
    for (&(w, kb), r) in cache_cells.iter().zip(&cache_reports) {
        let share = if r.cpu_miss_rate() > 0.0 {
            r.invalidation_miss_rate() / r.cpu_miss_rate()
        } else {
            0.0
        };
        cache_table.row(vec![
            w.name().to_owned(),
            format!("{kb} KB"),
            format!("{:.2}%", 100.0 * r.non_sharing_miss_rate()),
            format!("{:.2}%", 100.0 * r.invalidation_miss_rate()),
            format!("{:.0}%", 100.0 * share),
        ]);
    }
    charlie_bench::emit(&cache_table);
    println!();

    let block_cells: Vec<(Workload, u64)> = [Workload::Pverify, Workload::Topopt]
        .into_iter()
        .flat_map(|w| [16u64, 32, 64].into_iter().map(move |block| (w, block)))
        .collect();
    let block_reports = parallel::map(&block_cells, jobs, |_, &(w, block)| {
        let geometry = CacheGeometry::new(32 * 1024, block, 1).expect("valid geometry");
        np_cell(&base_cfg, w, geometry)
    });

    let mut block_table = Table::new(
        "Block-size sweep (NP, 8-cycle transfer): larger blocks increase false sharing",
        vec!["Workload", "Block", "inval MR", "FS MR", "FS share"],
    );
    for (&(w, block), r) in block_cells.iter().zip(&block_reports) {
        let share = if r.invalidation_miss_rate() > 0.0 {
            r.false_sharing_miss_rate() / r.invalidation_miss_rate()
        } else {
            0.0
        };
        block_table.row(vec![
            w.name().to_owned(),
            format!("{block} B"),
            format!("{:.2}%", 100.0 * r.invalidation_miss_rate()),
            format!("{:.2}%", 100.0 * r.false_sharing_miss_rate()),
            format!("{:.0}%", 100.0 * share),
        ]);
    }
    charlie_bench::emit(&block_table);
}
