//! The paper's §3.3 configuration sensitivity claims, reproduced:
//!
//! > "with larger caches, non-sharing misses were reduced, making
//! > invalidation miss effects much more dominant; larger block sizes
//! > increased false sharing and thus the total number of invalidation
//! > misses."
//!
//! Sweeps cache size (NP, 8-cycle bus) and block size and prints the miss
//! decomposition for the sharing-heavy workloads. Each geometry needs its
//! own [`Lab`] (geometry lives in `RunConfig`, not `Experiment`), so the
//! cells are fanned out with [`charlie::parallel::map_observed`] rather
//! than `run_batch`; `CHARLIE_JOBS` sets the worker count.
//!
//! Set `CHARLIE_CHECKPOINT=FILE` to journal each completed cell (keyed by
//! sweep/workload/knob) and skip already-journaled cells on a re-run.

use charlie::cache::CacheGeometry;
use charlie::checkpoint::KeyedJournal;
use charlie::prefetch::HwPrefetchConfig;
use charlie::sim::SimReport;
use charlie::{parallel, Experiment, Lab, RunConfig, Strategy, Table, Workload};

/// Simulates one NP cell under a private geometry and returns its report.
fn np_cell(base_cfg: &RunConfig, w: Workload, geometry: CacheGeometry) -> SimReport {
    let mut lab = Lab::new(RunConfig { geometry, ..*base_cfg });
    lab.run(Experiment::paper(w, Strategy::NoPrefetch, 8)).report.clone()
}

/// Runs every cell not already in the journal, appending each completion
/// as it arrives; returns reports in `cells` order (restored or fresh).
fn sweep_cells(
    cells: &[(Workload, u64)],
    jobs: usize,
    journal: &mut Option<KeyedJournal>,
    key: impl Fn(Workload, u64) -> String,
    run: impl Fn(Workload, u64) -> SimReport + Sync,
) -> Vec<SimReport> {
    let keys: Vec<String> = cells.iter().map(|&(w, knob)| key(w, knob)).collect();
    let mut slots: Vec<Option<SimReport>> = keys
        .iter()
        .map(|k| journal.as_ref().and_then(|j| j.done().get(k).cloned()))
        .collect();
    let todo: Vec<usize> =
        (0..cells.len()).filter(|&i| slots[i].is_none()).collect();
    let fresh = parallel::map_observed(
        &todo,
        jobs,
        |_, &i| {
            let (w, knob) = cells[i];
            run(w, knob)
        },
        |pos, report| {
            if let Some(j) = journal.as_mut() {
                j.append(&keys[todo[pos]], report);
            }
        },
    );
    for (&i, report) in todo.iter().zip(fresh) {
        slots[i] = Some(report);
    }
    slots.into_iter().map(|s| s.expect("every cell restored or run")).collect()
}

fn main() {
    let base = charlie_bench::lab_from_env();
    let base_cfg = *base.config();
    drop(base);
    let jobs = Lab::resolve_jobs(charlie_bench::jobs_from_env());
    // The hw suffix appears only when CHARLIE_HW_PREFETCH configures an
    // on-line prefetcher (it changes every cell through `base_cfg`), so
    // journals from plain campaigns keep their historical keys.
    let hw = if base_cfg.hw_prefetch.is_enabled() {
        format!("/hw={}", base_cfg.hw_prefetch)
    } else {
        String::new()
    };
    let config = format!(
        "config_sweep/p{}/r{}/s{:#x}{hw}",
        base_cfg.procs, base_cfg.refs_per_proc, base_cfg.seed
    );
    let mut journal = charlie_bench::checkpoint_from_env().map(|path| {
        KeyedJournal::open(&path, &config).unwrap_or_else(|e| {
            eprintln!("error: opening checkpoint {}: {e}", path.display());
            std::process::exit(2);
        })
    });
    if let Some(j) = &journal {
        if !j.done().is_empty() {
            eprintln!("resuming: {} cells restored from checkpoint", j.done().len());
        }
    }

    let cache_cells: Vec<(Workload, u64)> = [Workload::Pverify, Workload::Topopt, Workload::Mp3d]
        .into_iter()
        .flat_map(|w| [16u64, 32, 64, 128].into_iter().map(move |kb| (w, kb)))
        .collect();
    let cache_reports = sweep_cells(
        &cache_cells,
        jobs,
        &mut journal,
        |w, kb| format!("cache/{}/{kb}KB", w.name()),
        |w, kb| {
            let geometry = CacheGeometry::new(kb * 1024, 32, 1).expect("valid geometry");
            np_cell(&base_cfg, w, geometry)
        },
    );

    let mut cache_table = Table::new(
        "Cache-size sweep (NP, 8-cycle transfer): larger caches leave invalidation misses dominant",
        vec!["Workload", "Cache", "non-shr MR", "inval MR", "inval share"],
    );
    for (&(w, kb), r) in cache_cells.iter().zip(&cache_reports) {
        let share = if r.cpu_miss_rate() > 0.0 {
            r.invalidation_miss_rate() / r.cpu_miss_rate()
        } else {
            0.0
        };
        cache_table.row(vec![
            w.name().to_owned(),
            format!("{kb} KB"),
            format!("{:.2}%", 100.0 * r.non_sharing_miss_rate()),
            format!("{:.2}%", 100.0 * r.invalidation_miss_rate()),
            format!("{:.0}%", 100.0 * share),
        ]);
    }
    charlie_bench::emit(&cache_table);
    println!();

    let block_cells: Vec<(Workload, u64)> = [Workload::Pverify, Workload::Topopt]
        .into_iter()
        .flat_map(|w| [16u64, 32, 64].into_iter().map(move |block| (w, block)))
        .collect();
    let block_reports = sweep_cells(
        &block_cells,
        jobs,
        &mut journal,
        |w, block| format!("block/{}/{block}B", w.name()),
        |w, block| {
            let geometry = CacheGeometry::new(32 * 1024, block, 1).expect("valid geometry");
            np_cell(&base_cfg, w, geometry)
        },
    );

    let mut block_table = Table::new(
        "Block-size sweep (NP, 8-cycle transfer): larger blocks increase false sharing",
        vec!["Workload", "Block", "inval MR", "FS MR", "FS share"],
    );
    for (&(w, block), r) in block_cells.iter().zip(&block_reports) {
        let share = if r.invalidation_miss_rate() > 0.0 {
            r.false_sharing_miss_rate() / r.invalidation_miss_rate()
        } else {
            0.0
        };
        block_table.row(vec![
            w.name().to_owned(),
            format!("{block} B"),
            format!("{:.2}%", 100.0 * r.invalidation_miss_rate()),
            format!("{:.2}%", 100.0 * r.false_sharing_miss_rate()),
            format!("{:.0}%", 100.0 * share),
        ]);
    }
    charlie_bench::emit(&block_table);
    println!();

    // On-line hardware prefetcher sweep (post-paper): the three predictor
    // families against a streaming workload (Mp3d) and the pointer-chase
    // stress workload. Like geometry, the prefetcher lives in `RunConfig`,
    // so each cell gets its own private lab; the knob indexes HW_CONFIGS.
    const HW_CONFIGS: [HwPrefetchConfig; 3] =
        [HwPrefetchConfig::stride(2, 4), HwPrefetchConfig::sms(2), HwPrefetchConfig::markov(2)];
    let hw_cells: Vec<(Workload, u64)> = [Workload::Mp3d, Workload::PointerChase]
        .into_iter()
        .flat_map(|w| (0..HW_CONFIGS.len() as u64).map(move |i| (w, i)))
        .collect();
    let hw_reports = sweep_cells(
        &hw_cells,
        jobs,
        &mut journal,
        |w, i| format!("hw/{}/{}", w.name(), HW_CONFIGS[i as usize]),
        |w, i| {
            let mut lab =
                Lab::new(RunConfig { hw_prefetch: HW_CONFIGS[i as usize], ..base_cfg });
            lab.run(Experiment::paper(w, Strategy::NoPrefetch, 8)).report.clone()
        },
    );

    let mut hw_table = Table::new(
        "Hardware-prefetcher sweep (NP demand stream, 8-cycle transfer)",
        vec!["Workload", "Prefetcher", "Issued", "Useful", "Late", "Accuracy", "adj CPU MR"],
    );
    for (&(w, i), r) in hw_cells.iter().zip(&hw_reports) {
        let h = r.hw_prefetch;
        hw_table.row(vec![
            w.name().to_owned(),
            HW_CONFIGS[i as usize].to_string(),
            h.issued.to_string(),
            h.useful.to_string(),
            h.late.to_string(),
            format!("{:.0}%", 100.0 * h.accuracy()),
            format!("{:.2}%", 100.0 * r.adjusted_cpu_miss_rate()),
        ]);
    }
    charlie_bench::emit(&hw_table);
}
