//! The paper's §3.3 configuration sensitivity claims, reproduced:
//!
//! > "with larger caches, non-sharing misses were reduced, making
//! > invalidation miss effects much more dominant; larger block sizes
//! > increased false sharing and thus the total number of invalidation
//! > misses."
//!
//! Sweeps cache size (NP, 8-cycle bus) and block size and prints the miss
//! decomposition for the sharing-heavy workloads.

use charlie::cache::CacheGeometry;
use charlie::{Experiment, Lab, RunConfig, Strategy, Table, Workload};

fn main() {
    let base = charlie_bench::lab_from_env();
    let base_cfg = *base.config();
    drop(base);

    let mut cache_table = Table::new(
        "Cache-size sweep (NP, 8-cycle transfer): larger caches leave invalidation misses dominant",
        vec!["Workload", "Cache", "non-shr MR", "inval MR", "inval share"],
    );
    for w in [Workload::Pverify, Workload::Topopt, Workload::Mp3d] {
        for kb in [16u64, 32, 64, 128] {
            let geometry = CacheGeometry::new(kb * 1024, 32, 1).expect("valid geometry");
            let mut lab = Lab::new(RunConfig { geometry, ..base_cfg });
            let r = lab.run(Experiment::paper(w, Strategy::NoPrefetch, 8)).report.clone();
            let share = if r.cpu_miss_rate() > 0.0 {
                r.invalidation_miss_rate() / r.cpu_miss_rate()
            } else {
                0.0
            };
            cache_table.row(vec![
                w.name().to_owned(),
                format!("{kb} KB"),
                format!("{:.2}%", 100.0 * r.non_sharing_miss_rate()),
                format!("{:.2}%", 100.0 * r.invalidation_miss_rate()),
                format!("{:.0}%", 100.0 * share),
            ]);
        }
    }
    charlie_bench::emit(&cache_table);
    println!();

    let mut block_table = Table::new(
        "Block-size sweep (NP, 8-cycle transfer): larger blocks increase false sharing",
        vec!["Workload", "Block", "inval MR", "FS MR", "FS share"],
    );
    for w in [Workload::Pverify, Workload::Topopt] {
        for block in [16u64, 32, 64] {
            let geometry = CacheGeometry::new(32 * 1024, block, 1).expect("valid geometry");
            let mut lab = Lab::new(RunConfig { geometry, ..base_cfg });
            let r = lab.run(Experiment::paper(w, Strategy::NoPrefetch, 8)).report.clone();
            let share = if r.invalidation_miss_rate() > 0.0 {
                r.false_sharing_miss_rate() / r.invalidation_miss_rate()
            } else {
                0.0
            };
            block_table.row(vec![
                w.name().to_owned(),
                format!("{block} B"),
                format!("{:.2}%", 100.0 * r.invalidation_miss_rate()),
                format!("{:.2}%", 100.0 * r.false_sharing_miss_rate()),
                format!("{:.0}%", 100.0 * share),
            ]);
        }
    }
    charlie_bench::emit(&block_table);
}
