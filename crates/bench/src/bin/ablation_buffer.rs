//! Prefetch-buffer-depth ablation.
//!
//! The paper simulates "a 16-deep prefetch instruction buffer, which was
//! sufficiently large to almost always prevent the processor from stalling
//! because the buffer was full" (§3.3). This sweep shows how shallow buffers
//! throttle the prefetching strategies; the depth cells fan out through
//! [`charlie::parallel::map`] (`CHARLIE_JOBS` workers).

use charlie::cache::CacheGeometry;
use charlie::parallel;
use charlie::prefetch::{apply, Strategy};
use charlie::sim::{simulate, SimConfig};
use charlie::workloads::{generate, Workload, WorkloadConfig};
use charlie::{Lab, Table};

const DEPTHS: [usize; 6] = [1, 2, 4, 8, 16, 32];

fn main() {
    let lab = charlie_bench::lab_from_env();
    let cfg = *lab.config();
    drop(lab);
    let jobs = Lab::resolve_jobs(charlie_bench::jobs_from_env());

    let mut t = Table::new(
        "Prefetch-buffer-depth ablation (Mp3d, PWS, 8-cycle transfer)",
        vec!["Depth", "rel. time", "buffer stalls", "prefetch fills"],
    );
    let wcfg = WorkloadConfig {
        procs: cfg.procs,
        refs_per_proc: cfg.refs_per_proc,
        seed: cfg.seed,
        ..WorkloadConfig::default()
    };
    let raw = generate(Workload::Mp3d, &wcfg);
    let prepared = apply(Strategy::Pws, &raw, CacheGeometry::paper_default());
    let base = SimConfig::paper(cfg.procs, 8);
    let np = simulate(&base, &raw).expect("NP simulates").cycles as f64;
    let reports = parallel::map(&DEPTHS, jobs, |_, &depth| {
        let sim_cfg = SimConfig { prefetch_buffer_depth: depth, ..base };
        simulate(&sim_cfg, &prepared).expect("simulates")
    });
    for (&depth, r) in DEPTHS.iter().zip(&reports) {
        t.row(vec![
            format!("{depth}"),
            format!("{:.3}", r.cycles as f64 / np),
            format!("{}", r.prefetch.buffer_stalls),
            format!("{}", r.prefetch.fills),
        ]);
    }
    charlie_bench::emit(&t);
}
