//! Regenerates the paper's table4. See DESIGN.md's experiment index.

fn main() {
    let mut lab = charlie_bench::lab_from_env();
    charlie_bench::header(&lab, "table4");
    charlie_bench::emit(&charlie::experiments::table4(&mut lab));
}
