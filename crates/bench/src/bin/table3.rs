//! Regenerates the paper's table3. See DESIGN.md's experiment index.

fn main() {
    let mut lab = charlie_bench::lab_from_env();
    charlie_bench::header(&lab, "table3");
    charlie_bench::emit(&charlie::experiments::table3(&mut lab));
}
