//! Evaluates the paper's §4.3 suggestion it left unexplored: exclusive
//! prefetching of read-modify-write idioms ("a compiler might recognize when
//! a read is followed immediately by a write and make more effective use of
//! the exclusive prefetch feature"). EXCL-RMW should save upgrade bus
//! transactions relative to both PREF and plain EXCL on write-sharing
//! workloads, at no CPU-miss cost.

use charlie::{Experiment, Strategy, Table, Workload};

fn main() {
    let mut lab = charlie_bench::lab_from_env();
    charlie_bench::header(&lab, "EXCL-RMW extension (8-cycle transfer)");
    let mut t = Table::new(
        "Exclusive prefetching of read-modify-write idioms",
        vec!["Workload", "Strategy", "rel. time", "upgrades", "inval bus ops", "CPU MR"],
    );
    for w in [Workload::Topopt, Workload::Pverify, Workload::Mp3d] {
        for s in [Strategy::Pref, Strategy::Excl, Strategy::ExclRmw] {
            let rel = lab.relative_time(Experiment::paper(w, s, 8));
            let r = &lab.run(Experiment::paper(w, s, 8)).report;
            t.row(vec![
                w.name().to_owned(),
                s.name().to_owned(),
                format!("{rel:.3}"),
                format!("{}", r.bus.upgrades),
                format!("{}", r.bus.invalidating_ops()),
                format!("{:.2}%", 100.0 * r.cpu_miss_rate()),
            ]);
        }
    }
    charlie_bench::emit(&t);
}
