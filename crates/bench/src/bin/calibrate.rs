//! Calibration report: prints each workload's NP baseline next to the
//! paper's published anchors (Table 2 bus utilizations, §4.2 processor
//! utilizations) so generator parameters can be tuned.

use charlie::{Experiment, Strategy, Workload};

/// (workload, paper bus util @4/8/16/32, paper proc util fast/slow)
const ANCHORS: [(Workload, [f64; 4], (f64, f64)); 5] = [
    (Workload::Topopt, [0.18, 0.27, 0.45, 0.76], (0.65, 0.59)),
    (Workload::Mp3d, [0.48, 0.65, 0.90, 1.00], (0.39, 0.22)),
    (Workload::LocusRoute, [0.21, 0.33, 0.56, 0.89], (0.64, 0.54)),
    (Workload::Pverify, [0.42, 0.63, 0.92, 1.00], (0.41, 0.18)),
    (Workload::Water, [0.10, 0.14, 0.22, 0.38], (0.82, 0.81)),
];

fn main() {
    let mut lab = charlie_bench::lab_from_env();
    charlie_bench::header(&lab, "NP calibration vs paper anchors");
    println!(
        "{:<11} {:>22} {:>22} {:>17} {:>17}  {:>8}",
        "workload", "bus util (ours)", "bus util (paper)", "proc util (ours)", "proc util (paper)", "CPU MR"
    );
    for (w, bus_paper, (pu_fast, pu_slow)) in ANCHORS {
        let mut ours = Vec::new();
        for lat in [4u64, 8, 16, 32] {
            let r = &lab.run(Experiment::paper(w, Strategy::NoPrefetch, lat)).report;
            ours.push(r.bus_utilization());
        }
        let fast = lab.run(Experiment::paper(w, Strategy::NoPrefetch, 4)).report.clone();
        let slow = lab.run(Experiment::paper(w, Strategy::NoPrefetch, 32)).report.clone();
        println!(
            "{:<11} {:>22} {:>22} {:>17} {:>17}  {:>7.2}%",
            w.name(),
            fmt4(&ours),
            fmt4(&bus_paper),
            format!("{:.2}/{:.2}", fast.avg_processor_utilization(), slow.avg_processor_utilization()),
            format!("{pu_fast:.2}/{pu_slow:.2}"),
            100.0 * fast.cpu_miss_rate(),
        );
        println!(
            "{:<11}   inval MR {:.2}%  FS MR {:.2}%  non-shr MR {:.2}%  (at 8cy)",
            "",
            100.0 * lab.run(Experiment::paper(w, Strategy::NoPrefetch, 8)).report.invalidation_miss_rate(),
            100.0 * lab.run(Experiment::paper(w, Strategy::NoPrefetch, 8)).report.false_sharing_miss_rate(),
            100.0 * lab.run(Experiment::paper(w, Strategy::NoPrefetch, 8)).report.non_sharing_miss_rate(),
        );
    }
}

fn fmt4(v: &[f64]) -> String {
    v.iter().map(|x| format!("{x:.2}")).collect::<Vec<_>>().join("/")
}
