//! Effective memory latency under contention — the mechanism behind
//! Figure 2.
//!
//! §4.2: "prefetching causes an increase in memory latency due to increased
//! contention between processors on the bus". This binary prints the
//! demand-fill latency distribution (unloaded: 100 cycles) for NP and PWS
//! across the latency sweep, making the queueing directly visible.

use charlie::cache::CacheGeometry;
use charlie::prefetch::{apply, Strategy};
use charlie::sim::{simulate, SimConfig, LATENCY_BUCKET_BOUNDS};
use charlie::workloads::{generate, Workload, WorkloadConfig};
use charlie::Table;

fn main() {
    let lab = charlie_bench::lab_from_env();
    let cfg = *lab.config();
    drop(lab);

    let mut bucket_headers: Vec<String> = Vec::new();
    let mut low = 0;
    for b in LATENCY_BUCKET_BOUNDS {
        bucket_headers.push(format!("{}..{}", low + 1, b));
        low = b;
    }
    bucket_headers.push(format!(">{low}"));

    let mut headers = vec!["Workload".to_owned(), "Transfer".to_owned(), "Strategy".to_owned(), "mean".to_owned()];
    headers.extend(bucket_headers);
    let mut t = Table::new("Demand-fill latency distribution (cycles; unloaded = 100)", headers);

    for w in [Workload::Mp3d, Workload::Water] {
        let wcfg = WorkloadConfig {
            procs: cfg.procs,
            refs_per_proc: cfg.refs_per_proc,
            seed: cfg.seed,
            ..WorkloadConfig::default()
        };
        let raw = generate(w, &wcfg);
        let pws = apply(Strategy::Pws, &raw, CacheGeometry::paper_default());
        for lat in [4u64, 16, 32] {
            let sim_cfg = SimConfig::paper(cfg.procs, lat);
            for (name, trace) in [("NP", &raw), ("PWS", &pws)] {
                let r = simulate(&sim_cfg, trace).expect("simulates");
                let total = r.fill_latency.count().max(1) as f64;
                let mut cells = vec![
                    w.name().to_owned(),
                    format!("{lat}"),
                    name.to_owned(),
                    format!("{:.0}", r.fill_latency.mean()),
                ];
                for &count in r.fill_latency.histogram() {
                    cells.push(format!("{:.0}%", 100.0 * count as f64 / total));
                }
                t.row(cells);
            }
        }
    }
    charlie_bench::emit(&t);
}
