//! Protocol counterfactual: what if the machine updated instead of
//! invalidating?
//!
//! The paper's conclusion names "sharing traffic (invalidation misses)" as
//! "the biggest challenge to designers and users of parallel machine
//! memories". A Firefly-style write-update protocol removes invalidation
//! misses *by construction* — every shared write broadcasts its word — so
//! the comparison shows exactly how much of each workload's time the
//! invalidation misses cost, and what the broadcast traffic costs in
//! exchange as the bus gets slower.

use charlie::cache::CacheGeometry;
use charlie::prefetch::{apply, Strategy};
use charlie::sim::{simulate, Protocol, SimConfig};
use charlie::workloads::{generate, Workload, WorkloadConfig};
use charlie::Table;

fn main() {
    let lab = charlie_bench::lab_from_env();
    let cfg = *lab.config();
    drop(lab);

    let mut t = Table::new(
        "Write-invalidate vs write-update (NP and PREF)",
        vec![
            "Workload",
            "Transfer",
            "Strategy",
            "inval MR (WI)",
            "time WU/WI",
            "bus util WI",
            "bus util WU",
        ],
    );
    for w in [Workload::Pverify, Workload::Mp3d, Workload::Water] {
        let wcfg = WorkloadConfig {
            procs: cfg.procs,
            refs_per_proc: cfg.refs_per_proc,
            seed: cfg.seed,
            ..WorkloadConfig::default()
        };
        let raw = generate(w, &wcfg);
        let pref = apply(Strategy::Pref, &raw, CacheGeometry::paper_default());
        for lat in [4u64, 16] {
            for (name, trace) in [("NP", &raw), ("PREF", &pref)] {
                let wi_cfg = SimConfig::paper(cfg.procs, lat);
                let wu_cfg = SimConfig { protocol: Protocol::WriteUpdate, ..wi_cfg };
                let wi = simulate(&wi_cfg, trace).expect("simulates");
                let wu = simulate(&wu_cfg, trace).expect("simulates");
                assert_eq!(wu.miss.invalidation(), 0, "write-update cannot invalidate");
                t.row(vec![
                    w.name().to_owned(),
                    format!("{lat} cycles"),
                    name.to_owned(),
                    format!("{:.2}%", 100.0 * wi.invalidation_miss_rate()),
                    format!("{:.3}", wu.cycles as f64 / wi.cycles as f64),
                    format!("{:.2}", wi.bus_utilization()),
                    format!("{:.2}", wu.bus_utilization()),
                ]);
            }
        }
    }
    charlie_bench::emit(&t);
}
