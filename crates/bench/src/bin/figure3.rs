//! Regenerates the paper's figure3. See DESIGN.md's experiment index.

fn main() {
    let mut lab = charlie_bench::lab_from_env();
    charlie_bench::header(&lab, "figure3");
    charlie_bench::emit(&charlie::experiments::figure3(&mut lab));
}
