//! Simulation errors.

use crate::check::CoherenceViolation;
use charlie_trace::ValidateTraceError;
use std::error::Error;
use std::fmt;

/// Error returned by [`crate::simulate`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SimError {
    /// The trace failed structural validation (locks/barriers).
    InvalidTrace(ValidateTraceError),
    /// The trace's processor count differs from the configuration's.
    ProcCountMismatch {
        /// Processors in the configuration.
        config: usize,
        /// Processors in the trace.
        trace: usize,
    },
    /// Processor count must be in `1..=64`.
    BadProcCount(usize),
    /// The event queue drained with processors still blocked — a simulator
    /// invariant violation (cannot arise from validated traces).
    Deadlock,
    /// The run outlived its event budget ([`SimConfig::max_events`]); the
    /// watchdog aborted it and reports the last-progress metrics so a
    /// livelocked run (retired stuck, blocked procs) can be told apart from
    /// one that merely needed a bigger budget.
    ///
    /// [`SimConfig::max_events`]: crate::SimConfig::max_events
    BudgetExceeded {
        /// Scheduler events processed when the budget tripped.
        events: u64,
        /// Simulated time of the last event.
        cycles: u64,
        /// Trace events retired across all processors.
        retired: u64,
        /// Processors blocked (not running, not done) at abort time.
        blocked: usize,
    },
    /// The run outlived its wall-clock limit
    /// ([`SimConfig::wall_limit_ms`]); the watchdog aborted it. Unlike
    /// [`SimError::BudgetExceeded`] this catches runs that are wedged
    /// *cheaply* — few events, each pathologically slow — at the price of
    /// nondeterministic trip timing.
    ///
    /// [`SimConfig::wall_limit_ms`]: crate::SimConfig::wall_limit_ms
    WallClockExceeded {
        /// The configured limit, in milliseconds.
        limit_ms: u64,
        /// Scheduler events processed when the limit tripped.
        events: u64,
        /// Simulated time of the last event.
        cycles: u64,
        /// Trace events retired across all processors.
        retired: u64,
        /// Processors blocked (not running, not done) at abort time.
        blocked: usize,
    },
    /// The coherence invariant checker ([`crate::check`]) found illegal
    /// protocol state after a bus transaction.
    InvariantViolation(CoherenceViolation),
    /// A sampled-simulation plan failed structural validation (see
    /// [`crate::SamplePlan::validate`]).
    InvalidSamplePlan(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidTrace(e) => write!(f, "invalid trace: {e}"),
            SimError::ProcCountMismatch { config, trace } => {
                write!(f, "config has {config} processors but trace has {trace}")
            }
            SimError::BadProcCount(n) => write!(f, "processor count {n} outside 1..=64"),
            SimError::Deadlock => f.write_str("event queue drained with blocked processors"),
            SimError::BudgetExceeded { events, cycles, retired, blocked } => write!(
                f,
                "event budget exceeded after {events} events \
                 (cycle {cycles}, {retired} trace events retired, {blocked} procs blocked)"
            ),
            SimError::WallClockExceeded { limit_ms, events, cycles, retired, blocked } => write!(
                f,
                "wall-clock limit of {limit_ms}ms exceeded after {events} events \
                 (cycle {cycles}, {retired} trace events retired, {blocked} procs blocked)"
            ),
            SimError::InvariantViolation(v) => write!(f, "coherence invariant violated: {v}"),
            SimError::InvalidSamplePlan(e) => write!(f, "invalid sample plan: {e}"),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::InvalidTrace(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ValidateTraceError> for SimError {
    fn from(e: ValidateTraceError) -> Self {
        SimError::InvalidTrace(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(SimError::Deadlock.to_string().contains("drained"));
        assert!(SimError::BadProcCount(0).to_string().contains("0"));
        assert!(SimError::ProcCountMismatch { config: 2, trace: 3 }.to_string().contains("2"));
        let budget =
            SimError::BudgetExceeded { events: 100, cycles: 42, retired: 7, blocked: 3 };
        let text = budget.to_string();
        assert!(text.contains("100") && text.contains("42") && text.contains("7"), "{text}");
        let wall = SimError::WallClockExceeded {
            limit_ms: 250,
            events: 99,
            cycles: 41,
            retired: 6,
            blocked: 2,
        };
        let text = wall.to_string();
        assert!(text.contains("250ms") && text.contains("99") && text.contains("6"), "{text}");
    }
}
