//! Simulation errors.

use charlie_trace::ValidateTraceError;
use std::error::Error;
use std::fmt;

/// Error returned by [`crate::simulate`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SimError {
    /// The trace failed structural validation (locks/barriers).
    InvalidTrace(ValidateTraceError),
    /// The trace's processor count differs from the configuration's.
    ProcCountMismatch {
        /// Processors in the configuration.
        config: usize,
        /// Processors in the trace.
        trace: usize,
    },
    /// Processor count must be in `1..=64`.
    BadProcCount(usize),
    /// The event queue drained with processors still blocked — a simulator
    /// invariant violation (cannot arise from validated traces).
    Deadlock,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidTrace(e) => write!(f, "invalid trace: {e}"),
            SimError::ProcCountMismatch { config, trace } => {
                write!(f, "config has {config} processors but trace has {trace}")
            }
            SimError::BadProcCount(n) => write!(f, "processor count {n} outside 1..=64"),
            SimError::Deadlock => f.write_str("event queue drained with blocked processors"),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::InvalidTrace(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ValidateTraceError> for SimError {
    fn from(e: ValidateTraceError) -> Self {
        SimError::InvalidTrace(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(SimError::Deadlock.to_string().contains("drained"));
        assert!(SimError::BadProcCount(0).to_string().contains("0"));
        assert!(SimError::ProcCountMismatch { config: 2, trace: 3 }.to_string().contains("2"));
    }
}
