//! Time-resolved observability: the interval sampler and the structured
//! JSONL trace emitter.
//!
//! The paper's contention argument (§4, Table 2) is *time-dynamic*: prefetch
//! traffic drives the shared bus toward saturation and the resulting
//! queueing — not miss rates — caps speedup. End-of-run aggregates hide
//! that dynamic (and let the warm-up windowing bug fixed alongside this
//! module go unnoticed); the [`Timeline`] produced here shows it directly.
//!
//! Two independent facilities, both strictly opt-in via [`Observability`]:
//!
//! * **Interval sampler** — records one [`WindowSample`] per
//!   [`SampleConfig::interval`] cycles of simulated time: counter *deltas*
//!   over the window (bus busy/queueing cycles, bus operations, processor
//!   busy/stall composition, demand accesses, fill-latency histogram) plus
//!   instantaneous *gauges* at the window boundary (arbitration queue
//!   depth, live transactions a.k.a. outstanding MSHRs, prefetch-buffer
//!   occupancy). Windows are closed from the event loop when the first
//!   event at or past the boundary pops, so gauges reflect machine state at
//!   that moment. When statistics warm-up opens the measurement window the
//!   sampler rebases (drops warm-up windows, re-snapshots), so the sum of
//!   window deltas equals the final windowed counters.
//! * **Trace emitter** — structured JSON-lines events with category filters
//!   (bus grants, coherence transitions, the prefetch lifecycle
//!   executed→issued→filled→used/wasted) and an optional line-address
//!   substring filter. Subsumes the old ad-hoc `CHARLIE_DEBUG_LINE` stderr
//!   aid: that variable now constructs a coherence-category emitter to
//!   stderr with the value as line filter.
//!
//! Zero-cost when disabled: with neither facility enabled the machine's
//! per-event overhead is a single always-false comparison, and reports are
//! bit-identical to a build without the hooks exercised.

use charlie_bus::{BusRequest, Priority, TxnId};
use charlie_trace::LineAddr;
use std::fmt::Write as _;
use std::io::Write;

/// Sampler cadence configuration.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct SampleConfig {
    /// Window length in simulated cycles (clamped to at least 1).
    pub interval: u64,
}

impl SampleConfig {
    /// Default profiling cadence: 10 000 cycles per window.
    pub const DEFAULT_INTERVAL: u64 = 10_000;

    /// A sampler configuration with the given window length.
    pub fn every(interval: u64) -> Self {
        SampleConfig { interval: interval.max(1) }
    }
}

impl Default for SampleConfig {
    fn default() -> Self {
        SampleConfig { interval: Self::DEFAULT_INTERVAL }
    }
}

/// Monotone counters snapshotted at window boundaries; a window's deltas
/// are the difference of two snapshots.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub(crate) struct CounterSnapshot {
    pub bus_busy: u64,
    pub bus_ops: u64,
    pub bus_queueing: u64,
    pub prefetch_grants: u64,
    pub proc_busy: u64,
    pub proc_stall: u64,
    pub accesses: u64,
    pub fills: u64,
    pub fill_buckets: [u64; 7],
}

/// Instantaneous machine state, read when a window closes.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub(crate) struct Gauges {
    pub bus_pending: usize,
    pub outstanding_txns: usize,
    pub prefetch_buffer: usize,
}

/// One sampling window: counter deltas over `start..end` plus gauges at
/// the close.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct WindowSample {
    /// Window start (inclusive), simulated cycles.
    pub start: u64,
    /// Window end (exclusive), simulated cycles.
    pub end: u64,
    /// Bus-occupied cycles accounted during the window. Occupancy is
    /// attributed at *grant* time, so a grant near the end of a window
    /// carries its whole transfer with it and a saturated window can read
    /// slightly above `len()`.
    pub bus_busy_cycles: u64,
    /// Bus transactions granted.
    pub bus_ops: u64,
    /// Queueing cycles accounted (arbitration plus bus-busy delay).
    pub bus_queueing_cycles: u64,
    /// Grants that came from the prefetch arbitration class.
    pub prefetch_grants: u64,
    /// Processor busy cycles, summed over processors.
    pub proc_busy_cycles: u64,
    /// Processor stall cycles, summed over processors.
    pub proc_stall_cycles: u64,
    /// Demand accesses retired.
    pub accesses: u64,
    /// Demand fills whose latency was recorded.
    pub fills: u64,
    /// Fill-latency histogram delta (buckets `<=100, <=125, <=150, <=200,
    /// <=300, <=500, >500` cycles, as in `LatencyStats`).
    pub fill_latency_buckets: [u64; 7],
    /// Gauge: transactions queued at the bus (arbitration queue depth).
    pub bus_pending: usize,
    /// Gauge: live (granted or queued) transactions — outstanding MSHRs.
    pub outstanding_txns: usize,
    /// Gauge: occupied prefetch-buffer slots, summed over processors.
    pub prefetch_buffer: usize,
}

impl WindowSample {
    /// Window length in cycles.
    pub fn len(&self) -> u64 {
        self.end.saturating_sub(self.start)
    }

    /// `true` for a degenerate zero-length window.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bus utilization over this window. Grant-attributed (see
    /// [`WindowSample::bus_busy_cycles`]), so a saturated window can read
    /// slightly above 1.0.
    pub fn bus_utilization(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.bus_busy_cycles as f64 / self.len() as f64
        }
    }
}

/// The full per-run time series produced by the sampler.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Timeline {
    /// Configured window length (the trailing window may be shorter).
    pub interval: u64,
    /// Windows in time order, covering the measured span without gaps.
    pub windows: Vec<WindowSample>,
}

impl Timeline {
    /// Sum of per-window bus-busy deltas. Equals the final
    /// `BusStats::busy_cycles` counter for runs without statistics warm-up;
    /// with warm-up the report additionally subtracts the trailing posted
    /// write-back overhang, so the sum can exceed the reported value by at
    /// most one transfer.
    pub fn total_bus_busy(&self) -> u64 {
        self.windows.iter().map(|w| w.bus_busy_cycles).sum()
    }

    /// Sum of per-window demand-access deltas.
    pub fn total_accesses(&self) -> u64 {
        self.windows.iter().map(|w| w.accesses).sum()
    }

    /// Start time of the first window whose bus utilization exceeds
    /// `threshold` (the saturation-onset summary; the paper's contention
    /// argument uses 0.9). `None` when no window does.
    pub fn saturation_onset(&self, threshold: f64) -> Option<u64> {
        self.windows.iter().find(|w| w.bus_utilization() > threshold).map(|w| w.start)
    }
}

/// Internal sampler state driven by the machine's event loop.
#[derive(Clone, Debug)]
pub(crate) struct Sampler {
    interval: u64,
    /// Next window boundary; the event loop ticks when simulated time
    /// reaches it.
    next_at: u64,
    window_start: u64,
    base: CounterSnapshot,
    windows: Vec<WindowSample>,
}

impl Sampler {
    pub fn new(cfg: SampleConfig) -> Self {
        let interval = cfg.interval.max(1);
        Sampler {
            interval,
            next_at: interval,
            window_start: 0,
            base: CounterSnapshot::default(),
            windows: Vec::new(),
        }
    }

    pub fn next_at(&self) -> u64 {
        self.next_at
    }

    /// Closes the current window at `end` (pushing it only when non-empty)
    /// and starts the next one from `snap`.
    pub fn close_at(&mut self, end: u64, snap: CounterSnapshot, gauges: Gauges) {
        if end > self.window_start {
            let b = &self.base;
            let mut fill_latency_buckets = [0u64; 7];
            for (d, (n, o)) in fill_latency_buckets
                .iter_mut()
                .zip(snap.fill_buckets.iter().zip(b.fill_buckets.iter()))
            {
                *d = n - o;
            }
            self.windows.push(WindowSample {
                start: self.window_start,
                end,
                bus_busy_cycles: snap.bus_busy - b.bus_busy,
                bus_ops: snap.bus_ops - b.bus_ops,
                bus_queueing_cycles: snap.bus_queueing - b.bus_queueing,
                prefetch_grants: snap.prefetch_grants - b.prefetch_grants,
                proc_busy_cycles: snap.proc_busy - b.proc_busy,
                proc_stall_cycles: snap.proc_stall - b.proc_stall,
                accesses: snap.accesses - b.accesses,
                fills: snap.fills - b.fills,
                fill_latency_buckets,
                bus_pending: gauges.bus_pending,
                outstanding_txns: gauges.outstanding_txns,
                prefetch_buffer: gauges.prefetch_buffer,
            });
        }
        self.base = snap;
        self.window_start = end;
        self.next_at = end + self.interval;
    }

    /// Statistics warm-up completed at `now`: drop the warm-up windows and
    /// re-snapshot, so summed window deltas equal the final *windowed*
    /// counters. The machine zeroes every counter at the same moment, hence
    /// the default (all-zero) base.
    pub fn rebase(&mut self, now: u64) {
        self.windows.clear();
        self.base = CounterSnapshot::default();
        self.window_start = now;
        self.next_at = now + self.interval;
    }

    pub fn into_timeline(self) -> Timeline {
        Timeline { interval: self.interval, windows: self.windows }
    }
}

/// Event categories the trace emitter can record.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct TraceCategories {
    /// Bus grants.
    pub bus: bool,
    /// Coherence transitions (snoops at grant time, fills at install time).
    pub coherence: bool,
    /// Prefetch lifecycle: executed → issued → filled → used / wasted.
    pub prefetch: bool,
}

impl TraceCategories {
    /// Every category.
    pub fn all() -> Self {
        TraceCategories { bus: true, coherence: true, prefetch: true }
    }

    /// No category (useful as a parse accumulator).
    pub fn none() -> Self {
        TraceCategories { bus: false, coherence: false, prefetch: false }
    }

    /// Parses a comma-separated category list (`"bus,prefetch"`, or
    /// `"all"`).
    pub fn parse(s: &str) -> Result<Self, String> {
        let mut cats = TraceCategories::none();
        for part in s.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            match part {
                "bus" => cats.bus = true,
                "coherence" => cats.coherence = true,
                "prefetch" => cats.prefetch = true,
                "all" => cats = TraceCategories::all(),
                other => {
                    return Err(format!(
                        "unknown trace category '{other}' (expected bus, coherence, prefetch, or all)"
                    ))
                }
            }
        }
        Ok(cats)
    }
}

/// Structured JSONL trace sink. Every event is one line of the form
/// `{"t":<cycle>,"cat":"bus|coherence|prefetch","ev":"<name>",...}`.
pub struct TraceEmitter {
    out: Box<dyn Write + Send>,
    cats: TraceCategories,
    /// Substring filter against `format!("{line:?}")` — the same matching
    /// the old `CHARLIE_DEBUG_LINE` aid used.
    line_filter: Option<String>,
    buf: String,
}

impl std::fmt::Debug for TraceEmitter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceEmitter")
            .field("cats", &self.cats)
            .field("line_filter", &self.line_filter)
            .finish_non_exhaustive()
    }
}

impl TraceEmitter {
    /// An emitter writing all requested categories to `out`.
    pub fn new(out: Box<dyn Write + Send>, cats: TraceCategories) -> Self {
        TraceEmitter { out, cats, line_filter: None, buf: String::new() }
    }

    /// Restricts the emitter to events whose line address debug-formatting
    /// contains `filter`.
    pub fn with_line_filter(mut self, filter: impl Into<String>) -> Self {
        self.line_filter = Some(filter.into());
        self
    }

    /// The `CHARLIE_DEBUG_LINE` compatibility constructor: when the
    /// variable is set, a coherence-category emitter to stderr filtered to
    /// its value (the old ad-hoc stderr aid, now in the structured format).
    pub fn from_env() -> Option<Self> {
        let filter = std::env::var("CHARLIE_DEBUG_LINE").ok()?;
        let cats = TraceCategories { bus: false, coherence: true, prefetch: false };
        Some(TraceEmitter::new(Box::new(std::io::stderr()), cats).with_line_filter(filter))
    }

    fn line_matches(&self, line: LineAddr) -> bool {
        match &self.line_filter {
            None => true,
            Some(f) => format!("{line:?}").contains(f.as_str()),
        }
    }

    /// `true` when a coherence event for `line` would be recorded — lets
    /// the machine skip building the (expensive) state description.
    pub fn wants_coherence(&self, line: LineAddr) -> bool {
        self.cats.coherence && self.line_matches(line)
    }

    fn start(&mut self, t: u64, cat: &str, ev: &str) {
        self.buf.clear();
        let _ = write!(self.buf, "{{\"t\":{t},\"cat\":\"{cat}\",\"ev\":\"{ev}\"");
    }

    fn str_field(&mut self, key: &str, value: &str) {
        let _ = write!(self.buf, ",\"{key}\":\"");
        for c in value.chars() {
            match c {
                '"' => self.buf.push_str("\\\""),
                '\\' => self.buf.push_str("\\\\"),
                '\n' => self.buf.push_str("\\n"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(self.buf, "\\u{:04x}", c as u32);
                }
                c => self.buf.push(c),
            }
        }
        self.buf.push('"');
    }

    fn num_field(&mut self, key: &str, value: u64) {
        let _ = write!(self.buf, ",\"{key}\":{value}");
    }

    fn finish(&mut self) {
        self.buf.push('}');
        // Best-effort sink: a full pipe or closed fd must not abort the run.
        let _ = writeln!(self.out, "{}", self.buf);
    }

    /// A bus grant: who won arbitration, for what, and for how long.
    pub fn bus_grant(&mut self, t: u64, req: &BusRequest, completes_at: u64) {
        if !self.cats.bus || !self.line_matches(req.line) {
            return;
        }
        self.start(t, "bus", "grant");
        self.num_field("proc", req.proc.index() as u64);
        let line = format!("{:?}", req.line);
        self.str_field("line", &line);
        let op = format!("{:?}", req.op);
        self.str_field("op", &op);
        self.str_field(
            "prio",
            if req.priority == Priority::Prefetch { "prefetch" } else { "demand" },
        );
        self.num_field("queued", t.saturating_sub(req.ready_at));
        self.num_field("completes_at", completes_at);
        self.finish();
    }

    /// A snoop broadcast at grant time. `action` and `states` are debug
    /// renderings (the old `CHARLIE_DEBUG_LINE` payload).
    pub fn snoop(&mut self, t: u64, id: TxnId, line: LineAddr, action: &str, states: &str) {
        if !self.wants_coherence(line) {
            return;
        }
        self.start(t, "coherence", "snoop");
        let id = id.to_string();
        self.str_field("txn", &id);
        let line = format!("{line:?}");
        self.str_field("line", &line);
        self.str_field("action", action);
        self.str_field("states", states);
        self.finish();
    }

    /// A fill installing `line` into processor `proc`'s cache.
    pub fn fill(&mut self, t: u64, proc: usize, line: LineAddr, op: &str, state: &str, by_prefetch: bool) {
        if !self.wants_coherence(line) {
            return;
        }
        self.start(t, "coherence", "fill");
        self.num_field("proc", proc as u64);
        let line = format!("{line:?}");
        self.str_field("line", &line);
        self.str_field("op", op);
        self.str_field("state", state);
        self.num_field("by_prefetch", u64::from(by_prefetch));
        self.finish();
    }

    /// A prefetch lifecycle stage for `line` on processor `proc`:
    /// `executed` (with an outcome of `hit`/`duplicate`/`issued`),
    /// `promoted`, `filled`, `used`, `wasted_evicted`, or
    /// `wasted_invalidated`.
    pub fn prefetch(&mut self, t: u64, proc: usize, line: LineAddr, stage: &str) {
        if !self.cats.prefetch || !self.line_matches(line) {
            return;
        }
        self.start(t, "prefetch", stage);
        self.num_field("proc", proc as u64);
        let line = format!("{line:?}");
        self.str_field("line", &line);
        self.finish();
    }

    /// `prefetch` stage event carrying an extra string field.
    pub fn prefetch_with(&mut self, t: u64, proc: usize, line: LineAddr, stage: &str, key: &str, value: &str) {
        if !self.cats.prefetch || !self.line_matches(line) {
            return;
        }
        self.start(t, "prefetch", stage);
        self.num_field("proc", proc as u64);
        let line = format!("{line:?}");
        self.str_field("line", &line);
        self.str_field(key, value);
        self.finish();
    }
}

/// Opt-in observability attachments for a single simulation run. The
/// default (neither facility) is the zero-cost path: behaviour and reports
/// are bit-identical to an unobserved run.
#[derive(Debug, Default)]
pub struct Observability {
    /// Interval sampler configuration; `Some` enables timeline recording.
    pub sample: Option<SampleConfig>,
    /// Structured trace sink; `Some` enables event emission.
    pub tracer: Option<TraceEmitter>,
}

impl Observability {
    /// Sampling only, at the given cadence.
    pub fn sampled(interval: u64) -> Self {
        Observability { sample: Some(SampleConfig::every(interval)), tracer: None }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `TxnId` has no public constructor; mint one through a throwaway bus.
    fn txn_id() -> TxnId {
        let mut b = charlie_bus::Bus::new(charlie_bus::BusConfig::paper(8), 1);
        b.submit(
            0,
            charlie_trace::ProcId(0),
            LineAddr::from_raw(0),
            charlie_cache::protocol::BusOp::WriteBack,
            Priority::Demand,
        )
    }

    fn snap(bus_busy: u64, accesses: u64) -> CounterSnapshot {
        CounterSnapshot { bus_busy, accesses, ..CounterSnapshot::default() }
    }

    #[test]
    fn sampler_deltas_and_trailing_window() {
        let mut s = Sampler::new(SampleConfig::every(100));
        assert_eq!(s.next_at(), 100);
        s.close_at(100, snap(40, 7), Gauges { bus_pending: 2, ..Gauges::default() });
        assert_eq!(s.next_at(), 200);
        s.close_at(200, snap(90, 12), Gauges::default());
        // Trailing partial window.
        s.close_at(230, snap(95, 13), Gauges::default());
        let t = s.into_timeline();
        assert_eq!(t.windows.len(), 3);
        assert_eq!(t.windows[0].bus_busy_cycles, 40);
        assert_eq!(t.windows[0].bus_pending, 2);
        assert_eq!(t.windows[1].bus_busy_cycles, 50);
        assert_eq!(t.windows[1].accesses, 5);
        assert_eq!(t.windows[2].len(), 30);
        assert_eq!(t.total_bus_busy(), 95, "window deltas sum to the final counter");
        assert_eq!(t.total_accesses(), 13);
    }

    #[test]
    fn sampler_drops_degenerate_windows() {
        let mut s = Sampler::new(SampleConfig::every(50));
        // Close at the exact boundary twice: the second is zero-length.
        s.close_at(50, snap(10, 1), Gauges::default());
        s.close_at(50, snap(10, 1), Gauges::default());
        // Run ends exactly on a boundary: no empty trailing window either.
        s.close_at(100, snap(30, 2), Gauges::default());
        s.close_at(100, snap(30, 2), Gauges::default());
        let t = s.into_timeline();
        assert_eq!(t.windows.len(), 2);
        assert!(t.windows.iter().all(|w| !w.is_empty()));
    }

    #[test]
    fn sampler_rebase_discards_warmup_windows() {
        let mut s = Sampler::new(SampleConfig::every(100));
        s.close_at(100, snap(80, 9), Gauges::default());
        // Warm-up ends at 130: counters are zeroed machine-side.
        s.rebase(130);
        assert_eq!(s.next_at(), 230);
        s.close_at(230, snap(60, 4), Gauges::default());
        let t = s.into_timeline();
        assert_eq!(t.windows.len(), 1);
        assert_eq!(t.windows[0].start, 130);
        assert_eq!(t.windows[0].bus_busy_cycles, 60);
        assert_eq!(t.total_bus_busy(), 60, "sums cover only the measured window");
    }

    #[test]
    fn empty_timeline() {
        let s = Sampler::new(SampleConfig::default());
        let t = s.into_timeline();
        assert!(t.windows.is_empty());
        assert_eq!(t.total_bus_busy(), 0);
        assert_eq!(t.saturation_onset(0.9), None);
    }

    #[test]
    fn saturation_onset_finds_first_hot_window() {
        let mk = |start: u64, busy: u64| WindowSample {
            start,
            end: start + 100,
            bus_busy_cycles: busy,
            ..WindowSample::default()
        };
        let t = Timeline {
            interval: 100,
            windows: vec![mk(0, 50), mk(100, 91), mk(200, 95), mk(300, 10)],
        };
        assert_eq!(t.saturation_onset(0.9), Some(100));
        assert_eq!(t.saturation_onset(0.99), None);
        assert_eq!(t.saturation_onset(0.05), Some(0));
    }

    #[test]
    fn window_utilization_math() {
        let w = WindowSample { start: 100, end: 200, bus_busy_cycles: 25, ..WindowSample::default() };
        assert!((w.bus_utilization() - 0.25).abs() < 1e-12);
        assert_eq!(WindowSample::default().bus_utilization(), 0.0, "degenerate window");
    }

    #[test]
    fn sample_interval_clamped_to_one() {
        let s = Sampler::new(SampleConfig::every(0));
        assert_eq!(s.next_at(), 1);
    }

    #[test]
    fn trace_categories_parse() {
        assert_eq!(TraceCategories::parse("all"), Ok(TraceCategories::all()));
        assert_eq!(
            TraceCategories::parse("bus, prefetch"),
            Ok(TraceCategories { bus: true, coherence: false, prefetch: true })
        );
        assert_eq!(TraceCategories::parse(""), Ok(TraceCategories::none()));
        assert!(TraceCategories::parse("bogus").is_err());
    }

    #[test]
    fn emitter_respects_categories_and_line_filter() {
        use std::sync::{Arc, Mutex};

        #[derive(Clone, Default)]
        struct Sink(Arc<Mutex<Vec<u8>>>);
        impl Write for Sink {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let sink = Sink::default();
        let cats = TraceCategories { bus: true, coherence: false, prefetch: true };
        let mut tr = TraceEmitter::new(Box::new(sink.clone()), cats).with_line_filter("7");
        let l7 = LineAddr::from_raw(7);
        let l9 = LineAddr::from_raw(9);
        tr.prefetch(10, 0, l7, "issued");
        tr.prefetch(11, 0, l9, "issued"); // filtered: line mismatch
        tr.snoop(12, txn_id(), l7, "a", "s"); // filtered: category off
        tr.prefetch_with(13, 1, l7, "executed", "outcome", "hit");
        drop(tr);
        let text = String::from_utf8(sink.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"t\":10,\"cat\":\"prefetch\",\"ev\":\"issued\""));
        assert!(lines[1].contains("\"outcome\":\"hit\""));
        assert!(!text.contains("snoop"));
    }

    #[test]
    fn emitter_escapes_strings() {
        use std::sync::{Arc, Mutex};
        struct Sink(Arc<Mutex<Vec<u8>>>);
        impl Write for Sink {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let store = Arc::new(Mutex::new(Vec::new()));
        let mut tr = TraceEmitter::new(Box::new(Sink(store.clone())), TraceCategories::all());
        tr.snoop(0, txn_id(), LineAddr::from_raw(1), "say \"hi\"\\", "s");
        drop(tr);
        let text = String::from_utf8(store.lock().unwrap().clone()).unwrap();
        assert!(text.contains("say \\\"hi\\\"\\\\"));
    }
}
