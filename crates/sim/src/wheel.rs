//! Calendar-queue event scheduler.
//!
//! The simulation's event timeline is dense (on the order of one event per
//! simulated cycle) and almost every event is scheduled a short, bounded
//! delay ahead of the current time — bus transfers, arbitration re-checks,
//! processor wakes. A binary heap pays `O(log n)` sifts of 32-byte elements
//! on every push and pop for an ordering the workload barely needs; this
//! wheel turns both into amortized `O(1)` bucket appends and pops.
//!
//! [`EventWheel`] is a drop-in replacement for
//! `BinaryHeap<Reverse<(time, seq, T)>>` under the scheduler's actual usage
//! contract, popping in **exactly** the same `(time, seq)` order:
//!
//! - Events within the wheel horizon (`HORIZON` cycles ahead of the last
//!   pop) go into per-cycle FIFO buckets. `seq` is globally increasing and
//!   the cursor is monotone, so append order within a bucket *is* `seq`
//!   order.
//! - Rarer far-future events (deep processor run-ahead wakes) overflow into
//!   a small binary heap and migrate into the wheel when the cursor gets
//!   within a horizon of them. Migration happens eagerly on every cursor
//!   advance, *before* any handler runs at the new time, which guarantees a
//!   migrated event is appended to its bucket ahead of any same-time event
//!   pushed later (see `pop`).
//! - An exact `next_time` cache makes "is anything due at or before t?"
//!   (the processor run-ahead yield check, asked after every trace event)
//!   one load instead of a scan.
//!
//! `randomized_order_matches_binary_heap` below drives the wheel head-to-
//! head against the reference heap through adversarial push/pop mixes,
//! including past-horizon delays.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Wheel span in cycles. Delays at or past this fall back to the overflow
/// heap; must be a power of two. 4096 comfortably covers every bounded
/// machine delay (bus transfers are tens of cycles) so overflow traffic is
/// essentially only deep run-ahead wakes.
const HORIZON: u64 = 4096;
const MASK: u64 = HORIZON - 1;
const WORDS: usize = (HORIZON / 64) as usize;

/// One cycle's FIFO of `(seq, payload)`. Pops always come from the wheel's
/// minimum-time bucket until it drains, so a plain grow-only `Vec` with a
/// read head beats a ring buffer: push is a bare `Vec::push`, pop is an
/// indexed read, and the storage is recycled on drain.
#[derive(Debug)]
struct Bucket<T> {
    items: Vec<(u64, T)>,
    head: usize,
}

impl<T: Copy> Bucket<T> {
    #[inline]
    fn push(&mut self, seq: u64, item: T) {
        self.items.push((seq, item));
    }

    #[inline]
    fn pop(&mut self) -> Option<(u64, T)> {
        let out = *self.items.get(self.head)?;
        self.head += 1;
        if self.head == self.items.len() {
            self.items.clear();
            self.head = 0;
        }
        Some(out)
    }

    #[inline]
    fn is_empty(&self) -> bool {
        self.head == self.items.len()
    }
}

/// A time-ordered event queue; see the module docs. `T` is the event
/// payload. `Ord` is only needed for the overflow heap's internal ordering.
#[derive(Debug)]
pub(crate) struct EventWheel<T> {
    /// `buckets[time & MASK]` holds the events of one absolute cycle, in
    /// push (= `seq`) order. The horizon invariant — every resident event's
    /// time is within `[cursor, cursor + HORIZON)` — keeps each bucket to a
    /// single absolute time.
    buckets: Vec<Bucket<T>>,
    /// One bit per bucket: non-empty. Lets the post-pop `next_time` refresh
    /// scan 64 buckets per load.
    occupied: [u64; WORDS],
    /// Events scheduled at or past `cursor + HORIZON`.
    overflow: BinaryHeap<Reverse<(u64, u64, T)>>,
    /// Time of the most recent pop. Pushes never happen in its past.
    cursor: u64,
    /// Exact earliest pending event time; `u64::MAX` when empty.
    next_time: u64,
    len: usize,
}

impl<T: Ord + Copy> EventWheel<T> {
    pub fn new() -> Self {
        EventWheel {
            buckets: (0..HORIZON).map(|_| Bucket { items: Vec::new(), head: 0 }).collect(),
            occupied: [0; WORDS],
            overflow: BinaryHeap::new(),
            cursor: 0,
            next_time: u64::MAX,
            len: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    /// Earliest pending event time (`None` when empty). Exact, O(1).
    #[inline]
    pub fn next_time(&self) -> Option<u64> {
        if self.len == 0 { None } else { Some(self.next_time) }
    }

    /// Schedules `item` at `time` with global sequence number `seq`.
    /// Callers must pass strictly increasing `seq` values and never
    /// schedule before the last popped time.
    #[inline(always)]
    pub fn push(&mut self, time: u64, seq: u64, item: T) {
        debug_assert!(time >= self.cursor, "scheduled into the past");
        self.len += 1;
        if time < self.next_time {
            self.next_time = time;
        }
        if time - self.cursor >= HORIZON {
            self.overflow.push(Reverse((time, seq, item)));
        } else {
            let idx = (time & MASK) as usize;
            self.buckets[idx].push(seq, item);
            self.occupied[idx / 64] |= 1 << (idx % 64);
        }
    }

    /// Removes and returns the pending event with the smallest `(time, seq)`.
    #[inline]
    pub fn pop(&mut self) -> Option<(u64, u64, T)> {
        if self.len == 0 {
            return None;
        }
        let t = self.next_time;
        // Advance the cursor first and migrate every overflow event that is
        // now within the horizon. Doing this before draining the bucket (and
        // before any handler can push) is what keeps bucket FIFO order equal
        // to seq order: an in-range push to some time u requires
        // cursor > u - HORIZON, and by then every overflow event for u (all
        // pushed earlier, with smaller seq) has already been appended here.
        self.cursor = t;
        while let Some(&Reverse((time, _, _))) = self.overflow.peek() {
            if time - self.cursor >= HORIZON {
                break;
            }
            let Some(Reverse((time, seq, item))) = self.overflow.pop() else { unreachable!() };
            let idx = (time & MASK) as usize;
            self.buckets[idx].push(seq, item);
            self.occupied[idx / 64] |= 1 << (idx % 64);
        }
        let idx = (t & MASK) as usize;
        let (seq, item) = self.buckets[idx].pop().expect("next_time bucket is non-empty");
        self.len -= 1;
        if self.buckets[idx].is_empty() {
            self.occupied[idx / 64] &= !(1 << (idx % 64));
            self.refresh_next_time();
        }
        Some((t, seq, item))
    }

    /// Recomputes `next_time` after the bucket at `cursor` drained: the next
    /// occupied bucket within the horizon (by bitmap scan from the cursor),
    /// or the overflow minimum, or `u64::MAX`.
    fn refresh_next_time(&mut self) {
        let mut wheel_next = u64::MAX;
        // Wheel times live in [cursor, cursor + HORIZON); scanning indices
        // in circular order from the cursor visits them in ascending time.
        let start = (self.cursor & MASK) as usize;
        let mut idx = start;
        let mut remaining = HORIZON as usize;
        while remaining > 0 {
            let word = idx / 64;
            let bit = idx % 64;
            // Bits at or above `bit` in this word, clipped to `remaining`.
            let mut mask = self.occupied[word] >> bit;
            let span = (64 - bit).min(remaining);
            if span < 64 {
                mask &= (1u64 << span) - 1;
            }
            if mask != 0 {
                let found = idx + mask.trailing_zeros() as usize;
                let base = self.cursor - (self.cursor & MASK);
                let mut time = base + found as u64;
                if time < self.cursor {
                    time += HORIZON;
                }
                wheel_next = time;
                break;
            }
            idx = (idx + span) % HORIZON as usize;
            remaining -= span;
        }
        let overflow_next =
            self.overflow.peek().map_or(u64::MAX, |&Reverse((time, _, _))| time);
        self.next_time = wheel_next.min(overflow_next);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BinaryHeap;

    #[test]
    fn empty_wheel() {
        let mut w: EventWheel<u32> = EventWheel::new();
        assert_eq!(w.len(), 0);
        assert_eq!(w.next_time(), None);
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn same_time_pops_in_push_order() {
        let mut w = EventWheel::new();
        w.push(5, 1, "a");
        w.push(5, 2, "b");
        w.push(3, 3, "c");
        assert_eq!(w.next_time(), Some(3));
        assert_eq!(w.pop(), Some((3, 3, "c")));
        assert_eq!(w.pop(), Some((5, 1, "a")));
        assert_eq!(w.pop(), Some((5, 2, "b")));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn past_horizon_events_overflow_and_return() {
        let mut w = EventWheel::new();
        w.push(0, 1, "now");
        w.push(HORIZON * 3 + 7, 2, "far");
        assert_eq!(w.pop(), Some((0, 1, "now")));
        assert_eq!(w.next_time(), Some(HORIZON * 3 + 7));
        assert_eq!(w.pop(), Some((HORIZON * 3 + 7, 2, "far")));
    }

    /// An overflow event and a later in-range push landing on the same
    /// cycle: the overflow event (smaller seq) must pop first.
    #[test]
    fn migrated_overflow_keeps_seq_order_against_direct_push() {
        let mut w = EventWheel::new();
        let target = HORIZON + 10;
        w.push(target, 1, "early-overflow");
        w.push(20, 2, "stepping-stone");
        assert_eq!(w.pop(), Some((20, 2, "stepping-stone")));
        // Cursor is now 20; `target` is in range and was migrated.
        w.push(target, 3, "direct");
        assert_eq!(w.pop(), Some((target, 1, "early-overflow")));
        assert_eq!(w.pop(), Some((target, 3, "direct")));
    }

    #[derive(Clone, Debug)]
    enum Op {
        /// Push at `last_pop_time + delay` (delays straddle the horizon).
        Push { delay: u64 },
        Pop,
    }

    proptest! {
        /// Head-to-head against the reference `BinaryHeap` through random
        /// push/pop mixes: identical pop sequences, always.
        #[test]
        fn randomized_order_matches_binary_heap(
            ops in proptest::collection::vec(
                prop_oneof![
                    (0u64..HORIZON / 2).prop_map(|delay| Op::Push { delay }),
                    (0u64..64).prop_map(|delay| Op::Push { delay }),
                    (HORIZON - 2..HORIZON * 2 + 2).prop_map(|delay| Op::Push { delay }),
                    Just(Op::Pop),
                    Just(Op::Pop),
                    Just(Op::Pop),
                ],
                1..400,
            ),
        ) {
            let mut wheel = EventWheel::new();
            let mut heap: BinaryHeap<Reverse<(u64, u64, u64)>> = BinaryHeap::new();
            let mut seq = 0u64;
            let mut now = 0u64;
            for op in ops {
                match op {
                    Op::Push { delay } => {
                        seq += 1;
                        wheel.push(now + delay, seq, seq);
                        heap.push(Reverse((now + delay, seq, seq)));
                    }
                    Op::Pop => {
                        let expected = heap.pop().map(|Reverse(e)| e);
                        let got = wheel.pop();
                        prop_assert_eq!(got, expected);
                        prop_assert_eq!(wheel.len(), heap.len());
                        if let Some((t, _, _)) = got {
                            now = t;
                        }
                    }
                }
                prop_assert_eq!(
                    wheel.next_time(),
                    heap.peek().map(|&Reverse((t, _, _))| t)
                );
            }
        }
    }
}
