//! The event-driven multiprocessor machine: processors, coherent caches,
//! contended bus, prefetch buffers, and synchronization, wired together.
//!
//! # Timing model
//!
//! Integer cycles; a binary heap orders events `(time, sequence)`. Each
//! processor executes its trace greedily but *yields* whenever any other
//! event is scheduled at or before its local time, so coherence actions from
//! other processors are always applied in global time order.
//!
//! # Memory operations
//!
//! * Demand hit: 1 cycle.
//! * Demand miss: the processor stalls; a fill transaction spends the
//!   uncontended latency (address + memory lookup), queues for the data bus,
//!   and occupies it for the transfer latency. Snoops (invalidations,
//!   downgrades, the Illinois sharing wire) are applied when the transaction
//!   wins the bus.
//! * Write hit on a shared line: an invalidation-only upgrade transaction;
//!   the store retires when it completes. If a remote write invalidates the
//!   line while the upgrade is queued, the upgrade aborts and the store
//!   retries as an ordinary miss.
//! * Prefetch: occupies a slot in the lockup-free prefetch buffer and queues
//!   at prefetch priority; the processor continues. A demand access that
//!   catches its own prefetch in flight blocks for the *remaining* latency
//!   (and the transaction is promoted to demand priority).

use crate::check::{self, CoherenceViolation};
use crate::config::SimConfig;
use crate::error::SimError;
use crate::metrics::{HwPrefetchStats, MissBreakdown, PrefetchStats, SimReport};
use crate::proc::{OutstandingPrefetch, PendingAccess, Proc, ProcStatus, Purpose};
use crate::sample::{CounterSnapshot, Gauges, Observability, Sampler, Timeline, TraceEmitter};
use crate::sampling::{SamplePlan, SampledWindow, WindowKind};
use crate::sharers::SharerTable;
use crate::sync::{BarrierState, LockTable};
use charlie_bus::{Bus, GrantOutcome, Priority, TxnId};
use charlie_cache::protocol::{self, BusOp, LocalAction};
use charlie_cache::{CacheArray, Probe};
use charlie_prefetch::{new_prefetcher, Prefetcher};
use charlie_trace::{Access, LineAddr, ProcId, Trace, TraceEvent};
use crate::wheel::EventWheel;
use fxhash::FxHashSet;

#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
enum EventKind {
    /// Resume processor `proc` if its wake epoch still matches.
    Wake { proc: u8, epoch: u64 },
    /// Attempt a bus grant.
    BusCheck,
    /// A bus transaction's transfer finished.
    TxnDone(TxnId),
}

/// What to do when a transaction completes.
#[derive(Copy, Clone, Debug)]
enum TxnAction {
    DemandFill { proc: ProcId, line: LineAddr, op: BusOp },
    PrefetchFill { proc: ProcId, line: LineAddr, op: BusOp },
    Upgrade { proc: ProcId, line: LineAddr, word: u32 },
    WriteBack,
}

#[derive(Copy, Clone, Debug)]
struct TxnInfo {
    action: TxnAction,
    /// Submission time (fill latency measurement).
    issued_at: u64,
    /// Word the requesting access targets (drives false-sharing bookkeeping
    /// for invalidating transactions).
    word: u32,
    /// Illinois sharing wire, sampled at grant time.
    others_have_copy: bool,
    /// Upgrade found its line already invalidated at grant; it performs no
    /// coherence action and the store retries as a miss.
    aborted: bool,
}

/// Result of dispatching one step of a processor.
enum Flow {
    /// Progress was made; keep running (subject to the yield check).
    Continue,
    /// The processor blocked; stop running it.
    Blocked,
    /// The processor retired its whole trace.
    Finished,
}

/// Machine-wide tallies that end up in the [`SimReport`].
#[derive(Default)]
struct Tallies {
    reads: u64,
    writes: u64,
    miss: MissBreakdown,
    false_sharing_misses: u64,
    upgrades: u64,
    upgrades_aborted: u64,
    demand_refills: u64,
    victim_hits: u64,
    fill_latency: crate::metrics::LatencyStats,
    prefetch: PrefetchStats,
    hw: HwPrefetchStats,
}

/// How far (in cycles) a processor may run ahead of the next scheduled
/// event before yielding, *in fast-forward windows only*. Detailed windows
/// keep the strict `t_next <= t` yield that serializes coherence actions in
/// global time order; fast-forward trades that precision for long
/// uninterrupted bursts of trace execution. Local clocks therefore diverge
/// by at most this many cycles during fast-forward, which bounds the
/// approximation error of functional snoop ordering.
const FF_RUN_AHEAD: u64 = 4096;

/// State of an attached [`SamplePlan`]: the current window's position and
/// counter base, plus the per-window records handed back to the estimator.
struct PlanState {
    plan: SamplePlan,
    /// Index of the window currently filling.
    win_idx: u64,
    /// Demand accesses left before the current window closes.
    win_left: u64,
    /// Cycle the current window opened (monotone).
    win_start: u64,
    /// Counter base at the window open.
    base: CounterSnapshot,
    /// Classified-miss counter at the window open.
    base_misses: u64,
    records: Vec<SampledWindow>,
}

/// On-line hardware-prefetcher state, present only when
/// [`SimConfig::hw_prefetch`] is enabled. The disabled path costs a single
/// `Option` branch at each hook site and changes no behaviour — reports stay
/// bit-identical to a build without the hooks.
struct HwState {
    /// One predictor per processor (hardware sits beside each cache).
    preds: Vec<Box<dyn Prefetcher>>,
    /// Per processor: hardware-prefetched lines filled but not yet touched
    /// by a demand access. A line leaves as `useful` (demand hit) or
    /// `useless` (invalidated, evicted, or still here at end of run).
    unused: Vec<FxHashSet<LineAddr>>,
    /// Reusable prediction scratch buffer.
    candidates: Vec<LineAddr>,
}

/// The complete simulated machine for one run.
pub(crate) struct Machine<'t> {
    cfg: SimConfig,
    trace: &'t Trace,
    heap: EventWheel<EventKind>,
    seq: u64,
    procs: Vec<Proc>,
    epochs: Vec<u64>,
    caches: Vec<CacheArray>,
    bus: Bus,
    /// Live transactions, indexed by [`TxnId::index`]. The bus recycles
    /// slots through [`Bus::release`], so this slab stays at the high-water
    /// mark of *concurrent* transactions (a handful per processor) instead
    /// of hashing an ever-growing id space.
    txns: Vec<Option<TxnInfo>>,
    locks: LockTable,
    barrier: BarrierState,
    /// Which caches hold a valid copy of each line; lets `apply_snoops`
    /// probe only possible holders. Always maintained (cheap) — `snoop_filter`
    /// only selects whether it is *used*.
    sharers: SharerTable,
    /// Iterate the sharer mask in `apply_snoops` instead of scanning all
    /// caches. From `SimConfig::snoop_filter`, overridable by the
    /// `CHARLIE_NO_SNOOP_FILTER` environment variable (read once here).
    snoop_filter: bool,
    /// Per processor: lines a prefetch brought in that vanished before any
    /// demand use (so a later tag-mismatch miss can be classified
    /// "prefetched").
    ghosts: Vec<FxHashSet<LineAddr>>,
    /// On-line hardware prefetchers; `None` (the default) is the zero-cost
    /// disabled path.
    hw: Option<HwState>,
    tallies: Tallies,
    done_count: usize,
    finish_time: u64,
    /// `(time, heap sequence)` of the single live scheduled BusCheck event
    /// (deduplication: without it, every submit adds a roaming check that is
    /// re-pushed on every BusyUntil, and event counts grow quadratically).
    /// The sequence makes the staleness test exact: a superseded entry that
    /// happens to share the live check's *time* must still be dropped, or it
    /// would run ahead of same-cycle completions pushed after it and snoop
    /// cache state that is one install behind the bus order.
    bus_check_at: Option<(u64, u64)>,
    /// Accesses still to retire before the statistics window opens
    /// (warm-up); `None` once it has opened.
    warmup_left: Option<u64>,
    /// Time the statistics window opened.
    measured_from: u64,
    /// Run the coherence invariant checker after each transaction
    /// (`check_invariants`, or unconditionally in debug builds).
    checking: bool,
    /// First invariant violation found; the event loop converts it into
    /// `SimError::InvariantViolation` before dispatching the next event.
    violation: Option<CoherenceViolation>,
    /// Structured trace sink (from [`Observability`], or constructed from
    /// `CHARLIE_DEBUG_LINE` for the legacy stderr coherence aid).
    tracer: Option<TraceEmitter>,
    /// Interval sampler recording the per-window [`Timeline`]; `None` (the
    /// default) costs one always-false compare per event.
    sampler: Option<Sampler>,
    /// Cached `sampler.next_at()` — `u64::MAX` when sampling is off — so
    /// the event loop's sampling check is a single branch-predictable
    /// compare.
    sample_next_at: u64,
    /// `CHARLIE_DEBUG_EVENTS` progress tracing, sampled once at
    /// construction so the event loop never touches the environment.
    debug_events: bool,
    /// `SimConfig::max_events` with the 0-disables-it sentinel folded into
    /// `u64::MAX`, so the watchdog is a single branch-predictable compare.
    event_budget: u64,
    /// Wall-clock deadline from `SimConfig::wall_limit_ms` (`None` = off),
    /// checked every 4096 events so the hot loop never reads the clock.
    wall_deadline: Option<std::time::Instant>,
    /// Sampled-simulation plan; `None` (the default) is the zero-cost path
    /// (one `Option` branch per retired access) and keeps every report
    /// bit-identical to a build without the hooks.
    plan: Option<PlanState>,
    /// The current plan window is fast-forward: misses fill functionally at
    /// the unloaded latency instead of queueing on the bus. Always `false`
    /// without a plan, so the detailed path is untouched.
    ff_active: bool,
    /// Transactions registered but not yet completed; lets the fast-forward
    /// conflict check skip the slab scan in the (dominant) drained case.
    live_txns: usize,
    /// Reusable barrier-release buffer: `retire_pending` drains the barrier
    /// waiter list into this instead of allocating a fresh `Vec` per
    /// barrier episode (the last per-episode allocation in the hot path).
    barrier_scratch: Vec<ProcId>,
}

/// Everything one machine run produces.
pub(crate) struct MachineOutput {
    pub report: SimReport,
    pub timeline: Option<Timeline>,
    /// Per-window records of an attached [`SamplePlan`]; empty without one.
    pub windows: Vec<SampledWindow>,
    /// Scheduler events processed (the throughput denominator).
    pub events: u64,
}

impl<'t> Machine<'t> {
    pub(crate) fn new(cfg: SimConfig, trace: &'t Trace) -> Result<Self, SimError> {
        Machine::new_observed(cfg, trace, Observability::default())
    }

    pub(crate) fn new_observed(
        cfg: SimConfig,
        trace: &'t Trace,
        obs: Observability,
    ) -> Result<Self, SimError> {
        trace.validate().map_err(SimError::InvalidTrace)?;
        Machine::new_prevalidated_observed(cfg, trace, obs)
    }

    /// [`Machine::new`] without the `trace.validate()` pass — the caller
    /// vouches the trace already passed validation (shared-trace batch path).
    pub(crate) fn new_prevalidated(cfg: SimConfig, trace: &'t Trace) -> Result<Self, SimError> {
        Machine::new_prevalidated_observed(cfg, trace, Observability::default())
    }

    pub(crate) fn new_prevalidated_observed(
        cfg: SimConfig,
        trace: &'t Trace,
        obs: Observability,
    ) -> Result<Self, SimError> {
        if trace.num_procs() != cfg.num_procs {
            return Err(SimError::ProcCountMismatch {
                config: cfg.num_procs,
                trace: trace.num_procs(),
            });
        }
        if cfg.num_procs == 0 || cfg.num_procs > 64 {
            return Err(SimError::BadProcCount(cfg.num_procs));
        }
        let n = cfg.num_procs;
        let sampler = obs.sample.map(Sampler::new);
        let sample_next_at = sampler.as_ref().map_or(u64::MAX, Sampler::next_at);
        let hw = if cfg.hw_prefetch.is_enabled() {
            Some(HwState {
                preds: (0..n)
                    .map(|_| {
                        new_prefetcher(cfg.hw_prefetch, cfg.geometry.block_bytes())
                            .expect("enabled config yields a prefetcher")
                    })
                    .collect(),
                unused: vec![FxHashSet::default(); n],
                candidates: Vec::new(),
            })
        } else {
            None
        };
        Ok(Machine {
            cfg,
            trace,
            // Live events are bounded by roughly one wake per processor
            // plus one completion per in-flight transaction plus the single
            // bus check: pre-size so steady state never reallocates.
            heap: EventWheel::new(),
            seq: 0,
            procs: vec![Proc::default(); n],
            epochs: vec![0; n],
            caches: (0..n)
                .map(|_| CacheArray::with_victim(cfg.geometry, cfg.victim_entries))
                .collect(),
            bus: Bus::new(cfg.bus, n),
            txns: Vec::with_capacity(4 * n),
            locks: LockTable::new(),
            barrier: BarrierState::new(n),
            sharers: SharerTable::new(n),
            snoop_filter: cfg.snoop_filter
                && std::env::var_os("CHARLIE_NO_SNOOP_FILTER").is_none(),
            ghosts: vec![FxHashSet::default(); n],
            hw,
            tallies: Tallies::default(),
            done_count: 0,
            finish_time: 0,
            bus_check_at: None,
            warmup_left: if cfg.warmup_accesses > 0 { Some(cfg.warmup_accesses) } else { None },
            measured_from: 0,
            checking: cfg.check_invariants || cfg!(debug_assertions),
            violation: None,
            tracer: obs.tracer.or_else(TraceEmitter::from_env),
            sampler,
            sample_next_at,
            debug_events: std::env::var_os("CHARLIE_DEBUG_EVENTS").is_some(),
            event_budget: if cfg.max_events == 0 { u64::MAX } else { cfg.max_events },
            wall_deadline: (cfg.wall_limit_ms > 0).then(|| {
                std::time::Instant::now() + std::time::Duration::from_millis(cfg.wall_limit_ms)
            }),
            plan: None,
            ff_active: false,
            live_txns: 0,
            barrier_scratch: Vec::new(),
        })
    }

    /// Attaches a sampled-simulation plan. Must be called before `run`.
    ///
    /// # Panics
    ///
    /// Panics on a structurally invalid plan (see [`SamplePlan::validate`])
    /// or when combined with statistics warm-up (`warmup_accesses > 0`):
    /// warm-up zeroes the tallies mid-run, which would corrupt the plan's
    /// counter deltas — sampled runs use warm windows instead.
    pub(crate) fn with_plan(mut self, plan: SamplePlan) -> Self {
        if let Err(e) = plan.validate() {
            panic!("invalid sample plan: {e}");
        }
        assert_eq!(
            self.cfg.warmup_accesses, 0,
            "sampled simulation replaces statistics warm-up with warm windows"
        );
        self.ff_active = plan.kind_of(0) == WindowKind::Fast;
        self.plan = Some(PlanState {
            win_left: plan.window_accesses,
            win_idx: 0,
            win_start: 0,
            base: CounterSnapshot::default(),
            base_misses: 0,
            records: Vec::new(),
            plan,
        });
        self
    }

    pub(crate) fn run(mut self) -> Result<MachineOutput, SimError> {
        for p in 0..self.cfg.num_procs {
            let e = self.epochs[p];
            self.push(0, EventKind::Wake { proc: p as u8, epoch: e });
        }
        let mut events_processed: u64 = 0;
        let debug = self.debug_events;
        while self.done_count < self.cfg.num_procs {
            let Some((time, seq, kind)) = self.heap.pop() else {
                return Err(SimError::Deadlock);
            };
            events_processed += 1;
            // Close sampling windows whose boundary this event crossed
            // (before handling it: the event's effects belong to the next
            // window). A single compare against u64::MAX when disabled.
            if time >= self.sample_next_at {
                self.sample_tick(time);
            }
            if debug && events_processed.is_multiple_of(1 << 22) {
                let cursors: Vec<usize> = self.procs.iter().map(|p| p.cursor).collect();
                let statuses: Vec<String> =
                    self.procs.iter().map(|p| format!("{:?}", p.status)).collect();
                eprintln!(
                    "[charlie-debug] events={events_processed} time={time} heap={} done={} cursors={cursors:?} statuses={statuses:?} pending_bus={}",
                    self.heap.len(),
                    self.done_count,
                    self.bus.pending(),
                );
            }
            // Watchdog: a deterministic event budget catches livelocked or
            // runaway runs that would otherwise wedge a whole batch.
            if events_processed > self.event_budget {
                let retired: u64 = self.procs.iter().map(|p| p.cursor as u64).sum();
                let blocked = self
                    .procs
                    .iter()
                    .filter(|p| !matches!(p.status, ProcStatus::Running | ProcStatus::Done))
                    .count();
                return Err(SimError::BudgetExceeded {
                    events: events_processed,
                    cycles: time,
                    retired,
                    blocked,
                });
            }
            // Wall-clock watchdog: sampled every 4096 events so the hot loop
            // only reads the clock when a deadline is actually armed.
            if events_processed & 0xFFF == 0 {
                if let Some(deadline) = self.wall_deadline {
                    if std::time::Instant::now() >= deadline {
                        let retired: u64 = self.procs.iter().map(|p| p.cursor as u64).sum();
                        let blocked = self
                            .procs
                            .iter()
                            .filter(|p| !matches!(p.status, ProcStatus::Running | ProcStatus::Done))
                            .count();
                        return Err(SimError::WallClockExceeded {
                            limit_ms: self.cfg.wall_limit_ms,
                            events: events_processed,
                            cycles: time,
                            retired,
                            blocked,
                        });
                    }
                }
            }
            match kind {
                EventKind::Wake { proc, epoch } => self.on_wake(time, proc as usize, epoch),
                EventKind::BusCheck => self.on_bus_check(time, seq),
                EventKind::TxnDone(id) => self.on_txn_done(time, id),
            }
            if let Some(v) = self.violation.take() {
                return Err(SimError::InvariantViolation(v));
            }
        }
        if self.checking {
            // Per-transaction checks only re-verify touched lines; a final
            // sweep covers everything once more before the report is built.
            check::check_all_lines(self.cfg.protocol, &self.caches)
                .map_err(SimError::InvariantViolation)?;
            for p in 0..self.cfg.num_procs {
                check::check_prefetch_buffer(
                    p,
                    &self.caches[p],
                    self.procs[p].outstanding.lines(),
                    self.cfg.prefetch_buffer_depth,
                )
                .map_err(SimError::InvariantViolation)?;
            }
        }
        // Close the trailing partial plan window (a no-op when the run
        // ended exactly on a window boundary).
        let windows = if self.plan.is_some() {
            let finish = self.finish_time;
            if self.plan.as_ref().is_some_and(|ps| ps.win_left < ps.plan.window_accesses) {
                self.close_plan_window_at(finish);
            }
            std::mem::take(&mut self.plan.as_mut().expect("checked above").records)
        } else {
            Vec::new()
        };
        let (report, timeline) = self.into_report();
        Ok(MachineOutput { report, timeline, windows, events: events_processed })
    }

    /// Reads the monotone counters the sampler windows over.
    fn counter_snapshot(&self) -> CounterSnapshot {
        let bus = self.bus.stats();
        CounterSnapshot {
            bus_busy: bus.busy_cycles,
            bus_ops: bus.total_ops(),
            bus_queueing: bus.queueing_cycles,
            prefetch_grants: bus.prefetch_grants,
            proc_busy: self.procs.iter().map(|p| p.stats.busy_cycles).sum(),
            proc_stall: self.procs.iter().map(|p| p.stats.stall_cycles).sum(),
            accesses: self.procs.iter().map(|p| p.stats.accesses).sum(),
            fills: self.tallies.fill_latency.count(),
            fill_buckets: *self.tallies.fill_latency.histogram(),
        }
    }

    /// Reads the instantaneous gauges recorded at a window close.
    fn gauges(&self) -> Gauges {
        Gauges {
            bus_pending: self.bus.pending(),
            outstanding_txns: self.txns.iter().filter(|t| t.is_some()).count(),
            prefetch_buffer: self.procs.iter().map(|p| p.outstanding.len()).sum(),
        }
    }

    /// Closes every sampling window whose boundary lies at or before `now`.
    /// Out of the event loop's hot path; only reached with a live sampler.
    #[cold]
    fn sample_tick(&mut self, now: u64) {
        while now >= self.sample_next_at {
            let boundary = self.sample_next_at;
            let snap = self.counter_snapshot();
            let gauges = self.gauges();
            let s = self.sampler.as_mut().expect("finite sample_next_at implies a sampler");
            s.close_at(boundary, snap, gauges);
            self.sample_next_at = s.next_at();
        }
    }

    /// One retired demand access under an attached plan: close the window
    /// when its access quota is exhausted.
    #[inline]
    fn plan_count(&mut self, p: usize) {
        let ps = self.plan.as_mut().expect("plan_count requires a plan");
        ps.win_left -= 1;
        if ps.win_left == 0 {
            let now = self.procs[p].t;
            self.close_plan_window_at(now);
        }
    }

    /// Closes the current plan window at cycle `now`: records its counter
    /// deltas, opens the next window, and switches the execution mode to
    /// the next window's kind. Out of the per-access hot path.
    #[cold]
    fn close_plan_window_at(&mut self, now: u64) {
        let snap = self.counter_snapshot();
        let misses = self.tallies.miss.cpu_misses();
        let ps = self.plan.as_mut().expect("closing a plan window without a plan");
        // Processor-local clocks diverge during fast-forward, so the close
        // cycle is clamped monotone; spans stay well-defined.
        let end = now.max(ps.win_start);
        let b = &ps.base;
        let mut fill_buckets = [0u64; 7];
        for (d, (n, o)) in
            fill_buckets.iter_mut().zip(snap.fill_buckets.iter().zip(b.fill_buckets.iter()))
        {
            *d = n - o;
        }
        ps.records.push(SampledWindow {
            index: ps.win_idx,
            kind: ps.plan.kind_of(ps.win_idx),
            start: ps.win_start,
            end,
            accesses: snap.accesses - b.accesses,
            misses: misses - ps.base_misses,
            proc_busy: snap.proc_busy - b.proc_busy,
            proc_stall: snap.proc_stall - b.proc_stall,
            bus_busy: snap.bus_busy - b.bus_busy,
            bus_ops: snap.bus_ops - b.bus_ops,
            bus_queueing: snap.bus_queueing - b.bus_queueing,
            fills: snap.fills - b.fills,
            fill_buckets,
        });
        ps.base = snap;
        ps.base_misses = misses;
        ps.win_start = end;
        ps.win_idx += 1;
        ps.win_left = ps.plan.window_accesses;
        self.ff_active = ps.plan.kind_of(ps.win_idx) == WindowKind::Fast;
    }

    /// Re-derives invariants 1–2 for `line` after a coherence action,
    /// latching the first violation (converted into an error by `run`).
    fn verify_line(&mut self, line: LineAddr) {
        if self.checking && self.violation.is_none() {
            self.violation = check::check_line(self.cfg.protocol, &self.caches, line).err();
        }
    }

    /// Re-derives invariants 3–4 for processor `p`'s prefetch buffer.
    fn verify_prefetch_buffer(&mut self, p: usize) {
        if self.checking && self.violation.is_none() {
            self.violation = check::check_prefetch_buffer(
                p,
                &self.caches[p],
                self.procs[p].outstanding.lines(),
                self.cfg.prefetch_buffer_depth,
            )
            .err();
        }
    }

    fn into_report(mut self) -> (SimReport, Option<Timeline>) {
        // Settle hardware-prefetch accounting so that
        // `useful + late + useless == issued` holds in every report:
        // still-unused fills end up useless, as do in-flight prefetches the
        // bus already granted. One still *queued* at end of run never
        // reached the bus — cancel its issue/fill charges instead, keeping
        // the bus-balance identity (reads == misses + fills + refills)
        // exact (bus operations are counted at grant time).
        if let Some(hw) = self.hw.as_mut() {
            for set in &mut hw.unused {
                self.tallies.hw.useless += set.len() as u64;
                set.clear();
            }
            for proc in &self.procs {
                for slot in proc.outstanding.slots().filter(|s| s.hw) {
                    if self.bus.is_queued(slot.txn) {
                        self.tallies.prefetch.executed -= 1;
                        self.tallies.prefetch.fills -= 1;
                        self.tallies.hw.issued -= 1;
                    } else {
                        self.tallies.hw.useless += 1;
                    }
                }
            }
        }
        // Close the trailing partial window before reading final counters
        // (a no-op if the run ended exactly on a boundary).
        let timeline = if self.sampler.is_some() {
            let snap = self.counter_snapshot();
            let gauges = self.gauges();
            let mut s = self.sampler.take().expect("checked above");
            s.close_at(self.finish_time, snap, gauges);
            Some(s.into_timeline())
        } else {
            None
        };
        let mut bus = *self.bus.stats();
        if self.measured_from > 0 {
            // Windowed busy cycles can still exceed the measured window by
            // the trailing overhang of the last grant: a posted write-back
            // nobody waits on may complete past the last processor's finish
            // time, and its full forward occupancy was accounted at grant.
            // Grants are serialized, every grant starts at or before
            // `finish_time`, and `measured_from <= finish_time`, so the
            // overhang is wholly inside the last grant's in-window
            // contribution — subtracting it is exact and guarantees
            // `bus_utilization() <= 1.0`. Cold (no-warm-up) runs keep their
            // raw counter: the first transaction's 92-cycle uncontended
            // head start already exceeds the largest possible overhang, so
            // the bound holds without adjustment and the golden grid stays
            // bit-identical.
            bus.busy_cycles = bus
                .busy_cycles
                .saturating_sub(self.bus.busy_until().saturating_sub(self.finish_time));
        }
        let report = SimReport {
            cycles: self.finish_time,
            measured_from: self.measured_from,
            reads: self.tallies.reads,
            writes: self.tallies.writes,
            miss: self.tallies.miss,
            false_sharing_misses: self.tallies.false_sharing_misses,
            upgrades: self.tallies.upgrades,
            upgrades_aborted: self.tallies.upgrades_aborted,
            demand_refills: self.tallies.demand_refills,
            victim_hits: self.tallies.victim_hits,
            fill_latency: self.tallies.fill_latency,
            prefetch: self.tallies.prefetch,
            hw_prefetch: self.tallies.hw,
            bus,
            per_proc: self.procs.into_iter().map(|p| p.stats).collect(),
        };
        (report, timeline)
    }

    // ---- event plumbing -------------------------------------------------

    #[inline]
    fn push(&mut self, time: u64, kind: EventKind) -> u64 {
        self.seq += 1;
        self.heap.push(time, self.seq, kind);
        self.seq
    }

    /// Parks a freshly submitted transaction in the id-indexed slab. Slot
    /// indices are dense (the bus recycles them), so the slab only grows to
    /// the high-water mark of concurrently live transactions.
    fn register_txn(&mut self, id: TxnId, info: TxnInfo) {
        let idx = id.index();
        if idx >= self.txns.len() {
            self.txns.resize(idx + 1, None);
        }
        debug_assert!(self.txns[idx].is_none(), "slab slot of {id} still occupied");
        self.txns[idx] = Some(info);
        self.live_txns += 1;
    }

    /// Schedules a wake that is valid only while the target's epoch is
    /// unchanged (dropping stale wakes, e.g. extra prefetch-slot wakes).
    fn push_wake(&mut self, time: u64, proc: usize) {
        let epoch = self.epochs[proc];
        self.push(time, EventKind::Wake { proc: proc as u8, epoch });
    }

    fn on_wake(&mut self, now: u64, p: usize, epoch: u64) {
        if self.epochs[p] != epoch || matches!(self.procs[p].status, ProcStatus::Done) {
            return; // stale
        }
        match self.procs[p].status {
            ProcStatus::Running => {
                if now > self.procs[p].t {
                    self.procs[p].t = now;
                }
            }
            _ => {
                self.procs[p].resume(now);
                self.procs[p].waiting_txn = None;
                self.epochs[p] += 1;
            }
        }
        self.run_proc(p);
    }

    fn block_proc(&mut self, p: usize, status: ProcStatus) {
        self.procs[p].block(status);
        self.epochs[p] += 1;
    }

    // ---- processor execution --------------------------------------------

    fn run_proc(&mut self, p: usize) {
        loop {
            let flow = if self.procs[p].pending.is_some() {
                self.dispatch_pending(p)
            } else {
                self.dispatch_trace_event(p)
            };
            match flow {
                Flow::Blocked => return,
                Flow::Finished => {
                    self.procs[p].status = ProcStatus::Done;
                    self.procs[p].stats.finish_time = self.procs[p].t;
                    self.finish_time = self.finish_time.max(self.procs[p].t);
                    self.done_count += 1;
                    return;
                }
                Flow::Continue => {}
            }
            // Yield whenever any other event is due at or before local time.
            // Fast-forward windows relax the check by a run-ahead quantum:
            // with misses filling functionally there is no bus state to keep
            // in lockstep, and long uninterrupted bursts of trace execution
            // are where the fast-forward speedup comes from.
            let t = self.procs[p].t;
            if let Some(t_next) = self.heap.next_time() {
                let slack = if self.ff_active { FF_RUN_AHEAD } else { 0 };
                if t_next + slack <= t {
                    self.push_wake(t, p);
                    return;
                }
            }
        }
    }

    fn dispatch_trace_event(&mut self, p: usize) -> Flow {
        let Some(&ev) = self.trace.proc(p).events().get(self.procs[p].cursor) else {
            return Flow::Finished;
        };
        match ev {
            TraceEvent::Work(n) => {
                let proc = &mut self.procs[p];
                proc.t += u64::from(n);
                proc.stats.busy_cycles += u64::from(n);
                proc.cursor += 1;
                Flow::Continue
            }
            TraceEvent::Access(a) => {
                self.procs[p].pending = Some(PendingAccess::new(a, Purpose::Demand));
                Flow::Continue
            }
            TraceEvent::Prefetch { addr, exclusive } => self.dispatch_prefetch(p, addr, exclusive),
            TraceEvent::LockAcquire(id) => {
                self.charge_dispatch_cycle(p);
                let addr = self.cfg.lock_addr(id);
                if self.locks.acquire(id, ProcId(p as u8)) {
                    self.procs[p].pending =
                        Some(PendingAccess::new(Access::write(addr), Purpose::LockAcquireWrite(id)));
                } else {
                    // Busy: one failed test read, then park (handled when the
                    // spin read retires).
                    self.procs[p].pending =
                        Some(PendingAccess::new(Access::read(addr), Purpose::LockSpinRead(id)));
                }
                Flow::Continue
            }
            TraceEvent::LockRelease(id) => {
                self.charge_dispatch_cycle(p);
                let addr = self.cfg.lock_addr(id);
                self.procs[p].pending =
                    Some(PendingAccess::new(Access::write(addr), Purpose::LockReleaseWrite(id)));
                Flow::Continue
            }
            TraceEvent::Barrier(id) => {
                self.charge_dispatch_cycle(p);
                let addr = self.cfg.barrier_counter_addr(id);
                self.procs[p].pending =
                    Some(PendingAccess::new(Access::write(addr), Purpose::BarrierArriveWrite(id)));
                Flow::Continue
            }
        }
    }

    fn charge_dispatch_cycle(&mut self, p: usize) {
        let proc = &mut self.procs[p];
        proc.t += 1;
        proc.stats.busy_cycles += 1;
    }

    /// The paper's CPU model: a data access costs one instruction cycle plus
    /// one data cycle when it hits — matching the off-line cost model the
    /// prefetch scheduler measures distances with.
    fn charge_access_cycles(&mut self, p: usize) {
        let proc = &mut self.procs[p];
        proc.t += 2;
        proc.stats.busy_cycles += 2;
    }

    fn dispatch_prefetch(&mut self, p: usize, addr: charlie_trace::Addr, exclusive: bool) -> Flow {
        let line = self.cfg.geometry.line(addr);
        // Buffer full: stall without charging the dispatch cycle (it is
        // charged when the prefetch actually issues on retry).
        let outstanding_full = self.procs[p].outstanding.len() >= self.cfg.prefetch_buffer_depth;
        let already_outstanding = self.procs[p].outstanding.contains(line);
        let resident =
            self.caches[p].probe_line(line).is_hit() || self.caches[p].probe_victim(line);

        if resident || already_outstanding {
            self.charge_dispatch_cycle(p);
            self.tallies.prefetch.executed += 1;
            if resident {
                self.tallies.prefetch.hits += 1;
            } else {
                self.tallies.prefetch.duplicates += 1;
            }
            if self.tracer.is_some() {
                let t = self.procs[p].t;
                let outcome = if resident { "hit" } else { "duplicate" };
                if let Some(tr) = &mut self.tracer {
                    tr.prefetch_with(t, p, line, "executed", "outcome", outcome);
                }
            }
            self.procs[p].cursor += 1;
            return Flow::Continue;
        }
        if self.ff_ready(line) {
            // Fast-forward fills install instantly and never occupy a buffer
            // slot, so a full buffer (detailed-era stragglers) cannot stall.
            let word = self.cfg.geometry.word_index(addr);
            return self.ff_prefetch(p, line, exclusive, word);
        }
        if outstanding_full {
            self.tallies.prefetch.buffer_stalls += 1;
            self.block_proc(p, ProcStatus::WaitPrefetchSlot);
            return Flow::Blocked;
        }
        self.charge_dispatch_cycle(p);
        self.tallies.prefetch.executed += 1;
        self.tallies.prefetch.fills += 1;
        let op = protocol::prefetch_op(self.cfg.protocol, exclusive);
        let now = self.procs[p].t;
        let priority = if self.cfg.prefetch_demand_priority {
            Priority::Demand
        } else {
            Priority::Prefetch
        };
        let txn = self.bus.submit(now, ProcId(p as u8), line, op, priority);
        self.register_txn(
            txn,
            TxnInfo {
                issued_at: now,
                action: TxnAction::PrefetchFill { proc: ProcId(p as u8), line, op },
                word: self.cfg.geometry.word_index(addr),
                others_have_copy: false,
                aborted: false,
            },
        );
        if let Some(tr) = &mut self.tracer {
            tr.prefetch_with(now, p, line, "executed", "outcome", "issued");
        }
        self.procs[p]
            .outstanding
            .insert(line, OutstandingPrefetch { txn, cpu_waiting: false, hw: false });
        self.verify_prefetch_buffer(p);
        self.schedule_bus_check(now);
        self.procs[p].cursor += 1;
        Flow::Continue
    }

    // ---- on-line hardware prefetching -----------------------------------

    /// Lets processor `p`'s hardware prefetcher observe a retiring demand
    /// access (`was_miss`: it missed when first dispatched), then issues
    /// whatever the predictor proposes. No-op when hardware prefetching is
    /// off.
    fn hw_observe(&mut self, p: usize, addr: charlie_trace::Addr, line: LineAddr, was_miss: bool) {
        let Some(hw) = self.hw.as_mut() else { return };
        let mut candidates = std::mem::take(&mut hw.candidates);
        let trained = hw.preds[p].on_access(addr, line, was_miss, &mut candidates);
        if trained {
            self.tallies.hw.trained += 1;
            if self.tracer.is_some() {
                let t = self.procs[p].t;
                if let Some(tr) = &mut self.tracer {
                    tr.prefetch(t, p, line, "trained");
                }
            }
        }
        for i in 0..candidates.len() {
            self.hw_issue(p, candidates[i]);
        }
        candidates.clear();
        if let Some(hw) = self.hw.as_mut() {
            hw.candidates = candidates;
        }
    }

    /// Issues one hardware-predicted prefetch. Unlike the software path, a
    /// hardware engine never stalls the processor: predictions that find the
    /// buffer full, the line resident (main array or victim buffer), or a
    /// prefetch already outstanding are silently dropped.
    fn hw_issue(&mut self, p: usize, line: LineAddr) {
        if self.procs[p].outstanding.len() >= self.cfg.prefetch_buffer_depth
            || self.procs[p].outstanding.contains(line)
            || self.caches[p].probe_line(line).is_hit()
            || self.caches[p].probe_victim(line)
        {
            return;
        }
        // Hardware fills flow through the same prefetch counters as software
        // fills, preserving the bus-balance identity
        // (bus reads == misses + prefetch fills + demand refills).
        self.tallies.prefetch.executed += 1;
        self.tallies.prefetch.fills += 1;
        self.tallies.hw.issued += 1;
        if self.ff_ready(line) {
            // Fast-forward: the prediction lands instantly, ahead of demand
            // by construction — it awaits a useful/useless verdict like a
            // detailed fill that completed before the demand stream arrived.
            let others = self.ff_apply_snoops(p, line, BusOp::Read, 0);
            let now = self.procs[p].t;
            if let Some(tr) = &mut self.tracer {
                tr.prefetch(now, p, line, "issued");
            }
            self.install_fill(p, line, BusOp::Read, others, true, now);
            if let Some(hw) = self.hw.as_mut() {
                hw.unused[p].insert(line);
            }
            self.verify_line(line);
            return;
        }
        let now = self.procs[p].t;
        let priority = if self.cfg.prefetch_demand_priority {
            Priority::Demand
        } else {
            Priority::Prefetch
        };
        let txn = self.bus.submit(now, ProcId(p as u8), line, BusOp::Read, priority);
        self.register_txn(
            txn,
            TxnInfo {
                issued_at: now,
                action: TxnAction::PrefetchFill { proc: ProcId(p as u8), line, op: BusOp::Read },
                word: 0,
                others_have_copy: false,
                aborted: false,
            },
        );
        if let Some(tr) = &mut self.tracer {
            tr.prefetch(now, p, line, "issued");
        }
        self.procs[p]
            .outstanding
            .insert(line, OutstandingPrefetch { txn, cpu_waiting: false, hw: true });
        self.verify_prefetch_buffer(p);
        self.schedule_bus_check(now);
    }

    /// A demand access touched `line` in processor `p`'s cache: if a
    /// hardware prefetch brought it in and it had not been used yet, that
    /// prefetch graduates to `useful`.
    fn hw_note_useful(&mut self, p: usize, line: LineAddr, now: u64) {
        let Some(hw) = self.hw.as_mut() else { return };
        if hw.unused[p].remove(&line) {
            self.tallies.hw.useful += 1;
            if let Some(tr) = &mut self.tracer {
                tr.prefetch(now, p, line, "useful");
            }
        }
    }

    /// Attempts to retire the pending access; blocks on misses/upgrades.
    fn dispatch_pending(&mut self, p: usize) -> Flow {
        let pa = self.procs[p].pending.expect("dispatch_pending requires a pending access");
        let addr = pa.access.addr;
        let is_write = pa.access.kind.is_write();
        let line = self.cfg.geometry.line(addr);
        let word = self.cfg.geometry.word_index(addr);
        let now = self.procs[p].t;

        match self.caches[p].probe_line(line) {
            Probe::Hit { way, state } => match protocol::local_access(self.cfg.protocol, state, is_write) {
                LocalAction::Hit(new_state) => {
                    if self.tracer.is_some() {
                        let fr = self.caches[p].frame(line, way);
                        if fr.filled_by_prefetch() && !fr.used_since_fill() {
                            if let Some(tr) = &mut self.tracer {
                                tr.prefetch(now, p, line, "used");
                            }
                        }
                    }
                    if self.hw.is_some() {
                        self.hw_note_useful(p, line, now);
                    }
                    let frame = self.caches[p].frame_mut(line, way);
                    if is_write {
                        frame.record_write_retire(word);
                    } else {
                        frame.record_access(word, new_state);
                    }
                    self.charge_access_cycles(p);
                    self.count_access(p, is_write);
                    // The predictor observes every retiring demand access
                    // (`counted` records whether it originally missed) and
                    // may issue prefetches for what it expects next.
                    if self.hw.is_some() && matches!(pa.purpose, Purpose::Demand) {
                        self.hw_observe(p, addr, line, pa.counted);
                    }
                    self.retire_pending(p)
                }
                LocalAction::HitNeedsUpgrade => {
                    // Write-update: once the word broadcast completed, the
                    // store retires with the line still shared — plain
                    // `Shared` under Firefly (memory was updated in the
                    // broadcast), `SharedModified` under Dragon (the writer
                    // now owes the write-back); the completion path already
                    // set the frame state, so retire in place.
                    if pa.update_complete {
                        debug_assert!(self.cfg.protocol.is_update_based());
                        if self.hw.is_some() {
                            self.hw_note_useful(p, line, now);
                        }
                        let frame = self.caches[p].frame_mut(line, way);
                        frame.record_access(word, state);
                        self.charge_access_cycles(p);
                        self.count_access(p, is_write);
                        if self.hw.is_some() && matches!(pa.purpose, Purpose::Demand) {
                            self.hw_observe(p, addr, line, pa.counted);
                        }
                        return self.retire_pending(p);
                    }
                    self.tallies.upgrades += 1;
                    if self.ff_ready(line) {
                        return self.ff_upgrade(p, line, word);
                    }
                    let op = protocol::write_shared_op(self.cfg.protocol);
                    let txn = self.bus.submit(now, ProcId(p as u8), line, op, Priority::Demand);
                    self.register_txn(
                        txn,
                        TxnInfo {
                            issued_at: now,
                            action: TxnAction::Upgrade { proc: ProcId(p as u8), line, word },
                            word,
                            others_have_copy: false,
                            aborted: false,
                        },
                    );
                    self.schedule_bus_check(now);
                    self.procs[p].waiting_txn = Some(txn);
                    self.block_proc(p, ProcStatus::WaitMem);
                    Flow::Blocked
                }
                LocalAction::Miss(_) => unreachable!("probe hit cannot miss"),
            },
            probe @ (Probe::InvalidatedMatch { .. } | Probe::Miss) => {
                // Victim-buffer hit: swap the line back (one extra cycle) and
                // re-dispatch — it will now hit in the main array.
                if self.caches[p].probe_victim(line) {
                    self.tallies.victim_hits += 1;
                    if let Some(evicted) = self.caches[p].recall_from_victim(line) {
                        self.handle_eviction(p, evicted, now);
                    }
                    self.charge_dispatch_cycle(p);
                    return Flow::Continue;
                }
                // Own prefetch in flight for this line?
                if let Some(slot) = self.procs[p].outstanding.get_mut(line) {
                    // A hardware prefetch the demand stream catches up with
                    // was issued too late to hide the full latency.
                    let hw_late = slot.hw && !slot.cpu_waiting;
                    slot.cpu_waiting = true;
                    let txn = slot.txn;
                    if hw_late {
                        self.tallies.hw.late += 1;
                        if let Some(tr) = &mut self.tracer {
                            tr.prefetch(now, p, line, "late");
                        }
                    }
                    if !pa.counted {
                        self.tallies.miss.prefetch_in_progress += 1;
                        self.procs[p].pending.as_mut().expect("pending").counted = true;
                    }
                    self.bus.promote(txn);
                    if let Some(tr) = &mut self.tracer {
                        tr.prefetch(now, p, line, "promoted");
                    }
                    self.procs[p].waiting_txn = Some(txn);
                    self.block_proc(p, ProcStatus::WaitMem);
                    return Flow::Blocked;
                }
                if !pa.counted {
                    self.classify_miss(p, line, probe);
                    self.procs[p].pending.as_mut().expect("pending").counted = true;
                } else {
                    // The previous fill was invalidated under our feet; the
                    // miss is already classified but the refetch still costs
                    // a bus transaction.
                    self.tallies.demand_refills += 1;
                }
                if self.ff_ready(line) {
                    return self.ff_fill(p, line, is_write, word);
                }
                // Write-update protocols: a write miss fills like a read and
                // then broadcasts the word (handled by the upgrade-as-update
                // path when the retried store finds the line shared).
                let op = if is_write {
                    protocol::write_miss_op(self.cfg.protocol)
                } else {
                    BusOp::Read
                };
                let txn = self.bus.submit(now, ProcId(p as u8), line, op, Priority::Demand);
                self.register_txn(
                    txn,
                    TxnInfo {
                        issued_at: now,
                        action: TxnAction::DemandFill { proc: ProcId(p as u8), line, op },
                        word,
                        others_have_copy: false,
                        aborted: false,
                    },
                );
                self.schedule_bus_check(now);
                self.procs[p].waiting_txn = Some(txn);
                self.block_proc(p, ProcStatus::WaitMem);
                Flow::Blocked
            }
        }
    }

    // ---- functional fast-forward --------------------------------------
    //
    // Fast-forward windows keep the machine's *state* exact — caches,
    // coherence, sharer table, lock/barrier order, prefetch classification —
    // while replacing every bus interaction with its immediate functional
    // effect: snoops apply at the requestor's local time, fills install
    // instantly, and the processor is charged the fixed unloaded latency.
    // No bus transaction is submitted, so the contended-timing machinery
    // (arbitration, queueing, transfer occupancy) is skipped entirely.
    // Transactions submitted in a preceding detailed window keep draining
    // through the event loop, so mode transitions need no flush.

    /// True when `line` may be handled functionally right now: fast-forward
    /// is on and no detailed-era transaction is in flight for it. A granted
    /// transaction snoops at grant time but installs at completion — an
    /// instant functional install interleaved between the two would leave
    /// stale coherence state behind (e.g. a Shared install racing a
    /// ReadExclusive), so conflicting accesses fall back to the detailed
    /// path and serialize on the bus. The slab drains within a few accesses
    /// of entering a fast window, after which this is a single compare.
    fn ff_ready(&self, line: LineAddr) -> bool {
        self.ff_active
            && (self.live_txns == 0
                || !self.txns.iter().flatten().any(|info| match info.action {
                    // A write-back carries no install and no snoop effect.
                    TxnAction::WriteBack => false,
                    TxnAction::DemandFill { line: l, .. }
                    | TxnAction::PrefetchFill { line: l, .. }
                    | TxnAction::Upgrade { line: l, .. } => l == line,
                }))
    }

    /// Applies the functional coherence effect of `op` by `p` on `line` to
    /// every other holder; returns the Illinois sharing wire (whether any
    /// other cache held a valid copy).
    fn ff_apply_snoops(&mut self, p: usize, line: LineAddr, op: BusOp, word: u32) -> bool {
        self.verify_sharer_mask(line);
        let now = self.procs[p].t;
        let mut others = false;
        let mut holders = self.snoop_candidates(line) & !(1u64 << p);
        while holders != 0 {
            let q = holders.trailing_zeros() as usize;
            holders &= holders - 1;
            match op {
                BusOp::Read => {
                    // A dirty owner supplies the data; any memory update
                    // (reflective protocols) is free in fast-forward (no
                    // posted write-back occupies a bus that is not being
                    // timed).
                    if self.caches[q].snoop_downgrade(line, self.cfg.protocol).is_some() {
                        others = true;
                    }
                }
                BusOp::ReadExclusive => {
                    if self.invalidate_in(now, q, line, word) {
                        others = true;
                    }
                }
                BusOp::Upgrade | BusOp::Update | BusOp::WriteBack => unreachable!("fills only"),
            }
        }
        others
    }

    /// Fast-forward demand miss: snoop functionally, install the fill, and
    /// charge the unloaded fill latency as stall. The still-pending access
    /// re-dispatches immediately and hits.
    fn ff_fill(&mut self, p: usize, line: LineAddr, is_write: bool, word: u32) -> Flow {
        let op = if is_write {
            protocol::write_miss_op(self.cfg.protocol)
        } else {
            BusOp::Read
        };
        let others = self.ff_apply_snoops(p, line, op, word);
        let lat = self.cfg.bus.total_latency;
        let proc = &mut self.procs[p];
        proc.t += lat;
        proc.stats.stall_cycles += lat;
        let now = proc.t;
        self.tallies.fill_latency.record(lat);
        self.install_fill(p, line, op, others, false, now);
        self.verify_line(line);
        Flow::Continue
    }

    /// Fast-forward upgrade: the coherence effect of the invalidation (or
    /// word broadcast) applies immediately and the store pays only the
    /// address-slot occupancy as stall.
    fn ff_upgrade(&mut self, p: usize, line: LineAddr, word: u32) -> Flow {
        let lat = self.cfg.bus.invalidate_cycles;
        let proc = &mut self.procs[p];
        proc.t += lat;
        proc.stats.stall_cycles += lat;
        let now = proc.t;
        if protocol::write_shared_op(self.cfg.protocol) == BusOp::Upgrade {
            // Invalidation-based: every other holder drops its copy and
            // the writer becomes sole dirty owner.
            let mut holders = self.snoop_candidates(line) & !(1u64 << p);
            while holders != 0 {
                let q = holders.trailing_zeros() as usize;
                holders &= holders - 1;
                self.invalidate_in(now, q, line, word);
            }
            if let Probe::Hit { way, .. } = self.caches[p].probe_line(line) {
                self.caches[p]
                    .frame_mut(line, way)
                    .downgrade(charlie_cache::LineState::PrivateDirty);
            }
        } else {
            // Update-based: peers absorb the word (Dragon owners hand the
            // Sm role to the writer) and the writer's resulting state
            // depends on whether anyone is left sharing.
            let mut others = false;
            let mut holders = self.snoop_candidates(line) & !(1u64 << p);
            while holders != 0 {
                let q = holders.trailing_zeros() as usize;
                holders &= holders - 1;
                if self.caches[q].snoop_update(line, self.cfg.protocol).is_some() {
                    others = true;
                }
            }
            let result = protocol::broadcast_result(self.cfg.protocol, others);
            if let Probe::Hit { way, .. } = self.caches[p].probe_line(line) {
                self.caches[p].frame_mut(line, way).downgrade(result);
            }
            if !result.can_write_silently() {
                // Sharers remain: the retried store observes the
                // completed broadcast and retires in the shared state.
                if let Some(pa) = self.procs[p].pending.as_mut() {
                    pa.update_complete = true;
                }
            }
        }
        self.verify_line(line);
        Flow::Continue
    }

    /// Fast-forward software prefetch: the fill installs instantly (the
    /// buffer is never occupied, so the processor cannot stall on a slot).
    fn ff_prefetch(&mut self, p: usize, line: LineAddr, exclusive: bool, word: u32) -> Flow {
        self.charge_dispatch_cycle(p);
        self.tallies.prefetch.executed += 1;
        self.tallies.prefetch.fills += 1;
        let op = protocol::prefetch_op(self.cfg.protocol, exclusive);
        let others = self.ff_apply_snoops(p, line, op, word);
        let now = self.procs[p].t;
        if let Some(tr) = &mut self.tracer {
            tr.prefetch_with(now, p, line, "executed", "outcome", "issued");
        }
        self.install_fill(p, line, op, others, true, now);
        self.verify_line(line);
        self.procs[p].cursor += 1;
        Flow::Continue
    }

    fn count_access(&mut self, p: usize, is_write: bool) {
        if is_write {
            self.tallies.writes += 1;
        } else {
            self.tallies.reads += 1;
        }
        self.procs[p].stats.accesses += 1;
        if let Some(left) = &mut self.warmup_left {
            *left -= 1;
            if *left == 0 {
                let now = self.procs[p].t;
                self.open_stats_window(now);
            }
        }
        if self.plan.is_some() {
            self.plan_count(p);
        }
    }

    /// Warm-up complete: zero every counter so the report covers only the
    /// steady state from `now` on. Execution continues unchanged; a stall
    /// spanning the boundary is charged entirely to the measured window
    /// (a one-off smear bounded by one miss latency per processor).
    fn open_stats_window(&mut self, now: u64) {
        self.warmup_left = None;
        self.measured_from = now;
        self.tallies = Tallies::default();
        // Clip subsequent bus accounting to the window: a transfer granted
        // before `now` (or a queue wait begun before it) contributes only
        // its in-window portion, so windowed bus utilization stays <= 1.
        self.bus.open_window(now);
        if let Some(s) = &mut self.sampler {
            // Timeline windows cover the measured span only, so summed
            // deltas equal the final windowed counters.
            s.rebase(now);
            self.sample_next_at = s.next_at();
        }
        for proc in &mut self.procs {
            proc.stats.busy_cycles = 0;
            proc.stats.stall_cycles = 0;
            proc.stats.accesses = 0;
            proc.stats.measured_from = now;
        }
        if let Some(hw) = self.hw.as_mut() {
            // Hardware prefetches issued during warm-up must not classify
            // inside the window (their `issued` count was just zeroed):
            // forget unused fills and strip the hw flag off in-flight slots,
            // keeping `useful + late + useless == issued` exact per window.
            for set in &mut hw.unused {
                set.clear();
            }
            for proc in &mut self.procs {
                for slot in proc.outstanding.slots_mut() {
                    slot.hw = false;
                }
            }
        }
    }

    fn classify_miss(&mut self, p: usize, line: LineAddr, probe: Probe) {
        match probe {
            Probe::InvalidatedMatch { way } => {
                let frame = self.caches[p].frame(line, way);
                let prefetched = frame.filled_by_prefetch() && !frame.used_since_fill();
                let false_sharing =
                    frame.inval_word().is_some_and(|w| !frame.accessed_words().contains(w));
                if false_sharing {
                    self.tallies.false_sharing_misses += 1;
                }
                if prefetched {
                    self.tallies.miss.invalidation_prefetched += 1;
                } else {
                    self.tallies.miss.invalidation_not_prefetched += 1;
                }
                self.ghosts[p].remove(&line);
            }
            Probe::Miss => {
                let prefetched = self.ghosts[p].remove(&line);
                if prefetched {
                    self.tallies.miss.non_sharing_prefetched += 1;
                } else {
                    self.tallies.miss.non_sharing_not_prefetched += 1;
                }
            }
            Probe::Hit { .. } => unreachable!("hits are not misses"),
        }
    }

    /// Completes the pending access after a successful (hit) dispatch.
    fn retire_pending(&mut self, p: usize) -> Flow {
        let pa = self.procs[p].pending.take().expect("retiring without a pending access");
        let t = self.procs[p].t;
        match pa.purpose {
            Purpose::Demand | Purpose::LockAcquireWrite(_) | Purpose::BarrierLeaveRead(_) => {
                self.procs[p].cursor += 1;
                Flow::Continue
            }
            Purpose::LockSpinRead(id) => {
                if self.procs[p].early_release {
                    // The hand-off already happened: take the lock now.
                    self.procs[p].early_release = false;
                    let addr = self.cfg.lock_addr(id);
                    self.procs[p].pending = Some(PendingAccess::new(
                        Access::write(addr),
                        Purpose::LockAcquireWrite(id),
                    ));
                    Flow::Continue
                } else {
                    // Lock is busy; park until hand-off.
                    self.block_proc(p, ProcStatus::WaitLock);
                    Flow::Blocked
                }
            }
            Purpose::LockReleaseWrite(id) => {
                if let Some(next) = self.locks.release(id, ProcId(p as u8)) {
                    let q = next.index();
                    if matches!(self.procs[q].status, ProcStatus::WaitLock) {
                        let addr = self.cfg.lock_addr(id);
                        self.procs[q].pending = Some(PendingAccess::new(
                            Access::write(addr),
                            Purpose::LockAcquireWrite(id),
                        ));
                        self.push_wake(t, q);
                    } else {
                        // The new owner is still finishing its spin read; it
                        // will see the hand-off when that read retires.
                        self.procs[q].early_release = true;
                    }
                }
                self.procs[p].cursor += 1;
                Flow::Continue
            }
            Purpose::BarrierArriveWrite(id) => {
                if self.barrier.arrive(ProcId(p as u8)) {
                    let addr = self.cfg.barrier_flag_addr(id);
                    self.procs[p].pending =
                        Some(PendingAccess::new(Access::write(addr), Purpose::BarrierFlagWrite(id)));
                    Flow::Continue
                } else {
                    let addr = self.cfg.barrier_flag_addr(id);
                    self.procs[p].pending =
                        Some(PendingAccess::new(Access::read(addr), Purpose::BarrierSpinRead(id)));
                    Flow::Continue
                }
            }
            Purpose::BarrierSpinRead(id) => {
                if self.procs[p].early_release {
                    self.procs[p].early_release = false;
                    let addr = self.cfg.barrier_flag_addr(id);
                    self.procs[p].pending = Some(PendingAccess::new(
                        Access::read(addr),
                        Purpose::BarrierLeaveRead(id),
                    ));
                    Flow::Continue
                } else {
                    self.block_proc(p, ProcStatus::WaitBarrier);
                    Flow::Blocked
                }
            }
            Purpose::BarrierFlagWrite(id) => {
                // Reuse one scratch buffer per machine for the waiter list so
                // barrier-heavy workloads never allocate per episode.
                let mut waiters = std::mem::take(&mut self.barrier_scratch);
                self.barrier.drain_waiters_into(&mut waiters);
                for &q in &waiters {
                    let qi = q.index();
                    if matches!(self.procs[qi].status, ProcStatus::WaitBarrier) {
                        let addr = self.cfg.barrier_flag_addr(id);
                        self.procs[qi].pending = Some(PendingAccess::new(
                            Access::read(addr),
                            Purpose::BarrierLeaveRead(id),
                        ));
                        self.push_wake(t, qi);
                    } else {
                        // Still finishing its arrival spin read: it leaves
                        // as soon as that read retires.
                        self.procs[qi].early_release = true;
                    }
                }
                self.barrier_scratch = waiters;
                self.procs[p].cursor += 1;
                Flow::Continue
            }
        }
    }

    // ---- bus handling -----------------------------------------------------

    /// Wakes `p` only if it is stalled on exactly transaction `id`; returns
    /// whether it was. Prevents a completion from resuming a processor that
    /// has since moved on to a different wait.
    fn wake_if_waiting(&mut self, now: u64, p: usize, id: TxnId) -> bool {
        if matches!(self.procs[p].status, ProcStatus::WaitMem)
            && self.procs[p].waiting_txn == Some(id)
        {
            self.procs[p].waiting_txn = None;
            self.push_wake(now, p);
            true
        } else {
            false
        }
    }

    /// Schedules a BusCheck at `t` unless one is already live at `t` or
    /// earlier. A check scheduled earlier supersedes a later one; the
    /// superseded heap entry is dropped as stale when popped (matched by
    /// `(time, sequence)`, so a later re-schedule at the same time cannot
    /// revalidate it).
    fn schedule_bus_check(&mut self, t: u64) {
        match self.bus_check_at {
            Some((existing, _)) if existing <= t => {}
            _ => {
                let seq = self.push(t, EventKind::BusCheck);
                self.bus_check_at = Some((t, seq));
            }
        }
    }

    fn on_bus_check(&mut self, now: u64, seq: u64) {
        if self.bus_check_at != Some((now, seq)) {
            return; // superseded by another check
        }
        self.bus_check_at = None;
        match self.bus.try_grant(now) {
            GrantOutcome::Granted { request, completes_at } => {
                if let Some(tr) = &mut self.tracer {
                    tr.bus_grant(now, &request, completes_at);
                }
                // Push the completion before snooping: apply_snoops may
                // schedule a BusCheck at `completes_at` (reflective
                // write-back submission), and that check must not outrank
                // this transaction's own completion in the same cycle — a
                // next-grant snoop ordered before the install would miss
                // the freshly filled copy and leave a stale sharer behind.
                self.push(completes_at, EventKind::TxnDone(request.id));
                self.apply_snoops(now, request.id, request.line);
                self.schedule_bus_check(completes_at);
            }
            GrantOutcome::BusyUntil(t) | GrantOutcome::WaitingUntil(t) => {
                self.schedule_bus_check(t);
            }
            GrantOutcome::Idle => {}
        }
    }

    /// Processors whose caches *may* hold a valid copy of `line`: the sharer
    /// mask when filtering, every processor otherwise. Probing a non-holder
    /// is a no-op, so the two differ only in wasted probes — asserted by
    /// `verify_sharer_mask` whenever checking is on.
    fn snoop_candidates(&self, line: LineAddr) -> u64 {
        if self.snoop_filter {
            self.sharers.mask(line)
        } else if self.cfg.num_procs == 64 {
            u64::MAX
        } else {
            (1u64 << self.cfg.num_procs) - 1
        }
    }

    /// Cross-checks the sharer table against a brute-force occupancy scan of
    /// every cache (the pre-filter behaviour). An explicit assert, not a
    /// `debug_assert`: `--check` runs must exercise it in release builds.
    fn verify_sharer_mask(&self, line: LineAddr) {
        if !self.checking {
            return;
        }
        let mask = self.sharers.mask(line);
        for q in 0..self.cfg.num_procs {
            let tracked = mask & (1u64 << q) != 0;
            let resident = self.caches[q].state_of(line).is_some();
            assert_eq!(
                tracked, resident,
                "snoop filter out of sync for {line:?}: proc {q} tracked={tracked} resident={resident}"
            );
        }
    }

    /// Applies coherence effects at grant time (address broadcast): remote
    /// invalidations/downgrades and the Illinois sharing wire.
    fn apply_snoops(&mut self, now: u64, id: TxnId, line: LineAddr) {
        let info = self.txns[id.index()].expect("granted txn is registered");
        self.verify_sharer_mask(line);
        if self.tracer.as_ref().is_some_and(|t| t.wants_coherence(line)) {
            let states: Vec<_> =
                (0..self.cfg.num_procs).map(|q| self.caches[q].state_of(line)).collect();
            let action = format!("{:?}", info.action);
            let states = format!("{states:?}");
            if let Some(tr) = &mut self.tracer {
                tr.snoop(now, id, line, &action, &states);
            }
        }
        let word = info.word;
        match info.action {
            TxnAction::WriteBack => {}
            TxnAction::DemandFill { proc, op, .. } | TxnAction::PrefetchFill { proc, op, .. } => {
                let mut others = false;
                let mut dirty_supplier: Option<usize> = None;
                // Ascending bit order == the old 0..num_procs scan order.
                let mut holders = self.snoop_candidates(line) & !(1u64 << proc.index());
                while holders != 0 {
                    let q = holders.trailing_zeros() as usize;
                    holders &= holders - 1;
                    match op {
                        BusOp::Read => {
                            if let Some(prev) =
                                self.caches[q].snoop_downgrade(line, self.cfg.protocol)
                            {
                                others = true;
                                if prev.is_dirty() {
                                    dirty_supplier = Some(q);
                                }
                            }
                        }
                        BusOp::ReadExclusive => {
                            if self.invalidate_in(now, q, line, word) {
                                others = true;
                            }
                        }
                        BusOp::Upgrade | BusOp::Update | BusOp::WriteBack => {
                            unreachable!("fills only")
                        }
                    }
                }
                // Reflective memory (Illinois, Firefly): a dirty owner
                // supplies the data and memory is updated in the same breath
                // — a posted write-back that occupies the bus (the supplier
                // does not stall). Dragon and MOESI keep the data dirty in
                // the supplier's cache and defer the write-back to eviction.
                if !protocol::posts_reflective_writeback(self.cfg.protocol) {
                    dirty_supplier = None;
                }
                if let Some(q) = dirty_supplier {
                    let now = self.bus.busy_until();
                    let txn = self.bus.submit(
                        now,
                        ProcId(q as u8),
                        line,
                        BusOp::WriteBack,
                        Priority::Demand,
                    );
                    self.register_txn(
                        txn,
                        TxnInfo {
                            issued_at: now,
                            action: TxnAction::WriteBack,
                            word: 0,
                            others_have_copy: false,
                            aborted: false,
                        },
                    );
                    self.schedule_bus_check(now);
                }
                self.txns[id.index()].as_mut().expect("registered").others_have_copy = others;
            }
            TxnAction::Upgrade { proc, .. } => {
                // If a remote write beat this upgrade to the bus, the line is
                // gone: abort (the store will retry as a miss). Cannot
                // happen under write-update, where nothing invalidates.
                if self.caches[proc.index()].state_of(line).is_none() {
                    debug_assert!(!self.cfg.protocol.is_update_based());
                    self.tallies.upgrades_aborted += 1;
                    self.txns[id.index()].as_mut().expect("registered").aborted = true;
                    return;
                }
                if protocol::write_shared_op(self.cfg.protocol) == BusOp::Upgrade {
                    let mut holders = self.snoop_candidates(line) & !(1u64 << proc.index());
                    while holders != 0 {
                        let q = holders.trailing_zeros() as usize;
                        holders &= holders - 1;
                        self.invalidate_in(now, q, line, word);
                    }
                } else {
                    // Word broadcast: sharers keep their (now updated)
                    // copies (a Dragon Sm owner cedes ownership to the
                    // writer); record whether any remain so the writer can
                    // take exclusive ownership when alone.
                    let mut others = false;
                    let mut holders = self.snoop_candidates(line) & !(1u64 << proc.index());
                    while holders != 0 {
                        let q = holders.trailing_zeros() as usize;
                        holders &= holders - 1;
                        if self.caches[q].snoop_update(line, self.cfg.protocol).is_some() {
                            others = true;
                        }
                    }
                    self.txns[id.index()].as_mut().expect("registered").others_have_copy = others;
                }
            }
        }
        self.verify_line(line);
    }

    /// Invalidates `line` in cache `q` (remote write of `word`, covering the
    /// victim buffer); returns whether a valid copy was present. Tracks
    /// killed-before-use prefetches.
    fn invalidate_in(&mut self, now: u64, q: usize, line: LineAddr, word: u32) -> bool {
        if let Some((_prev, unused_prefetch)) = self.caches[q].snoop_invalidate(line, word) {
            self.sharers.remove(q, line);
            if unused_prefetch {
                self.tallies.prefetch.wasted_invalidated += 1;
                self.ghosts[q].insert(line);
                if let Some(tr) = &mut self.tracer {
                    tr.prefetch(now, q, line, "wasted_invalidated");
                }
            }
            if let Some(hw) = self.hw.as_mut() {
                if hw.unused[q].remove(&line) {
                    self.tallies.hw.useless += 1;
                    if let Some(tr) = &mut self.tracer {
                        tr.prefetch(now, q, line, "useless");
                    }
                }
                // The predictor watches its cache lose lines (SMS untrains
                // the bit; others ignore it).
                hw.preds[q].on_invalidate(line);
            }
            true
        } else {
            false
        }
    }

    fn on_txn_done(&mut self, now: u64, id: TxnId) {
        let info = self.txns[id.index()].take().expect("completed txn is registered");
        self.live_txns -= 1;
        // The id is fully retired: no queue entry, no pending completion.
        // Give its slot back so the slab stays at the concurrency high-water
        // mark (anything submitted below may legitimately reuse it).
        self.bus.release(id);
        match info.action {
            TxnAction::WriteBack => {}
            TxnAction::DemandFill { proc, line, op } => {
                // Uniform window semantics: only fills *issued* inside the
                // measurement window contribute to the latency distribution
                // (a warm-up miss completing after the window opened would
                // otherwise smear its cold latency into the measured data).
                if info.issued_at >= self.measured_from {
                    self.tallies.fill_latency.record(now - info.issued_at);
                }
                self.install_fill(proc.index(), line, op, info.others_have_copy, false, now);
                let woke = self.wake_if_waiting(now, proc.index(), id);
                debug_assert!(woke, "demand fill completion must find its waiter");
            }
            TxnAction::PrefetchFill { proc, line, op } => {
                let p = proc.index();
                self.install_fill(p, line, op, info.others_have_copy, true, now);
                if let Some(tr) = &mut self.tracer {
                    tr.prefetch(now, p, line, "filled");
                }
                let slot = self.procs[p].outstanding.remove(line).expect("slot exists");
                if slot.hw && !slot.cpu_waiting {
                    // Landed ahead of demand: await its verdict (a `late`
                    // prefetch was already classified when promoted).
                    if let Some(hw) = self.hw.as_mut() {
                        hw.unused[p].insert(line);
                    }
                }
                if slot.cpu_waiting {
                    let woke = self.wake_if_waiting(now, p, id);
                    debug_assert!(woke, "in-progress waiter must still be stalled on the prefetch");
                } else if matches!(self.procs[p].status, ProcStatus::WaitPrefetchSlot) {
                    self.push_wake(now, p);
                }
            }
            TxnAction::Upgrade { proc, line, word } => {
                let p = proc.index();
                if !info.aborted {
                    // Invalidation protocols always end private-dirty (every
                    // peer was invalidated); write-update writers end shared
                    // (Firefly) or shared-modified (Dragon) when sharers
                    // remain, private-dirty when alone.
                    let result =
                        protocol::broadcast_result(self.cfg.protocol, info.others_have_copy);
                    if let Probe::Hit { way, .. } = self.caches[p].probe_line(line) {
                        let _ = word;
                        self.caches[p].frame_mut(line, way).downgrade(result);
                    }
                    if !result.can_write_silently() {
                        // Sharers remain: flag the pending store so the retry
                        // observes the completed broadcast and does not
                        // broadcast again.
                        if let Some(pa) = self.procs[p].pending.as_mut() {
                            pa.update_complete = true;
                        }
                    }
                }
                let woke = self.wake_if_waiting(now, p, id);
                debug_assert!(woke, "upgrade completion must find its waiter");
            }
        }
        match info.action {
            TxnAction::WriteBack => {}
            TxnAction::DemandFill { proc, line, .. } | TxnAction::Upgrade { proc, line, .. } => {
                self.verify_line(line);
                self.verify_prefetch_buffer(proc.index());
            }
            TxnAction::PrefetchFill { proc, line, .. } => {
                self.verify_line(line);
                // The fill just installed the line and released its slot; an
                // entry still aliasing it means the buffer bookkeeping broke.
                self.verify_prefetch_buffer(proc.index());
            }
        }
    }

    fn install_fill(
        &mut self,
        p: usize,
        line: LineAddr,
        op: BusOp,
        others_have_copy: bool,
        by_prefetch: bool,
        now: u64,
    ) {
        let state = protocol::fill_state(self.cfg.protocol, op, others_have_copy);
        if self.tracer.as_ref().is_some_and(|t| t.wants_coherence(line)) {
            let op_s = format!("{op:?}");
            let state_s = format!("{state:?}");
            if let Some(tr) = &mut self.tracer {
                tr.fill(now, p, line, &op_s, &state_s, by_prefetch);
            }
        }
        if let Some(evicted) = self.caches[p].fill(line, state, by_prefetch) {
            self.handle_eviction(p, evicted, now);
        }
        self.sharers.add(p, line);
        self.ghosts[p].remove(&line);
    }

    /// A line left processor `p`'s cache hierarchy: write back if dirty,
    /// record prefetch waste.
    fn handle_eviction(&mut self, p: usize, evicted: charlie_cache::EvictedLine, now: u64) {
        self.sharers.remove(p, evicted.line);
        // Fast-forward: the memory update is functional and free — no posted
        // write-back is submitted to the (untimed) bus.
        if evicted.state.is_dirty() && !self.ff_active {
            let txn = self.bus.submit(
                now,
                ProcId(p as u8),
                evicted.line,
                BusOp::WriteBack,
                Priority::Demand,
            );
            self.register_txn(
                txn,
                TxnInfo {
                    issued_at: now,
                    action: TxnAction::WriteBack,
                    word: 0,
                    others_have_copy: false,
                    aborted: false,
                },
            );
            self.schedule_bus_check(now);
        }
        if evicted.prefetched_unused {
            self.tallies.prefetch.wasted_evicted += 1;
            self.ghosts[p].insert(evicted.line);
            if let Some(tr) = &mut self.tracer {
                tr.prefetch(now, p, evicted.line, "wasted_evicted");
            }
        }
        if let Some(hw) = self.hw.as_mut() {
            if hw.unused[p].remove(&evicted.line) {
                self.tallies.hw.useless += 1;
                if let Some(tr) = &mut self.tracer {
                    tr.prefetch(now, p, evicted.line, "useless");
                }
            }
        }
    }
}
