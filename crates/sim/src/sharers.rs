//! Sharer-tracking snoop filter.
//!
//! The bus is physically a broadcast medium: every grant is visible to every
//! cache. The *simulation* does not have to pay for that broadcast, though —
//! the engine knows exactly which caches hold a valid copy of each line,
//! because every fill, eviction and invalidation already passes through it.
//! [`SharerTable`] maintains that knowledge as a per-line presence bitmask
//! (bit *q* ⇔ "processor *q* holds a valid copy in its main array or victim
//! buffer"), so snoop application probes only the caches that can possibly
//! respond instead of scanning all `num_procs` of them.
//!
//! Filtering is pure strength reduction: a snoop probe of a non-holder is a
//! no-op (it returns `None` and mutates nothing), so skipping it cannot
//! change simulation results — provided the mask is exact. The engine
//! cross-checks the mask against a brute-force occupancy scan before every
//! use when invariant checking is enabled (debug builds and `--check`), and
//! the property test below drives the table through randomized
//! fill/evict/invalidate sequences against ground truth.

use charlie_trace::LineAddr;
use fxhash::FxHashMap;

/// Per-line presence bitmask over processors (at most 64, matching the
/// machine-wide processor limit).
#[derive(Clone, Debug, Default)]
pub struct SharerTable {
    masks: FxHashMap<LineAddr, u64>,
}

impl SharerTable {
    /// An empty table for a machine of `num_procs` processors.
    ///
    /// # Panics
    ///
    /// Panics if `num_procs` exceeds 64 (the mask width).
    pub fn new(num_procs: usize) -> Self {
        assert!(num_procs <= 64, "sharer mask is 64 bits wide");
        SharerTable { masks: FxHashMap::default() }
    }

    /// The sharer bitmask of `line`: bit `q` set ⇔ processor `q` holds a
    /// valid copy. Lines never filled anywhere report 0.
    pub fn mask(&self, line: LineAddr) -> u64 {
        self.masks.get(&line).copied().unwrap_or(0)
    }

    /// Records that processor `proc` now holds a valid copy of `line`
    /// (a fill, including a refill of an invalidated frame). Idempotent.
    pub fn add(&mut self, proc: usize, line: LineAddr) {
        *self.masks.entry(line).or_insert(0) |= 1u64 << proc;
    }

    /// Records that processor `proc` no longer holds a valid copy of `line`
    /// (castout leaving the cache hierarchy, or a successful remote
    /// invalidation). Idempotent; the entry is dropped when its mask
    /// empties so the table tracks the resident working set, not every
    /// line ever touched.
    pub fn remove(&mut self, proc: usize, line: LineAddr) {
        if let Some(mask) = self.masks.get_mut(&line) {
            *mask &= !(1u64 << proc);
            if *mask == 0 {
                self.masks.remove(&line);
            }
        }
    }

    /// Number of lines with at least one sharer (diagnostics only).
    pub fn tracked_lines(&self) -> usize {
        self.masks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use charlie_cache::{CacheArray, CacheGeometry, LineState};
    use charlie_trace::Addr;
    use proptest::prelude::*;

    #[test]
    fn empty_table_reports_zero_masks() {
        let t = SharerTable::new(8);
        assert_eq!(t.mask(Addr::new(0x40).line(32)), 0);
        assert_eq!(t.tracked_lines(), 0);
    }

    #[test]
    fn add_remove_round_trip() {
        let mut t = SharerTable::new(8);
        let line = Addr::new(0x40).line(32);
        t.add(3, line);
        t.add(5, line);
        assert_eq!(t.mask(line), (1 << 3) | (1 << 5));
        t.remove(3, line);
        assert_eq!(t.mask(line), 1 << 5);
        t.remove(5, line);
        assert_eq!(t.mask(line), 0);
        assert_eq!(t.tracked_lines(), 0, "emptied entries are dropped");
    }

    #[test]
    fn add_is_idempotent() {
        let mut t = SharerTable::new(4);
        let line = Addr::new(0x80).line(32);
        t.add(1, line);
        t.add(1, line);
        assert_eq!(t.mask(line), 1 << 1);
        t.remove(1, line);
        assert_eq!(t.mask(line), 0);
    }

    #[test]
    fn remove_of_absent_line_is_noop() {
        let mut t = SharerTable::new(4);
        t.remove(2, Addr::new(0x100).line(32));
        assert_eq!(t.tracked_lines(), 0);
    }

    /// One randomized step applied to both the table and the real caches.
    #[derive(Copy, Clone, Debug)]
    enum Op {
        Fill { proc: usize, addr: u64 },
        Invalidate { proc: usize, addr: u64 },
    }

    fn op_strategy(num_procs: usize) -> impl Strategy<Value = Op> {
        // A small address pool (16 lines over 4 sets of a tiny 2-way cache)
        // forces frequent conflicts, evictions and refills.
        prop_oneof![
            (0..num_procs, 0u64..16)
                .prop_map(|(proc, i)| Op::Fill { proc, addr: i * 32 }),
            (0..num_procs, 0u64..16)
                .prop_map(|(proc, i)| Op::Invalidate { proc, addr: i * 32 }),
        ]
    }

    proptest! {
        /// Drive fills (with their evictions) and invalidations through real
        /// [`CacheArray`]s while mirroring them into a [`SharerTable`] the
        /// way the engine does; the mask must equal brute-force occupancy
        /// after every step.
        #[test]
        fn mask_matches_ground_truth_occupancy(
            ops in proptest::collection::vec(op_strategy(4), 1..120),
        ) {
            // 4 sets x 2 ways x 32-byte lines: tiny, so the 16-line pool
            // evicts constantly.
            let geom = CacheGeometry::new(4 * 2 * 32, 32, 2).unwrap();
            let mut caches: Vec<CacheArray> =
                (0..4).map(|_| CacheArray::with_victim(geom, 1)).collect();
            let mut table = SharerTable::new(4);

            for op in ops {
                match op {
                    Op::Fill { proc, addr } => {
                        let line = Addr::new(addr).line(32);
                        if let Some(evicted) = caches[proc].fill(line, LineState::Shared, false) {
                            table.remove(proc, evicted.line);
                        }
                        table.add(proc, line);
                    }
                    Op::Invalidate { proc, addr } => {
                        let line = Addr::new(addr).line(32);
                        if caches[proc].snoop_invalidate(line, 0).is_some() {
                            table.remove(proc, line);
                        }
                    }
                }
                for check in 0u64..16 {
                    let line = Addr::new(check * 32).line(32);
                    let mask = table.mask(line);
                    for (q, cache) in caches.iter().enumerate() {
                        prop_assert_eq!(
                            mask & (1 << q) != 0,
                            cache.state_of(line).is_some(),
                            "line {:?} proc {} diverged after {:?}", line, q, op
                        );
                    }
                }
            }
        }
    }
}
