//! Simulator configuration.

use charlie_bus::BusConfig;
use charlie_cache::CacheGeometry;
use charlie_prefetch::HwPrefetchConfig;
use charlie_trace::{Addr, BarrierId, LockId};
use std::fmt;

/// Coherence policy of the simulated machine. The state machines live in
/// [`charlie_cache::protocol`]; re-exported here because the simulator's
/// configuration is where users select one.
pub use charlie_cache::Protocol;

/// Base of the address region the simulator maps lock variables into. One
/// cache line per lock, so locks never falsely share. Workload generators
/// must keep data out of `0xF000_0000..=0xFFFF_FFFF`.
pub const LOCK_REGION_BASE: u64 = 0xF000_0000;

/// Base of the region holding the barrier counter and flag lines.
pub const BARRIER_REGION_BASE: u64 = 0xF800_0000;

/// Full configuration of one simulation run.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct SimConfig {
    /// Number of processors; must match the trace.
    pub num_procs: usize,
    /// Per-processor data-cache geometry (the paper: 32 KB direct-mapped,
    /// 32-byte blocks).
    pub geometry: CacheGeometry,
    /// Memory-subsystem timing.
    pub bus: BusConfig,
    /// Depth of the lockup-free prefetch instruction buffer (the paper: 16,
    /// "sufficiently large to almost always prevent the processor from
    /// stalling").
    pub prefetch_buffer_depth: usize,
    /// Arbitrate prefetch fills at *demand* priority instead of the paper's
    /// "round-robin arbitration scheme that favors blocking loads over
    /// prefetches". Off by default; the `ablation_priority` binary measures
    /// what that design choice is worth.
    pub prefetch_demand_priority: bool,
    /// Retire this many demand accesses machine-wide before statistics start
    /// counting (caches warm up; execution continues unchanged). The paper's
    /// 2M-reference traces made warm-up negligible; short runs benefit from
    /// excluding the cold-start transient. 0 disables.
    pub warmup_accesses: u64,
    /// Entries in a per-processor fully-associative victim buffer (Jouppi),
    /// the remedy the paper's §4.3 suggests for prefetch-induced conflicts.
    /// 0 (the default and the paper's configuration) disables it.
    pub victim_entries: usize,
    /// Coherence policy (the paper's machine is write-invalidate).
    pub protocol: Protocol,
    /// On-line hardware prefetcher attached to each processor (see
    /// `charlie_prefetch::hw`). [`HwPrefetchConfig::OFF`] — the default and
    /// the paper's machine — takes the zero-cost path: behaviour and
    /// reports are bit-identical to a build without the hooks.
    pub hw_prefetch: HwPrefetchConfig,
    /// Watchdog: abort the run with [`SimError::BudgetExceeded`] once the
    /// scheduler has processed this many events. 0 (the default) disables
    /// the budget. The count is deterministic, so a budgeted re-run of the
    /// same trace trips at exactly the same point.
    ///
    /// [`SimError::BudgetExceeded`]: crate::SimError::BudgetExceeded
    pub max_events: u64,
    /// Wall-clock watchdog: abort the run with
    /// [`SimError::WallClockExceeded`] once it has been executing longer
    /// than this many milliseconds. 0 (the default) disables it. This
    /// complements [`max_events`](SimConfig::max_events): the event budget
    /// is deterministic but cannot catch a run that is wedged *cheaply*
    /// (few events, each pathologically slow — a paging host, a spinning
    /// I/O layer), while the wall clock catches exactly those. The check
    /// runs every 4096 events, so failure timing is approximate — and
    /// inherently nondeterministic, which is why campaigns that require
    /// bit-reproducible *failures* leave it off.
    pub wall_limit_ms: u64,
    /// Apply snoops only to the caches the engine's sharer table says can
    /// hold the line, instead of probing all `num_procs` caches on every
    /// bus grant. Pure strength reduction — results are bit-identical
    /// either way (the skipped probes are provably no-ops, and the table is
    /// cross-checked against brute-force occupancy whenever invariant
    /// checking is on). On by default; turn off (or set the
    /// `CHARLIE_NO_SNOOP_FILTER` environment variable) to time or test the
    /// broadcast scan.
    pub snoop_filter: bool,
    /// Run the [`crate::check`] coherence invariant checker after every bus
    /// transaction (and once at end of run), failing the simulation with
    /// [`SimError::InvariantViolation`] on the first illegal protocol state.
    /// Always on in debug builds (and therefore under `cargo test`);
    /// this flag additionally enables it in release builds (`--check`).
    ///
    /// [`SimError::InvariantViolation`]: crate::SimError::InvariantViolation
    pub check_invariants: bool,
}

impl SimConfig {
    /// The paper's configuration at a given data-transfer latency.
    pub fn paper(num_procs: usize, transfer_cycles: u64) -> Self {
        SimConfig {
            num_procs,
            geometry: CacheGeometry::paper_default(),
            bus: BusConfig::paper(transfer_cycles),
            prefetch_buffer_depth: 16,
            prefetch_demand_priority: false,
            warmup_accesses: 0,
            victim_entries: 0,
            protocol: Protocol::WriteInvalidate,
            hw_prefetch: HwPrefetchConfig::OFF,
            snoop_filter: true,
            max_events: 0,
            wall_limit_ms: 0,
            check_invariants: false,
        }
    }

    /// Address of the line backing lock `id`.
    pub fn lock_addr(&self, id: LockId) -> Addr {
        Addr::new(LOCK_REGION_BASE + u64::from(id.0) * self.geometry.block_bytes())
    }

    /// Address of the barrier arrival counter. Barrier episodes reuse the
    /// same two lines (sense-reversing barrier), so `id` only selects
    /// nothing today but keeps the signature future-proof.
    pub fn barrier_counter_addr(&self, _id: BarrierId) -> Addr {
        Addr::new(BARRIER_REGION_BASE)
    }

    /// Address of the barrier release flag.
    pub fn barrier_flag_addr(&self, _id: BarrierId) -> Addr {
        Addr::new(BARRIER_REGION_BASE + self.geometry.block_bytes())
    }
}

impl Default for SimConfig {
    /// Eight processors on the paper's 8-cycle-transfer architecture.
    fn default() -> Self {
        SimConfig::paper(8, 8)
    }
}

impl fmt::Display for SimConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} procs, {} cache, {}, {}-deep prefetch buffer",
            self.num_procs, self.geometry, self.bus, self.prefetch_buffer_depth
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config() {
        let c = SimConfig::paper(8, 16);
        assert_eq!(c.num_procs, 8);
        assert_eq!(c.bus.transfer_cycles, 16);
        assert_eq!(c.prefetch_buffer_depth, 16);
        assert_eq!(c.geometry.size_bytes(), 32 * 1024);
    }

    #[test]
    fn default_matches_paper_8cycle() {
        assert_eq!(SimConfig::default(), SimConfig::paper(8, 8));
    }

    #[test]
    fn paper_config_has_no_budget_and_no_forced_checking() {
        let c = SimConfig::paper(8, 8);
        assert_eq!(c.max_events, 0);
        assert_eq!(c.wall_limit_ms, 0, "wall-clock watchdog off by default");
        assert!(!c.check_invariants);
        assert!(c.snoop_filter, "snoop filtering is on by default");
    }

    #[test]
    fn lock_addresses_one_line_apart() {
        let c = SimConfig::default();
        let a0 = c.lock_addr(LockId(0));
        let a1 = c.lock_addr(LockId(1));
        assert_eq!(a1.raw() - a0.raw(), 32);
        assert_ne!(a0.line(32), a1.line(32));
    }

    #[test]
    fn barrier_lines_distinct() {
        let c = SimConfig::default();
        let counter = c.barrier_counter_addr(BarrierId(0));
        let flag = c.barrier_flag_addr(BarrierId(0));
        assert_ne!(counter.line(32), flag.line(32));
    }
}
