//! Sampled-simulation plans: which access windows run detailed, which run
//! functional fast-forward.
//!
//! A [`SamplePlan`] divides a run into fixed-size *access windows*
//! (machine-wide demand accesses, the same unit as `warmup_accesses`). Each
//! window executes in one of three modes:
//!
//! * **Fast** — functional fast-forward: caches, coherence state, locks and
//!   barriers are updated exactly, but misses complete instantly at the
//!   unloaded latency instead of queueing on the contended bus. 10–20x
//!   cheaper than detailed simulation; its timing is approximate by design.
//! * **Warm** — full detailed simulation whose measurements are *discarded*:
//!   it exists to refill the bus pipeline and in-flight transaction state
//!   with realistic contention before a measured window starts.
//! * **Detailed** — full detailed simulation; its per-window counters (one
//!   [`SampledWindow`] each) are the measurements the estimator extrapolates
//!   from.
//!
//! The machine records one [`SampledWindow`] per window *regardless of
//! kind* — fast-forward windows still carry the functional counters (miss
//! counts, busy/stall composition) that phase-clustering featurizes, while
//! their bus columns stay zero (no bus transactions are issued in FF mode).
//!
//! Two schedules cover the SMARTS and SimPoint methodologies:
//!
//! * [`Schedule::Periodic`] — systematic sampling: every `period`-th window
//!   is detailed, preceded by `warmup` warm windows, everything else fast.
//! * [`Schedule::Explicit`] — simulate exactly the listed window indices in
//!   detail (each preceded by `warmup` warm windows); used for the
//!   representative intervals SimPoint-style clustering selects. An empty
//!   list is the pure fast-forward signature pass.

/// Execution mode of one access window.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum WindowKind {
    /// Functional fast-forward: state exact, timing approximate, no bus.
    Fast,
    /// Detailed simulation, measurements discarded (pipeline warm-up).
    Warm,
    /// Detailed simulation, measurements kept.
    Detailed,
}

/// Which windows run detailed; see the module docs.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Schedule {
    /// Every `period`-th window is detailed, preceded by `warmup` warm
    /// windows; the rest fast-forward. Window `warmup` of each period is the
    /// measured one, so the run starts with its warm-up prefix.
    Periodic {
        /// Windows per sampling unit (≥ 1). `period == 1` is all-detailed.
        period: u64,
        /// Warm windows before each detailed window (< `period`).
        warmup: u64,
        /// The first `cold` windows are all detailed regardless of phase:
        /// the cold-start stratum. Cache-fill transients concentrate there
        /// and are grossly unrepresentative of the steady state, so the
        /// estimator measures them exactly instead of extrapolating them
        /// (0 = no cold stratum).
        cold: u64,
    },
    /// Exactly these window indices (sorted ascending, deduplicated) run
    /// detailed, each preceded by `warmup` warm windows; the rest
    /// fast-forward. Empty = pure fast-forward pass.
    Explicit {
        /// Sorted, deduplicated detailed window indices.
        detailed: Vec<u64>,
        /// Warm windows before each detailed window.
        warmup: u64,
    },
}

/// A full sampled-simulation plan.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct SamplePlan {
    /// Machine-wide demand accesses per window (≥ 1).
    pub window_accesses: u64,
    /// Which windows run detailed.
    pub schedule: Schedule,
}

impl SamplePlan {
    /// Systematic (SMARTS-style) plan: one detailed window per `period`
    /// windows of `window_accesses` accesses, `warmup` warm windows before
    /// each.
    pub fn periodic(window_accesses: u64, period: u64, warmup: u64) -> Self {
        SamplePlan {
            window_accesses,
            schedule: Schedule::Periodic { period, warmup, cold: 0 },
        }
    }

    /// [`SamplePlan::periodic`] with a detailed cold-start stratum: the
    /// first `cold` windows run detailed so cache-fill transients are
    /// measured exactly rather than extrapolated.
    pub fn periodic_with_cold(window_accesses: u64, period: u64, warmup: u64, cold: u64) -> Self {
        SamplePlan {
            window_accesses,
            schedule: Schedule::Periodic { period, warmup, cold },
        }
    }

    /// Explicit (SimPoint-style) plan detailing `detailed` (sorted window
    /// indices), each preceded by `warmup` warm windows.
    pub fn explicit(window_accesses: u64, detailed: Vec<u64>, warmup: u64) -> Self {
        SamplePlan { window_accesses, schedule: Schedule::Explicit { detailed, warmup } }
    }

    /// Pure functional fast-forward: every window fast, nothing measured.
    /// The records still carry the functional phase signature.
    pub fn fast_forward(window_accesses: u64) -> Self {
        SamplePlan::explicit(window_accesses, Vec::new(), 0)
    }

    /// Checks structural validity; the machine asserts this on attach.
    pub fn validate(&self) -> Result<(), String> {
        if self.window_accesses == 0 {
            return Err("sample plan window_accesses must be >= 1".into());
        }
        match &self.schedule {
            Schedule::Periodic { period, warmup, .. } => {
                if *period == 0 {
                    return Err("sample plan period must be >= 1".into());
                }
                if warmup >= period {
                    return Err(format!(
                        "sample plan warmup ({warmup}) must be < period ({period})"
                    ));
                }
            }
            Schedule::Explicit { detailed, .. } => {
                if detailed.windows(2).any(|w| w[0] >= w[1]) {
                    return Err("explicit detailed windows must be sorted and unique".into());
                }
            }
        }
        Ok(())
    }

    /// Execution mode of window `index`.
    pub fn kind_of(&self, index: u64) -> WindowKind {
        match &self.schedule {
            Schedule::Periodic { period, warmup, cold } => {
                if index < *cold {
                    return WindowKind::Detailed;
                }
                let phase = index % period;
                if phase == *warmup {
                    WindowKind::Detailed
                } else if phase < *warmup {
                    WindowKind::Warm
                } else {
                    WindowKind::Fast
                }
            }
            Schedule::Explicit { detailed, warmup } => {
                if detailed.binary_search(&index).is_ok() {
                    WindowKind::Detailed
                } else if (1..=*warmup)
                    .any(|k| detailed.binary_search(&(index + k)).is_ok())
                {
                    WindowKind::Warm
                } else {
                    WindowKind::Fast
                }
            }
        }
    }
}

/// Per-window counters recorded by a sampled run: deltas of the machine's
/// monotone counters over one access window, tagged with the window's
/// execution mode. Fast windows carry functional counters only (their bus
/// columns are zero); detailed windows carry the full set.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct SampledWindow {
    /// Window index (0-based, in access order).
    pub index: u64,
    /// How the window executed.
    pub kind: WindowKind,
    /// Cycle the window opened (monotone across windows; in fast-forward
    /// stretches processor-local clocks diverge by up to the run-ahead
    /// quantum, so spans are approximate there).
    pub start: u64,
    /// Cycle the window closed.
    pub end: u64,
    /// Demand accesses retired (equals the plan's `window_accesses` except
    /// for the trailing partial window).
    pub accesses: u64,
    /// Demand misses classified.
    pub misses: u64,
    /// Processor busy cycles, summed over processors.
    pub proc_busy: u64,
    /// Processor stall cycles, summed over processors (fast-forward windows
    /// charge the unloaded latency per miss here).
    pub proc_stall: u64,
    /// Bus-occupied cycles (zero in fast windows).
    pub bus_busy: u64,
    /// Bus transactions granted (zero in fast windows).
    pub bus_ops: u64,
    /// Bus queueing cycles (zero in fast windows).
    pub bus_queueing: u64,
    /// Demand fills whose latency was recorded.
    pub fills: u64,
    /// Fill-latency histogram delta (same buckets as `LatencyStats`).
    pub fill_buckets: [u64; 7],
}

impl SampledWindow {
    /// Window span in cycles.
    pub fn span(&self) -> u64 {
        self.end.saturating_sub(self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn periodic_kinds_cycle() {
        let p = SamplePlan::periodic(1000, 4, 1);
        assert!(p.validate().is_ok());
        let kinds: Vec<WindowKind> = (0..8).map(|i| p.kind_of(i)).collect();
        use WindowKind::*;
        assert_eq!(kinds, vec![Warm, Detailed, Fast, Fast, Warm, Detailed, Fast, Fast]);
    }

    #[test]
    fn periodic_no_warmup_starts_detailed() {
        let p = SamplePlan::periodic(100, 3, 0);
        use WindowKind::*;
        let kinds: Vec<WindowKind> = (0..6).map(|i| p.kind_of(i)).collect();
        assert_eq!(kinds, vec![Detailed, Fast, Fast, Detailed, Fast, Fast]);
    }

    #[test]
    fn cold_stratum_is_all_detailed() {
        let p = SamplePlan::periodic_with_cold(100, 4, 1, 6);
        assert!(p.validate().is_ok());
        use WindowKind::*;
        // Windows 0..6 detailed regardless of phase, then the periodic
        // pattern (phase = index % 4, detailed at phase 1) takes over.
        let kinds: Vec<WindowKind> = (0..12).map(|i| p.kind_of(i)).collect();
        assert_eq!(
            kinds,
            vec![
                Detailed, Detailed, Detailed, Detailed, Detailed, Detailed, Fast, Fast, Warm,
                Detailed, Fast, Fast
            ]
        );
    }

    #[test]
    fn all_detailed_period_one() {
        let p = SamplePlan::periodic(100, 1, 0);
        assert!(p.validate().is_ok());
        assert!((0..10).all(|i| p.kind_of(i) == WindowKind::Detailed));
    }

    #[test]
    fn explicit_marks_reps_and_warmups() {
        let p = SamplePlan::explicit(500, vec![3, 7], 2);
        use WindowKind::*;
        let kinds: Vec<WindowKind> = (0..9).map(|i| p.kind_of(i)).collect();
        assert_eq!(kinds, vec![Fast, Warm, Warm, Detailed, Fast, Warm, Warm, Detailed, Fast]);
    }

    #[test]
    fn fast_forward_is_all_fast() {
        let p = SamplePlan::fast_forward(2048);
        assert!((0..100).all(|i| p.kind_of(i) == WindowKind::Fast));
    }

    #[test]
    fn validation_rejects_degenerates() {
        assert!(SamplePlan::periodic(0, 4, 1).validate().is_err());
        assert!(SamplePlan::periodic(100, 0, 0).validate().is_err());
        assert!(SamplePlan::periodic(100, 4, 4).validate().is_err());
        assert!(SamplePlan::explicit(100, vec![5, 3], 1).validate().is_err());
        assert!(SamplePlan::explicit(100, vec![3, 3], 1).validate().is_err());
        assert!(SamplePlan::explicit(100, vec![3, 5], 1).validate().is_ok());
    }

    #[test]
    fn adjacent_explicit_reps_prefer_detailed() {
        // A window that is both a rep and inside another rep's warm-up
        // prefix counts as detailed.
        let p = SamplePlan::explicit(100, vec![4, 5], 1);
        assert_eq!(p.kind_of(4), WindowKind::Detailed);
        assert_eq!(p.kind_of(5), WindowKind::Detailed);
        assert_eq!(p.kind_of(3), WindowKind::Warm);
    }

    #[test]
    fn window_span_saturates() {
        let w = SampledWindow {
            index: 0,
            kind: WindowKind::Fast,
            start: 100,
            end: 40,
            accesses: 0,
            misses: 0,
            proc_busy: 0,
            proc_stall: 0,
            bus_busy: 0,
            bus_ops: 0,
            bus_queueing: 0,
            fills: 0,
            fill_buckets: [0; 7],
        };
        assert_eq!(w.span(), 0);
    }
}
