//! Snooping-coherence invariant checker.
//!
//! The machine's correctness rests on a handful of global invariants each
//! coherence protocol must preserve across every bus transaction. This module
//! states them as code and lets the simulator assert them after each grant
//! and completion (see [`SimConfig::check_invariants`]), turning silent state
//! corruption into an immediate [`SimError::InvariantViolation`].
//!
//! Invariants common to every protocol:
//!
//! 1. **Single exclusive owner** — at most one cache holds a line in an
//!    exclusive state (`PrivateClean` / `PrivateDirty`).
//! 2. **No stale sharers** — while any cache holds a line exclusively, no
//!    other cache may hold *any* valid copy of it; in particular a `Shared`
//!    copy must never coexist with a private-dirty peer.
//! 3. **No prefetch aliasing** — an outstanding prefetch-buffer entry is a
//!    fetch for a line that is *not* resident; an entry aliasing a valid
//!    local line means a fill or snoop path forgot to reconcile the buffer.
//! 4. **MSHR bound** — the lockup-free buffer never tracks more outstanding
//!    prefetches than its configured depth.
//!
//! Per-protocol invariants (the reason the checker takes a [`Protocol`]):
//!
//! 5. **Legal state set** — each protocol uses a subset of [`LineState`]:
//!    `Owned` exists only under MOESI, `SharedModified` only under Dragon.
//!    Any other combination is foreign corruption.
//! 6. **Single owner-updater** — at most one cache holds a line `Owned`
//!    (MOESI) or `SharedModified` (Dragon): exactly one copy owes memory the
//!    write-back, so two owners would either double-write or lose an update.
//!
//! The checks are intentionally dumb re-derivations from raw cache state
//! (`O(procs)` per touched line), independent of the machine's own
//! bookkeeping — that independence is what makes them able to catch its
//! bugs. The fault-injection tests below corrupt [`CacheArray`]s directly
//! and prove every violation class is detected under every protocol.
//!
//! [`SimConfig::check_invariants`]: crate::SimConfig::check_invariants
//! [`SimError::InvariantViolation`]: crate::SimError::InvariantViolation

use charlie_cache::{CacheArray, LineState, Protocol};
use charlie_trace::LineAddr;
use std::fmt;

/// A violation of one of the snooping-protocol invariants above.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum CoherenceViolation {
    /// Two caches hold the same line in an exclusive state.
    MultipleExclusive {
        /// The offending line.
        line: LineAddr,
        /// First exclusive holder found.
        first: usize,
        /// Second exclusive holder.
        second: usize,
    },
    /// A cache holds a valid copy of a line another cache owns exclusively
    /// (covers the classic "Shared with dirty peer" corruption).
    SharedWithExclusivePeer {
        /// The offending line.
        line: LineAddr,
        /// Processor holding the non-exclusive copy.
        sharer: usize,
        /// Processor holding the exclusive copy.
        owner: usize,
        /// The owner's state (`PrivateClean` or `PrivateDirty`).
        owner_state: LineState,
    },
    /// Two caches hold the same line in the owner-updater state (`Owned`
    /// under MOESI, `SharedModified` under Dragon): the write-back
    /// responsibility must rest with exactly one copy.
    MultipleOwners {
        /// The offending line.
        line: LineAddr,
        /// First owner found.
        first: usize,
        /// Second owner.
        second: usize,
        /// The duplicated owner state.
        state: LineState,
    },
    /// A cache holds a line in a state the active protocol cannot produce
    /// (e.g. `Owned` under Illinois, `SharedModified` under MOESI).
    ForeignState {
        /// The offending line.
        line: LineAddr,
        /// Processor holding the foreign state.
        proc: usize,
        /// The illegal state.
        state: LineState,
    },
    /// An outstanding prefetch-buffer entry aliases a valid resident line.
    PrefetchAliasesResident {
        /// Processor whose buffer holds the aliasing entry.
        proc: usize,
        /// The aliased line.
        line: LineAddr,
        /// State of the resident copy.
        state: LineState,
    },
    /// More outstanding prefetches than the lockup-free buffer can hold.
    MshrOverflow {
        /// Processor whose buffer overflowed.
        proc: usize,
        /// Outstanding entries counted.
        outstanding: usize,
        /// Configured buffer depth.
        depth: usize,
    },
}

impl fmt::Display for CoherenceViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoherenceViolation::MultipleExclusive { line, first, second } => write!(
                f,
                "line {line} held exclusively by both proc {first} and proc {second}"
            ),
            CoherenceViolation::SharedWithExclusivePeer { line, sharer, owner, owner_state } => {
                write!(
                    f,
                    "proc {sharer} holds a copy of line {line} while proc {owner} owns it \
                     {owner_state:?}"
                )
            }
            CoherenceViolation::MultipleOwners { line, first, second, state } => write!(
                f,
                "line {line} held {state:?} by both proc {first} and proc {second} \
                 (write-back responsibility must be unique)"
            ),
            CoherenceViolation::ForeignState { line, proc, state } => write!(
                f,
                "proc {proc} holds line {line} in {state:?}, which the active protocol \
                 cannot produce"
            ),
            CoherenceViolation::PrefetchAliasesResident { proc, line, state } => write!(
                f,
                "proc {proc} has an outstanding prefetch for line {line} already resident \
                 ({state:?})"
            ),
            CoherenceViolation::MshrOverflow { proc, outstanding, depth } => write!(
                f,
                "proc {proc} tracks {outstanding} outstanding prefetches in a {depth}-deep buffer"
            ),
        }
    }
}

/// `true` for the dirty-shared owner-updater state of `proto`, of which at
/// most one copy may exist.
fn is_owner_state(proto: Protocol, state: LineState) -> bool {
    match proto {
        Protocol::Moesi => state == LineState::Owned,
        Protocol::Dragon => state == LineState::SharedModified,
        Protocol::WriteInvalidate | Protocol::WriteUpdate => false,
    }
}

/// Checks invariants 1, 2, 5 and 6 for one line across all caches under
/// `proto`.
///
/// # Errors
///
/// Returns the first [`CoherenceViolation`] found.
pub fn check_line(
    proto: Protocol,
    caches: &[CacheArray],
    line: LineAddr,
) -> Result<(), CoherenceViolation> {
    let mut exclusive: Option<(usize, LineState)> = None;
    let mut owner: Option<(usize, LineState)> = None;
    let mut other: Option<usize> = None;
    for (p, cache) in caches.iter().enumerate() {
        let Some(state) = cache.state_of(line) else { continue };
        if !proto.allows_state(state) {
            return Err(CoherenceViolation::ForeignState { line, proc: p, state });
        }
        if state.is_exclusive() {
            if let Some((first, _)) = exclusive {
                return Err(CoherenceViolation::MultipleExclusive { line, first, second: p });
            }
            exclusive = Some((p, state));
        } else {
            if is_owner_state(proto, state) {
                if let Some((first, state)) = owner {
                    return Err(CoherenceViolation::MultipleOwners {
                        line,
                        first,
                        second: p,
                        state,
                    });
                }
                owner = Some((p, state));
            }
            other = Some(p);
        }
    }
    if let (Some((owner, owner_state)), Some(sharer)) = (exclusive, other) {
        return Err(CoherenceViolation::SharedWithExclusivePeer {
            line,
            sharer,
            owner,
            owner_state,
        });
    }
    Ok(())
}

/// Checks invariants 3 and 4 for one processor's prefetch buffer.
///
/// # Errors
///
/// Returns the first [`CoherenceViolation`] found.
pub fn check_prefetch_buffer<I>(
    proc: usize,
    cache: &CacheArray,
    outstanding: I,
    depth: usize,
) -> Result<(), CoherenceViolation>
where
    I: IntoIterator<Item = LineAddr>,
{
    let mut count = 0usize;
    for line in outstanding {
        count += 1;
        if let Some(state) = cache.state_of(line) {
            return Err(CoherenceViolation::PrefetchAliasesResident { proc, line, state });
        }
    }
    if count > depth {
        return Err(CoherenceViolation::MshrOverflow { proc, outstanding: count, depth });
    }
    Ok(())
}

/// Full-machine sweep: checks [`check_line`] for every line valid anywhere.
/// Used at end of run (the per-transaction path only re-checks touched
/// lines).
///
/// # Errors
///
/// Returns the first [`CoherenceViolation`] found.
pub fn check_all_lines(proto: Protocol, caches: &[CacheArray]) -> Result<(), CoherenceViolation> {
    let mut lines: Vec<LineAddr> =
        caches.iter().flat_map(|c| c.iter_valid().map(|(l, _)| l)).collect();
    lines.sort_unstable();
    lines.dedup();
    for line in lines {
        check_line(proto, caches, line)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use charlie_cache::CacheGeometry;

    fn caches(n: usize) -> Vec<CacheArray> {
        (0..n).map(|_| CacheArray::new(CacheGeometry::paper_default())).collect()
    }

    fn line(addr: u64) -> LineAddr {
        charlie_trace::Addr::new(addr).line(32)
    }

    // ---- fault injection: each corruption class must be caught ----------

    #[test]
    fn detects_two_exclusive_copies() {
        let mut c = caches(4);
        let l = line(0x1000);
        c[1].fill(l, LineState::PrivateDirty, false);
        c[3].fill(l, LineState::PrivateClean, false);
        match check_line(Protocol::WriteInvalidate, &c, l) {
            Err(CoherenceViolation::MultipleExclusive { line, first: 1, second: 3 }) => {
                assert_eq!(line, l)
            }
            other => panic!("expected MultipleExclusive, got {other:?}"),
        }
        assert!(check_all_lines(Protocol::WriteInvalidate, &c).is_err(), "sweep must find it too");
    }

    #[test]
    fn detects_shared_copy_with_dirty_peer() {
        let mut c = caches(4);
        let l = line(0x2000);
        c[0].fill(l, LineState::Shared, false);
        c[2].fill(l, LineState::PrivateDirty, false);
        match check_line(Protocol::WriteInvalidate, &c, l) {
            Err(CoherenceViolation::SharedWithExclusivePeer {
                sharer: 0,
                owner: 2,
                owner_state: LineState::PrivateDirty,
                ..
            }) => {}
            other => panic!("expected SharedWithExclusivePeer, got {other:?}"),
        }
    }

    #[test]
    fn detects_shared_copy_with_clean_exclusive_peer() {
        // Illinois: PrivateClean also promises "no other copies exist".
        let mut c = caches(2);
        let l = line(0x3000);
        c[0].fill(l, LineState::PrivateClean, false);
        c[1].fill(l, LineState::Shared, false);
        assert!(matches!(
            check_line(Protocol::WriteInvalidate, &c, l),
            Err(CoherenceViolation::SharedWithExclusivePeer {
                owner_state: LineState::PrivateClean,
                ..
            })
        ));
    }

    // ---- seeded violations per protocol (the checker must fire) ---------

    #[test]
    fn firefly_detects_dirty_exclusive_with_sharer() {
        // Write-update's exclusive states still promise "alone": a PD copy
        // next to a sharer means a broadcast was lost.
        let mut c = caches(2);
        let l = line(0x2100);
        c[0].fill(l, LineState::PrivateDirty, false);
        c[1].fill(l, LineState::Shared, false);
        assert!(matches!(
            check_line(Protocol::WriteUpdate, &c, l),
            Err(CoherenceViolation::SharedWithExclusivePeer { sharer: 1, owner: 0, .. })
        ));
    }

    #[test]
    fn dragon_detects_two_shared_modified_owners() {
        // Dragon: exactly one sharer is the owner-updater (Sm). Two would
        // both claim the write-back.
        let mut c = caches(4);
        let l = line(0x2200);
        c[0].fill(l, LineState::SharedModified, false);
        c[2].fill(l, LineState::SharedModified, false);
        match check_line(Protocol::Dragon, &c, l) {
            Err(CoherenceViolation::MultipleOwners {
                first: 0,
                second: 2,
                state: LineState::SharedModified,
                ..
            }) => {}
            other => panic!("expected MultipleOwners, got {other:?}"),
        }
        assert!(check_all_lines(Protocol::Dragon, &c).is_err(), "sweep must find it too");
    }

    #[test]
    fn moesi_detects_two_owned_copies() {
        let mut c = caches(4);
        let l = line(0x2300);
        c[1].fill(l, LineState::Owned, false);
        c[3].fill(l, LineState::Owned, false);
        match check_line(Protocol::Moesi, &c, l) {
            Err(CoherenceViolation::MultipleOwners {
                first: 1,
                second: 3,
                state: LineState::Owned,
                ..
            }) => {}
            other => panic!("expected MultipleOwners, got {other:?}"),
        }
    }

    #[test]
    fn moesi_detects_owned_next_to_private_dirty() {
        // An Owned copy promises the dirty data is *shared*; a PD peer is a
        // contradiction (two caches each believing they are sole-dirty).
        let mut c = caches(2);
        let l = line(0x2400);
        c[0].fill(l, LineState::Owned, false);
        c[1].fill(l, LineState::PrivateDirty, false);
        assert!(matches!(
            check_line(Protocol::Moesi, &c, l),
            Err(CoherenceViolation::SharedWithExclusivePeer { sharer: 0, owner: 1, .. })
        ));
    }

    #[test]
    fn foreign_states_are_detected_per_protocol() {
        // Owned exists only under MOESI, SharedModified only under Dragon.
        for (proto, foreign) in [
            (Protocol::WriteInvalidate, LineState::Owned),
            (Protocol::WriteInvalidate, LineState::SharedModified),
            (Protocol::WriteUpdate, LineState::Owned),
            (Protocol::WriteUpdate, LineState::SharedModified),
            (Protocol::Dragon, LineState::Owned),
            (Protocol::Moesi, LineState::SharedModified),
        ] {
            let mut c = caches(2);
            let l = line(0x2500);
            c[1].fill(l, foreign, false);
            match check_line(proto, &c, l) {
                Err(CoherenceViolation::ForeignState { proc: 1, state, .. }) => {
                    assert_eq!(state, foreign, "{proto:?}")
                }
                other => panic!("{proto:?}/{foreign:?}: expected ForeignState, got {other:?}"),
            }
        }
    }

    #[test]
    fn detects_prefetch_aliasing_resident_line() {
        let mut c = caches(1);
        let l = line(0x4000);
        c[0].fill(l, LineState::Shared, true);
        let err = check_prefetch_buffer(0, &c[0], [l], 16).unwrap_err();
        assert!(matches!(err, CoherenceViolation::PrefetchAliasesResident { proc: 0, .. }));
        assert!(err.to_string().contains("outstanding prefetch"));
    }

    #[test]
    fn detects_mshr_overflow() {
        let c = caches(1);
        let lines: Vec<LineAddr> = (0..5).map(|i| line(0x5000 + 32 * i)).collect();
        let err = check_prefetch_buffer(0, &c[0], lines, 4).unwrap_err();
        assert!(matches!(
            err,
            CoherenceViolation::MshrOverflow { proc: 0, outstanding: 5, depth: 4 }
        ));
    }

    #[test]
    fn corruption_in_victim_buffer_is_still_seen() {
        // state_of covers the victim buffer, so a dirty copy demoted there
        // must still trip the single-owner invariant.
        let mut c = vec![
            CacheArray::with_victim(CacheGeometry::paper_default(), 2),
            CacheArray::with_victim(CacheGeometry::paper_default(), 2),
        ];
        let l = line(0x6000);
        // Fill dirty, then evict it into proc 0's victim buffer by filling a
        // conflicting line (same set, different tag).
        c[0].fill(l, LineState::PrivateDirty, false);
        let conflicting = line(0x6000 + 32 * 1024);
        c[0].fill(conflicting, LineState::Shared, false);
        assert!(c[0].probe_victim(l), "setup: dirty line must sit in the victim buffer");
        c[1].fill(l, LineState::PrivateClean, false);
        assert!(matches!(
            check_line(Protocol::WriteInvalidate, &c, l),
            Err(CoherenceViolation::MultipleExclusive { .. })
        ));
    }

    // ---- legal states must pass -----------------------------------------

    #[test]
    fn legal_global_states_pass() {
        let mut c = caches(4);
        // Many sharers.
        let shared = line(0x100);
        for cache in c.iter_mut() {
            cache.fill(shared, LineState::Shared, false);
        }
        // One clean owner, sole copy.
        c[0].fill(line(0x200), LineState::PrivateClean, false);
        // One dirty owner, sole copy.
        c[1].fill(line(0x300), LineState::PrivateDirty, false);
        assert_eq!(check_all_lines(Protocol::WriteInvalidate, &c), Ok(()));
        // An outstanding prefetch for a non-resident line is fine.
        assert_eq!(check_prefetch_buffer(0, &c[0], [line(0x7000)], 16), Ok(()));
        // Exactly at the depth bound is fine.
        let full: Vec<LineAddr> = (0..4).map(|i| line(0x8000 + 32 * i)).collect();
        assert_eq!(check_prefetch_buffer(0, &c[0], full, 4), Ok(()));
    }

    #[test]
    fn legal_owner_configurations_pass() {
        // MOESI: one Owned copy among sharers is the protocol working as
        // designed; likewise Dragon's single Sm among Shared peers.
        let mut c = caches(4);
        let l = line(0x900);
        c[0].fill(l, LineState::Owned, false);
        c[1].fill(l, LineState::Shared, false);
        c[2].fill(l, LineState::Shared, false);
        assert_eq!(check_line(Protocol::Moesi, &c, l), Ok(()));
        assert_eq!(check_all_lines(Protocol::Moesi, &c), Ok(()));

        let mut c = caches(4);
        c[3].fill(l, LineState::SharedModified, false);
        c[0].fill(l, LineState::Shared, false);
        assert_eq!(check_line(Protocol::Dragon, &c, l), Ok(()));
        assert_eq!(check_all_lines(Protocol::Dragon, &c), Ok(()));
    }

    #[test]
    fn absent_line_passes() {
        let c = caches(2);
        assert_eq!(check_line(Protocol::WriteInvalidate, &c, line(0x9000)), Ok(()));
        for proto in Protocol::ALL {
            assert_eq!(check_all_lines(proto, &c), Ok(()));
        }
    }

    #[test]
    fn violation_displays_name_the_parties() {
        let v = CoherenceViolation::MultipleExclusive { line: line(0x40), first: 0, second: 3 };
        let text = v.to_string();
        assert!(text.contains("proc 0") && text.contains("proc 3"), "{text}");
        let v = CoherenceViolation::MultipleOwners {
            line: line(0x40),
            first: 1,
            second: 2,
            state: LineState::Owned,
        };
        let text = v.to_string();
        assert!(text.contains("proc 1") && text.contains("proc 2"), "{text}");
        let v = CoherenceViolation::ForeignState {
            line: line(0x40),
            proc: 0,
            state: LineState::SharedModified,
        };
        assert!(v.to_string().contains("cannot produce"));
    }
}
