//! Simulation results: the paper's full miss taxonomy plus machine-level
//! counters.

use charlie_bus::BusStats;
use std::fmt;

/// CPU (demand) misses broken down by the categories of the paper's Figure 3.
///
/// * *non-sharing* — the tag did not match: first use, or the line had been
///   replaced (including replacement caused by prefetched data, and
///   prefetched lines replaced before use);
/// * *invalidation* — the tag matched but the line had been invalidated by a
///   remote write;
/// * *prefetched* — the missing line had been brought in by a prefetch and
///   disappeared before its first demand use;
/// * *prefetch-in-progress* — the prefetch was issued but had not completed;
///   the processor pays only the remaining latency.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct MissBreakdown {
    /// Non-sharing miss, line never prefetched.
    pub non_sharing_not_prefetched: u64,
    /// Non-sharing miss on a line a prefetch had brought in (it was replaced
    /// before use).
    pub non_sharing_prefetched: u64,
    /// Invalidation miss, line never prefetched.
    pub invalidation_not_prefetched: u64,
    /// Invalidation miss on a prefetched-but-unused line.
    pub invalidation_prefetched: u64,
    /// Demand access caught its own prefetch still in flight.
    pub prefetch_in_progress: u64,
}

impl MissBreakdown {
    /// All CPU misses (the paper's *CPU miss rate* numerator).
    pub fn cpu_misses(&self) -> u64 {
        self.non_sharing() + self.invalidation() + self.prefetch_in_progress
    }

    /// CPU misses excluding prefetch-in-progress (the paper's *adjusted CPU
    /// miss rate* numerator).
    pub fn adjusted_cpu_misses(&self) -> u64 {
        self.non_sharing() + self.invalidation()
    }

    /// All non-sharing misses.
    pub fn non_sharing(&self) -> u64 {
        self.non_sharing_not_prefetched + self.non_sharing_prefetched
    }

    /// All invalidation misses.
    pub fn invalidation(&self) -> u64 {
        self.invalidation_not_prefetched + self.invalidation_prefetched
    }
}

impl std::ops::Add for MissBreakdown {
    type Output = MissBreakdown;

    fn add(self, rhs: MissBreakdown) -> MissBreakdown {
        MissBreakdown {
            non_sharing_not_prefetched: self.non_sharing_not_prefetched
                + rhs.non_sharing_not_prefetched,
            non_sharing_prefetched: self.non_sharing_prefetched + rhs.non_sharing_prefetched,
            invalidation_not_prefetched: self.invalidation_not_prefetched
                + rhs.invalidation_not_prefetched,
            invalidation_prefetched: self.invalidation_prefetched + rhs.invalidation_prefetched,
            prefetch_in_progress: self.prefetch_in_progress + rhs.prefetch_in_progress,
        }
    }
}

/// Per-processor timing summary.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct ProcStats {
    /// Cycles spent executing instructions and cache-hit accesses (within
    /// the measured window).
    pub busy_cycles: u64,
    /// Cycles spent stalled (memory, prefetch-buffer, lock, barrier waits).
    pub stall_cycles: u64,
    /// Simulated time at which this processor retired its last event.
    pub finish_time: u64,
    /// Demand accesses performed (trace accesses plus synchronization
    /// accesses synthesized by the lock/barrier models).
    pub accesses: u64,
    /// Time the measured window opened for this processor (0 unless
    /// statistics warm-up was configured).
    pub measured_from: u64,
}

impl ProcStats {
    /// Processor utilization over its measured runtime, in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        if self.finish_time <= self.measured_from {
            0.0
        } else {
            self.busy_cycles as f64 / (self.finish_time - self.measured_from) as f64
        }
    }
}

/// Online summary of a latency distribution (cycles), with fixed buckets.
///
/// The paper's contention argument is about exactly this number: "to each
/// CPU, this appears as an increase in the access time for CPU misses, due
/// to high memory subsystem contention". The unloaded fill latency is 100
/// cycles; everything above it is queueing.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct LatencyStats {
    count: u64,
    total: u64,
    min: u64,
    max: u64,
    /// Counts for `<=100, <=125, <=150, <=200, <=300, <=500, >500`.
    buckets: [u64; 7],
}

/// Upper bounds of the first six latency buckets.
pub const LATENCY_BUCKET_BOUNDS: [u64; 6] = [100, 125, 150, 200, 300, 500];

impl Default for LatencyStats {
    fn default() -> Self {
        LatencyStats { count: 0, total: 0, min: u64::MAX, max: 0, buckets: [0; 7] }
    }
}

impl LatencyStats {
    /// Records one observation. The running total saturates instead of
    /// wrapping, so a pathological latency (e.g. a saturated bus model
    /// reporting `u64::MAX`) degrades the mean gracefully rather than
    /// corrupting it.
    pub fn record(&mut self, latency: u64) {
        self.count += 1;
        self.total = self.total.saturating_add(latency);
        self.min = self.min.min(latency);
        self.max = self.max.max(latency);
        let idx = LATENCY_BUCKET_BOUNDS
            .iter()
            .position(|&b| latency <= b)
            .unwrap_or(LATENCY_BUCKET_BOUNDS.len());
        self.buckets[idx] += 1;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total as f64 / self.count as f64
        }
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Bucket counts for `<=100, <=125, <=150, <=200, <=300, <=500, >500`.
    pub fn histogram(&self) -> &[u64; 7] {
        &self.buckets
    }

    /// Raw `(count, total, min, max, buckets)` — full-fidelity access for
    /// checkpoint serialization (the mean alone would be lossy). `min` is
    /// `u64::MAX` when empty, matching [`LatencyStats::default`].
    pub fn to_raw(&self) -> (u64, u64, u64, u64, [u64; 7]) {
        (self.count, self.total, self.min, self.max, self.buckets)
    }

    /// Rebuilds the stats from [`LatencyStats::to_raw`] output, so a
    /// journaled report round-trips bit-identically.
    pub fn from_raw(count: u64, total: u64, min: u64, max: u64, buckets: [u64; 7]) -> Self {
        LatencyStats { count, total, min, max, buckets }
    }
}

impl fmt::Display for LatencyStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.min(), self.max()) {
            (Some(min), Some(max)) => {
                write!(f, "n={} mean={:.1} min={min} max={max}", self.count, self.mean())
            }
            _ => f.write_str("n=0"),
        }
    }
}

/// Prefetch-machinery counters.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct PrefetchStats {
    /// Prefetch instructions executed.
    pub executed: u64,
    /// Dropped: the line was already cached in an adequate state.
    pub hits: u64,
    /// Dropped: a fetch of the line was already outstanding.
    pub duplicates: u64,
    /// Issued to the bus (the paper's *prefetch misses*).
    pub fills: u64,
    /// Prefetched lines replaced before any demand use.
    pub wasted_evicted: u64,
    /// Prefetched lines invalidated before any demand use.
    pub wasted_invalidated: u64,
    /// Processor stalls because the 16-deep prefetch buffer was full.
    pub buffer_stalls: u64,
}

/// On-line hardware-prefetcher accuracy counters (all zero unless
/// `SimConfig::hw_prefetch` enables a predictor).
///
/// Every issued prefetch is eventually classified exactly once, so at
/// report time `useful + late + useless == issued` — the invariant the
/// property suite pins. `trained` counts predictor-table updates and is
/// independent of the issue stream.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct HwPrefetchStats {
    /// Predictor training-table updates (entry created or modified).
    pub trained: u64,
    /// Prefetches issued to the bus by the hardware prefetcher.
    pub issued: u64,
    /// Issued prefetches whose line served a demand access after filling.
    pub useful: u64,
    /// Issued prefetches a demand access caught still in flight (the
    /// prefetch was correct but not timely; the access pays the residue).
    pub late: u64,
    /// Issued prefetches whose line was invalidated, replaced, or still
    /// unused when the run (or measurement window) ended.
    pub useless: u64,
}

impl HwPrefetchStats {
    /// Fraction of issued prefetches that were useful or late — i.e.
    /// predicted a line a demand access really wanted (0 when none issued).
    pub fn accuracy(&self) -> f64 {
        if self.issued == 0 {
            0.0
        } else {
            (self.useful + self.late) as f64 / self.issued as f64
        }
    }

    /// Issued prefetches that covered a would-be demand miss.
    pub fn covered(&self) -> u64 {
        self.useful + self.late
    }

    /// `true` when no counter ever moved (the disabled path).
    pub fn is_empty(&self) -> bool {
        *self == HwPrefetchStats::default()
    }
}

/// Complete result of one simulation run.
///
/// # Window semantics
///
/// Every counter and rate in this report covers exactly the measurement
/// window `measured_from..cycles` — the run minus its statistics warm-up
/// (`SimConfig::warmup_accesses`; `measured_from == 0` when none). That
/// uniformity is load-bearing: bus busy and queueing cycles are clipped at
/// grant time to the window (a transfer in flight when the window opens
/// contributes only its in-window portion, and the final grant's occupancy
/// past the last retire is subtracted), access/miss counters start at the
/// boundary, and the fill-latency histogram only records fills *issued*
/// inside the window. Ratios such as [`bus_utilization`]
/// (`SimReport::bus_utilization`) therefore divide a numerator and a
/// denominator drawn from the same span and stay in `[0, 1]`.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct SimReport {
    /// Total simulated cycles (time the last processor finished).
    pub cycles: u64,
    /// Time the statistics window opened (0 without warm-up). Rates and
    /// utilizations cover `measured_from..cycles`; `cycles` itself always
    /// covers the whole run so execution-time comparisons stay meaningful.
    pub measured_from: u64,
    /// Demand reads performed (including synchronization reads).
    pub reads: u64,
    /// Demand writes performed (including synchronization writes).
    pub writes: u64,
    /// CPU-miss taxonomy.
    pub miss: MissBreakdown,
    /// Invalidation misses whose invalidating write touched a word the local
    /// processor had not accessed (subset of `miss.invalidation()`).
    pub false_sharing_misses: u64,
    /// Write hits on shared lines that required an invalidating upgrade.
    pub upgrades: u64,
    /// Upgrades that aborted because the line was invalidated while the
    /// upgrade was queued (the write then retries as a miss).
    pub upgrades_aborted: u64,
    /// Demand fills re-issued because the filled line was invalidated by a
    /// remote write before the stalled access could retire. The miss is
    /// classified once; the extra fill still consumes bus bandwidth, so
    /// `bus.reads + bus.read_exclusives ==
    /// miss.adjusted_cpu_misses() + prefetch.fills + demand_refills`.
    pub demand_refills: u64,
    /// Misses that hit the optional victim buffer instead of going to
    /// memory (0 unless `victim_entries` was configured).
    pub victim_hits: u64,
    /// Distribution of demand-fill latencies (miss begin → data installed);
    /// 100 cycles unloaded, everything above is bus queueing.
    pub fill_latency: LatencyStats,
    /// Prefetch machinery counters (software and hardware prefetches alike
    /// share the buffers, so both populations land here).
    pub prefetch: PrefetchStats,
    /// On-line hardware-prefetcher accuracy counters (zero when disabled).
    pub hw_prefetch: HwPrefetchStats,
    /// Bus counters.
    pub bus: BusStats,
    /// Per-processor stats.
    pub per_proc: Vec<ProcStats>,
}

impl SimReport {
    /// Total demand accesses (the denominator of every miss rate).
    pub fn demand_accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// The paper's *CPU miss rate*: misses observed by the CPU, including
    /// prefetch-in-progress misses.
    pub fn cpu_miss_rate(&self) -> f64 {
        self.rate(self.miss.cpu_misses())
    }

    /// The paper's *adjusted CPU miss rate*: CPU misses excluding
    /// prefetch-in-progress.
    pub fn adjusted_cpu_miss_rate(&self) -> f64 {
        self.rate(self.miss.adjusted_cpu_misses())
    }

    /// The paper's *total miss rate*: accesses (demand or prefetch) that
    /// cause a memory fetch — the demand at the machine's bottleneck.
    pub fn total_miss_rate(&self) -> f64 {
        self.rate(self.miss.adjusted_cpu_misses() + self.prefetch.fills)
    }

    /// Invalidation-miss rate (per demand access).
    pub fn invalidation_miss_rate(&self) -> f64 {
        self.rate(self.miss.invalidation())
    }

    /// False-sharing miss rate (per demand access).
    pub fn false_sharing_miss_rate(&self) -> f64 {
        self.rate(self.false_sharing_misses)
    }

    /// Non-sharing CPU miss rate (per demand access).
    pub fn non_sharing_miss_rate(&self) -> f64 {
        self.rate(self.miss.non_sharing())
    }

    /// Bus utilization: cycles the contended resource was busy over the
    /// measured cycles (the paper's Table 2).
    pub fn bus_utilization(&self) -> f64 {
        self.bus.utilization(self.cycles.saturating_sub(self.measured_from))
    }

    /// Mean processor utilization (each processor over its own runtime).
    pub fn avg_processor_utilization(&self) -> f64 {
        if self.per_proc.is_empty() {
            return 0.0;
        }
        self.per_proc.iter().map(ProcStats::utilization).sum::<f64>() / self.per_proc.len() as f64
    }

    fn rate(&self, n: u64) -> f64 {
        let d = self.demand_accesses();
        if d == 0 {
            0.0
        } else {
            n as f64 / d as f64
        }
    }
}

impl fmt::Display for SimReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} cycles, {} accesses; miss rates: total {:.4}, cpu {:.4} (adj {:.4})",
            self.cycles,
            self.demand_accesses(),
            self.total_miss_rate(),
            self.cpu_miss_rate(),
            self.adjusted_cpu_miss_rate()
        )?;
        writeln!(
            f,
            "  inval {:.4} (false sharing {:.4}), non-sharing {:.4}, in-progress {}",
            self.invalidation_miss_rate(),
            self.false_sharing_miss_rate(),
            self.non_sharing_miss_rate(),
            self.miss.prefetch_in_progress
        )?;
        write!(
            f,
            "  bus util {:.3}, proc util {:.3}, prefetches {} (fills {}, wasted {}+{})",
            self.bus_utilization(),
            self.avg_processor_utilization(),
            self.prefetch.executed,
            self.prefetch.fills,
            self.prefetch.wasted_evicted,
            self.prefetch.wasted_invalidated
        )?;
        // The hardware-prefetcher line only exists when the subsystem ran,
        // so disabled-path output stays byte-identical to older builds.
        if !self.hw_prefetch.is_empty() {
            let h = &self.hw_prefetch;
            write!(
                f,
                "\n  hw prefetch: trained {}, issued {} (useful {}, late {}, useless {}, accuracy {:.3})",
                h.trained, h.issued, h.useful, h.late, h.useless, h.accuracy()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breakdown() -> MissBreakdown {
        MissBreakdown {
            non_sharing_not_prefetched: 10,
            non_sharing_prefetched: 2,
            invalidation_not_prefetched: 5,
            invalidation_prefetched: 1,
            prefetch_in_progress: 4,
        }
    }

    #[test]
    fn breakdown_sums() {
        let b = breakdown();
        assert_eq!(b.non_sharing(), 12);
        assert_eq!(b.invalidation(), 6);
        assert_eq!(b.adjusted_cpu_misses(), 18);
        assert_eq!(b.cpu_misses(), 22);
    }

    #[test]
    fn breakdown_add() {
        let b = breakdown() + breakdown();
        assert_eq!(b.cpu_misses(), 44);
        assert_eq!(b.prefetch_in_progress, 8);
    }

    #[test]
    fn report_rates() {
        let mut r = SimReport {
            reads: 60,
            writes: 40,
            miss: breakdown(),
            false_sharing_misses: 3,
            ..SimReport::default()
        };
        r.prefetch.fills = 8;
        assert!((r.cpu_miss_rate() - 0.22).abs() < 1e-12);
        assert!((r.adjusted_cpu_miss_rate() - 0.18).abs() < 1e-12);
        assert!((r.total_miss_rate() - 0.26).abs() < 1e-12);
        assert!((r.false_sharing_miss_rate() - 0.03).abs() < 1e-12);
        assert!((r.invalidation_miss_rate() - 0.06).abs() < 1e-12);
    }

    #[test]
    fn empty_report_rates_are_zero() {
        let r = SimReport::default();
        assert_eq!(r.cpu_miss_rate(), 0.0);
        assert_eq!(r.bus_utilization(), 0.0);
        assert_eq!(r.avg_processor_utilization(), 0.0);
    }

    #[test]
    fn proc_utilization() {
        let p = ProcStats { busy_cycles: 80, stall_cycles: 20, finish_time: 100, accesses: 10, measured_from: 0 };
        assert!((p.utilization() - 0.8).abs() < 1e-12);
        assert_eq!(ProcStats::default().utilization(), 0.0);
    }

    #[test]
    fn latency_stats_accumulate() {
        let mut l = LatencyStats::default();
        assert_eq!(l.count(), 0);
        assert_eq!(l.mean(), 0.0);
        assert_eq!(l.min(), None);
        assert_eq!(l.max(), None);
        assert_eq!(l.to_string(), "n=0");
        for v in [100u64, 120, 450, 900] {
            l.record(v);
        }
        assert_eq!(l.count(), 4);
        assert!((l.mean() - 392.5).abs() < 1e-9);
        assert_eq!(l.min(), Some(100));
        assert_eq!(l.max(), Some(900));
        // buckets: <=100, <=125, <=150, <=200, <=300, <=500, >500
        assert_eq!(l.histogram(), &[1, 1, 0, 0, 0, 1, 1]);
        assert!(l.to_string().contains("mean=392.5"));
    }

    #[test]
    fn latency_total_saturates_instead_of_wrapping() {
        let mut l = LatencyStats::default();
        l.record(u64::MAX);
        l.record(u64::MAX);
        assert_eq!(l.count(), 2);
        // A wrapped total would make the mean tiny (or panic in debug);
        // saturation keeps it pinned at the ceiling.
        assert!((l.mean() - u64::MAX as f64 / 2.0).abs() / l.mean() < 1e-9);
        assert_eq!(l.max(), Some(u64::MAX));
        assert_eq!(l.histogram()[6], 2);
    }

    #[test]
    fn latency_raw_round_trip_is_exact() {
        let mut l = LatencyStats::default();
        for v in [100u64, 120, 450, 900] {
            l.record(v);
        }
        let (count, total, min, max, buckets) = l.to_raw();
        assert_eq!(LatencyStats::from_raw(count, total, min, max, buckets), l);
        // The empty distribution (min == u64::MAX sentinel) round-trips too.
        let empty = LatencyStats::default();
        let (c, t, mn, mx, b) = empty.to_raw();
        assert_eq!(LatencyStats::from_raw(c, t, mn, mx, b), empty);
    }

    #[test]
    fn latency_bucket_boundaries_are_inclusive() {
        let mut l = LatencyStats::default();
        for &bound in &LATENCY_BUCKET_BOUNDS {
            l.record(bound); // lands in its own bucket…
            l.record(bound + 1); // …and the next one up
        }
        assert_eq!(l.histogram(), &[1, 2, 2, 2, 2, 2, 1]);
    }

    #[test]
    fn proc_utilization_respects_measurement_window() {
        // Warm-up excluded: busy cycles are counted only against the
        // measured window, not the whole runtime.
        let p = ProcStats {
            busy_cycles: 50,
            stall_cycles: 50,
            finish_time: 300,
            accesses: 10,
            measured_from: 200,
        };
        assert!((p.utilization() - 0.5).abs() < 1e-12);
        // Degenerate window (processor finished before measurement opened,
        // e.g. warm-up longer than the run): no division by zero.
        let empty = ProcStats { finish_time: 100, measured_from: 100, ..p };
        assert_eq!(empty.utilization(), 0.0);
        let inverted = ProcStats { finish_time: 50, measured_from: 100, ..p };
        assert_eq!(inverted.utilization(), 0.0);
    }

    #[test]
    fn bus_utilization_handles_inverted_window() {
        // measured_from beyond the final cycle must not underflow.
        let r = SimReport { cycles: 10, measured_from: 50, ..SimReport::default() };
        assert_eq!(r.bus_utilization(), 0.0);
    }

    #[test]
    fn breakdown_add_identity() {
        let b = breakdown();
        assert_eq!(b + MissBreakdown::default(), b);
    }

    #[test]
    fn total_miss_rate_counts_prefetch_fills_not_in_progress() {
        let mut r = SimReport { reads: 100, miss: breakdown(), ..SimReport::default() };
        r.prefetch.fills = 10;
        // adjusted (18) + fills (10), NOT cpu_misses (22): in-progress
        // misses don't issue a second bus transaction.
        assert!((r.total_miss_rate() - 0.28).abs() < 1e-12);
    }

    #[test]
    fn display_mentions_key_metrics() {
        let r = SimReport { cycles: 1000, reads: 10, ..SimReport::default() };
        let text = r.to_string();
        assert!(text.contains("cycles"));
        assert!(text.contains("bus util"));
    }
}
