//! Per-processor runtime state.

use crate::metrics::ProcStats;
use charlie_bus::TxnId;
use charlie_trace::{Access, BarrierId, LineAddr, LockId};

/// Why the current in-flight access is being performed. Trace accesses carry
/// [`Purpose::Demand`]; the lock/barrier models synthesize the rest, and the
/// purpose decides what happens when the access retires.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub(crate) enum Purpose {
    /// The access comes from the trace; retiring it advances the cursor.
    Demand,
    /// The test-and-set write that takes a lock.
    LockAcquireWrite(LockId),
    /// The failed test read of a busy lock (then the processor parks).
    LockSpinRead(LockId),
    /// The write that releases a lock (then hand-off happens).
    LockReleaseWrite(LockId),
    /// The write incrementing the barrier arrival counter.
    BarrierArriveWrite(BarrierId),
    /// The first spin test of the barrier flag (then the processor parks).
    BarrierSpinRead(BarrierId),
    /// The last arrival's write of the barrier release flag.
    BarrierFlagWrite(BarrierId),
    /// The read of the flag a released waiter performs on wake-up.
    BarrierLeaveRead(BarrierId),
}

/// An access the processor is currently trying to retire. The same pending
/// access is re-dispatched after every wait (fill completion, upgrade,
/// aborted upgrade) until it hits; `counted` ensures its miss is classified
/// only once.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub(crate) struct PendingAccess {
    pub access: Access,
    pub purpose: Purpose,
    pub counted: bool,
    /// Under the write-update protocol: the word broadcast for this store
    /// already completed, so the (still-shared) write may retire as a hit.
    pub update_complete: bool,
}

impl PendingAccess {
    pub(crate) fn new(access: Access, purpose: Purpose) -> Self {
        PendingAccess { access, purpose, counted: false, update_complete: false }
    }
}

/// Processor scheduling status.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub(crate) enum ProcStatus {
    /// Executing trace events.
    #[default]
    Running,
    /// Stalled on a memory transaction (demand fill, upgrade, or an
    /// in-progress prefetch it ran into).
    WaitMem,
    /// Stalled because the prefetch buffer is full.
    WaitPrefetchSlot,
    /// Parked on a busy lock.
    WaitLock,
    /// Parked at a barrier.
    WaitBarrier,
    /// Trace fully retired.
    Done,
}

/// A prefetch occupying a buffer slot.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub(crate) struct OutstandingPrefetch {
    /// Its bus transaction.
    pub txn: TxnId,
    /// A demand access is stalled waiting for this prefetch
    /// (prefetch-in-progress miss).
    pub cpu_waiting: bool,
    /// Issued by the on-line hardware prefetcher rather than a trace
    /// prefetch instruction; drives the hardware accuracy accounting.
    pub hw: bool,
}

/// The outstanding-prefetch window: line → slot, capacity enforced by the
/// machine. The buffer is at most 16 deep, so a linear scan of a small
/// vector beats hashing every lookup; iteration order is insertion order
/// and therefore deterministic.
#[derive(Clone, Debug, Default)]
pub(crate) struct PrefetchWindow {
    slots: Vec<(LineAddr, OutstandingPrefetch)>,
}

impl PrefetchWindow {
    pub(crate) fn len(&self) -> usize {
        self.slots.len()
    }

    pub(crate) fn contains(&self, line: LineAddr) -> bool {
        self.slots.iter().any(|(l, _)| *l == line)
    }

    /// Inserts a slot for `line`; the machine never inserts a duplicate
    /// (it checks [`PrefetchWindow::contains`] first).
    pub(crate) fn insert(&mut self, line: LineAddr, slot: OutstandingPrefetch) {
        debug_assert!(!self.contains(line), "duplicate prefetch slot for {line:?}");
        self.slots.push((line, slot));
    }

    pub(crate) fn get_mut(&mut self, line: LineAddr) -> Option<&mut OutstandingPrefetch> {
        self.slots.iter_mut().find(|(l, _)| *l == line).map(|(_, s)| s)
    }

    pub(crate) fn remove(&mut self, line: LineAddr) -> Option<OutstandingPrefetch> {
        let pos = self.slots.iter().position(|(l, _)| *l == line)?;
        Some(self.slots.remove(pos).1)
    }

    /// Occupied lines, in insertion order.
    pub(crate) fn lines(&self) -> impl Iterator<Item = LineAddr> + '_ {
        self.slots.iter().map(|(l, _)| *l)
    }

    /// Occupied slots, in insertion order.
    pub(crate) fn slots(&self) -> impl Iterator<Item = &OutstandingPrefetch> + '_ {
        self.slots.iter().map(|(_, s)| s)
    }

    /// Mutable view of the occupied slots, in insertion order.
    pub(crate) fn slots_mut(&mut self) -> impl Iterator<Item = &mut OutstandingPrefetch> + '_ {
        self.slots.iter_mut().map(|(_, s)| s)
    }
}

/// Full runtime state of one simulated processor.
#[derive(Clone, Debug, Default)]
pub(crate) struct Proc {
    /// Local time (never behind the event that woke the processor).
    pub t: u64,
    /// Index of the next trace event to dispatch.
    pub cursor: usize,
    /// Access currently being retired, if any.
    pub pending: Option<PendingAccess>,
    /// Scheduling status.
    pub status: ProcStatus,
    /// Time the current blocking episode started (meaningful when blocked).
    pub block_start: u64,
    /// Timing and access counters.
    pub stats: ProcStats,
    /// Prefetch buffer: line → slot. Capacity enforced by the machine.
    pub outstanding: PrefetchWindow,
    /// The transaction this processor is stalled on when in `WaitMem`;
    /// completions wake the processor only when they match, so a stale
    /// completion can never resume a processor early.
    pub waiting_txn: Option<TxnId>,
    /// The lock hand-off / barrier release arrived while this processor was
    /// still finishing its spin read; consume it at spin-read retire instead
    /// of parking.
    pub early_release: bool,
}

impl Proc {
    /// Enters a blocked state at local time `t`.
    pub(crate) fn block(&mut self, status: ProcStatus) {
        debug_assert!(matches!(self.status, ProcStatus::Running), "blocking a non-running proc");
        self.status = status;
        self.block_start = self.t;
    }

    /// Resumes at global time `now`, accounting the stall.
    pub(crate) fn resume(&mut self, now: u64) {
        debug_assert!(
            !matches!(self.status, ProcStatus::Running | ProcStatus::Done),
            "resuming a non-blocked proc"
        );
        self.stats.stall_cycles += now.saturating_sub(self.block_start);
        self.status = ProcStatus::Running;
        if now > self.t {
            self.t = now;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use charlie_trace::Addr;

    #[test]
    fn block_resume_accounts_stall() {
        let mut p = Proc { t: 100, ..Proc::default() };
        p.block(ProcStatus::WaitMem);
        assert_eq!(p.status, ProcStatus::WaitMem);
        p.resume(150);
        assert_eq!(p.status, ProcStatus::Running);
        assert_eq!(p.stats.stall_cycles, 50);
        assert_eq!(p.t, 150);
    }

    #[test]
    fn resume_never_rewinds_time() {
        let mut p = Proc { t: 100, ..Proc::default() };
        p.block(ProcStatus::WaitLock);
        p.resume(90); // wake scheduled at an earlier global event; keep local time
        assert_eq!(p.t, 100);
        assert_eq!(p.stats.stall_cycles, 0);
    }

    #[test]
    fn pending_access_starts_uncounted() {
        let pa = PendingAccess::new(Access::read(Addr::new(4)), Purpose::Demand);
        assert!(!pa.counted);
        assert_eq!(pa.purpose, Purpose::Demand);
    }
}
