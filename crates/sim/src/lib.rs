//! Event-driven bus-based multiprocessor simulator — a reimplementation of
//! the "Charlie" simulator used by Tullsen & Eggers, *"Limitations of Cache
//! Prefetching on a Bus-Based Multiprocessor"* (ISCA 1993).
//!
//! The machine consists of:
//!
//! * one in-order processor per trace stream (1 cycle/instruction, 1 cycle
//!   per cache-hit data access);
//! * a private, copy-back, lockup-free data cache per processor (default
//!   32 KB direct-mapped, 32-byte blocks) kept coherent with the Illinois
//!   write-invalidate protocol;
//! * a 16-deep prefetch buffer per processor;
//! * a split-transaction memory subsystem: 100-cycle unloaded latency whose
//!   contended data-transfer portion (4–32 cycles) is arbitrated round-robin
//!   with demand requests favoured over prefetches;
//! * trace-level lock and barrier synchronization enforced in simulated-time
//!   order, generating realistic coherence traffic.
//!
//! The [`SimReport`] exposes the paper's complete metric set: total / CPU /
//! adjusted-CPU miss rates, the Figure-3 miss-source breakdown, false-sharing
//! miss counts, bus utilization, processor utilization, and demand-fill
//! latency histograms.
//!
//! Setting the `CHARLIE_DEBUG_EVENTS` environment variable makes the engine
//! print a progress line (event counts, processor cursors and states, bus
//! queue depth) every ~4M events — useful when diagnosing a run that seems
//! stuck. Setting `CHARLIE_NO_SNOOP_FILTER` disables the sharer-tracking
//! snoop filter (see [`sharers`]) and falls back to probing every cache on
//! each bus grant; results are bit-identical either way.
//!
//! Time-resolved observability — an interval sampler producing a per-window
//! [`Timeline`] and a structured JSONL trace emitter with category filters —
//! lives in [`sample`] and is attached through [`simulate_observed`].
//! `CHARLIE_DEBUG_LINE=<substr>` still works as a shorthand: it traces
//! coherence events for matching line addresses to stderr (now in the
//! structured JSONL format).
//!
//! # Example
//!
//! ```
//! use charlie_sim::{simulate, SimConfig};
//! use charlie_trace::{Addr, TraceBuilder};
//!
//! let mut b = TraceBuilder::new(2);
//! // P0 writes a line, P1 then reads it (after a barrier).
//! b.proc(0).work(10).write(Addr::new(0x100)).barrier(0);
//! b.proc(1).barrier(0).read(Addr::new(0x100));
//! let trace = b.build();
//!
//! let cfg = SimConfig { num_procs: 2, ..SimConfig::default() };
//! let report = simulate(&cfg, &trace)?;
//! assert!(report.cycles > 100); // at least one memory fill
//! # Ok::<(), charlie_sim::SimError>(())
//! ```

pub mod check;
mod config;
mod error;
mod machine;
mod metrics;
mod proc;
pub mod sample;
pub mod sampling;
pub mod sharers;
mod sync;
mod wheel;

pub use check::CoherenceViolation;
pub use config::{Protocol, SimConfig, BARRIER_REGION_BASE, LOCK_REGION_BASE};
pub use sharers::SharerTable;
pub use error::SimError;
pub use charlie_prefetch::{HwPrefetchConfig, HwPrefetcherKind};
pub use metrics::{
    HwPrefetchStats, LatencyStats, MissBreakdown, PrefetchStats, ProcStats, SimReport,
    LATENCY_BUCKET_BOUNDS,
};
pub use sample::{
    Observability, SampleConfig, Timeline, TraceCategories, TraceEmitter, WindowSample,
};
pub use sampling::{SamplePlan, SampledWindow, Schedule, WindowKind};

use charlie_trace::Trace;

/// Runs one simulation of `trace` on the machine described by `cfg`.
///
/// # Errors
///
/// Returns [`SimError`] if the trace fails validation, its processor count
/// does not match the configuration, or the machine deadlocks (which a
/// validated trace cannot cause).
pub fn simulate(cfg: &SimConfig, trace: &Trace) -> Result<SimReport, SimError> {
    Ok(machine::Machine::new(*cfg, trace)?.run()?.report)
}

/// [`simulate`], but additionally returns the number of scheduler events the
/// run processed — the denominator of the events/sec throughput metric the
/// benchmark harness records (see `charlie::bench`). The report is
/// bit-identical to [`simulate`]'s; the count is deterministic.
///
/// # Errors
///
/// Same failure modes as [`simulate`].
pub fn simulate_counted(cfg: &SimConfig, trace: &Trace) -> Result<(SimReport, u64), SimError> {
    let out = machine::Machine::new(*cfg, trace)?.run()?;
    Ok((out.report, out.events))
}

/// [`simulate`] with opt-in observability attachments (see
/// [`Observability`]): an interval sampler producing a per-window
/// [`Timeline`] and/or a structured JSONL [`TraceEmitter`]. With both
/// disabled (the default `Observability`) the report is bit-identical to
/// [`simulate`]'s and the timeline is `None`.
///
/// # Errors
///
/// Same failure modes as [`simulate`].
pub fn simulate_observed(
    cfg: &SimConfig,
    trace: &Trace,
    obs: Observability,
) -> Result<(SimReport, Option<Timeline>), SimError> {
    let out = machine::Machine::new_observed(*cfg, trace, obs)?.run()?;
    Ok((out.report, out.timeline))
}

/// [`simulate_observed`] on a caller-validated trace (the `Lab` batch path).
///
/// # Errors
///
/// Same failure modes as [`simulate_prevalidated`].
pub fn simulate_observed_prevalidated(
    cfg: &SimConfig,
    trace: &Trace,
    obs: Observability,
) -> Result<(SimReport, Option<Timeline>), SimError> {
    let out = machine::Machine::new_prevalidated_observed(*cfg, trace, obs)?.run()?;
    Ok((out.report, out.timeline))
}

/// [`simulate`] minus the upfront `trace.validate()` pass: the caller vouches
/// that `trace` already passed validation (e.g. a shared trace validated once
/// per batch instead of once per cell). Behaviour on an *invalid* trace is
/// unspecified but safe (typically [`SimError::Deadlock`] from unbalanced
/// synchronization).
///
/// # Errors
///
/// Same failure modes as [`simulate`] except [`SimError::InvalidTrace`].
pub fn simulate_prevalidated(cfg: &SimConfig, trace: &Trace) -> Result<SimReport, SimError> {
    Ok(machine::Machine::new_prevalidated(*cfg, trace)?.run()?.report)
}

/// [`simulate_counted`] on a caller-validated trace — the combination the
/// benchmark harness uses so its cells cost exactly what a `Lab` batch cell
/// costs.
///
/// # Errors
///
/// Same failure modes as [`simulate_prevalidated`].
pub fn simulate_counted_prevalidated(
    cfg: &SimConfig,
    trace: &Trace,
) -> Result<(SimReport, u64), SimError> {
    let out = machine::Machine::new_prevalidated(*cfg, trace)?.run()?;
    Ok((out.report, out.events))
}

/// The result of one sampled simulation pass: the (approximate) report, the
/// per-window records the estimator and phase clustering consume, and the
/// number of scheduler events processed (the sampled-speedup numerator).
#[derive(Clone, Debug)]
pub struct SampledRun {
    /// The machine's report. In sampled mode its timing mixes detailed and
    /// fast-forward windows — use the window records, not this, for
    /// estimates; its *functional* counters (misses, access mix) are exact.
    pub report: SimReport,
    /// One record per access window, in order, tagged Fast/Warm/Detailed.
    pub windows: Vec<SampledWindow>,
    /// Scheduler events processed.
    pub events: u64,
}

/// Runs `trace` under sampled simulation: windows execute detailed or
/// functional-fast-forward according to `plan` (see [`SamplePlan`]), and one
/// [`SampledWindow`] is recorded per window. The machine's functional state
/// (caches, coherence, synchronization order) is maintained exactly in every
/// mode; only timing fidelity varies by window kind.
///
/// The configuration must have `warmup_accesses == 0`: sampled runs replace
/// the statistics warm-up with warm windows.
///
/// # Errors
///
/// Same failure modes as [`simulate`], plus [`SimError::InvalidTrace`]-style
/// validation of the plan itself (degenerate plans are rejected).
pub fn simulate_sampled(
    cfg: &SimConfig,
    trace: &Trace,
    plan: &SamplePlan,
) -> Result<SampledRun, SimError> {
    plan.validate().map_err(SimError::InvalidSamplePlan)?;
    if cfg.warmup_accesses != 0 {
        return Err(SimError::InvalidSamplePlan(
            "sampled simulation requires warmup_accesses == 0 (warm windows replace it)".into(),
        ));
    }
    let out = machine::Machine::new(*cfg, trace)?.with_plan(plan.clone()).run()?;
    Ok(SampledRun { report: out.report, windows: out.windows, events: out.events })
}

/// [`simulate_sampled`] on a caller-validated trace (the batch path).
///
/// # Errors
///
/// Same failure modes as [`simulate_sampled`] except trace validation.
pub fn simulate_sampled_prevalidated(
    cfg: &SimConfig,
    trace: &Trace,
    plan: &SamplePlan,
) -> Result<SampledRun, SimError> {
    plan.validate().map_err(SimError::InvalidSamplePlan)?;
    if cfg.warmup_accesses != 0 {
        return Err(SimError::InvalidSamplePlan(
            "sampled simulation requires warmup_accesses == 0 (warm windows replace it)".into(),
        ));
    }
    let out = machine::Machine::new_prevalidated(*cfg, trace)?.with_plan(plan.clone()).run()?;
    Ok(SampledRun { report: out.report, windows: out.windows, events: out.events })
}

#[cfg(test)]
mod tests {
    use super::*;
    use charlie_trace::{Addr, TraceBuilder};

    fn cfg(n: usize) -> SimConfig {
        SimConfig { num_procs: n, ..SimConfig::default() }
    }

    /// One processor, one read: a cold miss costing ~100 cycles.
    #[test]
    fn single_cold_miss_costs_total_latency() {
        let mut b = TraceBuilder::new(1);
        b.proc(0).read(Addr::new(0x100));
        let r = simulate(&cfg(1), &b.build()).unwrap();
        assert_eq!(r.miss.cpu_misses(), 1);
        assert_eq!(r.miss.non_sharing_not_prefetched, 1);
        assert_eq!(r.reads, 1);
        // unloaded: 100 (fill) + 2 (instruction + data cycle on retire)
        assert_eq!(r.cycles, 102);
        assert_eq!(r.bus.reads, 1);
    }

    #[test]
    fn hit_after_fill_is_fast() {
        let mut b = TraceBuilder::new(1);
        b.proc(0).read(Addr::new(0x100)).read(Addr::new(0x104)).read(Addr::new(0x11c));
        let r = simulate(&cfg(1), &b.build()).unwrap();
        assert_eq!(r.miss.cpu_misses(), 1);
        assert_eq!(r.reads, 3);
        assert_eq!(r.cycles, 106); // 100 + 3 × 2-cycle hit retires
    }

    #[test]
    fn work_advances_time_without_traffic() {
        let mut b = TraceBuilder::new(1);
        b.proc(0).work(500);
        let r = simulate(&cfg(1), &b.build()).unwrap();
        assert_eq!(r.cycles, 500);
        assert_eq!(r.bus.total_ops(), 0);
        assert!((r.avg_processor_utilization() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn write_miss_uses_read_exclusive() {
        let mut b = TraceBuilder::new(1);
        b.proc(0).write(Addr::new(0x100));
        let r = simulate(&cfg(1), &b.build()).unwrap();
        assert_eq!(r.bus.read_exclusives, 1);
        assert_eq!(r.bus.reads, 0);
        assert_eq!(r.writes, 1);
    }

    /// Illinois: read fill with no other holder is private-clean, so a
    /// subsequent write needs no upgrade.
    #[test]
    fn illinois_private_clean_write_is_silent() {
        let mut b = TraceBuilder::new(1);
        b.proc(0).read(Addr::new(0x100)).write(Addr::new(0x104));
        let r = simulate(&cfg(1), &b.build()).unwrap();
        assert_eq!(r.upgrades, 0);
        assert_eq!(r.bus.total_ops(), 1);
    }

    /// Two processors read-share, then one writes: upgrade + invalidation
    /// miss on the other side.
    #[test]
    fn upgrade_and_invalidation_miss() {
        let mut b = TraceBuilder::new(2);
        b.proc(0).read(Addr::new(0x100)).barrier(0).write(Addr::new(0x100)).barrier(1);
        b.proc(1).read(Addr::new(0x100)).barrier(0).barrier(1).read(Addr::new(0x100));
        let r = simulate(&cfg(2), &b.build()).unwrap();
        // At least the data-line upgrade; barrier flag writes may add more.
        assert!(r.upgrades >= 1, "write hit on shared line upgrades");
        // P1's final read: tags match, state invalid → invalidation miss.
        assert!(r.miss.invalidation() >= 1);
        // Same word written as read → true sharing, not false sharing.
        assert_eq!(r.false_sharing_misses, 0);
    }

    /// False sharing: P0 writes word 0, P1 was using word 7 of the same line.
    #[test]
    fn false_sharing_is_detected() {
        let mut b = TraceBuilder::new(2);
        b.proc(0).read(Addr::new(0x11c)).barrier(0).write(Addr::new(0x100)).barrier(1);
        b.proc(1).read(Addr::new(0x11c)).barrier(0).barrier(1).read(Addr::new(0x11c));
        let r = simulate(&cfg(2), &b.build()).unwrap();
        assert!(r.miss.invalidation() >= 1);
        assert!(r.false_sharing_misses >= 1, "remote write to an untouched word");
    }

    /// A prefetch hides the fill latency: the demand access hits.
    #[test]
    fn prefetch_hides_latency() {
        let mut b = TraceBuilder::new(1);
        b.proc(0).prefetch(Addr::new(0x100)).work(150).read(Addr::new(0x100));
        let r = simulate(&cfg(1), &b.build()).unwrap();
        assert_eq!(r.miss.cpu_misses(), 0, "demand access must hit");
        assert_eq!(r.prefetch.fills, 1);
        assert_eq!(r.cycles, 153); // 1 (prefetch) + 150 (work) + 2 (hit)
    }

    /// Too-late prefetch: demand access arrives while the prefetch is still
    /// in flight → prefetch-in-progress miss, paying only the remainder.
    #[test]
    fn prefetch_in_progress_pays_remainder() {
        let mut b = TraceBuilder::new(1);
        b.proc(0).prefetch(Addr::new(0x100)).work(50).read(Addr::new(0x100));
        let r = simulate(&cfg(1), &b.build()).unwrap();
        assert_eq!(r.miss.prefetch_in_progress, 1);
        assert_eq!(r.miss.adjusted_cpu_misses(), 0);
        // Fill completes at 101 (issued at t=1); read retires at 103.
        assert_eq!(r.cycles, 103);
        assert!(r.cycles < 1 + 50 + 101, "must be cheaper than a full miss");
    }

    /// A prefetched-but-unused line invalidated by a remote write shows up
    /// in the invalidation-prefetched miss category.
    #[test]
    fn invalidated_prefetch_classified() {
        let mut b = TraceBuilder::new(2);
        b.proc(0).prefetch(Addr::new(0x100)).work(200).barrier(0).work(200).read(Addr::new(0x100));
        b.proc(1).work(10).barrier(0).write(Addr::new(0x100));
        let r = simulate(&cfg(2), &b.build()).unwrap();
        assert_eq!(r.prefetch.wasted_invalidated, 1);
        assert_eq!(r.miss.invalidation_prefetched, 1);
    }

    /// Prefetched line replaced before use (conflict with a demand fill).
    #[test]
    fn evicted_prefetch_classified() {
        let mut b = TraceBuilder::new(1);
        // 0x100 and 0x8100 conflict in a 32 KB direct-mapped cache.
        b.proc(0)
            .prefetch(Addr::new(0x100))
            .work(200)
            .read(Addr::new(0x8100))
            .read(Addr::new(0x100));
        let r = simulate(&cfg(1), &b.build()).unwrap();
        assert_eq!(r.prefetch.wasted_evicted, 1);
        assert_eq!(r.miss.non_sharing_prefetched, 1, "miss on the killed prefetch");
        assert_eq!(r.miss.non_sharing_not_prefetched, 1, "the conflicting demand miss");
    }

    /// Exclusive prefetch invalidates the remote copy at grant time.
    #[test]
    fn exclusive_prefetch_invalidates_remote() {
        let mut b = TraceBuilder::new(2);
        b.proc(0).read(Addr::new(0x100)).barrier(0).work(300).read(Addr::new(0x100));
        b.proc(1).barrier(0).prefetch_exclusive(Addr::new(0x100)).work(300).barrier(1);
        b.proc(0).barrier(1);
        let r = simulate(&cfg(2), &b.build()).unwrap();
        // P0's second read finds its line invalidated by the exclusive
        // prefetch.
        assert!(r.miss.invalidation() >= 1);
    }

    /// Lock hand-off serializes the critical sections.
    #[test]
    fn locks_serialize() {
        let mut b = TraceBuilder::new(2);
        for p in 0..2 {
            b.proc(p).lock(0).work(1000).write(Addr::new(0x500)).unlock(0);
        }
        let r = simulate(&cfg(2), &b.build()).unwrap();
        // Two serialized 1000-cycle critical sections.
        assert!(r.cycles > 2000, "critical sections must serialize, got {}", r.cycles);
    }

    /// Barrier keeps a fast processor waiting for a slow one.
    #[test]
    fn barrier_synchronizes() {
        let mut b = TraceBuilder::new(2);
        b.proc(0).work(10).barrier(0).work(5);
        b.proc(1).work(5000).barrier(0).work(5);
        let r = simulate(&cfg(2), &b.build()).unwrap();
        let f0 = r.per_proc[0].finish_time;
        let f1 = r.per_proc[1].finish_time;
        assert!(f0 >= 5000, "P0 must wait at the barrier (finished {f0})");
        assert!((f0 as i64 - f1 as i64).abs() < 500);
        assert!(r.per_proc[0].stall_cycles >= 4000);
    }

    /// Prefetch buffer depth limits outstanding prefetches.
    #[test]
    fn prefetch_buffer_fills_up() {
        let mut cfg2 = cfg(1);
        cfg2.prefetch_buffer_depth = 2;
        let mut b = TraceBuilder::new(1);
        let mut pb = b.proc(0);
        for i in 0..4u64 {
            pb.prefetch(Addr::new(0x1000 + i * 32));
        }
        pb.work(1000);
        let r = simulate(&cfg2, &b.build()).unwrap();
        assert!(r.prefetch.buffer_stalls >= 1, "4 prefetches through a 2-deep buffer must stall");
        assert_eq!(r.prefetch.fills, 4);
    }

    /// Duplicate prefetches and prefetches of resident lines are dropped.
    #[test]
    fn redundant_prefetches_dropped() {
        let mut b = TraceBuilder::new(1);
        b.proc(0)
            .read(Addr::new(0x100)) // brings the line in
            .prefetch(Addr::new(0x104)) // resident → dropped
            .prefetch(Addr::new(0x200))
            .prefetch(Addr::new(0x204)) // duplicate of in-flight → dropped
            .work(300);
        let r = simulate(&cfg(1), &b.build()).unwrap();
        assert_eq!(r.prefetch.executed, 3);
        assert_eq!(r.prefetch.hits, 1);
        assert_eq!(r.prefetch.duplicates, 1);
        assert_eq!(r.prefetch.fills, 1);
    }

    /// Dirty eviction produces a write-back bus operation.
    #[test]
    fn dirty_eviction_writes_back() {
        let mut b = TraceBuilder::new(1);
        b.proc(0).write(Addr::new(0x100)).read(Addr::new(0x8100)).work(200);
        let r = simulate(&cfg(1), &b.build()).unwrap();
        assert_eq!(r.bus.writebacks, 1);
    }

    /// Reports are deterministic.
    #[test]
    fn deterministic_across_runs() {
        let mut b = TraceBuilder::new(2);
        for p in 0..2 {
            b.proc(p).lock(0).write(Addr::new(0x100)).unlock(0).barrier(0).read(Addr::new(0x200));
        }
        let t = b.build();
        let r1 = simulate(&cfg(2), &t).unwrap();
        let r2 = simulate(&cfg(2), &t).unwrap();
        assert_eq!(r1, r2);
    }

    #[test]
    fn rejects_proc_count_mismatch() {
        let t = TraceBuilder::new(2).build();
        assert!(matches!(
            simulate(&cfg(3), &t),
            Err(SimError::ProcCountMismatch { config: 3, trace: 2 })
        ));
    }

    #[test]
    fn rejects_invalid_trace() {
        let mut b = TraceBuilder::new(1);
        b.proc(0).unlock(7);
        assert!(matches!(simulate(&cfg(1), &b.build()), Err(SimError::InvalidTrace(_))));
    }

    /// Empty trace completes immediately.
    #[test]
    fn empty_trace_is_fine() {
        let t = TraceBuilder::new(2).build();
        let r = simulate(&cfg(2), &t).unwrap();
        assert_eq!(r.cycles, 0);
        assert_eq!(r.demand_accesses(), 0);
    }

    /// Cache-to-cache: a dirty line read by another processor is supplied
    /// and both end up shared; the reader's later write upgrades.
    #[test]
    fn dirty_supply_downgrades_owner() {
        let mut b = TraceBuilder::new(2);
        b.proc(0).write(Addr::new(0x100)).barrier(0).work(500).write(Addr::new(0x100));
        b.proc(1).barrier(0).read(Addr::new(0x100)).work(500);
        let r = simulate(&cfg(2), &b.build()).unwrap();
        // P0's second write is a hit on a now-shared line → upgrade.
        assert_eq!(r.upgrades, 1);
    }

    /// Racing upgrades: two processors write the same shared line at the
    /// same moment; the bus serializes them, the loser's upgrade aborts (its
    /// line was invalidated while queued) and retries as a miss.
    #[test]
    fn racing_upgrades_abort_cleanly() {
        let mut b = TraceBuilder::new(2);
        for p in 0..2 {
            // Both read (line becomes shared), sync up, then both write
            // simultaneously.
            b.proc(p).read(Addr::new(0x100)).barrier(0).write(Addr::new(0x104 + p as u64 * 8));
        }
        let r = simulate(&cfg(2), &b.build()).unwrap();
        // One write wins the upgrade; the loser either aborted its queued
        // upgrade or missed outright after the winner's invalidation. (The
        // barrier release adds one more invalidation miss on the flag line.)
        assert!(r.upgrades >= 1);
        assert!(
            r.upgrades_aborted >= 1 || r.miss.invalidation() >= 2,
            "the loser must pay: aborted={} inval={}",
            r.upgrades_aborted,
            r.miss.invalidation()
        );
        assert_eq!(r.writes, 2 + 3, "both stores retire (plus 3 barrier sync writes)");
        // And the whole machine still balances.
        assert_eq!(
            r.bus.reads + r.bus.read_exclusives,
            r.miss.adjusted_cpu_misses() + r.prefetch.fills + r.demand_refills
        );
    }

    /// Fill-latency accounting: an unloaded fill takes exactly the 100-cycle
    /// total latency; contention pushes the mean above it.
    #[test]
    fn fill_latency_measures_queueing() {
        let mut b = TraceBuilder::new(1);
        b.proc(0).read(Addr::new(0x100));
        let r = simulate(&cfg(1), &b.build()).unwrap();
        assert_eq!(r.fill_latency.count(), 1);
        assert_eq!(r.fill_latency.min(), Some(100));
        assert_eq!(r.fill_latency.max(), Some(100));

        // Eight processors streaming on a slow bus: queueing dominates.
        let mut b = TraceBuilder::new(8);
        for p in 0..8 {
            let mut pb = b.proc(p);
            for i in 0..40u64 {
                pb.read(Addr::new(0x10_0000 * (p as u64 + 1) + i * 32));
            }
        }
        let crowded = simulate(&SimConfig::paper(8, 32), &b.build()).unwrap();
        assert!(
            crowded.fill_latency.mean() > 130.0,
            "queueing must raise the mean latency, got {:.1}",
            crowded.fill_latency.mean()
        );
        assert_eq!(crowded.fill_latency.count(), 8 * 40);
    }

    /// Write-update protocol: invalidation misses disappear entirely; the
    /// cost moves to word-broadcast bus traffic.
    #[test]
    fn write_update_eliminates_invalidation_misses() {
        let mk = || {
            let mut b = TraceBuilder::new(2);
            // Classic invalidation ping-pong: P0 writes, P1 reads, repeat.
            for round in 0..20u32 {
                b.proc(0).write(Addr::new(0x100)).work(50).barrier(2 * round);
                b.proc(1).work(10).barrier(2 * round);
                b.proc(1).read(Addr::new(0x100)).work(50).barrier(2 * round + 1);
                b.proc(0).work(10).barrier(2 * round + 1);
            }
            b.build()
        };
        let inval = simulate(&cfg(2), &mk()).unwrap();
        assert!(inval.miss.invalidation() >= 15, "ping-pong causes invalidation misses");

        let mut ucfg = cfg(2);
        ucfg.protocol = Protocol::WriteUpdate;
        let update = simulate(&ucfg, &mk()).unwrap();
        assert_eq!(update.miss.invalidation(), 0, "no invalidations under write-update");
        assert_eq!(update.false_sharing_misses, 0);
        assert!(
            update.upgrades > inval.upgrades,
            "every shared write broadcasts ({} vs {})",
            update.upgrades,
            inval.upgrades
        );
        assert!(update.cycles < inval.cycles, "ping-pong reads now hit");
    }

    /// Write-update: a processor that becomes the only holder takes
    /// exclusive ownership and stops broadcasting.
    #[test]
    fn write_update_sole_owner_goes_silent() {
        let mut ucfg = cfg(1);
        ucfg.protocol = Protocol::WriteUpdate;
        let mut b = TraceBuilder::new(1);
        b.proc(0).read(Addr::new(0x100)).write(Addr::new(0x100)).write(Addr::new(0x104));
        let r = simulate(&ucfg, &b.build()).unwrap();
        // Sole holder: the read fills private-clean, writes are silent.
        assert_eq!(r.upgrades, 0);
        assert_eq!(r.bus.total_ops(), 1);
    }

    /// Victim buffer: a conflict-evicted line is recalled cheaply instead of
    /// refetched from memory.
    #[test]
    fn victim_buffer_catches_conflicts() {
        let mk = || {
            let mut b = TraceBuilder::new(1);
            // 0x0 and 0x8000 alias in a 32 KB direct-mapped cache; ping-pong.
            let mut p = b.proc(0);
            for _ in 0..50 {
                p.read(Addr::new(0x0)).read(Addr::new(0x8000));
            }
            b.build()
        };
        let plain = simulate(&cfg(1), &mk()).unwrap();
        assert!(plain.miss.cpu_misses() >= 99, "ping-pong misses every time");
        assert_eq!(plain.victim_hits, 0);

        let mut vcfg = cfg(1);
        vcfg.victim_entries = 4;
        let with_victim = simulate(&vcfg, &mk()).unwrap();
        assert_eq!(with_victim.miss.cpu_misses(), 2, "only the two cold misses remain");
        assert!(with_victim.victim_hits >= 98);
        assert!(with_victim.cycles < plain.cycles / 4, "victim swaps are cheap");
    }

    /// Victim-buffered lines stay coherent: a remote write must invalidate
    /// them (the later local access misses and refetches).
    #[test]
    fn victim_buffer_is_coherent() {
        let mut vcfg = cfg(2);
        vcfg.victim_entries = 4;
        let mut b = TraceBuilder::new(2);
        b.proc(0)
            .read(Addr::new(0x0)) // cache 0x0...
            .read(Addr::new(0x8000)) // ...evict it to the victim buffer
            .barrier(0)
            .work(300)
            .read(Addr::new(0x4)); // stale victim copy must NOT satisfy this
        b.proc(1).barrier(0).write(Addr::new(0x0)).work(300);
        let r = simulate(&vcfg, &b.build()).unwrap();
        // The remote write must drop the buffered copy: P0's final read may
        // not be served from the victim buffer (that would read stale data),
        // and it misses as non-sharing (the dropped entry leaves no ghost).
        assert_eq!(r.victim_hits, 0, "stale victim copy must not satisfy the read");
        assert!(r.miss.non_sharing() >= 3, "the final read refetches from memory");
    }

    /// Warm-up windowing: cold misses are excluded from the measured rates
    /// while execution time still covers the whole run.
    #[test]
    fn warmup_excludes_cold_misses() {
        // 64 lines touched twice: cold pass (64 misses) then a warm pass.
        let mut b = TraceBuilder::new(1);
        {
            let mut p = b.proc(0);
            for pass in 0..2 {
                for i in 0..64u64 {
                    p.work(3).read(Addr::new(0x4000 + i * 32));
                }
                let _ = pass;
            }
        }
        let t = b.build();
        let cold = simulate(&cfg(1), &t).unwrap();
        assert_eq!(cold.miss.cpu_misses(), 64);

        let mut warm_cfg = cfg(1);
        warm_cfg.warmup_accesses = 64;
        let warm = simulate(&warm_cfg, &t).unwrap();
        assert_eq!(warm.miss.cpu_misses(), 0, "second pass is all hits");
        assert_eq!(warm.demand_accesses(), 64, "only the measured window counts");
        assert_eq!(warm.cycles, cold.cycles, "execution time covers the whole run");
        assert!(warm.measured_from > 0);
        assert!(
            warm.avg_processor_utilization() > 0.9,
            "steady state is all hits: util {:.2}",
            warm.avg_processor_utilization()
        );
        assert_eq!(warm.bus.total_ops(), 0, "bus stats reset at the boundary");
    }

    /// Contention: many processors missing simultaneously queue on the bus,
    /// so average miss latency exceeds the unloaded 100 cycles.
    #[test]
    fn bus_contention_stretches_execution() {
        let n = 8;
        let mk = |procs: usize| {
            let mut b = TraceBuilder::new(procs);
            for p in 0..procs {
                let mut pb = b.proc(p);
                for i in 0..50u64 {
                    // Distinct private lines per processor: pure capacity traffic.
                    pb.read(Addr::new(0x10_0000 * (p as u64 + 1) + i * 32));
                }
            }
            b.build()
        };
        let solo = simulate(&cfg(1), &mk(1)).unwrap();
        let crowd = simulate(&SimConfig::paper(n, 32), &mk(n)).unwrap();
        assert!(
            crowd.cycles > solo.cycles,
            "8 procs on a slow bus ({}) must be slower than 1 proc on a fast one ({})",
            crowd.cycles,
            solo.cycles
        );
        assert!(crowd.bus_utilization() > 0.5);
    }

    fn watchdog_trace() -> Trace {
        let mut b = TraceBuilder::new(2);
        for p in 0..2 {
            let mut pb = b.proc(p);
            for i in 0..200u64 {
                pb.work(2).read(Addr::new(0x1000 + i * 32)).write(Addr::new(0x9000));
            }
        }
        b.build()
    }

    /// Watchdog: a tiny event budget aborts with last-progress diagnostics.
    #[test]
    fn watchdog_trips_with_progress_metrics() {
        let mut wcfg = cfg(2);
        wcfg.max_events = 50;
        match simulate(&wcfg, &watchdog_trace()) {
            Err(SimError::BudgetExceeded { events, cycles, retired, blocked }) => {
                assert!(events > 50);
                assert!(cycles > 0);
                assert!(retired > 0, "some trace events retire before the budget trips");
                let _ = blocked;
            }
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
    }

    /// The watchdog trips at the same event deterministically, so a re-run
    /// reproduces the exact same diagnostic.
    #[test]
    fn watchdog_is_deterministic() {
        let mut wcfg = cfg(2);
        wcfg.max_events = 123;
        let t = watchdog_trace();
        let a = simulate(&wcfg, &t).unwrap_err();
        let b = simulate(&wcfg, &t).unwrap_err();
        assert_eq!(a, b);
    }

    /// An ample budget must not perturb the run in any way: the report is
    /// bit-identical to an unbudgeted one.
    #[test]
    fn ample_budget_changes_nothing() {
        let t = watchdog_trace();
        let plain = simulate(&cfg(2), &t).unwrap();
        let mut wcfg = cfg(2);
        wcfg.max_events = 100_000_000;
        let budgeted = simulate(&wcfg, &t).unwrap();
        assert_eq!(plain, budgeted);
    }

    /// The wall-clock watchdog aborts a run that outlives its limit. A 1 ms
    /// limit against a trace large enough to need far longer (every access
    /// contends for one hot line, and debug builds run the invariant checker
    /// per transaction) trips reliably; the exact event count is timing-
    /// dependent, so only the error's shape is asserted.
    #[test]
    fn wall_clock_watchdog_trips() {
        let procs = 4;
        let mut b = TraceBuilder::new(procs);
        for p in 0..procs {
            let mut pb = b.proc(p);
            for i in 0..6000u64 {
                pb.read(Addr::new(0x1000 + (i % 64) * 32)).write(Addr::new(0x9000));
            }
        }
        let mut wcfg = SimConfig::paper(procs, 8);
        wcfg.wall_limit_ms = 1;
        match simulate(&wcfg, &b.build()) {
            Err(SimError::WallClockExceeded { limit_ms, events, .. }) => {
                assert_eq!(limit_ms, 1);
                assert!(events >= 4096, "first check happens at event 4096, got {events}");
            }
            other => panic!("expected WallClockExceeded, got {other:?}"),
        }
    }

    /// An ample wall-clock limit must not perturb the run: the report is
    /// bit-identical to an unlimited one.
    #[test]
    fn ample_wall_limit_changes_nothing() {
        let t = watchdog_trace();
        let plain = simulate(&cfg(2), &t).unwrap();
        let mut wcfg = cfg(2);
        wcfg.wall_limit_ms = 600_000;
        let limited = simulate(&wcfg, &t).unwrap();
        assert_eq!(plain, limited);
    }

    /// Invariant checking enabled explicitly: a healthy run passes and the
    /// report is bit-identical to an unchecked one (the checker only reads).
    #[test]
    fn invariant_checker_passes_healthy_runs_unchanged() {
        let mut b = TraceBuilder::new(4);
        for p in 0..4usize {
            let mut pb = b.proc(p);
            // Shared reads, private writes, prefetches, and a lock: exercise
            // every state transition under the checker's eye.
            for i in 0..50u64 {
                pb.work(1)
                    .read(Addr::new(0x2000 + i * 32))
                    .prefetch(Addr::new(0x4000 + (p as u64) * 0x1000 + i * 32))
                    .write(Addr::new(0x8000 + (p as u64) * 0x40));
            }
            pb.lock(0).write(Addr::new(0x600)).unlock(0).barrier(0);
        }
        let t = b.build();
        let plain = simulate(&cfg(4), &t).unwrap();
        let mut ccfg = cfg(4);
        ccfg.check_invariants = true;
        let checked = simulate(&ccfg, &t).unwrap();
        assert_eq!(plain, checked);
    }

    /// Tiny deterministic generator for the warm-up regression workloads
    /// (not a statistical RNG — just a reproducible mixer).
    struct Lcg(u64);
    impl Lcg {
        fn seeded(seed: u64) -> Self {
            Lcg(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1))
        }
        fn next(&mut self) -> u64 {
            self.0 =
                self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            self.0 >> 33
        }
        fn pick(&mut self, n: u64) -> u64 {
            self.next() % n
        }
    }

    /// A contended workload mixing all four bus-occupancy shapes: shared-line
    /// writes (2-cycle upgrades), reads of remote-dirty lines (reflective
    /// write-backs), private conflict writes (fills + eviction write-backs),
    /// and think-time jitter that desynchronizes retires from bus grants.
    fn contended_mixed_trace(seed: u64) -> (usize, Trace) {
        let mut rng = Lcg::seeded(seed);
        let n = [2usize, 4, 8][rng.pick(3) as usize];
        let accesses = 30 + rng.pick(50);
        let mut b = TraceBuilder::new(n);
        for p in 0..n {
            let mut pb = b.proc(p);
            for _ in 0..accesses {
                match rng.pick(10) {
                    0..=2 => {
                        pb.write(Addr::new(0x2000 + rng.pick(8) * 32));
                    }
                    3..=4 => {
                        pb.read(Addr::new(0x2000 + rng.pick(8) * 32));
                    }
                    5..=8 => {
                        pb.write(Addr::new(0x100_0000 * (p as u64 + 1) + rng.pick(6) * 0x8000));
                    }
                    _ => {
                        pb.work(1 + rng.pick(5) as u32);
                    }
                }
            }
        }
        (n, b.build())
    }

    /// Regression for the warm-up measurement-window bug: however late the
    /// measured window opens, reported bus utilization must stay ≤ 1.0.
    /// Before bus-side window clipping and the trailing-occupancy
    /// adjustment, a grant whose occupancy straddled `cycles` (a posted
    /// write-back completing after the last retire) was counted in full
    /// against a short measured window. With a 2-cycle upgrade at the
    /// window-opening retire (instead of a symmetric 32-cycle transfer) the
    /// over- and under-count no longer cancel, and these seeds reported
    /// utilizations up to 1.07.
    #[test]
    fn warmup_bus_utilization_never_exceeds_one() {
        let mut busiest = 0.0f64;
        for seed in [0u64, 12, 17] {
            let (n, t) = contended_mixed_trace(seed);
            let base = simulate(&SimConfig::paper(n, 32), &t).unwrap();
            let total = base.reads + base.writes;
            for tail in 1..15u64.min(total) {
                let mut wcfg = SimConfig::paper(n, 32);
                wcfg.warmup_accesses = total - tail;
                let r = simulate(&wcfg, &t).unwrap();
                let util = r.bus_utilization();
                assert!(
                    util <= 1.0,
                    "seed {seed} tail {tail}: utilization can never exceed 1.0, got {util:.4}"
                );
                busiest = busiest.max(util);
            }
        }
        assert!(busiest > 0.5, "tail windows should see real contention: {busiest:.3}");
    }

    /// The interval sampler is an observer: with sampling on, the report is
    /// bit-identical to an unsampled run, and the timeline's window deltas
    /// sum back to the final counters.
    #[test]
    fn sampling_does_not_perturb_reports() {
        let t = watchdog_trace();
        let plain = simulate(&cfg(2), &t).unwrap();
        let (observed, timeline) =
            simulate_observed(&cfg(2), &t, Observability::sampled(500)).unwrap();
        assert_eq!(plain, observed, "sampling must not perturb the simulation");
        let tl = timeline.expect("sampling was enabled");
        assert!(!tl.windows.is_empty());
        assert_eq!(tl.total_bus_busy(), observed.bus.busy_cycles);
        assert_eq!(tl.total_accesses(), observed.demand_accesses());
        // Windows tile the run: contiguous, ending at the final cycle.
        for pair in tl.windows.windows(2) {
            assert_eq!(pair[0].end, pair[1].start);
        }
        assert_eq!(tl.windows.first().unwrap().start, 0);
        assert_eq!(tl.windows.last().unwrap().end, observed.cycles);
        // Default observability: no sampler, no timeline.
        let (unobserved, none) =
            simulate_observed(&cfg(2), &t, Observability::default()).unwrap();
        assert_eq!(plain, unobserved);
        assert!(none.is_none());
    }

    /// Sampling composes with warm-up: the sampler rebases when the window
    /// opens, so the timeline covers exactly `measured_from..cycles` and its
    /// sums match the windowed counters.
    #[test]
    fn sampling_rebases_at_warmup_boundary() {
        let mut b = TraceBuilder::new(1);
        {
            let mut p = b.proc(0);
            for _pass in 0..2 {
                for i in 0..64u64 {
                    p.work(3).read(Addr::new(0x4000 + i * 32));
                }
            }
        }
        let t = b.build();
        let mut warm_cfg = cfg(1);
        warm_cfg.warmup_accesses = 64;
        let plain = simulate(&warm_cfg, &t).unwrap();
        let (observed, timeline) =
            simulate_observed(&warm_cfg, &t, Observability::sampled(50)).unwrap();
        assert_eq!(plain, observed);
        let tl = timeline.expect("sampling was enabled");
        assert_eq!(
            tl.windows.first().unwrap().start,
            observed.measured_from,
            "warm-up windows are discarded at the rebase"
        );
        assert_eq!(tl.windows.last().unwrap().end, observed.cycles);
        assert_eq!(tl.total_accesses(), observed.demand_accesses());
        let busy_sum: u64 = tl.windows.iter().map(|w| w.proc_busy_cycles).sum();
        let busy_final: u64 = observed.per_proc.iter().map(|p| p.busy_cycles).sum();
        assert_eq!(busy_sum, busy_final);
    }

    /// A disabled hardware prefetcher (kind Off, or any kind at degree 0) is
    /// the zero-cost path: reports are bit-identical to the default config
    /// and the hardware counters stay empty.
    #[test]
    fn hw_prefetch_off_is_bit_identical() {
        let (n, t) = contended_mixed_trace(7);
        let plain = simulate(&SimConfig::paper(n, 32), &t).unwrap();
        assert!(plain.hw_prefetch.is_empty());
        for off in [
            HwPrefetchConfig::OFF,
            HwPrefetchConfig { kind: HwPrefetcherKind::Stride, degree: 0, distance: 4 },
            HwPrefetchConfig { kind: HwPrefetcherKind::Markov, degree: 0, distance: 0 },
        ] {
            let mut hcfg = SimConfig::paper(n, 32);
            hcfg.hw_prefetch = off;
            let r = simulate(&hcfg, &t).unwrap();
            assert_eq!(plain, r, "disabled hw prefetcher must not perturb anything ({off})");
        }
    }

    /// A stride prefetcher on a pure sequential stream covers most misses
    /// and speeds the run up; the accuracy accounting stays exact.
    #[test]
    fn hw_stride_covers_sequential_stream() {
        let mut b = TraceBuilder::new(1);
        {
            let mut p = b.proc(0);
            for i in 0..200u64 {
                p.work(20).read(Addr::new(0x10_0000 + i * 32));
            }
        }
        let t = b.build();
        let plain = simulate(&cfg(1), &t).unwrap();
        assert_eq!(plain.miss.cpu_misses(), 200, "every line is cold without prefetching");

        let mut hcfg = cfg(1);
        hcfg.hw_prefetch = HwPrefetchConfig::stride(2, 4);
        let r = simulate(&hcfg, &t).unwrap();
        assert!(r.hw_prefetch.issued > 100, "the stream trains the stride table");
        assert!(
            r.hw_prefetch.covered() > r.hw_prefetch.issued / 2,
            "most prefetches are demanded: {:?}",
            r.hw_prefetch
        );
        assert_eq!(
            r.hw_prefetch.useful + r.hw_prefetch.late + r.hw_prefetch.useless,
            r.hw_prefetch.issued,
            "every issued hardware prefetch is classified exactly once"
        );
        assert!(
            r.miss.adjusted_cpu_misses() < plain.miss.cpu_misses() / 2,
            "coverage must cut the adjusted miss count: {} vs {}",
            r.miss.adjusted_cpu_misses(),
            plain.miss.cpu_misses()
        );
        assert!(r.cycles < plain.cycles, "hidden latency shortens the run");
    }

    /// Every hardware prefetcher keeps both the accuracy identity and the
    /// machine-wide bus-balance identity on contended multi-processor
    /// workloads (which exercise invalidation and eviction of unused
    /// hardware fills), with and without a warm-up window.
    #[test]
    fn hw_prefetchers_keep_accounting_identities() {
        for kind in HwPrefetcherKind::ONLINE {
            for seed in [0u64, 12, 17] {
                let (n, t) = contended_mixed_trace(seed);
                let mut hcfg = SimConfig::paper(n, 32);
                hcfg.hw_prefetch =
                    HwPrefetchConfig { kind, degree: 2, distance: 4 };
                for warmup in [0u64, 40] {
                    hcfg.warmup_accesses = warmup;
                    let r = simulate(&hcfg, &t).unwrap();
                    let h = r.hw_prefetch;
                    assert_eq!(
                        h.useful + h.late + h.useless,
                        h.issued,
                        "{kind:?} seed {seed} warmup {warmup}: classification must partition {h:?}"
                    );
                    // The bus-balance identity is exact only without a
                    // warm-up window (fills issued before but granted after
                    // the boundary smear the windowed counters).
                    if warmup == 0 {
                        assert_eq!(
                            r.bus.reads + r.bus.read_exclusives,
                            r.miss.adjusted_cpu_misses() + r.prefetch.fills + r.demand_refills,
                            "{kind:?} seed {seed}: bus balance must hold"
                        );
                    }
                    // Deterministic like everything else in the machine.
                    assert_eq!(r, simulate(&hcfg, &t).unwrap());
                }
            }
        }
    }

    // ---- sampled simulation ------------------------------------------

    /// An all-detailed plan adds only window bookkeeping: the report must be
    /// bit-identical to the plain path's on contended multiprocessor runs.
    #[test]
    fn sampled_all_detailed_is_exact() {
        for seed in 0..20 {
            let (n, t) = contended_mixed_trace(seed);
            let cfg = SimConfig { num_procs: n, warmup_accesses: 0, ..SimConfig::default() };
            let exact = simulate(&cfg, &t).unwrap();
            let plan = SamplePlan::periodic(37, 1, 0);
            let run = simulate_sampled(&cfg, &t, &plan).unwrap();
            assert_eq!(run.report, exact, "seed {seed}: all-detailed must match exact");
            let total: u64 = run.windows.iter().map(|w| w.accesses).sum();
            assert_eq!(total, exact.reads + exact.writes, "seed {seed}: windows must tile");
            assert!(run.windows.iter().all(|w| w.kind == WindowKind::Detailed));
        }
    }

    /// Sampled runs keep functional state exact: window records tile the
    /// demand-access stream, every mode appears, the coherence checker stays
    /// green, and the run is deterministic.
    #[test]
    fn sampled_mixed_plan_is_consistent_and_deterministic() {
        for seed in 0..20 {
            let (n, t) = contended_mixed_trace(seed);
            let cfg = SimConfig {
                num_procs: n,
                warmup_accesses: 0,
                check_invariants: true,
                ..SimConfig::default()
            };
            let plan = SamplePlan::periodic(23, 4, 1);
            let a = simulate_sampled(&cfg, &t, &plan).unwrap();
            let b = simulate_sampled(&cfg, &t, &plan).unwrap();
            assert_eq!(a.report, b.report, "seed {seed}: sampled runs must be deterministic");
            assert_eq!(a.windows, b.windows, "seed {seed}");
            let total: u64 = a.windows.iter().map(|w| w.accesses).sum();
            assert_eq!(total, a.report.reads + a.report.writes, "seed {seed}: windows tile");
            // Every full window holds exactly the plan quota.
            for w in &a.windows[..a.windows.len() - 1] {
                assert_eq!(w.accesses, 23, "seed {seed} window {}", w.index);
            }
            // Fast windows submit no bus transactions of their own; the only
            // bus traffic they can carry is the preceding detailed window's
            // in-flight stragglers draining (plus rare conflict fallbacks),
            // so across the run the detailed/warm windows must account for
            // the overwhelming share of bus operations.
            let (fast_ops, slow_ops): (u64, u64) = a.windows.iter().fold((0, 0), |(f, s), w| {
                if w.kind == WindowKind::Fast {
                    (f + w.bus_ops, s)
                } else {
                    (f, s + w.bus_ops)
                }
            });
            assert!(
                fast_ops <= slow_ops,
                "seed {seed}: fast windows carried {fast_ops} bus ops vs {slow_ops} detailed"
            );
        }
    }

    /// Pure fast-forward: functionally complete (every access retires, the
    /// checker stays green) with zero bus traffic, and much cheaper in
    /// scheduler events than the detailed run.
    #[test]
    fn pure_fast_forward_is_functional_and_cheap() {
        for seed in 0..10 {
            let (n, t) = contended_mixed_trace(seed);
            let cfg = SimConfig {
                num_procs: n,
                warmup_accesses: 0,
                check_invariants: true,
                ..SimConfig::default()
            };
            let exact = simulate_counted(&cfg, &t).unwrap();
            let ff = simulate_sampled(&cfg, &t, &SamplePlan::fast_forward(16)).unwrap();
            assert_eq!(
                ff.report.reads + ff.report.writes,
                exact.0.reads + exact.0.writes,
                "seed {seed}: every access retires under fast-forward"
            );
            assert_eq!(ff.report.bus.total_ops(), 0, "seed {seed}: no bus traffic in pure FF");
            assert!(
                ff.events < exact.1,
                "seed {seed}: FF must process fewer events ({} vs {})",
                ff.events,
                exact.1
            );
        }
    }

    /// Software prefetching under fast-forward: the oracle trace's prefetch
    /// accounting stays a partition and the run completes.
    #[test]
    fn fast_forward_handles_prefetch_traces() {
        let mut b = TraceBuilder::new(2);
        for p in 0..2 {
            let mut pb = b.proc(p);
            for i in 0..40u64 {
                pb.prefetch(Addr::new(0x4000 + p as u64 * 0x100_000 + i * 32));
                pb.work(3);
                pb.read(Addr::new(0x4000 + p as u64 * 0x100_000 + i * 32));
                pb.write(Addr::new(0x9000 + (i % 4) * 32));
            }
        }
        let t = b.build();
        let cfg = SimConfig {
            num_procs: 2,
            warmup_accesses: 0,
            check_invariants: true,
            ..SimConfig::default()
        };
        let run = simulate_sampled(&cfg, &t, &SamplePlan::periodic(16, 3, 1)).unwrap();
        let pf = run.report.prefetch;
        assert_eq!(pf.executed, 80, "every prefetch dispatches");
        assert_eq!(
            pf.hits + pf.duplicates + pf.fills,
            pf.executed,
            "prefetch outcomes partition: {pf:?}"
        );
    }

    /// Degenerate plans and leftover statistics warm-up are rejected up
    /// front, not at panic depth.
    #[test]
    fn sampled_rejects_bad_plans() {
        let mut b = TraceBuilder::new(1);
        b.proc(0).read(Addr::new(0x100));
        let t = b.build();
        let cfg = SimConfig::default();
        let bad = SamplePlan::periodic(0, 4, 1);
        assert!(matches!(
            simulate_sampled(&cfg, &t, &bad),
            Err(SimError::InvalidSamplePlan(_))
        ));
        let warm = SimConfig { warmup_accesses: 10, ..SimConfig::default() };
        assert!(matches!(
            simulate_sampled(&warm, &t, &SamplePlan::periodic(8, 2, 0)),
            Err(SimError::InvalidSamplePlan(_))
        ));
    }
}

