//! Lock and barrier bookkeeping.
//!
//! The paper's simulator "carries out locking and barrier synchronization
//! [so that] a legal interleaving is maintained": processors vie for locks in
//! simulated-time order and may acquire them in a different order than the
//! traced run. These tables implement that policy; the memory traffic of the
//! synchronization operations themselves (test-and-test-and-set reads,
//! hand-off writes, barrier counter/flag accesses) is synthesized by the
//! machine and goes through the ordinary coherent-access path.

use charlie_trace::{LockId, ProcId};
use std::collections::{HashMap, VecDeque};

/// One lock: current owner plus FIFO waiters.
#[derive(Clone, Debug, Default)]
struct LockState {
    owner: Option<ProcId>,
    waiters: VecDeque<ProcId>,
}

/// All locks in the program, created on first touch.
#[derive(Clone, Debug, Default)]
pub struct LockTable {
    locks: HashMap<LockId, LockState>,
}

impl LockTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        LockTable::default()
    }

    /// Attempts to acquire `lock` for `proc`.
    ///
    /// Returns `true` when the lock was free and is now owned by `proc`;
    /// otherwise enqueues `proc` as a waiter and returns `false`.
    ///
    /// # Panics
    ///
    /// Panics if `proc` already owns the lock (traces are validated against
    /// recursive acquisition).
    pub fn acquire(&mut self, lock: LockId, proc: ProcId) -> bool {
        let st = self.locks.entry(lock).or_default();
        match st.owner {
            None => {
                st.owner = Some(proc);
                true
            }
            Some(owner) => {
                assert_ne!(owner, proc, "recursive lock acquisition");
                st.waiters.push_back(proc);
                false
            }
        }
    }

    /// Releases `lock`, handing it to the first waiter if any.
    ///
    /// Returns the new owner (the woken waiter), or `None` if the lock is
    /// now free.
    ///
    /// # Panics
    ///
    /// Panics if `proc` does not own the lock.
    pub fn release(&mut self, lock: LockId, proc: ProcId) -> Option<ProcId> {
        let st = self.locks.get_mut(&lock).expect("releasing unknown lock");
        assert_eq!(st.owner, Some(proc), "releasing a lock not held");
        match st.waiters.pop_front() {
            Some(next) => {
                st.owner = Some(next);
                Some(next)
            }
            None => {
                st.owner = None;
                None
            }
        }
    }

    /// Current owner of `lock`, if any.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn owner(&self, lock: LockId) -> Option<ProcId> {
        self.locks.get(&lock).and_then(|s| s.owner)
    }

    /// Number of processors queued on `lock`.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn num_waiters(&self, lock: LockId) -> usize {
        self.locks.get(&lock).map_or(0, |s| s.waiters.len())
    }
}

/// Centralized sense-reversing barrier over all processors.
#[derive(Clone, Debug)]
pub struct BarrierState {
    num_procs: usize,
    arrived: usize,
    waiters: Vec<ProcId>,
}

impl BarrierState {
    /// Creates the barrier for `num_procs` participants.
    pub fn new(num_procs: usize) -> Self {
        BarrierState { num_procs, arrived: 0, waiters: Vec::new() }
    }

    /// Records the arrival of `proc`.
    ///
    /// Returns `true` when `proc` is the last arrival: the caller must then
    /// take the waiter list via [`BarrierState::drain_waiters`] and release
    /// everyone. Otherwise `proc` is parked as a waiter.
    pub fn arrive(&mut self, proc: ProcId) -> bool {
        self.arrived += 1;
        debug_assert!(self.arrived <= self.num_procs, "barrier over-arrival");
        if self.arrived == self.num_procs {
            true
        } else {
            self.waiters.push(proc);
            false
        }
    }

    /// Takes the parked waiters and resets the episode.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn drain_waiters(&mut self) -> Vec<ProcId> {
        let mut out = Vec::new();
        self.drain_waiters_into(&mut out);
        out
    }

    /// Drains the parked waiters into a caller-owned scratch buffer (cleared
    /// first) and resets the episode. The allocation-free form the machine's
    /// hot loop uses: one scratch vector serves every barrier episode.
    pub fn drain_waiters_into(&mut self, out: &mut Vec<ProcId>) {
        self.arrived = 0;
        out.clear();
        out.append(&mut self.waiters);
    }

    /// Processors arrived in the current episode.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn arrived(&self) -> usize {
        self.arrived
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_acquire_free() {
        let mut t = LockTable::new();
        assert!(t.acquire(LockId(1), ProcId(0)));
        assert_eq!(t.owner(LockId(1)), Some(ProcId(0)));
    }

    #[test]
    fn lock_contention_queues_fifo() {
        let mut t = LockTable::new();
        assert!(t.acquire(LockId(1), ProcId(0)));
        assert!(!t.acquire(LockId(1), ProcId(1)));
        assert!(!t.acquire(LockId(1), ProcId(2)));
        assert_eq!(t.num_waiters(LockId(1)), 2);
        assert_eq!(t.release(LockId(1), ProcId(0)), Some(ProcId(1)));
        assert_eq!(t.owner(LockId(1)), Some(ProcId(1)));
        assert_eq!(t.release(LockId(1), ProcId(1)), Some(ProcId(2)));
        assert_eq!(t.release(LockId(1), ProcId(2)), None);
        assert_eq!(t.owner(LockId(1)), None);
    }

    #[test]
    #[should_panic(expected = "recursive")]
    fn recursive_acquire_panics() {
        let mut t = LockTable::new();
        t.acquire(LockId(1), ProcId(0));
        t.acquire(LockId(1), ProcId(0));
    }

    #[test]
    #[should_panic(expected = "not held")]
    fn foreign_release_panics() {
        let mut t = LockTable::new();
        t.acquire(LockId(1), ProcId(0));
        t.release(LockId(1), ProcId(2));
    }

    #[test]
    fn independent_locks() {
        let mut t = LockTable::new();
        assert!(t.acquire(LockId(1), ProcId(0)));
        assert!(t.acquire(LockId(2), ProcId(1)));
        assert_eq!(t.owner(LockId(2)), Some(ProcId(1)));
    }

    #[test]
    fn barrier_last_arrival_releases() {
        let mut b = BarrierState::new(3);
        assert!(!b.arrive(ProcId(0)));
        assert!(!b.arrive(ProcId(1)));
        assert_eq!(b.arrived(), 2);
        assert!(b.arrive(ProcId(2)));
        let w = b.drain_waiters();
        assert_eq!(w, vec![ProcId(0), ProcId(1)]);
        assert_eq!(b.arrived(), 0);
        // Next episode works.
        assert!(!b.arrive(ProcId(2)));
    }

    #[test]
    fn single_proc_barrier_is_immediate() {
        let mut b = BarrierState::new(1);
        assert!(b.arrive(ProcId(0)));
        assert!(b.drain_waiters().is_empty());
    }
}
