//! Synchronization edge cases: degenerate barriers, saturated lock
//! handoff, and measurement windows whose boundary lands amid sync events.
//!
//! These guard the corners the main suite's "realistic" traces rarely hit:
//! a single-participant barrier must be a no-op rather than a deadlock,
//! a lock contended by every processor at once must serialize (not drop or
//! duplicate) the critical sections, and warm-up accounting must stay
//! consistent when the boundary falls on synthesized synchronization
//! traffic instead of a trace access.

use charlie_sim::{simulate, SimConfig};
use charlie_trace::{Addr, TraceBuilder};

fn cfg(n: usize) -> SimConfig {
    SimConfig { num_procs: n, ..SimConfig::default() }
}

/// A barrier whose only participant is the whole machine: arrival is also
/// the last arrival, so it must complete immediately instead of parking
/// the processor forever.
#[test]
fn single_participant_barrier_completes() {
    let mut b = TraceBuilder::new(1);
    b.proc(0).work(5).barrier(0).read(Addr::new(0x100)).barrier(1).work(5);
    let report = simulate(&cfg(1), &b.build()).expect("no deadlock");
    assert!(report.cycles > 0);
    // The read after the first barrier retired: the machine got past it.
    assert!(report.reads >= 1);
    assert_eq!(report.per_proc.len(), 1);
    assert!(report.per_proc[0].finish_time > 0);
}

/// Back-to-back barriers with a single participant: each episode must
/// open and close independently (a stuck sense-reversal would wedge the
/// second one).
#[test]
fn repeated_single_participant_barriers_complete() {
    let mut b = TraceBuilder::new(1);
    {
        let mut p = b.proc(0);
        for episode in 0..10u32 {
            p.work(1).barrier(episode);
        }
    }
    let report = simulate(&cfg(1), &b.build()).expect("all episodes complete");
    assert!(report.cycles > 0);
}

/// Maximum contention: every processor pounds the same lock for several
/// rounds. The run must complete with every hand-off delivered, and the
/// critical sections must be serialized — the run can never be shorter
/// than the sum of all critical-section bodies.
#[test]
fn lock_handoff_under_max_contention() {
    const PROCS: usize = 8;
    const ROUNDS: u64 = 6;
    const CRIT_WORK: u64 = 40;
    let mut b = TraceBuilder::new(PROCS);
    for p in 0..PROCS {
        let mut pb = b.proc(p);
        for _ in 0..ROUNDS {
            pb.lock(0)
                .read(Addr::new(0x7000)) // shared counter: coherence traffic
                .work(CRIT_WORK as u32)
                .write(Addr::new(0x7000))
                .unlock(0);
        }
    }
    let report = simulate(&cfg(PROCS), &b.build()).expect("no lost hand-off");
    let serial_floor = PROCS as u64 * ROUNDS * CRIT_WORK;
    assert!(
        report.cycles >= serial_floor,
        "critical sections must serialize: {} cycles < {serial_floor} floor",
        report.cycles
    );
    // Every processor performed all its rounds (the synthesized lock
    // traffic comes on top of the traced accesses).
    assert!(report.writes >= PROCS as u64 * ROUNDS);
    for proc in &report.per_proc {
        assert!(proc.finish_time > 0);
        assert!(proc.stall_cycles > 0, "waiters must be charged stall time");
    }
}

/// The FIFO hand-off delivers the lock fairly: with two processors
/// alternating, neither can starve, and the interleaving stays legal even
/// when acquisition order differs from trace order.
#[test]
fn two_proc_lock_alternation_completes() {
    let mut b = TraceBuilder::new(2);
    for p in 0..2 {
        let mut pb = b.proc(p);
        for i in 0..20u64 {
            pb.lock(3).write(Addr::new(0x5000 + (i % 4) * 32)).unlock(3).work(1);
        }
    }
    let report = simulate(&cfg(2), &b.build()).expect("alternation completes");
    assert_eq!(report.per_proc.len(), 2);
    assert!(report.writes >= 40);
}

/// Warm-up boundary landing in the middle of synchronization traffic:
/// every processor's counted accesses include the synthesized lock/barrier
/// operations, so a boundary there must neither double-count nor lose
/// cycles — execution time matches the unwindowed run exactly and the
/// windowed counters stay internally consistent.
#[test]
fn measurement_window_boundary_on_sync_events() {
    const PROCS: usize = 4;
    let build = || {
        let mut b = TraceBuilder::new(PROCS);
        for p in 0..PROCS {
            let mut pb = b.proc(p);
            // Phase 1: a few private accesses, then a barrier storm with a
            // contended lock inside — dense synthesized sync traffic.
            for i in 0..8u64 {
                pb.read(Addr::new(0x10_000 * (p as u64 + 1) + i * 32));
            }
            pb.barrier(0).lock(1).write(Addr::new(0x9000)).unlock(1).barrier(1);
            // Phase 2: measured steady-state work.
            for i in 0..16u64 {
                pb.work(2).read(Addr::new(0x10_000 * (p as u64 + 1) + i * 32));
            }
        }
        b.build()
    };
    let trace = build();
    let cold = simulate(&cfg(PROCS), &trace).expect("unwindowed run");

    // Sweep the boundary across the sync region (8 trace accesses per proc
    // precede it; the lock/barrier machinery synthesizes more), so several
    // of these land exactly on synthesized sync accesses.
    for warmup in [6u64, 8, 9, 10, 11, 12] {
        let mut wcfg = cfg(PROCS);
        wcfg.warmup_accesses = warmup;
        let warm = simulate(&wcfg, &trace).expect("windowed run");
        assert_eq!(
            warm.cycles, cold.cycles,
            "warmup {warmup}: execution time must cover the whole run"
        );
        assert!(warm.measured_from > 0, "warmup {warmup}: window opened");
        assert!(
            warm.demand_accesses() < cold.demand_accesses(),
            "warmup {warmup}: pre-boundary accesses are excluded"
        );
        assert!(warm.demand_accesses() > 0, "warmup {warmup}: window not empty");
        for (i, proc) in warm.per_proc.iter().enumerate() {
            assert!(
                proc.finish_time >= proc.measured_from,
                "warmup {warmup}: proc {i} window inverted"
            );
            // A stall spanning the boundary is deliberately charged to the
            // measured window (see `open_stats_window`), so the window can
            // be over-filled by at most that one smeared wait — never by
            // more than the processor's whole runtime.
            assert!(
                proc.busy_cycles + proc.stall_cycles <= proc.finish_time,
                "warmup {warmup}: proc {i} double-counted busy/stall cycles"
            );
        }
    }
}
